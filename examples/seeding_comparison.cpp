// Seeding-heuristic comparison (§V-B / §VI second experiment group): run
// the four greedy heuristics standalone, show where each lands in objective
// space, then show how seeded NSGA-II populations evolve versus the
// all-random control.
//
// Run:  ./seeding_comparison [generations]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/fitness_cache.hpp"
#include "core/study.hpp"
#include "core/study_engine.hpp"
#include "pareto/metrics.hpp"
#include "util/ascii_plot.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace eus;

  std::size_t generations = 200;
  if (argc > 1) generations = static_cast<std::size_t>(std::atol(argv[1]));

  const Scenario scenario = make_dataset1(99);
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  // Part 1: the greedy heuristics on their own.
  std::cout << "== greedy seeds standalone ==\n";
  AsciiTable table({"heuristic", "energy (MJ)", "utility", "utility/MJ"});
  for (const SeedHeuristic h : all_seed_heuristics()) {
    const EUPoint p =
        problem.evaluate(make_seed(h, scenario.system, scenario.trace));
    table.add_row({to_string(h), format_double(p.energy / 1e6, 3),
                   format_double(p.utility, 1),
                   format_double(p.utility / (p.energy / 1e6), 2)});
  }
  std::cout << table.render() << '\n';

  // Part 2: seeded populations vs random through the generations.
  Nsga2Config config;
  config.population_size = 60;
  config.seed = 99;
  const std::vector<std::size_t> checkpoints = {
      generations / 10, generations / 3, generations};

  // All six populations evolve concurrently on one shared pool
  // (EUS_THREADS; 0 = all cores) and share one fitness memo (EUS_CACHE;
  // clone offspring skip re-simulation).  Fronts are identical to a
  // serial, uncached run.
  std::unique_ptr<FitnessCache> cache;
  if (const std::size_t cache_capacity = bench_cache_capacity();
      cache_capacity > 0) {
    FitnessCacheConfig cache_config;
    cache_config.capacity = cache_capacity;
    cache = std::make_unique<FitnessCache>(cache_config);
  }
  StudyEngineConfig engine_config;
  engine_config.threads = bench_threads();
  engine_config.cache = cache.get();
  StudyEngine engine(engine_config);
  std::cout << "evolving " << extended_population_specs().size()
            << " populations to " << generations << " generations on "
            << engine.threads() << " thread(s)...\n";
  const StudyResult study =
      engine.run(problem, config, checkpoints, extended_population_specs());
  if (cache) {
    std::cout << "fitness cache: " << cache->hits() << " hits / "
              << cache->hits() + cache->misses() << " lookups ("
              << cache->evictions() << " evictions)\n";
  }

  // Hypervolume league table per checkpoint (shared reference).
  std::vector<std::vector<EUPoint>> all;
  for (const auto& per_pop : study.fronts) {
    for (const auto& f : per_pop) all.push_back(f);
  }
  const EUPoint ref = enclosing_reference(all);

  AsciiTable league({"population", "HV @" + std::to_string(checkpoints[0]),
                     "HV @" + std::to_string(checkpoints[1]),
                     "HV @" + std::to_string(checkpoints[2]),
                     "covers random (final)"});
  const auto& random_final = study.fronts.back()[checkpoints.size() - 1];
  for (std::size_t p = 0; p < study.population_names.size(); ++p) {
    std::vector<std::string> row = {study.population_names[p]};
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
      row.push_back(format_double(hypervolume(study.fronts[p][c], ref) / 1e9,
                                  2));
    }
    row.push_back(
        format_double(coverage(study.final_front(p), random_final), 2));
    league.add_row(row);
  }
  std::cout << "\nhypervolume (x1e9, higher = better front) per checkpoint:\n"
            << league.render();

  // Final fronts overlaid, paper-style.
  std::vector<PlotSeries> series;
  for (std::size_t p = 0; p < study.population_names.size(); ++p) {
    PlotSeries s{study.population_names[p], study.markers[p], {}, {}};
    for (const auto& pt : study.final_front(p)) {
      s.x.push_back(pt.energy / 1e6);
      s.y.push_back(pt.utility);
    }
    series.push_back(std::move(s));
  }
  PlotOptions opts;
  opts.title = "\nfinal fronts (all populations)";
  opts.x_label = "energy (MJ)";
  opts.y_label = "utility";
  std::cout << render_scatter(series, opts);

  std::cout << "\nExpected shape (paper §VI): seeded populations start in "
               "distinct regions,\nconverge with iterations, and the "
               "all-four-seeds population behaves like\nthe min-energy "
               "seeded one.\n";
  return 0;
}
