// End-to-end CLI for user-supplied data: load your own measured ETC/EPC
// matrices (CSV), bring a recorded trace or generate one, evolve the
// utility/energy Pareto front, and export it as CSV — the full
// administrator workflow of the paper on *your* system instead of the
// bundled datasets.
//
// Usage:
//   custom_data_cli --etc etc.csv --epc epc.csv
//                   [--trace trace.txt | --generate N --window SECONDS]
//                   [--instances 2,3,1,...] [--generations G] [--pop N]
//                   [--seed S] [--out front.csv] [--save-trace trace.txt]
//
// Matrix CSV layout: header "task,<machine>,<machine>,...", one row per
// task type, "inf" marks ineligible pairs (see src/data/matrix_io.hpp).
// Run with --demo to see the whole flow on the bundled historical data.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "core/nsga2.hpp"
#include "core/study.hpp"
#include "data/historical.hpp"
#include "data/matrix_io.hpp"
#include "pareto/knee.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace eus;

struct Options {
  std::string etc_path, epc_path, trace_path, out_path, save_trace_path;
  std::size_t generate = 0;
  double window = 900.0;
  std::string instances;
  std::size_t generations = 2000;
  std::size_t population = 100;
  std::uint64_t seed = 1;
  bool demo = false;
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "error: " << error << "\n\nusage: custom_data_cli --etc "
               "etc.csv --epc epc.csv\n"
               "  [--trace trace.txt | --generate N --window SECONDS]\n"
               "  [--instances 2,3,...] [--generations G] [--pop N]\n"
               "  [--seed S] [--out front.csv] [--save-trace trace.txt]\n"
               "  [--demo]\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--etc") o.etc_path = next();
    else if (arg == "--epc") o.epc_path = next();
    else if (arg == "--trace") o.trace_path = next();
    else if (arg == "--generate") o.generate = std::stoul(next());
    else if (arg == "--window") o.window = std::stod(next());
    else if (arg == "--instances") o.instances = next();
    else if (arg == "--generations") o.generations = std::stoul(next());
    else if (arg == "--pop") o.population = std::stoul(next());
    else if (arg == "--seed") o.seed = std::stoull(next());
    else if (arg == "--out") o.out_path = next();
    else if (arg == "--save-trace") o.save_trace_path = next();
    else if (arg == "--demo") o.demo = true;
    else usage("unknown argument " + arg);
  }
  return o;
}

SystemModel build_system(const Options& o) {
  const NamedMatrix etc = matrix_from_csv(read_file(o.etc_path));
  const NamedMatrix epc = matrix_from_csv(read_file(o.epc_path));
  if (etc.col_names != epc.col_names || etc.row_names != epc.row_names) {
    throw std::runtime_error("ETC and EPC label sets differ");
  }

  std::vector<TaskType> tasks;
  for (const auto& name : etc.row_names) {
    tasks.push_back({name, Category::kGeneral, -1});
  }
  std::vector<MachineType> types;
  for (const auto& name : etc.col_names) {
    types.push_back({name, Category::kGeneral});
  }

  std::vector<std::size_t> counts(types.size(), 1);
  if (!o.instances.empty()) {
    std::istringstream ss(o.instances);
    std::string tok;
    std::size_t idx = 0;
    while (std::getline(ss, tok, ',')) {
      if (idx >= counts.size()) throw std::runtime_error("too many counts");
      counts[idx++] = std::stoul(tok);
    }
  }
  std::vector<Machine> machines;
  for (std::size_t ty = 0; ty < types.size(); ++ty) {
    for (std::size_t k = 0; k < counts[ty]; ++k) {
      machines.push_back(
          {static_cast<int>(ty),
           types[ty].name +
               (counts[ty] > 1 ? " #" + std::to_string(k + 1) : "")});
    }
  }
  return SystemModel(std::move(tasks), std::move(types), std::move(machines),
                     etc.values, epc.values);
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse_args(argc, argv);

  try {
    std::optional<SystemModel> system;
    if (o.demo) {
      std::cout << "(demo mode: bundled historical 5x9 data, generated "
                   "250-task trace)\n";
      system = historical_system();
      if (o.generate == 0 && o.trace_path.empty()) o.generate = 250;
    } else {
      if (o.etc_path.empty() || o.epc_path.empty()) {
        usage("--etc and --epc are required (or --demo)");
      }
      system = build_system(o);
    }

    std::optional<Trace> trace;
    if (!o.trace_path.empty()) {
      trace = trace_from_string(read_file(o.trace_path));
    } else if (o.generate > 0) {
      Rng rng(o.seed);
      TraceConfig cfg;
      cfg.num_tasks = o.generate;
      cfg.window_seconds = o.window;
      trace = generate_trace(*system,
                             standard_tuf_classes(2.0 * o.window), cfg, rng);
    } else {
      usage("provide --trace FILE or --generate N");
    }
    trace->validate_against(*system);
    if (!o.save_trace_path.empty()) {
      write_file(o.save_trace_path, trace_to_string(*trace));
      std::cout << "trace saved to " << o.save_trace_path << '\n';
    }

    std::cout << "system: " << system->num_task_types() << " task types, "
              << system->num_machines() << " machines ("
              << system->num_machine_types() << " types)\n"
              << "trace:  " << trace->size() << " tasks over "
              << trace->window() << " s\n";

    const UtilityEnergyProblem problem(*system, *trace);
    Nsga2Config config;
    config.population_size = o.population;
    config.seed = o.seed;
    Nsga2 ga(problem, config);
    std::vector<Allocation> seeds;
    for (const SeedHeuristic h : all_seed_heuristics()) {
      seeds.push_back(make_seed(h, *system, *trace));
    }
    ga.initialize(seeds);
    std::cout << "evolving " << o.generations << " generations (pop "
              << o.population << ", all four greedy seeds)...\n";
    ga.iterate(o.generations);

    const auto front = ga.front_points();
    PlotSeries s{"Pareto front", '*', {}, {}};
    for (const auto& p : front) {
      s.x.push_back(p.energy / 1e6);
      s.y.push_back(p.utility);
    }
    PlotOptions plot;
    plot.x_label = "energy (MJ)";
    plot.y_label = "utility";
    std::cout << render_scatter({s}, plot);

    const KneeAnalysis knee = analyze_utility_per_energy(front);
    std::cout << "front: " << front.size() << " allocations, energy "
              << front.front().energy / 1e6 << ".."
              << front.back().energy / 1e6 << " MJ, utility "
              << front.front().utility << ".." << front.back().utility
              << "\nmost-efficient point: " << knee.peak.energy / 1e6
              << " MJ / " << knee.peak.utility << " utility\n";

    if (!o.out_path.empty()) {
      std::ostringstream os;
      CsvWriter csv(os);
      csv.write_row({"energy_J", "utility"});
      for (const auto& p : front) {
        csv.write_row({format_double(p.energy, 3),
                       format_double(p.utility, 6)});
      }
      write_file(o.out_path, os.str());
      std::cout << "front written to " << o.out_path << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
