// DVFS extension (§VII future work, implemented here): give every task an
// extra P-state gene and let the NSGA-II trade clock speed for energy.
// With power ∝ f³, running a task at 0.6x clock costs 1/0.6 more time but
// only 0.36x the energy — the front should extend *below* the nominal
// minimum-energy floor.
//
// Run:  ./dvfs_extension [generations]

#include <cstdlib>
#include <iostream>

#include "core/nsga2.hpp"
#include "core/study.hpp"
#include "util/ascii_plot.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace eus;

  std::size_t generations = 300;
  if (argc > 1) generations = static_cast<std::size_t>(std::atol(argv[1]));

  const Scenario scenario = make_dataset1(17);

  // Baseline: nominal frequencies only.
  const UtilityEnergyProblem nominal(scenario.system, scenario.trace);

  // Extension: three P-states at 0.6 / 0.8 / 1.0 relative clock.
  EvaluatorOptions opts;
  opts.dvfs = make_cubic_dvfs({0.6, 0.8, 1.0});
  const UtilityEnergyProblem dvfs(scenario.system, scenario.trace, opts);

  const auto run = [&](const BiObjectiveProblem& problem,
                       bool seed_low_power) {
    Nsga2Config config;
    config.population_size = 80;
    config.seed = 17;
    Nsga2 ga(problem, config);
    std::vector<Allocation> seeds;
    Allocation me = min_energy_allocation(scenario.system, scenario.trace);
    if (seed_low_power && problem.num_pstates() > 0) {
      Allocation slow = me;
      slow.pstate.assign(slow.size(), 0);  // lowest clock everywhere
      seeds.push_back(std::move(slow));
    }
    seeds.push_back(std::move(me));
    ga.initialize(seeds);
    ga.iterate(generations);
    return ga.front_points();
  };

  std::cout << "== DVFS extension study ==\n"
            << "evolving nominal and DVFS-enabled fronts ("
            << generations << " generations each)...\n";
  const auto base_front = run(nominal, false);
  const auto dvfs_front = run(dvfs, true);

  std::vector<PlotSeries> series;
  PlotSeries sn{"nominal clocks", 'o', {}, {}};
  for (const auto& p : base_front) {
    sn.x.push_back(p.energy / 1e6);
    sn.y.push_back(p.utility);
  }
  PlotSeries sd{"with DVFS P-states", '+', {}, {}};
  for (const auto& p : dvfs_front) {
    sd.x.push_back(p.energy / 1e6);
    sd.y.push_back(p.utility);
  }
  series.push_back(std::move(sn));
  series.push_back(std::move(sd));
  PlotOptions popts;
  popts.title = "nominal vs DVFS-enabled Pareto fronts";
  popts.x_label = "energy (MJ)";
  popts.y_label = "utility";
  std::cout << render_scatter(series, popts);

  std::cout << "\nminimum energy nominal: " << base_front.front().energy / 1e6
            << " MJ\n"
            << "minimum energy DVFS:    " << dvfs_front.front().energy / 1e6
            << " MJ  ("
            << 100.0 * (1.0 -
                        dvfs_front.front().energy / base_front.front().energy)
            << "% below the nominal floor)\n"
            << "max utility nominal:    " << base_front.back().utility << '\n'
            << "max utility DVFS:       " << dvfs_front.back().utility << '\n';
  std::cout << "\nDVFS widens the front at the low-energy end: the extra "
               "gene buys energy\nsavings no machine-mapping choice could "
               "reach (energy ∝ f² per task).\n";
  return 0;
}
