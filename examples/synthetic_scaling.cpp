// Synthetic data generation walkthrough (§III-D2): grow the measured 5x9
// ETC/EPC into progressively larger systems and verify, at each size, that
// the heterogeneity (mvsk) signature of the real data survives.
//
// Run:  ./synthetic_scaling

#include <iostream>

#include "data/historical.hpp"
#include "synth/generator.hpp"
#include "util/table.hpp"

int main() {
  using namespace eus;

  const SystemModel base = historical_system();
  std::cout << "== synthetic scaling study ==\n"
            << "base: " << base.num_task_types() << " task types x "
            << base.num_machine_types() << " machine types (real data)\n\n";

  const Moments base_moments = [&] {
    std::vector<double> avgs;
    for (std::size_t r = 0; r < base.num_task_types(); ++r) {
      avgs.push_back(base.etc().row_mean_finite(r));
    }
    return compute_moments(avgs);
  }();
  std::cout << "real row-average ETC signature: mean="
            << format_double(base_moments.mean, 1)
            << "s cv=" << format_double(base_moments.cv, 3)
            << " skew=" << format_double(base_moments.skewness, 3)
            << " kurt=" << format_double(base_moments.kurtosis, 3) << "\n\n";

  AsciiTable table({"task types", "machine types", "machines", "mean (s)",
                    "cv", "skew", "kurtosis", "mvsk distance"});

  Rng rng(2013);
  for (const std::size_t extra : {10UL, 25UL, 55UL, 115UL}) {
    ExpansionConfig cfg;
    cfg.additional_task_types = extra;
    cfg.special_machine_types = 4;
    std::vector<std::size_t> instances(base.num_machine_types() + 4, 2);
    for (std::size_t s = 0; s < 4; ++s) {
      instances[base.num_machine_types() + s] = 1;
    }
    Rng child = rng.split();
    const ExpandedSystem ex = expand_system(base, cfg, instances, child);
    const FidelityReport report =
        etc_fidelity(base, ex.model, base.num_machine_types());
    const Moments& m = report.expanded_row_averages;
    table.add_row({std::to_string(ex.model.num_task_types()),
                   std::to_string(ex.model.num_machine_types()),
                   std::to_string(ex.model.num_machines()),
                   format_double(m.mean, 1), format_double(m.cv, 3),
                   format_double(m.skewness, 3),
                   format_double(m.kurtosis, 3),
                   format_double(report.distance, 3)});
  }

  std::cout << "expanded systems (ETC row-average signatures):\n"
            << table.render()
            << "\nSmall mvsk distances mean the synthetic populations kept "
               "the real data's\nheterogeneity — the paper's requirement for "
               "trusting dataset 2/3 results.\n";
  return 0;
}
