// Capacity planning with the framework: "what changes if we buy more
// hardware?"  Uses the §III-D2 synthetic generator to build variants of
// the dataset-2 suite — the baseline Table III breakup, a variant with
// doubled special-purpose machines, and one with three extra overclocked
// i7s — and compares the Pareto fronts the same workload produces on each.
//
// Run:  ./capacity_planning [generations]

#include <cstdlib>
#include <iostream>

#include "core/nsga2.hpp"
#include "core/study.hpp"
#include "data/historical.hpp"
#include "pareto/knee.hpp"
#include "pareto/metrics.hpp"
#include "sched/bounds.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"
#include "workload/analysis.hpp"
#include "workload/generator.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace eus;

struct Variant {
  std::string name;
  std::vector<std::size_t> instances;  // per machine type, expanded order
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t generations = 400;
  if (argc > 1) generations = static_cast<std::size_t>(std::atol(argv[1]));

  // One fixed expanded *type* catalog (same ETC/EPC for all variants) so
  // only the instance counts differ.
  const std::uint64_t seed = 2013;
  const ExpandedSystem base = make_expanded_system(seed);

  const std::vector<Variant> variants = {
      {"baseline (Table III, 30 machines)", table3_instance_counts()},
      {"+4 special machines (2 each)",
       {2, 3, 3, 3, 2, 4, 2, 5, 2, 2, 2, 2, 2}},
      {"+3 overclocked i7 3770K", {2, 3, 3, 3, 2, 4, 2, 8, 2, 1, 1, 1, 1}},
  };

  // One shared workload (generated against the baseline variant's catalog;
  // task types are identical across variants so it replays everywhere).
  Rng rng(seed);
  TraceConfig trace_cfg;
  trace_cfg.num_tasks = 500;
  trace_cfg.window_seconds = 900.0;

  std::cout << "== capacity planning study ==\n";

  std::vector<PlotSeries> series;
  AsciiTable table({"suite", "machines", "offered load", "min energy (MJ)",
                    "max utility", "% of utility bound", "knee utility/MJ"});
  const char markers[] = {'b', '4', 'i'};

  for (std::size_t v = 0; v < variants.size(); ++v) {
    // Rebuild the system with this variant's instance counts.
    Rng expansion_rng = Rng(seed).split();
    const ExpandedSystem expanded = expand_system(
        historical_system(), ExpansionConfig{}, variants[v].instances,
        expansion_rng);

    Rng trace_rng(seed + 7);
    const TufClassLibrary tufs = standard_tuf_classes(2.0 * 900.0);
    const Trace trace =
        generate_trace(expanded.model, tufs, trace_cfg, trace_rng);

    const WorkloadAnalysis load = analyze_workload(expanded.model, trace);
    const ObjectiveBounds bounds = compute_bounds(expanded.model, trace);

    const UtilityEnergyProblem problem(expanded.model, trace);
    Nsga2Config cfg;
    cfg.population_size = 80;
    cfg.seed = seed;
    Nsga2 ga(problem, cfg);
    ga.initialize({min_energy_allocation(expanded.model, trace),
                   min_min_completion_time_allocation(expanded.model, trace)});
    ga.iterate(generations);

    const auto front = ga.front_points();
    const KneeAnalysis knee = analyze_utility_per_energy(front);
    table.add_row(
        {variants[v].name, std::to_string(expanded.model.num_machines()),
         format_double(load.offered_load, 2),
         format_double(front.front().energy / 1e6, 2),
         format_double(front.back().utility, 0),
         format_double(100.0 * front.back().utility /
                           bounds.utility_upper_contention_free,
                       1) +
             "%",
         format_double(knee.peak_ratio * 1e6, 0)});

    PlotSeries s{variants[v].name, markers[v], {}, {}};
    for (const auto& p : front) {
      s.x.push_back(p.energy / 1e6);
      s.y.push_back(p.utility);
    }
    series.push_back(std::move(s));
    std::cout << "  evolved " << variants[v].name << '\n';
  }

  PlotOptions opts;
  opts.title = "\nfronts per hardware variant (same 500-task workload)";
  opts.x_label = "energy (MJ)";
  opts.y_label = "utility";
  std::cout << render_scatter(series, opts) << '\n' << table.render();

  std::cout << "\nReading the answer off the fronts: extra special-purpose "
               "machines only\nhelp the task types they accelerate (cheap "
               "fast seconds, same watts); more\ngeneral i7s lift the whole "
               "utility ceiling but raise the energy needed to\nget there.  "
               "The offered-load column shows how much slack each purchase\n"
               "buys for the same trace.\n";
  return 0;
}
