// Quickstart: the 60-second tour of the framework.
//
//   1. build the paper's dataset 1 (real 5x9 data, 250 tasks / 15 min);
//   2. seed an NSGA-II population with the min-energy greedy allocation;
//   3. evolve for a few hundred generations;
//   4. print the Pareto front and the most-efficient operating region.
//
// Run:  ./quickstart [generations]

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/fitness_cache.hpp"
#include "core/nsga2.hpp"
#include "core/study.hpp"
#include "pareto/knee.hpp"
#include "util/ascii_plot.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace eus;

  std::size_t generations = 300;
  if (argc > 1) generations = static_cast<std::size_t>(std::atol(argv[1]));

  std::cout << "== eus quickstart ==\n";
  const Scenario scenario = make_dataset1(/*seed=*/42);
  std::cout << "scenario: " << scenario.name << " — "
            << scenario.trace.size() << " tasks over "
            << scenario.window_seconds << " s, "
            << scenario.system.num_machines() << " machines\n";

  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  Nsga2Config config;
  config.population_size = 100;
  config.mutation_probability = 0.25;
  config.seed = 42;

  // Memoize fitness so clone offspring skip re-simulation (EUS_CACHE=off
  // disables; the front is bit-identical either way).
  const std::size_t cache_capacity = bench_cache_capacity();
  FitnessCacheConfig cache_config;
  cache_config.capacity = std::max<std::size_t>(cache_capacity, 1);
  FitnessCache cache(cache_config);
  if (cache_capacity > 0) config.cache = &cache;

  Nsga2 ga(problem, config);
  ga.initialize({min_energy_allocation(scenario.system, scenario.trace),
                 min_min_completion_time_allocation(scenario.system,
                                                    scenario.trace)});

  Stopwatch timer;
  ga.iterate(generations);
  std::cout << "evolved " << generations << " generations ("
            << ga.evaluations() << " evaluations, " << cache.hits()
            << " served from cache) in " << timer.seconds() << " s\n\n";

  const auto front = ga.front_points();
  PlotSeries series{"Pareto front", '*', {}, {}};
  for (const auto& p : front) {
    series.x.push_back(p.energy / 1e6);  // joules -> megajoules
    series.y.push_back(p.utility);
  }
  PlotOptions opts;
  opts.title = "Total energy consumed vs total utility earned";
  opts.x_label = "energy (MJ)";
  opts.y_label = "utility";
  std::cout << render_scatter({series}, opts) << '\n';

  const KneeAnalysis knee = analyze_utility_per_energy(front);
  std::cout << "front size: " << front.size() << "\n";
  std::cout << "most-efficient region: utility " << knee.peak.utility
            << " at " << knee.peak.energy / 1e6 << " MJ ("
            << knee.peak_ratio * 1e6 << " utility/MJ), "
            << knee.region.size() << " allocation(s) within 2%\n";
  std::cout << "\nEvery point is a complete task-to-machine mapping: pick "
               "the one matching\nyour energy budget and deploy it.\n";
  return 0;
}
