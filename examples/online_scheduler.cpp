// Online scheduling walkthrough: what actually happens when the paper's
// offline analysis parameterizes a live dispatcher.  Shows the first few
// placement decisions in detail, then sweeps energy budgets to trace how a
// budget-paced online policy moves along the utility/energy trade-off.
//
// Run:  ./online_scheduler

#include <iostream>

#include "online/simulator.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace eus;

  const Scenario scenario = make_dataset1(31);
  std::cout << "== online dispatcher walkthrough (" << scenario.name
            << ") ==\n";

  // Part 1: narrate the first decisions of the utility-maximizing policy.
  OnlineMaxUtility max_utility;
  const OnlineResult base =
      simulate_online(scenario.system, scenario.trace, max_utility);

  std::cout << "\nfirst six placements of " << max_utility.name() << ":\n";
  AsciiTable detail({"task", "type", "arrival (s)", "machine", "start",
                     "finish", "utility earned"});
  for (std::size_t i = 0; i < 6 && i < scenario.trace.size(); ++i) {
    const auto& task = scenario.trace.tasks()[i];
    const auto& o = base.outcomes[i];
    detail.add_row(
        {std::to_string(i),
         scenario.system.task_types()[task.type].name,
         format_double(task.arrival, 1),
         scenario.system.machines()[static_cast<std::size_t>(o.machine)].name,
         format_double(o.start, 1), format_double(o.finish, 1),
         format_double(o.utility, 2)});
  }
  std::cout << detail.render();
  std::cout << "whole run: utility " << base.utility << ", energy "
            << base.energy / 1e6 << " MJ, makespan " << base.makespan
            << " s\n";

  // Part 2: budget sweep with the paced policy.
  OnlineMinEnergy min_energy;
  const double floor =
      simulate_online(scenario.system, scenario.trace, min_energy).energy;
  const double ceiling = base.energy;

  std::cout << "\nbudget sweep (floor " << floor / 1e6 << " MJ = online "
            << "min-energy, ceiling " << ceiling / 1e6
            << " MJ = online max-utility):\n";
  BudgetPacedUtility paced;
  AsciiTable sweep({"budget (MJ)", "energy used (MJ)", "utility",
                    "% of unconstrained utility", "dropped"});
  for (const double f : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    OnlineOptions opts;
    opts.energy_budget = floor + f * (ceiling - floor);
    opts.allow_dropping = true;
    const OnlineResult r =
        simulate_online(scenario.system, scenario.trace, paced, opts);
    sweep.add_row({format_double(opts.energy_budget / 1e6, 3),
                   format_double(r.energy / 1e6, 3),
                   format_double(r.utility, 1),
                   format_double(100.0 * r.utility / base.utility, 1),
                   std::to_string(r.dropped)});
  }
  std::cout << sweep.render()
            << "\nThe budget knob traces a utility/energy curve online — "
               "set it from the\noffline Pareto front's knee (see "
               "bench_online_policies) and the live\nsystem operates near "
               "its most efficient point.\n";
  return 0;
}
