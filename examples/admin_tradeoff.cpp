// System-administrator workflow (the paper's motivating use case, §VI):
//
// "A system administrator can use this bi-objective optimization approach
//  to analyze the utility-energy trade-offs for any system of interest,
//  and then set parameters, such as energy constraints, according to the
//  needs of that system."
//
// This example evolves a front for dataset 1, then answers three concrete
// administrator questions:
//   Q1: my energy budget is X joules — what is the best achievable utility,
//       and which allocation delivers it?
//   Q2: I must earn at least utility Y — how little energy can that cost?
//   Q3: where is the most efficient operating point, and what do the two
//       ends of the front cost/earn relative to it?
//
// Run:  ./admin_tradeoff [generations]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/nsga2.hpp"
#include "core/study.hpp"
#include "des/report.hpp"
#include "pareto/knee.hpp"
#include "sched/evaluator.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace eus;

/// Best utility subject to energy <= budget; nullptr when infeasible.
const Individual* best_within_budget(const std::vector<Individual>& front,
                                     double budget) {
  const Individual* best = nullptr;
  for (const auto& ind : front) {
    if (ind.objectives.energy <= budget &&
        (best == nullptr ||
         ind.objectives.utility > best->objectives.utility)) {
      best = &ind;
    }
  }
  return best;
}

/// Cheapest energy subject to utility >= target; nullptr when infeasible.
const Individual* cheapest_reaching(const std::vector<Individual>& front,
                                    double target) {
  const Individual* best = nullptr;
  for (const auto& ind : front) {
    if (ind.objectives.utility >= target &&
        (best == nullptr || ind.objectives.energy < best->objectives.energy)) {
      best = &ind;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t generations = 500;
  if (argc > 1) generations = static_cast<std::size_t>(std::atol(argv[1]));

  const Scenario scenario = make_dataset1(7);
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  Nsga2Config config;
  config.population_size = 100;
  config.seed = 7;
  Nsga2 ga(problem, config);

  std::vector<Allocation> seeds;
  for (const SeedHeuristic h : all_seed_heuristics()) {
    seeds.push_back(make_seed(h, scenario.system, scenario.trace));
  }
  ga.initialize(seeds);
  ga.iterate(generations);

  const std::vector<Individual> front = ga.front();
  std::cout << "== administrator trade-off study ==\n"
            << "front of " << front.size() << " allocations after "
            << generations << " generations\n\n";

  const double e_min = front.front().objectives.energy;
  const double e_max = front.back().objectives.energy;
  const double u_max = front.back().objectives.utility;

  // Q1: three representative budgets between the extremes.
  AsciiTable q1({"energy budget (MJ)", "best utility", "% of max utility"});
  for (const double f : {0.25, 0.5, 0.75}) {
    const double budget = e_min + f * (e_max - e_min);
    const Individual* pick = best_within_budget(front, budget);
    q1.add_row({format_double(budget / 1e6, 2),
                format_double(pick->objectives.utility, 1),
                format_double(100.0 * pick->objectives.utility / u_max, 1)});
  }
  std::cout << "Q1: best utility within an energy budget\n" << q1.render();

  // Q2: utility floors.
  AsciiTable q2({"utility floor", "min energy (MJ)", "vs cheapest (x)"});
  for (const double f : {0.5, 0.75, 0.9}) {
    const double target = f * u_max;
    const Individual* pick = cheapest_reaching(front, target);
    if (pick == nullptr) {
      q2.add_row({format_double(target, 1), "infeasible", "-"});
    } else {
      q2.add_row({format_double(target, 1),
                  format_double(pick->objectives.energy / 1e6, 2),
                  format_double(pick->objectives.energy / e_min, 2)});
    }
  }
  std::cout << "\nQ2: cheapest energy reaching a utility floor\n"
            << q2.render();

  // Q3: the efficient-operation region.
  const KneeAnalysis knee = analyze_utility_per_energy(ga.front_points());
  std::cout << "\nQ3: most-efficient operating region\n"
            << "  peak utility-per-energy: " << knee.peak_ratio * 1e6
            << " utility/MJ at " << knee.peak.energy / 1e6 << " MJ / "
            << knee.peak.utility << " utility\n"
            << "  left of the region: big utility gains per extra joule\n"
            << "  right of the region: diminishing returns (paper §VI)\n";

  // Deploy the knee allocation: replay it through the discrete-event
  // simulator and show the administrator what the machines actually do.
  const Individual* knee_ind = cheapest_reaching(front, knee.peak.utility);
  if (knee_ind != nullptr) {
    const DesResult des =
        des_evaluate(scenario.system, scenario.trace, knee_ind->genome);
    std::cout << "\nknee allocation, machine utilization:\n"
              << utilization_report(scenario.system, des)
              << "\nknee allocation, schedule Gantt:\n"
              << gantt_chart(scenario.system, des)
              << "\nmakespan: " << des.totals.makespan
              << " s, mean task wait: " << des.mean_queue_wait << " s\n"
              << "export with allocation_to_csv() to hand this mapping to "
                 "a dispatcher.\n";
  }
  return 0;
}
