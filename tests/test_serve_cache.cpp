// FrontCache: strict LRU behavior, recency refresh on hit, eviction
// accounting, and the metrics wiring.

#include <gtest/gtest.h>

#include <string>

#include "serve/front_cache.hpp"

namespace eus::serve {
namespace {

CachedResult result_with(double energy, double utility) {
  CachedResult r;
  r.front = {EUPoint{energy, utility}};
  r.evaluations = 1;
  return r;
}

TEST(FrontCache, MissThenHit) {
  FrontCache cache(4);
  EXPECT_FALSE(cache.lookup("a").has_value());
  cache.insert("a", result_with(1.0, 2.0));
  const std::optional<CachedResult> hit = cache.lookup("a");
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->front.size(), 1U);
  EXPECT_EQ(hit->front[0].energy, 1.0);
  EXPECT_EQ(hit->front[0].utility, 2.0);
  EXPECT_EQ(cache.hits(), 1U);
  EXPECT_EQ(cache.misses(), 1U);
}

TEST(FrontCache, EvictsLeastRecentlyUsed) {
  FrontCache cache(2);
  cache.insert("a", result_with(1.0, 1.0));
  cache.insert("b", result_with(2.0, 2.0));
  ASSERT_TRUE(cache.lookup("a").has_value());  // refresh "a" — "b" is LRU
  cache.insert("c", result_with(3.0, 3.0));   // evicts "b"

  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_EQ(cache.evictions(), 1U);
  EXPECT_EQ(cache.size(), 2U);
}

TEST(FrontCache, ReinsertRefreshesInsteadOfDuplicating) {
  FrontCache cache(2);
  cache.insert("a", result_with(1.0, 1.0));
  cache.insert("b", result_with(2.0, 2.0));
  cache.insert("a", result_with(9.0, 9.0));  // refresh + overwrite
  EXPECT_EQ(cache.size(), 2U);
  const std::optional<CachedResult> hit = cache.lookup("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->front[0].energy, 9.0);

  cache.insert("c", result_with(3.0, 3.0));  // "b" is now the LRU
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("a").has_value());
}

TEST(FrontCache, CapacityClampsToOne) {
  FrontCache cache(0);
  EXPECT_EQ(cache.capacity(), 1U);
  cache.insert("a", result_with(1.0, 1.0));
  cache.insert("b", result_with(2.0, 2.0));
  EXPECT_EQ(cache.size(), 1U);
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_TRUE(cache.lookup("b").has_value());
}

TEST(FrontCache, PublishesMetricsCounters) {
  MetricsRegistry metrics;
  FrontCache cache(1, &metrics);
  (void)cache.lookup("a");                    // miss
  cache.insert("a", result_with(1.0, 1.0));
  (void)cache.lookup("a");                    // hit
  cache.insert("b", result_with(2.0, 2.0));   // evicts "a"

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.cache.hits"), 1U);
  EXPECT_EQ(snap.counters.at("serve.cache.misses"), 1U);
  EXPECT_EQ(snap.counters.at("serve.cache.evictions"), 1U);
}

}  // namespace
}  // namespace eus::serve
