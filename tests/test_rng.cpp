#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace eus {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitAdvancesParent) {
  Rng a(7), b(7);
  (void)a.split();
  // a's next outputs must differ from an unsplit twin's.
  bool diverged = false;
  for (int i = 0; i < 10; ++i) {
    if (a() != b()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, SuccessiveSplitsDistinct) {
  Rng parent(9);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  EXPECT_NE(c1(), c2());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7U);
  EXPECT_EQ(*seen.rbegin(), 6U);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0U);
}

TEST(Rng, BelowApproximatelyUniform) {
  Rng rng(10);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyTracksProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(14);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(16);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(4.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace eus
