#include "core/population_io.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <utility>

#include "core/nsga2.hpp"
#include "core/operators.hpp"
#include "pareto/metrics.hpp"
#include "data/historical.hpp"
#include "tuf/builder.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary library() {
  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(10.0, 0.0, 1500.0)});
  return TufClassLibrary(std::move(classes));
}

struct Fixture {
  SystemModel system = historical_system();
  Trace trace;
  UtilityEnergyProblem problem;

  Fixture() : trace(make_trace(system)), problem(system, trace) {}

  static Trace make_trace(const SystemModel& sys) {
    Rng rng(101);
    TraceConfig cfg;
    cfg.num_tasks = 30;
    cfg.window_seconds = 600.0;
    return generate_trace(sys, library(), cfg, rng);
  }
};

TEST(PopulationIo, EmptyRoundTrip) {
  EXPECT_TRUE(population_from_string(population_to_string({})).empty());
}

TEST(PopulationIo, RoundTripPreservesGenomes) {
  const Fixture fx;
  Rng rng(3);
  std::vector<Allocation> genomes;
  for (int i = 0; i < 8; ++i) {
    genomes.push_back(random_allocation(fx.problem, rng));
  }
  const auto loaded = population_from_string(population_to_string(genomes));
  ASSERT_EQ(loaded.size(), genomes.size());
  for (std::size_t k = 0; k < genomes.size(); ++k) {
    EXPECT_EQ(loaded[k], genomes[k]) << "genome " << k;
  }
}

TEST(PopulationIo, RejectsMisnumberedHeaders) {
  EXPECT_THROW(
      (void)population_from_string("[genome 1]\ntask,machine,order\n"),
      std::runtime_error);
}

TEST(PopulationIo, RejectsGarbage) {
  EXPECT_THROW((void)population_from_string("not a population"),
               std::runtime_error);
}

TEST(PopulationIo, RejectsInconsistentSizes) {
  Allocation a = make_trivial_allocation(3);
  Allocation b = make_trivial_allocation(4);
  const std::string text = population_to_string({a, b});
  EXPECT_THROW((void)population_from_string(text), std::runtime_error);
}

TEST(PopulationIo, CheckpointAndResumeMatchesContinuousRun) {
  // Run A: 20 generations straight.  Run B: 10 generations, checkpoint,
  // reload into a fresh Nsga2, 10 more.  The final *fronts* differ only
  // through RNG state (a fresh algorithm reseeds), so instead we verify
  // the checkpoint restores the exact population and that resuming makes
  // progress from it.
  const Fixture fx;
  Nsga2Config cfg;
  cfg.population_size = 12;
  cfg.seed = 5;

  Nsga2 first(fx.problem, cfg);
  first.initialize({});
  first.iterate(10);
  std::vector<Allocation> genomes;
  for (const auto& ind : first.population()) genomes.push_back(ind.genome);
  const auto checkpoint = population_to_string(genomes);

  const auto restored = population_from_string(checkpoint);
  Nsga2Config resume_cfg = cfg;
  resume_cfg.seed = 6;  // fresh operator stream
  Nsga2 second(fx.problem, resume_cfg);
  second.initialize(restored);

  // The restored population evaluates to the same objective multiset.
  std::multiset<std::pair<double, double>> before, after;
  for (const auto& ind : first.population()) {
    before.insert({ind.objectives.energy, ind.objectives.utility});
  }
  for (const auto& ind : second.population()) {
    after.insert({ind.objectives.energy, ind.objectives.utility});
  }
  EXPECT_EQ(before, after);

  // And resuming improves (or holds) the front.
  const auto resumed_initial = second.front_points();
  second.iterate(10);
  const auto resumed_final = second.front_points();
  const EUPoint ref{1e12, -1.0};
  EXPECT_GE(hypervolume(resumed_final, ref),
            hypervolume(resumed_initial, ref) - 1e-6);
}

}  // namespace
}  // namespace eus
