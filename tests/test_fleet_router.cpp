// Loopback integration tests for eus_router: in-process eus_served
// backends on ephemeral ports behind an in-process Router, driven through
// the real ClientConnection framing.  Covers inline healthz/metricsz,
// front bit-identity against a direct backend, consistent-hash cache
// affinity, capability-tag eligibility, failover with passive mark-down
// and probe-driven recovery, enable/disable and fleet-reload through the
// adminz wire, router-side alias resolution, drain semantics, and the
// routing-policy unit surface.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/scenario_catalog.hpp"
#include "fleet/config.hpp"
#include "fleet/policy.hpp"
#include "fleet/router.hpp"
#include "serve/client.hpp"
#include "serve/handlers.hpp"
#include "serve/server.hpp"
#include "util/json_value.hpp"

namespace eus::fleet {
namespace {

using serve::ClientConnection;
using serve::Server;
using serve::ServerConfig;

util::JsonValue one_shot(std::uint16_t port, const std::string& request) {
  ClientConnection connection;
  connection.connect(port);
  return util::parse_json(connection.call(request));
}

int code_of(const util::JsonValue& doc) {
  return static_cast<int>(doc.number_or("code", -1.0));
}

// A small custom scenario keeps every NSGA-II request fast.
std::string nsga2_request(std::uint64_t seed) {
  return R"({"type":"allocate","mode":"nsga2","scenario":{"name":"custom",)"
         R"("tasks":10,"window_s":30,"seed":)" +
         std::to_string(seed) +
         R"(},"nsga2":{"population":8,"generations":4,)"
         R"("seeds":["min-energy"]}})";
}

constexpr const char* kHeuristicRequest =
    R"({"type":"allocate","mode":"heuristic:min-energy",)"
    R"("scenario":{"name":"custom","tasks":10,"window_s":30,"seed":5}})";

/// N in-process backends plus one router, wired and started.
class FleetHarness {
 public:
  explicit FleetHarness(std::size_t backends,
                        RoutePolicy policy = RoutePolicy::kMinMin) {
    FleetConfig fleet;
    for (std::size_t b = 0; b < backends; ++b) {
      auto server = std::make_unique<Server>(ServerConfig{});
      server->start();
      BackendConfig config;
      config.name = "b" + std::to_string(b + 1);
      config.port = server->port();
      fleet.backends.push_back(config);
      servers.push_back(std::move(server));
    }
    RouterConfig config;
    config.fleet = fleet;
    config.policy = policy;
    config.health_period_s = 0.0;  // tests drive probe_now() directly
    config.catalog = &catalog;
    router = std::make_unique<Router>(std::move(config));
    router->start();
  }

  ~FleetHarness() {
    router->stop();
    for (const auto& server : servers) server->stop();
  }

  [[nodiscard]] std::uint64_t fleet_counter(const std::string& name) {
    return router->metrics().counter("fleet." + name).value();
  }

  [[nodiscard]] BackendInfo info(const std::string& name) {
    for (const BackendInfo& b : router->backend_info()) {
      if (b.name == name) return b;
    }
    ADD_FAILURE() << "no backend " << name;
    return {};
  }

  SharedCatalog catalog;
  std::vector<std::unique_ptr<Server>> servers;
  std::unique_ptr<Router> router;
};

TEST(FleetRouter, HealthzAndMetricszAnswerInline) {
  FleetHarness fleet(2);
  const util::JsonValue health =
      one_shot(fleet.router->port(), R"({"type":"healthz","id":"h1"})");
  EXPECT_EQ(code_of(health), serve::kCodeOk);
  EXPECT_EQ(health.string_or("id", ""), "h1");
  EXPECT_EQ(health.string_or("service", ""), "eus_router");
  EXPECT_EQ(health.number_or("backends", 0.0), 2.0);
  EXPECT_EQ(health.number_or("backends_up", 0.0), 2.0);

  const util::JsonValue metrics =
      one_shot(fleet.router->port(), R"({"type":"metricsz"})");
  EXPECT_EQ(code_of(metrics), serve::kCodeOk);
  const util::JsonValue* counters = metrics.get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->get("fleet.requests"), nullptr);
}

TEST(FleetRouter, FrontsAreBitIdenticalToDirectBackend) {
  FleetHarness fleet(1);
  const std::string request = nsga2_request(42);
  const util::JsonValue via_router =
      one_shot(fleet.router->port(), request);
  const util::JsonValue direct =
      one_shot(fleet.servers[0]->port(), request);
  ASSERT_EQ(code_of(via_router), serve::kCodeOk);
  ASSERT_EQ(code_of(direct), serve::kCodeOk);

  // The execution-determined sections must match bit for bit; only the
  // timing block may differ.
  const util::JsonValue* front_r = via_router.get("front");
  const util::JsonValue* front_d = direct.get("front");
  ASSERT_NE(front_r, nullptr);
  ASSERT_NE(front_d, nullptr);
  ASSERT_EQ(front_r->array.size(), front_d->array.size());
  for (std::size_t i = 0; i < front_r->array.size(); ++i) {
    EXPECT_DOUBLE_EQ(front_r->array[i].number_or("energy", -1.0),
                     front_d->array[i].number_or("energy", -2.0));
    EXPECT_DOUBLE_EQ(front_r->array[i].number_or("utility", -1.0),
                     front_d->array[i].number_or("utility", -2.0));
  }
  EXPECT_EQ(via_router.number_or("evaluations", -1.0),
            direct.number_or("evaluations", -2.0));
}

TEST(FleetRouter, RepeatedCacheableRequestsHitOneBackendsCache) {
  FleetHarness fleet(3);
  const std::string request = nsga2_request(7);
  const util::JsonValue first = one_shot(fleet.router->port(), request);
  EXPECT_EQ(first.string_or("cache", ""), "miss");
  for (int i = 0; i < 3; ++i) {
    const util::JsonValue repeat = one_shot(fleet.router->port(), request);
    // Ring affinity: the same fingerprint keeps landing on the backend
    // whose LRU already holds the front.
    EXPECT_EQ(repeat.string_or("cache", ""), "hit");
  }
  std::size_t busy_backends = 0;
  for (const BackendInfo& b : fleet.router->backend_info()) {
    if (b.requests > 0) ++busy_backends;
  }
  EXPECT_EQ(busy_backends, 1U);
}

TEST(FleetRouter, CapabilityTagsGateEligibility) {
  FleetHarness fleet(2);
  // Rebuild the fleet with capabilities: b1 heuristics only, b2 nsga2 +
  // pareto-query only.
  FleetConfig next;
  BackendConfig b1;
  b1.name = "b1";
  b1.port = fleet.servers[0]->port();
  b1.capabilities = {"mode:heuristic"};
  BackendConfig b2;
  b2.name = "b2";
  b2.port = fleet.servers[1]->port();
  b2.capabilities = {"mode:nsga2", "mode:pareto-query"};
  next.backends = {b1, b2};
  fleet.router->reload_fleet(next);

  EXPECT_EQ(code_of(one_shot(fleet.router->port(), nsga2_request(1))),
            serve::kCodeOk);
  EXPECT_EQ(code_of(one_shot(fleet.router->port(), kHeuristicRequest)),
            serve::kCodeOk);
  EXPECT_EQ(fleet.info("b1").requests, 1U);
  EXPECT_EQ(fleet.info("b2").requests, 1U);
}

TEST(FleetRouter, FailoverRetriesOnceAndMarksDown) {
  FleetHarness fleet(2);
  // Prime a pooled connection to every backend.
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(
        code_of(one_shot(fleet.router->port(), nsga2_request(100 + i))),
        serve::kCodeOk);
  }
  fleet.servers[0]->stop();  // kill b1 under the router

  // Every request still answers: calls planned onto b1 fail transport,
  // mark it down, and retry on b2.  Distinct seeds spread over the ring,
  // so within a handful of requests at least one is planned onto b1.
  for (std::uint64_t i = 0; i < 20; ++i) {
    const util::JsonValue doc =
        one_shot(fleet.router->port(), nsga2_request(200 + i));
    EXPECT_EQ(code_of(doc), serve::kCodeOk) << i;
    if (i >= 5 && fleet.fleet_counter("backend.down") > 0) break;
  }
  EXPECT_EQ(fleet.fleet_counter("backend.down"), 1U);
  EXPECT_FALSE(fleet.info("b1").up);
  EXPECT_GE(fleet.fleet_counter("retries"), 1U);
  EXPECT_EQ(fleet.fleet_counter("upstream_failed"), 0U);

  // Probes keep it down while dead, and bring it back once healthz
  // answers again.
  fleet.router->probe_now(/*force=*/true);
  EXPECT_FALSE(fleet.info("b1").up);
  ServerConfig revived;
  revived.port = fleet.info("b1").port;
  Server replacement(revived);
  replacement.start();
  fleet.router->probe_now(/*force=*/true);
  EXPECT_TRUE(fleet.info("b1").up);
  EXPECT_EQ(fleet.fleet_counter("backend.up"), 1U);
  replacement.stop();
  fleet.router->probe_now(/*force=*/true);  // leave it marked down again
}

TEST(FleetRouter, NoRoutableBackendIs503) {
  FleetHarness fleet(1);
  ASSERT_TRUE(fleet.router->set_backend_enabled("b1", false));
  const util::JsonValue doc =
      one_shot(fleet.router->port(), nsga2_request(3));
  EXPECT_EQ(code_of(doc), serve::kCodeOverloaded);
  EXPECT_EQ(fleet.fleet_counter("no_backend"), 1U);
  ASSERT_TRUE(fleet.router->set_backend_enabled("b1", true));
  EXPECT_EQ(code_of(one_shot(fleet.router->port(), nsga2_request(3))),
            serve::kCodeOk);
}

TEST(FleetRouter, AdminEnableDisableAndReloadOverTheWire) {
  FleetHarness fleet(2);
  const util::JsonValue disabled = one_shot(
      fleet.router->port(),
      R"({"type":"adminz","action":"disable-backend","name":"b2"})");
  EXPECT_EQ(code_of(disabled), serve::kCodeOk);
  EXPECT_FALSE(fleet.info("b2").enabled);

  // All traffic lands on b1 while b2 is out of the rotation.
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(
        code_of(one_shot(fleet.router->port(), nsga2_request(300 + i))),
        serve::kCodeOk);
  }
  EXPECT_EQ(fleet.info("b2").requests, 0U);
  EXPECT_EQ(fleet.info("b1").requests, 3U);

  const util::JsonValue enabled = one_shot(
      fleet.router->port(),
      R"({"type":"adminz","action":"enable-backend","name":"b2"})");
  EXPECT_EQ(code_of(enabled), serve::kCodeOk);
  EXPECT_TRUE(fleet.info("b2").enabled);

  const util::JsonValue unknown = one_shot(
      fleet.router->port(),
      R"({"type":"adminz","action":"enable-backend","name":"nope"})");
  EXPECT_EQ(code_of(unknown), serve::kCodeBadRequest);

  // fleet-reload over the wire: drop to one backend.
  const std::string reload =
      R"({"type":"adminz","action":"fleet-reload","fleet":{"backends":[)"
      R"({"name":"b1","port":)" +
      std::to_string(fleet.servers[0]->port()) + R"(}]}})";
  const util::JsonValue reloaded = one_shot(fleet.router->port(), reload);
  EXPECT_EQ(code_of(reloaded), serve::kCodeOk);
  EXPECT_EQ(fleet.router->backend_info().size(), 1U);
  EXPECT_EQ(fleet.fleet_counter("reloads"), 1U);

  // A rejected fleet leaves the current one untouched.
  const util::JsonValue rejected = one_shot(
      fleet.router->port(),
      R"({"type":"adminz","action":"fleet-reload","fleet":{"backends":[]}})");
  EXPECT_EQ(code_of(rejected), serve::kCodeBadRequest);
  EXPECT_EQ(fleet.router->backend_info().size(), 1U);
}

TEST(FleetRouter, ReloadPreservesSurvivorState) {
  FleetHarness fleet(2);
  ASSERT_EQ(code_of(one_shot(fleet.router->port(), nsga2_request(9))),
            serve::kCodeOk);
  fleet.servers[1]->stop();
  fleet.router->probe_now(/*force=*/true);
  ASSERT_FALSE(fleet.info("b2").up);

  FleetConfig next;
  BackendConfig b1;
  b1.name = "b1";
  b1.port = fleet.servers[0]->port();
  BackendConfig b2;
  b2.name = "b2";
  b2.port = fleet.servers[1]->port();
  next.backends = {b1, b2};
  fleet.router->reload_fleet(next);
  // The down verdict and the per-backend counters survive the reload.
  EXPECT_FALSE(fleet.info("b2").up);
  EXPECT_GE(fleet.info("b1").requests + fleet.info("b2").requests, 1U);
}

TEST(FleetRouter, ServeOnlyAdminVerbsAreRejected) {
  FleetHarness fleet(1);
  const util::JsonValue doc = one_shot(
      fleet.router->port(),
      R"({"type":"adminz","action":"set-workers","value":4})");
  EXPECT_EQ(code_of(doc), serve::kCodeBadRequest);
}

TEST(FleetRouter, AliasesResolveAtTheRouterNotTheBackend) {
  FleetHarness fleet(1);
  auto next = std::make_shared<const ScenarioCatalog>(
      std::vector<ScenarioRecipe>{{"quick", "custom", 77, 10, 30.0},
                                  {"quick2", "custom", 77, 10, 30.0}});
  fleet.catalog.swap(next);

  const std::string request =
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"quick"},)"
      R"("nsga2":{"population":8,"generations":4,"seeds":["min-energy"]}})";
  // The backend has no catalog: direct alias requests fail, routed ones
  // resolve at the router and forward concrete.
  EXPECT_EQ(code_of(one_shot(fleet.servers[0]->port(), request)),
            serve::kCodeBadRequest);
  const util::JsonValue doc = one_shot(fleet.router->port(), request);
  EXPECT_EQ(code_of(doc), serve::kCodeOk);
  EXPECT_EQ(doc.string_or("scenario", ""), "custom");

  // Two aliases for one recipe share a fingerprint, so the second is a
  // cache hit on the same backend.
  const std::string request2 =
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"quick2"},)"
      R"("nsga2":{"population":8,"generations":4,"seeds":["min-energy"]}})";
  const util::JsonValue doc2 = one_shot(fleet.router->port(), request2);
  EXPECT_EQ(code_of(doc2), serve::kCodeOk);
  EXPECT_EQ(doc2.string_or("cache", ""), "hit");
}

TEST(FleetRouter, DrainRejectsNewAllocatesOnLiveConnections) {
  FleetHarness fleet(1);
  // After request_stop the acceptor takes no new connections, so the
  // drain answer is observable only on one accepted beforehand.
  ClientConnection connection;
  connection.connect(fleet.router->port());
  // A round-trip first: guarantees the router accepted the connection
  // before the acceptor is interrupted.
  ASSERT_EQ(code_of(util::parse_json(
                connection.call(R"({"type":"healthz"})"))),
            serve::kCodeOk);
  fleet.router->request_stop();
  const util::JsonValue doc =
      util::parse_json(connection.call(nsga2_request(4)));
  EXPECT_EQ(code_of(doc), serve::kCodeOverloaded);
  const util::JsonValue health =
      util::parse_json(connection.call(R"({"type":"healthz"})"));
  EXPECT_EQ(code_of(health), serve::kCodeOk);
  const util::JsonValue* draining = health.get("draining");
  ASSERT_NE(draining, nullptr);
  EXPECT_TRUE(draining->boolean);
}

TEST(FleetPolicy, RoundRobinRotates) {
  const std::vector<Candidate> candidates = {
      {"a", 1.0, 1.0, 0}, {"b", 1.0, 1.0, 0}, {"c", 1.0, 1.0, 0}};
  EXPECT_EQ(choose_backend(RoutePolicy::kRoundRobin, candidates, 1.0, 0),
            0U);
  EXPECT_EQ(choose_backend(RoutePolicy::kRoundRobin, candidates, 1.0, 1),
            1U);
  EXPECT_EQ(choose_backend(RoutePolicy::kRoundRobin, candidates, 1.0, 5),
            2U);
}

TEST(FleetPolicy, MinMinPrefersFastAndIdle) {
  // b finishes the request soonest: same queue, double speed.
  EXPECT_EQ(choose_backend(RoutePolicy::kMinMin,
                           {{"a", 1.0, 1.0, 0}, {"b", 2.0, 1.0, 0}}, 1.0, 0),
            1U);
  // A deep queue outweighs raw speed.
  EXPECT_EQ(choose_backend(RoutePolicy::kMinMin,
                           {{"a", 1.0, 1.0, 0}, {"b", 2.0, 1.0, 7}}, 1.0, 0),
            0U);
  // Exact tie resolves to the lexicographically smaller name.
  EXPECT_EQ(choose_backend(RoutePolicy::kMinMin,
                           {{"z", 1.0, 1.0, 0}, {"a", 1.0, 1.0, 0}}, 1.0, 0),
            1U);
}

TEST(FleetPolicy, MaxUpePrefersUtilityPerWatt) {
  // a: 1.0 speed / 1.0 W = 1.0; b: 2.0 speed / 4.0 W = 0.5.
  EXPECT_EQ(choose_backend(RoutePolicy::kMaxUpe,
                           {{"a", 1.0, 1.0, 0}, {"b", 2.0, 4.0, 0}}, 1.0, 0),
            0U);
  // The queue discounts the utility rate.
  EXPECT_EQ(choose_backend(RoutePolicy::kMaxUpe,
                           {{"a", 1.0, 1.0, 3}, {"b", 2.0, 4.0, 0}}, 1.0, 0),
            1U);
}

TEST(FleetPolicy, CostUnitsScaleWithNsga2Budget) {
  serve::ServeRequest heuristic;
  heuristic.mode = serve::ModeKind::kHeuristic;
  EXPECT_DOUBLE_EQ(request_cost_units(heuristic), 1.0);

  serve::ServeRequest small;
  small.mode = serve::ModeKind::kNsga2;
  small.nsga2.population = 8;
  small.nsga2.generations = 4;
  EXPECT_DOUBLE_EQ(request_cost_units(small), 1.0);  // floored at 1

  serve::ServeRequest big;
  big.mode = serve::ModeKind::kNsga2;
  big.nsga2.population = 64;
  big.nsga2.generations = 64;
  EXPECT_DOUBLE_EQ(request_cost_units(big), 4.0);
}

}  // namespace
}  // namespace eus::fleet
