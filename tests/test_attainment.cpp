#include "pareto/attainment.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "pareto/front.hpp"
#include "util/rng.hpp"

namespace eus {
namespace {

TEST(Attainment, Validation) {
  EXPECT_THROW((void)attainment_front({}, 1), std::invalid_argument);
  EXPECT_THROW((void)attainment_front({{{1.0, 1.0}}}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)attainment_front({{{1.0, 1.0}}}, 2),
               std::invalid_argument);
  EXPECT_THROW((void)attainment_front({{{1.0, 1.0}}, {}}, 1),
               std::invalid_argument);
}

TEST(Attainment, SingleRunIsItsOwnFront) {
  const std::vector<EUPoint> f = {{1.0, 2.0}, {3.0, 5.0}, {2.0, 5.0}};
  const auto a = attainment_front({f}, 1);
  EXPECT_EQ(a, pareto_front(f));
}

TEST(Attainment, KOneIsTheUnionFront) {
  // k=1: attained by at least one run == the combined best front.
  const std::vector<EUPoint> r1 = {{1.0, 3.0}, {4.0, 8.0}};
  const std::vector<EUPoint> r2 = {{2.0, 6.0}, {5.0, 9.0}};
  const auto a = attainment_front({r1, r2}, 1);
  std::vector<EUPoint> combined = r1;
  combined.insert(combined.end(), r2.begin(), r2.end());
  EXPECT_EQ(a, pareto_front(combined));
}

TEST(Attainment, KAllIsTheGuaranteedRegion) {
  // k=K: only what every run reached.  Run 2 never reaches utility 8 at
  // energy 4, so the 2-of-2 front is dominated by run 1's everywhere.
  const std::vector<EUPoint> r1 = {{1.0, 3.0}, {4.0, 8.0}};
  const std::vector<EUPoint> r2 = {{2.0, 2.0}, {4.0, 6.0}};
  const auto a = attainment_front({r1, r2}, 2);
  // At energy 2: run1 gives 3, run2 gives 2 -> worst 2.  At 4: 8 vs 6 -> 6.
  EXPECT_EQ(a, (std::vector<EUPoint>{{2.0, 2.0}, {4.0, 6.0}}));
}

TEST(Attainment, MedianBetweenExtremes) {
  Rng rng(9);
  std::vector<std::vector<EUPoint>> runs;
  for (int r = 0; r < 5; ++r) {
    std::vector<EUPoint> f;
    for (int i = 0; i < 30; ++i) {
      f.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    }
    runs.push_back(pareto_front(f));
  }
  const auto best = attainment_front(runs, 1);
  const auto median = attainment_front(runs, 3);
  const auto all = attainment_front(runs, 5);
  // Monotone nesting: every k-front is covered by the (k-1)-front.
  const auto covered_by = [](const std::vector<EUPoint>& outer,
                             const std::vector<EUPoint>& inner) {
    for (const auto& p : inner) {
      bool ok = false;
      for (const auto& q : outer) {
        if (q.energy <= p.energy && q.utility >= p.utility) ok = true;
      }
      if (!ok) return false;
    }
    return true;
  };
  EXPECT_TRUE(covered_by(best, median));
  EXPECT_TRUE(covered_by(median, all));
  EXPECT_TRUE(is_mutually_nondominated(best));
  EXPECT_TRUE(is_mutually_nondominated(median));
  EXPECT_TRUE(is_mutually_nondominated(all));
}

TEST(Attainment, FrontPointsActuallyAttained) {
  Rng rng(10);
  std::vector<std::vector<EUPoint>> runs;
  for (int r = 0; r < 4; ++r) {
    std::vector<EUPoint> f;
    for (int i = 0; i < 20; ++i) {
      f.push_back({static_cast<double>(rng.below(15)),
                   static_cast<double>(rng.below(15))});
    }
    runs.push_back(f);
  }
  for (std::size_t k = 1; k <= runs.size(); ++k) {
    for (const auto& p : attainment_front(runs, k)) {
      EXPECT_GE(attainment_count(runs, p), k) << "k=" << k;
    }
  }
}

TEST(AttainmentCount, WeakDominanceSemantics) {
  const std::vector<std::vector<EUPoint>> runs = {
      {{1.0, 5.0}},
      {{2.0, 4.0}},
  };
  EXPECT_EQ(attainment_count(runs, {1.0, 5.0}), 1U);   // exactly run 1
  EXPECT_EQ(attainment_count(runs, {2.0, 4.0}), 2U);   // both reach it
  EXPECT_EQ(attainment_count(runs, {0.5, 1.0}), 0U);   // cheaper than all
  EXPECT_EQ(attainment_count(runs, {3.0, 1.0}), 2U);
}

}  // namespace
}  // namespace eus
