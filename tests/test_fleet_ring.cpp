// Consistent-hash ring tests: determinism, reasonable key spread over
// weighted virtual nodes, failover preference order, and the property the
// router's front caching depends on — adding one backend of N remaps only
// about 1/N of the fingerprints.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "fleet/ring.hpp"

namespace eus::fleet {
namespace {

std::vector<std::string> keys(std::size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back("fingerprint|custom|seed=" + std::to_string(i) +
                  "|nsga2|pop=32|gen=32");
  }
  return out;
}

TEST(FleetRing, Fnv1aIsTheReferenceFunction) {
  // Reference vectors for 64-bit FNV-1a.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 12638187200555641996ULL);
  EXPECT_EQ(fnv1a64("foobar"), 9625390261332436968ULL);
}

TEST(FleetRing, EmptyRingOwnsNothing) {
  const HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.owner("anything"), "");
  EXPECT_TRUE(ring.preference("anything").empty());
}

TEST(FleetRing, OwnerIsDeterministicAndInsertionOrderIndependent) {
  HashRing forward;
  forward.add("a");
  forward.add("b");
  forward.add("c");
  HashRing backward;
  backward.add("c");
  backward.add("b");
  backward.add("a");
  for (const std::string& key : keys(200)) {
    EXPECT_EQ(forward.owner(key), backward.owner(key)) << key;
  }
}

TEST(FleetRing, SpreadsKeysAcrossEqualBackends) {
  HashRing ring;
  ring.add("a");
  ring.add("b");
  ring.add("c");
  std::map<std::string, std::size_t> hits;
  const std::size_t total = 3000;
  for (const std::string& key : keys(total)) ++hits[ring.owner(key)];
  ASSERT_EQ(hits.size(), 3U);
  for (const auto& [name, count] : hits) {
    // Equal weights should land within a loose band of the 1/3 share;
    // virtual nodes keep the variance modest.
    EXPECT_GT(count, total / 6) << name;
    EXPECT_LT(count, total / 2) << name;
  }
}

TEST(FleetRing, WeightTiltsOwnership) {
  HashRing ring;
  ring.add("fast", 3.0);
  ring.add("slow", 1.0);
  std::size_t fast = 0;
  const std::size_t total = 3000;
  for (const std::string& key : keys(total)) {
    if (ring.owner(key) == "fast") ++fast;
  }
  // A 3x-weighted backend should own clearly more than half the keys.
  EXPECT_GT(fast, total / 2);
}

TEST(FleetRing, PreferenceListsEveryBackendOnceOwnerFirst) {
  HashRing ring;
  ring.add("a");
  ring.add("b");
  ring.add("c");
  for (const std::string& key : keys(50)) {
    const std::vector<std::string> order = ring.preference(key);
    ASSERT_EQ(order.size(), 3U) << key;
    EXPECT_EQ(order.front(), ring.owner(key)) << key;
    std::vector<std::string> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<std::string>{"a", "b", "c"})) << key;
  }
}

TEST(FleetRing, AddingOneBackendRemapsAboutOneNth) {
  HashRing three;
  three.add("a");
  three.add("b");
  three.add("c");
  HashRing four = three;
  four.add("d");

  const std::size_t total = 4000;
  std::size_t moved = 0;
  std::size_t moved_to_d = 0;
  for (const std::string& key : keys(total)) {
    const std::string before = three.owner(key);
    const std::string after = four.owner(key);
    if (before != after) {
      ++moved;
      if (after == "d") ++moved_to_d;
    }
  }
  // The point of consistent hashing: growing 3 -> 4 should move ~1/4 of
  // the keyspace, and everything that moves should move TO the new
  // backend, never between survivors.
  EXPECT_EQ(moved, moved_to_d);
  EXPECT_GT(moved, total / 8);   // at least half the ideal share
  EXPECT_LT(moved, total * 3 / 8);  // well under naive-mod-N's ~3/4
}

}  // namespace
}  // namespace eus::fleet
