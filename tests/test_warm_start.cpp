// Warm-start repair and dominance tests: machine_index_map /
// drop_machine_instances / repair_genomes unit coverage, plus the
// subsystem's load-bearing property — a warm-started front weakly
// dominates the cold front at the same optimization budget — asserted
// end-to-end through handle_allocate across three catalog scenarios.

#include "tenant/repair.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/operators.hpp"
#include "core/problem.hpp"
#include "util/rng.hpp"
#include "data/historical.hpp"
#include "data/matrix.hpp"
#include "data/system.hpp"
#include "serve/handlers.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"
#include "tenant/archive_store.hpp"
#include "util/json_value.hpp"
#include "workload/scenarios.hpp"

namespace eus {
namespace {

TEST(MachineIndexMap, MapsSurvivorsAndMarksDropped) {
  const std::vector<int> map = tenant::machine_index_map(5, {1, 3});
  const std::vector<int> expected = {0, -1, 1, -1, 2};
  EXPECT_EQ(map, expected);

  // No drops: the identity.
  const std::vector<int> identity = tenant::machine_index_map(3, {});
  const std::vector<int> expected_identity = {0, 1, 2};
  EXPECT_EQ(identity, expected_identity);
}

TEST(DropMachineInstances, RemovesInstancesAndKeepsTypeMatrices) {
  const SystemModel system = historical_system();
  const std::size_t before = system.num_machines();
  ASSERT_GE(before, 2U);

  const SystemModel dropped = tenant::drop_machine_instances(system, {1});
  EXPECT_EQ(dropped.num_machines(), before - 1);
  EXPECT_EQ(dropped.num_machine_types(), system.num_machine_types());
  EXPECT_EQ(dropped.etc().rows(), system.etc().rows());
  // Survivors keep their identity: machine 0 unchanged, old 2 is new 1.
  EXPECT_EQ(dropped.machines()[0].name, system.machines()[0].name);
  EXPECT_EQ(dropped.machines()[1].name, system.machines()[2].name);
}

TEST(DropMachineInstances, RejectsInfeasibleDrops) {
  const SystemModel system = historical_system();
  const std::size_t n = system.num_machines();

  EXPECT_THROW((void)tenant::drop_machine_instances(system, {n}),
               std::invalid_argument);  // out of range
  EXPECT_THROW((void)tenant::drop_machine_instances(system, {0, 0}),
               std::invalid_argument);  // duplicate
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < n; ++i) all.push_back(i);
  EXPECT_THROW((void)tenant::drop_machine_instances(system, all),
               std::invalid_argument);  // nothing left
}

TEST(DropMachineInstances, RejectsStarvingATaskType) {
  // One general machine plus one special machine that only accelerates the
  // special task type t1 (§III-C: only special machines may reject).  The
  // general task t0 runs nowhere else, so dropping the general machine's
  // sole instance must refuse; dropping the special one is fine (t1 still
  // has the general machine).
  std::vector<TaskType> task_types(2);
  task_types[0].name = "t0";
  task_types[1].name = "t1";
  task_types[1].category = Category::kSpecial;
  task_types[1].special_machine_type = 1;
  std::vector<MachineType> machine_types(2);
  machine_types[0].name = "m0";
  machine_types[1].name = "m1";
  machine_types[1].category = Category::kSpecial;
  std::vector<Machine> machines;
  machines.push_back(Machine{0, "m0 #1"});
  machines.push_back(Machine{1, "m1 #1"});
  const SystemModel system(
      std::move(task_types), std::move(machine_types), std::move(machines),
      Matrix::from_rows({{1.0, kIneligible}, {2.0, 3.0}}),
      Matrix::from_rows({{5.0, 5.0}, {5.0, 5.0}}));

  EXPECT_THROW((void)tenant::drop_machine_instances(system, {0}),
               std::invalid_argument);
  EXPECT_NO_THROW((void)tenant::drop_machine_instances(system, {1}));
}

TEST(RepairGenomes, SameProblemGenomesPassThroughValid) {
  const Scenario s =
      make_custom_scenario("custom", historical_system(), 20, 120.0, 7);
  const UtilityEnergyProblem problem(s.system, s.trace);
  Rng rng(11);
  std::vector<Allocation> genomes;
  for (int i = 0; i < 4; ++i) {
    genomes.push_back(random_allocation(problem, rng));
  }

  const std::vector<Allocation> repaired =
      tenant::repair_genomes(genomes, problem);
  ASSERT_EQ(repaired.size(), genomes.size());
  for (const Allocation& a : repaired) {
    EXPECT_EQ(a.size(), problem.genome_size());
    EXPECT_NO_THROW(problem.evaluator().validate(a));
  }
}

TEST(RepairGenomes, ResizesAcrossTraceShapes) {
  const SystemModel system = historical_system();
  const Scenario small = make_custom_scenario("custom", system, 12, 120.0, 7);
  const Scenario large = make_custom_scenario("custom", system, 18, 120.0, 7);
  const UtilityEnergyProblem small_problem(small.system, small.trace);
  const UtilityEnergyProblem large_problem(large.system, large.trace);

  Rng rng(3);
  std::vector<Allocation> genomes;
  for (int i = 0; i < 3; ++i) {
    genomes.push_back(random_allocation(small_problem, rng));
  }
  // Grow 12 -> 18 and shrink 18 -> 12: both directions end up valid.
  for (const Allocation& a :
       tenant::repair_genomes(genomes, large_problem)) {
    EXPECT_EQ(a.size(), 18U);
    EXPECT_NO_THROW(large_problem.evaluator().validate(a));
  }
  std::vector<Allocation> big;
  for (int i = 0; i < 3; ++i) {
    big.push_back(random_allocation(large_problem, rng));
  }
  for (const Allocation& a : tenant::repair_genomes(big, small_problem)) {
    EXPECT_EQ(a.size(), 12U);
    EXPECT_NO_THROW(small_problem.evaluator().validate(a));
  }
}

TEST(RepairGenomes, RemapsGenesAcrossDroppedMachines) {
  const Scenario base =
      make_custom_scenario("custom", historical_system(), 16, 120.0, 9);
  const UtilityEnergyProblem base_problem(base.system, base.trace);
  constexpr std::size_t kDropped = 1;
  const SystemModel survivor_system =
      tenant::drop_machine_instances(base.system, {kDropped});
  const UtilityEnergyProblem target(survivor_system, base.trace);
  const std::vector<int> map =
      tenant::machine_index_map(base.system.num_machines(), {kDropped});

  Rng rng(5);
  std::vector<Allocation> genomes;
  for (int i = 0; i < 6; ++i) {
    genomes.push_back(random_allocation(base_problem, rng));
  }
  // Force at least one gene onto the dropped machine.
  genomes[0].machine[0] = static_cast<int>(kDropped);

  const std::vector<Allocation> repaired =
      tenant::repair_genomes(genomes, target, map);
  ASSERT_FALSE(repaired.empty());
  for (const Allocation& a : repaired) {
    EXPECT_NO_THROW(target.evaluator().validate(a));
    for (const int m : a.machine) {
      EXPECT_GE(m, 0);
      EXPECT_LT(m, static_cast<int>(survivor_system.num_machines()));
    }
  }
}

TEST(RepairGenomes, DropsExactDuplicates) {
  const Scenario s =
      make_custom_scenario("custom", historical_system(), 10, 120.0, 2);
  const UtilityEnergyProblem problem(s.system, s.trace);
  Rng rng(8);
  const Allocation a = random_allocation(problem, rng);
  const std::vector<Allocation> repaired =
      tenant::repair_genomes({a, a, a}, problem);
  EXPECT_EQ(repaired.size(), 1U);
}

// --- The warm-dominance property, end to end through handle_allocate ----

std::vector<EUPoint> front_of(const util::JsonValue& doc) {
  const util::JsonValue* front = doc.get("front");
  EXPECT_NE(front, nullptr);
  std::vector<EUPoint> out;
  if (front == nullptr) return out;
  for (const util::JsonValue& p : front->array) {
    out.push_back({p.number_or("energy", 0.0), p.number_or("utility", 0.0)});
  }
  return out;
}

bool weakly_dominated(const EUPoint& c, const std::vector<EUPoint>& warm) {
  for (const EUPoint& w : warm) {
    if (w.energy <= c.energy && w.utility >= c.utility) return true;
  }
  return false;
}

TEST(WarmStart, WarmFrontWeaklyDominatesColdAcrossScenarios) {
  // One scenario per catalog family, each at the *same* small budget for
  // the cold and the warm run.
  const std::vector<std::string> scenarios = {
      R"({"name":"dataset1","seed":11})",
      R"({"name":"dataset2","seed":5})",
      R"({"name":"custom","tasks":30,"window_s":90,"seed":3})",
  };
  for (const std::string& scenario : scenarios) {
    MetricsRegistry metrics;
    tenant::ArchiveStore archive({}, &metrics);
    serve::HandlerContext ctx;
    ctx.metrics = &metrics;
    ctx.archive = &archive;

    const auto request = [&](bool with_tenant) {
      return serve::parse_request_text(
          std::string(R"({"type":"allocate","mode":"nsga2",)") +
          (with_tenant ? R"("tenant":"acme",)" : "") +
          R"("scenario":)" + scenario +
          R"(,"nsga2":{"population":16,"generations":6,)"
          R"("seeds":["min-energy","max-utility"]}})");
    };

    // Cold reference: no tenant, bit-identical to the offline study.
    const serve::HandleResult cold =
        serve::handle_allocate(request(false), ctx, std::nullopt, 0.0);
    ASSERT_EQ(cold.code, serve::kCodeOk) << scenario;
    const util::JsonValue cold_doc = util::parse_json(cold.payload);
    const std::vector<EUPoint> cold_front = front_of(cold_doc);
    ASSERT_FALSE(cold_front.empty()) << scenario;

    // Prime the archive (first tenant request runs cold but archives).
    const serve::HandleResult prime =
        serve::handle_allocate(request(true), ctx, std::nullopt, 0.0);
    ASSERT_EQ(prime.code, serve::kCodeOk) << scenario;
    const util::JsonValue prime_doc = util::parse_json(prime.payload);
    ASSERT_NE(prime_doc.get("warm"), nullptr) << scenario;
    EXPECT_FALSE(prime_doc.get("warm")->boolean) << scenario;

    // Warm run at the same budget.
    const serve::HandleResult warm =
        serve::handle_allocate(request(true), ctx, std::nullopt, 0.0);
    ASSERT_EQ(warm.code, serve::kCodeOk) << scenario;
    const util::JsonValue warm_doc = util::parse_json(warm.payload);
    ASSERT_NE(warm_doc.get("warm"), nullptr) << scenario;
    EXPECT_TRUE(warm_doc.get("warm")->boolean) << scenario;
    EXPECT_EQ(warm_doc.string_or("tenant", ""), "acme") << scenario;
    const std::vector<EUPoint> warm_front = front_of(warm_doc);
    ASSERT_FALSE(warm_front.empty()) << scenario;

    // The property: every cold point is weakly dominated by a warm point.
    for (const EUPoint& c : cold_front) {
      EXPECT_TRUE(weakly_dominated(c, warm_front))
          << scenario << " cold point (" << c.energy << ", " << c.utility
          << ") not weakly dominated by the warm front";
    }

    const MetricsSnapshot snap = metrics.snapshot();
    EXPECT_GE(snap.counters.at("archive.warm_hits"), 1U) << scenario;
    EXPECT_GE(snap.counters.at("nsga2.warm_seeds"), 1U) << scenario;
  }
}

}  // namespace
}  // namespace eus
