#include "des/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace eus {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_EQ(q.run(), 0U);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  EXPECT_EQ(q.run(), 3U);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&fired, i] { fired.push_back(i); });
  }
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMore) {
  EventQueue q;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(q.now());
    if (times.size() < 4) q.schedule(q.now() + 1.5, chain);
  };
  q.schedule(0.5, chain);
  EXPECT_EQ(q.run(), 4U);
  EXPECT_EQ(times, (std::vector<double>{0.5, 2.0, 3.5, 5.0}));
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule(5.0, [&] {
    EXPECT_THROW(q.schedule(4.0, [] {}), std::invalid_argument);
  });
  q.run();
}

TEST(EventQueue, SchedulingAtNowIsAllowed) {
  EventQueue q;
  int count = 0;
  q.schedule(2.0, [&] {
    if (++count < 3) q.schedule(q.now(), [&] { ++count; });
  });
  q.run();
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  q.schedule(3.0, [&] { fired.push_back(3); });
  EXPECT_EQ(q.run_until(2.0), 2U);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.pending(), 1U);
  EXPECT_EQ(q.run(), 1U);
  EXPECT_EQ(fired.size(), 3U);
}

TEST(EventQueue, PendingCountTracksQueue) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.pending(), 2U);
  q.run();
  EXPECT_EQ(q.pending(), 0U);
}

}  // namespace
}  // namespace eus
