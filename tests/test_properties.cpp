// Parameterized property tests: invariants that must hold for *every* seed
// / configuration, swept with TEST_P / INSTANTIATE_TEST_SUITE_P.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "core/nsga2.hpp"
#include "core/operators.hpp"
#include "core/study.hpp"
#include "data/historical.hpp"
#include "online/simulator.hpp"
#include "pareto/archive.hpp"
#include "pareto/front.hpp"
#include "pareto/metrics.hpp"
#include "sched/bounds.hpp"
#include "workload/scenarios.hpp"
#include "workload/trace_io.hpp"

namespace eus {
namespace {

// ---------------------------------------------------------------------------
// Schedule invariants under random allocations.

class ScheduleInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleInvariants, HoldForRandomAllocations) {
  const std::uint64_t seed = GetParam();
  const Scenario s =
      make_custom_scenario("prop", historical_system(), 60, 600.0, seed);
  const UtilityEnergyProblem problem(s.system, s.trace);
  const Evaluator& ev = problem.evaluator();

  Rng rng(seed * 31 + 7);
  for (int round = 0; round < 5; ++round) {
    const Allocation a = random_allocation(problem, rng);
    ev.validate(a);
    const auto [total, detail] = ev.detail(a);

    double makespan = 0.0;
    double utility = 0.0;
    double energy = 0.0;
    std::vector<std::vector<std::pair<double, double>>> busy(
        s.system.num_machines());
    for (std::size_t i = 0; i < detail.size(); ++i) {
      const auto& o = detail[i];
      // Start-after-arrival rule (§IV-D).
      EXPECT_GE(o.start, s.trace.tasks()[i].arrival);
      EXPECT_GE(o.finish, o.start);
      EXPECT_GE(o.utility, 0.0);
      EXPECT_GT(o.energy, 0.0);
      makespan = std::max(makespan, o.finish);
      utility += o.utility;
      energy += o.energy;
      busy[static_cast<std::size_t>(o.machine)].push_back(
          {o.start, o.finish});
    }
    EXPECT_DOUBLE_EQ(total.makespan, makespan);
    EXPECT_NEAR(total.utility, utility, 1e-9);
    EXPECT_NEAR(total.energy, energy, 1e-9);
    EXPECT_LE(total.utility, s.trace.utility_upper_bound() + 1e-9);

    // No machine ever runs two tasks at once.
    for (auto& intervals : busy) {
      std::sort(intervals.begin(), intervals.end());
      for (std::size_t k = 1; k < intervals.size(); ++k) {
        EXPECT_GE(intervals[k].first, intervals[k - 1].second - 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleInvariants,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Pareto front extraction vs brute force.

class ParetoOracle : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParetoOracle, MatchesBruteForce) {
  const std::size_t n = GetParam();
  Rng rng(n * 1000 + 3);
  std::vector<EUPoint> pts(n);
  for (auto& p : pts) {
    // Coarse grid so duplicates and ties occur.
    p.energy = static_cast<double>(rng.below(12));
    p.utility = static_cast<double>(rng.below(12));
  }
  const auto front = nondominated_indices(pts);
  const std::set<std::size_t> in_front(front.begin(), front.end());
  for (std::size_t i = 0; i < n; ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (dominates(pts[j], pts[i])) dominated = true;
    }
    EXPECT_EQ(in_front.count(i) > 0, !dominated) << "point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParetoOracle,
                         ::testing::Values(1, 2, 3, 8, 32, 100, 333));

// ---------------------------------------------------------------------------
// Crossover conservation across seeds.

class CrossoverConservation
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossoverConservation, GenePairsConserved) {
  const Scenario s = make_custom_scenario("xo", historical_system(), 30,
                                          600.0, GetParam());
  const UtilityEnergyProblem problem(s.system, s.trace);
  Rng rng(GetParam() + 99);
  Allocation a = random_allocation(problem, rng);
  Allocation b = random_allocation(problem, rng);

  // Multiset of (machine, order) per gene position across both parents.
  const auto signature = [](const Allocation& x, const Allocation& y) {
    std::multiset<std::tuple<std::size_t, int, int>> sig;
    for (std::size_t i = 0; i < x.size(); ++i) {
      sig.insert({i, x.machine[i], x.order[i]});
      sig.insert({i, y.machine[i], y.order[i]});
    }
    return sig;
  };
  const auto before = signature(a, b);
  for (int round = 0; round < 10; ++round) crossover(a, b, rng);
  EXPECT_EQ(signature(a, b), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossoverConservation,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// NSGA-II monotone hypervolume across seeds and population sizes.

struct GaParam {
  std::uint64_t seed;
  std::size_t population;
};

class GaMonotone : public ::testing::TestWithParam<GaParam> {};

TEST_P(GaMonotone, HypervolumeNeverDecreases) {
  const auto [seed, population] = GetParam();
  const Scenario s =
      make_custom_scenario("ga", historical_system(), 40, 600.0, seed);
  const UtilityEnergyProblem problem(s.system, s.trace);
  Nsga2Config cfg;
  cfg.population_size = population;
  cfg.seed = seed;
  Nsga2 ga(problem, cfg);
  ga.initialize({});
  const EUPoint ref{1e12, -1.0};
  double previous = hypervolume(ga.front_points(), ref);
  for (int g = 0; g < 12; ++g) {
    ga.iterate(1);
    const double current = hypervolume(ga.front_points(), ref);
    EXPECT_GE(current, previous - 1e-6);
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GaMonotone,
                         ::testing::Values(GaParam{1, 8}, GaParam{2, 16},
                                           GaParam{3, 32}, GaParam{4, 16},
                                           GaParam{5, 8}));

// ---------------------------------------------------------------------------
// Mutation probability sweep: population stays valid at any rate.

class MutationSweep : public ::testing::TestWithParam<double> {};

TEST_P(MutationSweep, PopulationsRemainValid) {
  const Scenario s =
      make_custom_scenario("mut", historical_system(), 30, 600.0, 9);
  const UtilityEnergyProblem problem(s.system, s.trace);
  Nsga2Config cfg;
  cfg.population_size = 10;
  cfg.mutation_probability = GetParam();
  cfg.seed = 5;
  Nsga2 ga(problem, cfg);
  ga.initialize({});
  ga.iterate(10);
  const Evaluator& ev = problem.evaluator();
  for (const auto& ind : ga.population()) {
    EXPECT_NO_THROW(ev.validate(ind.genome));
    // Cached objectives match re-evaluation (no staleness).
    const EUPoint fresh = problem.evaluate(ind.genome);
    EXPECT_DOUBLE_EQ(fresh.energy, ind.objectives.energy);
    EXPECT_DOUBLE_EQ(fresh.utility, ind.objectives.utility);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, MutationSweep,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0));

// ---------------------------------------------------------------------------
// Hypervolume properties on random fronts.

class HypervolumeProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HypervolumeProps, SubsetNeverExceedsSuperset) {
  Rng rng(GetParam());
  std::vector<EUPoint> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform(1.0, 100.0), rng.uniform(0.0, 50.0)});
  }
  const EUPoint ref{101.0, -1.0};
  const double full = hypervolume(pts, ref);
  std::vector<EUPoint> subset(pts.begin(), pts.begin() + 20);
  EXPECT_LE(hypervolume(subset, ref), full + 1e-9);
  // Front extraction does not change the hypervolume.
  EXPECT_NEAR(hypervolume(pareto_front(pts), ref), full, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypervolumeProps,
                         ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// Online budget invariants across budgets and seeds.

struct BudgetParam {
  std::uint64_t seed;
  double fraction;  // of the unconstrained max-utility energy
};

class OnlineBudgetInvariants : public ::testing::TestWithParam<BudgetParam> {};

TEST_P(OnlineBudgetInvariants, BudgetNeverExceededWithDropping) {
  const auto [seed, fraction] = GetParam();
  const Scenario s =
      make_custom_scenario("ob", historical_system(), 70, 700.0, seed);
  OnlineMaxUtility max_utility;
  const double ceiling =
      simulate_online(s.system, s.trace, max_utility).energy;

  BudgetPacedUtility paced;
  OnlineOptions opts;
  opts.energy_budget = fraction * ceiling;
  opts.allow_dropping = true;
  const OnlineResult r = simulate_online(s.system, s.trace, paced, opts);
  EXPECT_LE(r.energy, opts.energy_budget + 1e-9);
  EXPECT_FALSE(r.budget_overrun);
  EXPECT_LE(r.utility, s.trace.utility_upper_bound() + 1e-9);
  // Accounting closes: outcomes sum to the totals.
  double utility = 0.0, energy = 0.0;
  for (const auto& o : r.outcomes) {
    utility += o.utility;
    energy += o.energy;
  }
  EXPECT_NEAR(utility, r.utility, 1e-9);
  EXPECT_NEAR(energy, r.energy, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OnlineBudgetInvariants,
    ::testing::Values(BudgetParam{1, 0.3}, BudgetParam{2, 0.5},
                      BudgetParam{3, 0.7}, BudgetParam{4, 0.9},
                      BudgetParam{5, 1.1}));

// ---------------------------------------------------------------------------
// Archive equals batch front extraction on arbitrary streams.

class ArchiveOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArchiveOracle, MatchesBatchFront) {
  Rng rng(GetParam());
  ParetoArchive archive;
  std::vector<EUPoint> all;
  for (int i = 0; i < 400; ++i) {
    const EUPoint p{static_cast<double>(rng.below(40)),
                    static_cast<double>(rng.below(40))};
    all.push_back(p);
    archive.insert(p);
  }
  std::vector<EUPoint> expected = pareto_front(all);
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(archive.points(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveOracle,
                         ::testing::Values(7, 14, 21, 28));

// ---------------------------------------------------------------------------
// Trace serialization round-trips arbitrary generated traces.

class TraceIoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceIoFuzz, RoundTripPreservesEvaluation) {
  // The real invariant: any allocation evaluates identically against the
  // original and the round-tripped trace.
  const Scenario s = make_custom_scenario("tio", historical_system(), 40,
                                          500.0, GetParam());
  const Trace reloaded = trace_from_string(trace_to_string(s.trace));

  const UtilityEnergyProblem original(s.system, s.trace);
  const UtilityEnergyProblem parsed(s.system, reloaded);
  Rng rng(GetParam() + 3);
  for (int round = 0; round < 5; ++round) {
    const Allocation a = random_allocation(original, rng);
    const EUPoint x = original.evaluate(a);
    const EUPoint y = parsed.evaluate(a);
    EXPECT_NEAR(x.energy, y.energy, 1e-6);
    EXPECT_NEAR(x.utility, y.utility, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIoFuzz, ::testing::Values(3, 6, 9, 12));

// ---------------------------------------------------------------------------
// Bounds contain everything any algorithm produces.

class BoundsContainment : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundsContainment, SeedsGaAndOnlineAllInsideBounds) {
  const Scenario s = make_custom_scenario("bounds", historical_system(), 60,
                                          600.0, GetParam());
  const ObjectiveBounds bounds = compute_bounds(s.system, s.trace);
  const UtilityEnergyProblem problem(s.system, s.trace);

  const auto check = [&](const EUPoint& p) {
    EXPECT_GE(p.energy, bounds.energy_lower - 1e-9);
    EXPECT_LE(p.utility, bounds.utility_upper_contention_free + 1e-9);
  };
  for (const SeedHeuristic h : all_seed_heuristics()) {
    check(problem.evaluate(make_seed(h, s.system, s.trace)));
  }
  Nsga2Config cfg;
  cfg.population_size = 12;
  cfg.seed = GetParam();
  Nsga2 ga(problem, cfg);
  ga.initialize({});
  ga.iterate(15);
  for (const auto& p : ga.front_points()) check(p);

  OnlineMaxUtility policy;
  const OnlineResult r = simulate_online(s.system, s.trace, policy);
  check({r.energy, r.utility});
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsContainment,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace eus
