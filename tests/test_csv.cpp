#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

namespace eus {
namespace {

std::string write_rows(const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream os;
  CsvWriter w(os);
  for (const auto& r : rows) w.write_row(r);
  return os.str();
}

TEST(CsvWriter, PlainRow) {
  EXPECT_EQ(write_rows({{"a", "b", "c"}}), "a,b,c\n");
}

TEST(CsvWriter, QuotesCommas) {
  EXPECT_EQ(write_rows({{"a,b", "c"}}), "\"a,b\",c\n");
}

TEST(CsvWriter, EscapesEmbeddedQuotes) {
  EXPECT_EQ(write_rows({{"say \"hi\""}}), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  EXPECT_EQ(write_rows({{"two\nlines"}}), "\"two\nlines\"\n");
}

TEST(CsvWriter, NumericRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row_numeric({1.5, 2.25}, 2);
  EXPECT_EQ(os.str(), "1.50,2.25\n");
}

TEST(ParseCsv, SimpleRows) {
  const auto rows = parse_csv("a,b\nc,d\n");
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsv, NoTrailingNewline) {
  const auto rows = parse_csv("a,b");
  ASSERT_EQ(rows.size(), 1U);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(ParseCsv, CrLfLineEndings) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(ParseCsv, QuotedFieldWithComma) {
  const auto rows = parse_csv("\"a,b\",c\n");
  ASSERT_EQ(rows.size(), 1U);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "c");
}

TEST(ParseCsv, DoubledQuoteInsideQuoted) {
  const auto rows = parse_csv("\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1U);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(ParseCsv, EmptyCells) {
  const auto rows = parse_csv("a,,c\n,\n");
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", ""}));
}

TEST(ParseCsv, EmptyInput) {
  EXPECT_TRUE(parse_csv("").empty());
}

TEST(ParseCsv, RoundTripsWriterOutput) {
  const std::vector<std::vector<std::string>> original = {
      {"plain", "with,comma", "with \"quote\""},
      {"second\nrow", "", "x"},
  };
  const auto parsed = parse_csv(write_rows(original));
  EXPECT_EQ(parsed, original);
}

TEST(FileIo, RoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "eus_csv_test.txt";
  write_file(path, "hello\nworld");
  EXPECT_EQ(read_file(path), "hello\nworld");
  std::filesystem::remove(path);
}

TEST(FileIo, ReadMissingThrows) {
  EXPECT_THROW(read_file("/nonexistent/truly/missing.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace eus
