#include "synth/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "synth/gram_charlier.hpp"
#include "synth/moments.hpp"
#include "util/rng.hpp"

namespace eus {
namespace {

TEST(TabulatedSampler, RejectsEmptyRange) {
  const auto flat = [](double) { return 1.0; };
  EXPECT_THROW(TabulatedSampler(flat, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TabulatedSampler(flat, 2.0, 1.0), std::invalid_argument);
}

TEST(TabulatedSampler, RejectsTooFewPoints) {
  const auto flat = [](double) { return 1.0; };
  EXPECT_THROW(TabulatedSampler(flat, 0.0, 1.0, 1), std::invalid_argument);
}

TEST(TabulatedSampler, RejectsZeroMass) {
  const auto zero = [](double) { return 0.0; };
  EXPECT_THROW(TabulatedSampler(zero, 0.0, 1.0), std::invalid_argument);
}

TEST(TabulatedSampler, RejectsNegativeDensity) {
  const auto bad = [](double x) { return x - 0.5; };
  EXPECT_THROW(TabulatedSampler(bad, 0.0, 1.0), std::invalid_argument);
}

TEST(TabulatedSampler, QuantileEndpoints) {
  const auto flat = [](double) { return 1.0; };
  const TabulatedSampler s(flat, 2.0, 6.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 6.0);
  EXPECT_DOUBLE_EQ(s.lo(), 2.0);
  EXPECT_DOUBLE_EQ(s.hi(), 6.0);
}

TEST(TabulatedSampler, QuantileClampsOutOfRangeU) {
  const auto flat = [](double) { return 1.0; };
  const TabulatedSampler s(flat, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.5), 1.0);
}

TEST(TabulatedSampler, UniformDensityGivesLinearQuantile) {
  const auto flat = [](double) { return 3.7; };  // unnormalized is fine
  const TabulatedSampler s(flat, 0.0, 10.0);
  for (double u = 0.0; u <= 1.0; u += 0.125) {
    EXPECT_NEAR(s.quantile(u), 10.0 * u, 1e-9);
  }
}

TEST(TabulatedSampler, TriangularDensityMedian) {
  // f(x) = x on [0,1]: CDF = x^2, median at sqrt(0.5).
  const auto tri = [](double x) { return x; };
  const TabulatedSampler s(tri, 0.0, 1.0, 8192);
  EXPECT_NEAR(s.quantile(0.5), std::sqrt(0.5), 1e-4);
  EXPECT_NEAR(s.quantile(0.25), 0.5, 1e-4);
}

TEST(TabulatedSampler, SampleMatchesTargetMoments) {
  Moments target{};
  target.mean = 50.0;
  target.stddev = 10.0;
  target.variance = 100.0;
  target.cv = 0.2;
  target.skewness = 0.5;
  target.kurtosis = 3.4;
  const GramCharlierPdf pdf(target);
  const TabulatedSampler s([&](double x) { return pdf.density(x); }, 1.0,
                           100.0, 4096);
  Rng rng(42);
  std::vector<double> draws(100000);
  for (double& d : draws) d = s.sample([&] { return rng.uniform(); });
  const Moments got = compute_moments(draws);
  EXPECT_NEAR(got.mean, 50.0, 0.3);
  EXPECT_NEAR(got.stddev, 10.0, 0.3);
  EXPECT_NEAR(got.skewness, 0.5, 0.1);
  EXPECT_NEAR(got.kurtosis, 3.4, 0.25);
}

TEST(TabulatedSampler, SamplesStayWithinSupport) {
  const auto flat = [](double) { return 1.0; };
  const TabulatedSampler s(flat, 5.0, 7.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = s.sample([&] { return rng.uniform(); });
    EXPECT_GE(v, 5.0);
    EXPECT_LE(v, 7.0);
  }
}

}  // namespace
}  // namespace eus
