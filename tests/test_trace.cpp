#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/historical.hpp"
#include "tuf/builder.hpp"

namespace eus {
namespace {

TufClassLibrary tiny_library() {
  std::vector<TufClass> classes;
  classes.push_back({"hi", 1.0, make_hard_deadline_tuf(10.0, 100.0)});
  classes.push_back({"lo", 1.0, make_hard_deadline_tuf(2.0, 100.0)});
  return TufClassLibrary(std::move(classes));
}

TEST(Trace, BasicAccessors) {
  const Trace trace({{0, 1.0, 0}, {1, 2.0, 1}}, tiny_library());
  EXPECT_EQ(trace.size(), 2U);
  EXPECT_EQ(trace.task(1).type, 1U);
  EXPECT_DOUBLE_EQ(trace.window(), 2.0);
}

TEST(Trace, EmptyTraceAllowed) {
  const Trace trace({}, tiny_library());
  EXPECT_EQ(trace.size(), 0U);
  EXPECT_DOUBLE_EQ(trace.window(), 0.0);
  EXPECT_DOUBLE_EQ(trace.utility_upper_bound(), 0.0);
}

TEST(Trace, RejectsUnsortedArrivals) {
  EXPECT_THROW(Trace({{0, 5.0, 0}, {0, 2.0, 0}}, tiny_library()),
               std::invalid_argument);
}

TEST(Trace, RejectsNegativeArrival) {
  EXPECT_THROW(Trace({{0, -1.0, 0}}, tiny_library()), std::invalid_argument);
}

TEST(Trace, RejectsUnknownTufClass) {
  EXPECT_THROW(Trace({{0, 1.0, 7}}, tiny_library()), std::invalid_argument);
}

TEST(Trace, TiedArrivalsAllowed) {
  const Trace trace({{0, 1.0, 0}, {1, 1.0, 1}}, tiny_library());
  EXPECT_EQ(trace.size(), 2U);
}

TEST(Trace, TufOfReturnsAssignedClass) {
  const Trace trace({{0, 0.0, 1}}, tiny_library());
  EXPECT_DOUBLE_EQ(trace.tuf_of(0).value(0.0), 2.0);
}

TEST(Trace, UtilityUpperBoundSumsInstantCompletions) {
  const Trace trace({{0, 0.0, 0}, {0, 1.0, 1}, {0, 2.0, 0}}, tiny_library());
  EXPECT_DOUBLE_EQ(trace.utility_upper_bound(), 10.0 + 2.0 + 10.0);
}

TEST(Trace, ValidateAgainstAcceptsHistorical) {
  const SystemModel sys = historical_system();
  const Trace trace({{0, 0.0, 0}, {4, 1.0, 1}}, tiny_library());
  EXPECT_NO_THROW(trace.validate_against(sys));
}

TEST(Trace, ValidateAgainstRejectsUnknownType) {
  const SystemModel sys = historical_system();
  const Trace trace({{17, 0.0, 0}}, tiny_library());
  EXPECT_THROW(trace.validate_against(sys), std::invalid_argument);
}

}  // namespace
}  // namespace eus
