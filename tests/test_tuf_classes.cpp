#include "tuf/classes.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "tuf/builder.hpp"

namespace eus {
namespace {

TufClassLibrary two_class_library(double w1, double w2) {
  std::vector<TufClass> classes;
  classes.push_back({"a", w1, make_hard_deadline_tuf(1.0, 10.0)});
  classes.push_back({"b", w2, make_hard_deadline_tuf(2.0, 10.0)});
  return TufClassLibrary(std::move(classes));
}

TEST(TufClassLibrary, RejectsEmpty) {
  EXPECT_THROW(TufClassLibrary({}), std::invalid_argument);
}

TEST(TufClassLibrary, RejectsNonPositiveWeight) {
  std::vector<TufClass> classes;
  classes.push_back({"a", 0.0, make_hard_deadline_tuf(1.0, 10.0)});
  EXPECT_THROW(TufClassLibrary(std::move(classes)), std::invalid_argument);
}

TEST(TufClassLibrary, SampleIndexInRange) {
  const TufClassLibrary lib = two_class_library(1.0, 1.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(lib.sample_index(rng), 2U);
  }
}

TEST(TufClassLibrary, SampleFollowsWeights) {
  const TufClassLibrary lib = two_class_library(3.0, 1.0);
  Rng rng(2);
  int first = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (lib.sample_index(rng) == 0) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / n, 0.75, 0.01);
}

TEST(TufClassLibrary, SampleReturnsFunctionOfDrawnClass) {
  const TufClassLibrary lib = two_class_library(1.0, 1e-9);
  Rng rng(3);
  // Practically always class "a" (priority 1.0).
  EXPECT_DOUBLE_EQ(lib.sample(rng).value(0.0), 1.0);
}

TEST(TufClassLibrary, AtAccessesByIndex) {
  const TufClassLibrary lib = two_class_library(1.0, 1.0);
  EXPECT_DOUBLE_EQ(lib.at(1).value(0.0), 2.0);
  EXPECT_THROW((void)lib.at(2), std::out_of_range);
}

TEST(StandardTufClasses, RejectsBadTimeScale) {
  EXPECT_THROW(standard_tuf_classes(0.0), std::invalid_argument);
  EXPECT_THROW(standard_tuf_classes(-1.0), std::invalid_argument);
}

TEST(StandardTufClasses, HasMultipleDistinctClasses) {
  const TufClassLibrary lib = standard_tuf_classes(1000.0);
  EXPECT_GE(lib.classes().size(), 4U);
  std::map<std::string, int> names;
  for (const auto& c : lib.classes()) ++names[c.name];
  for (const auto& [name, count] : names) EXPECT_EQ(count, 1) << name;
}

TEST(StandardTufClasses, AllFunctionsMonotone) {
  const TufClassLibrary lib = standard_tuf_classes(500.0);
  for (const auto& c : lib.classes()) {
    double prev = c.function.value(0.0);
    for (double t = 0.0; t <= 2000.0; t += 5.0) {
      const double v = c.function.value(t);
      EXPECT_LE(v, prev + 1e-9) << c.name << " at t=" << t;
      prev = v;
    }
  }
}

TEST(StandardTufClasses, HorizonsScaleWithTimeScale) {
  const TufClassLibrary small = standard_tuf_classes(100.0);
  const TufClassLibrary large = standard_tuf_classes(1000.0);
  for (std::size_t i = 0; i < small.classes().size(); ++i) {
    EXPECT_NEAR(large.at(i).horizon(), 10.0 * small.at(i).horizon(), 1e-6);
  }
}

TEST(StandardTufClasses, AllEventuallyWorthless) {
  // Every standard class decays to zero — the workload has no task that
  // retains value forever (matches the paper's decaying-utility model).
  const TufClassLibrary lib = standard_tuf_classes(100.0);
  for (const auto& c : lib.classes()) {
    EXPECT_DOUBLE_EQ(c.function.residual(), 0.0) << c.name;
  }
}

}  // namespace
}  // namespace eus
