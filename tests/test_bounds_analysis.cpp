#include <gtest/gtest.h>

#include "core/nsga2.hpp"
#include "core/operators.hpp"
#include "data/historical.hpp"
#include "heuristics/seeds.hpp"
#include "sched/bounds.hpp"
#include "tuf/builder.hpp"
#include "workload/analysis.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary library() {
  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(10.0, 0.0, 1500.0)});
  classes.push_back({"h", 1.0, make_hard_deadline_tuf(20.0, 1200.0)});
  return TufClassLibrary(std::move(classes));
}

struct Fixture {
  SystemModel system = historical_system();
  Trace trace;

  explicit Fixture(std::size_t n = 80)
      : trace(make_trace(system, n)) {}

  static Trace make_trace(const SystemModel& sys, std::size_t n) {
    Rng rng(71);
    TraceConfig cfg;
    cfg.num_tasks = n;
    cfg.window_seconds = 900.0;
    return generate_trace(sys, library(), cfg, rng);
  }
};

TEST(Bounds, EnergyLowerBoundMatchesMinEnergySeed) {
  const Fixture fx;
  const ObjectiveBounds b = compute_bounds(fx.system, fx.trace);
  const Evaluator ev(fx.system, fx.trace);
  const double seed_energy =
      ev.evaluate(min_energy_allocation(fx.system, fx.trace)).energy;
  EXPECT_NEAR(b.energy_lower, seed_energy, 1e-9);
}

TEST(Bounds, UtilityBoundsOrdered) {
  const Fixture fx;
  const ObjectiveBounds b = compute_bounds(fx.system, fx.trace);
  EXPECT_LE(b.utility_upper_contention_free, b.utility_upper_instant);
  EXPECT_GT(b.utility_upper_contention_free, 0.0);
  EXPECT_DOUBLE_EQ(b.utility_upper_instant, fx.trace.utility_upper_bound());
}

TEST(Bounds, NoScheduleExceedsContentionFreeBound) {
  const Fixture fx;
  const ObjectiveBounds b = compute_bounds(fx.system, fx.trace);
  const UtilityEnergyProblem problem(fx.system, fx.trace);
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    const EUPoint p = problem.evaluate(random_allocation(problem, rng));
    EXPECT_LE(p.utility, b.utility_upper_contention_free + 1e-9);
    EXPECT_GE(p.energy, b.energy_lower - 1e-9);
  }
  // Evolved fronts obey them too.
  Nsga2Config cfg;
  cfg.population_size = 20;
  cfg.seed = 4;
  Nsga2 ga(problem, cfg);
  ga.initialize({});
  ga.iterate(40);
  for (const auto& p : ga.front_points()) {
    EXPECT_LE(p.utility, b.utility_upper_contention_free + 1e-9);
    EXPECT_GE(p.energy, b.energy_lower - 1e-9);
  }
}

TEST(Bounds, EmptyTraceAllZero) {
  const SystemModel sys = historical_system();
  const Trace trace({}, library());
  const ObjectiveBounds b = compute_bounds(sys, trace);
  EXPECT_DOUBLE_EQ(b.energy_lower, 0.0);
  EXPECT_DOUBLE_EQ(b.utility_upper_instant, 0.0);
  EXPECT_DOUBLE_EQ(b.utility_upper_contention_free, 0.0);
}

TEST(Analysis, CountsAndWindow) {
  const Fixture fx;
  const WorkloadAnalysis a = analyze_workload(fx.system, fx.trace);
  EXPECT_EQ(a.tasks, 80U);
  EXPECT_LE(a.window, 900.0);
  std::size_t total = 0;
  for (const auto c : a.type_counts) total += c;
  EXPECT_EQ(total, 80U);
}

TEST(Analysis, PoissonInterarrivalCvNearOne) {
  const SystemModel sys = historical_system();
  Rng rng(81);
  TraceConfig cfg;
  cfg.num_tasks = 5000;
  cfg.window_seconds = 10000.0;
  const Trace trace = generate_trace(sys, library(), cfg, rng);
  const WorkloadAnalysis a = analyze_workload(sys, trace);
  EXPECT_NEAR(a.cv_interarrival, 1.0, 0.1);
  EXPECT_NEAR(a.mean_interarrival, 10000.0 / 5000.0, 0.1);
}

TEST(Analysis, OfferedLoadMatchesHandComputation) {
  // Single-task trace: offered load = mean ETC / (machines * window).
  const SystemModel sys = historical_system();
  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(1.0, 0.0, 100.0)});
  const TufClassLibrary lib(std::move(classes));
  const Trace trace({{0, 0.0, 0}, {0, 100.0, 0}}, lib);
  const WorkloadAnalysis a = analyze_workload(sys, trace);
  const double mean_etc = sys.etc().row_mean_finite(0);
  EXPECT_NEAR(a.mean_task_work, mean_etc, 1e-9);
  EXPECT_NEAR(a.offered_load, 2.0 * mean_etc / (9.0 * 100.0), 1e-9);
}

TEST(Analysis, EmptyTraceSafe) {
  const SystemModel sys = historical_system();
  const Trace trace({}, library());
  const WorkloadAnalysis a = analyze_workload(sys, trace);
  EXPECT_EQ(a.tasks, 0U);
  EXPECT_DOUBLE_EQ(a.offered_load, 0.0);
}

TEST(Analysis, ReportMentionsTypesAndClasses) {
  const Fixture fx;
  const std::string report = workload_report(fx.system, fx.trace);
  EXPECT_NE(report.find("offered load"), std::string::npos);
  EXPECT_NE(report.find("C-Ray"), std::string::npos);
  EXPECT_NE(report.find("max utility at stake"), std::string::npos);
}

TEST(Analysis, PaperScenariosAreOverloaded) {
  // The paper's regime: far more work than the window can hold, which is
  // what makes the utility/energy trade-off bite.
  const SystemModel sys = historical_system();
  Rng rng(91);
  TraceConfig cfg;
  cfg.num_tasks = 250;
  cfg.window_seconds = 900.0;
  const Trace trace = generate_trace(sys, library(), cfg, rng);
  const WorkloadAnalysis a = analyze_workload(sys, trace);
  EXPECT_GT(a.offered_load, 1.5);
}

}  // namespace
}  // namespace eus
