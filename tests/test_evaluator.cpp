#include "sched/evaluator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "tuf/builder.hpp"

namespace eus {
namespace {

// Two general machines: machine 0 fast & hungry (10 s, 100 W), machine 1
// slow & frugal (20 s, 40 W), single task type.
SystemModel two_machine_system() {
  std::vector<TaskType> tasks = {{"t", Category::kGeneral, -1}};
  std::vector<MachineType> machines = {{"fast", Category::kGeneral},
                                       {"slow", Category::kGeneral}};
  std::vector<Machine> instances = {{0, "fast"}, {1, "slow"}};
  const Matrix etc = Matrix::from_rows({{10.0, 20.0}});
  const Matrix epc = Matrix::from_rows({{100.0, 40.0}});
  return SystemModel(tasks, machines, instances, etc, epc);
}

TufClassLibrary linear_library() {
  // Utility 100 decaying linearly to 0 over 100 s from arrival.
  std::vector<TufClass> classes;
  classes.push_back({"linear", 1.0, make_linear_decay_tuf(100.0, 0.0, 100.0)});
  return TufClassLibrary(std::move(classes));
}

Trace three_task_trace() {
  return Trace({{0, 0.0, 0}, {0, 5.0, 0}, {0, 50.0, 0}}, linear_library());
}

Allocation all_on(int machine, std::size_t n) {
  Allocation a;
  a.machine.assign(n, machine);
  a.order.resize(n);
  for (std::size_t i = 0; i < n; ++i) a.order[i] = static_cast<int>(i);
  return a;
}

TEST(Evaluator, SingleTaskTimeline) {
  const SystemModel sys = two_machine_system();
  const Trace trace({{0, 3.0, 0}}, linear_library());
  const Evaluator ev(sys, trace);
  const auto [total, detail] = ev.detail(all_on(0, 1));
  EXPECT_DOUBLE_EQ(detail[0].start, 3.0);   // waits for arrival
  EXPECT_DOUBLE_EQ(detail[0].finish, 13.0);
  EXPECT_DOUBLE_EQ(detail[0].energy, 10.0 * 100.0);
  EXPECT_DOUBLE_EQ(detail[0].utility, 100.0 * (1.0 - 10.0 / 100.0));
  EXPECT_DOUBLE_EQ(total.makespan, 13.0);
}

TEST(Evaluator, QueueingSequencesByOrder) {
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  const auto [total, detail] = ev.detail(all_on(0, 3));
  // Order 0,1,2: back-to-back except task 2 waits for its arrival at 50.
  EXPECT_DOUBLE_EQ(detail[0].finish, 10.0);
  EXPECT_DOUBLE_EQ(detail[1].start, 10.0);
  EXPECT_DOUBLE_EQ(detail[1].finish, 20.0);
  EXPECT_DOUBLE_EQ(detail[2].start, 50.0);
  EXPECT_DOUBLE_EQ(detail[2].finish, 60.0);
  EXPECT_DOUBLE_EQ(total.energy, 3.0 * 1000.0);
  EXPECT_DOUBLE_EQ(total.makespan, 60.0);
}

TEST(Evaluator, OrderOverridesArrivalSequence) {
  // Reverse the global scheduling order: the machine idles until the last
  // arrival because the highest-priority (lowest order) task arrives last
  // (§IV-D: "the machine sits idle until this condition is met").
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  Allocation a = all_on(0, 3);
  a.order = {2, 1, 0};
  const auto [total, detail] = ev.detail(a);
  EXPECT_DOUBLE_EQ(detail[2].start, 50.0);
  EXPECT_DOUBLE_EQ(detail[2].finish, 60.0);
  EXPECT_DOUBLE_EQ(detail[1].start, 60.0);
  EXPECT_DOUBLE_EQ(detail[0].start, 70.0);
  EXPECT_DOUBLE_EQ(total.makespan, 80.0);
}

TEST(Evaluator, TieBreaksOnTaskIndex) {
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  Allocation a = all_on(0, 3);
  a.order = {0, 0, 0};  // duplicated orders: crossover can produce these
  const auto [total, detail] = ev.detail(a);
  EXPECT_DOUBLE_EQ(detail[0].start, 0.0);
  EXPECT_DOUBLE_EQ(detail[1].start, 10.0);
  EXPECT_DOUBLE_EQ(detail[2].start, 50.0);
  EXPECT_GT(total.utility, 0.0);
}

TEST(Evaluator, ParallelMachinesIndependentQueues) {
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  Allocation a = all_on(0, 3);
  a.machine = {0, 1, 0};
  const auto [total, detail] = ev.detail(a);
  EXPECT_DOUBLE_EQ(detail[0].finish, 10.0);
  EXPECT_DOUBLE_EQ(detail[1].start, 5.0);    // own queue on machine 1
  EXPECT_DOUBLE_EQ(detail[1].finish, 25.0);
  EXPECT_DOUBLE_EQ(detail[2].start, 50.0);
  EXPECT_DOUBLE_EQ(total.energy, 1000.0 + 800.0 + 1000.0);
}

TEST(Evaluator, EnergyIndependentOfTiming) {
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  Allocation a = all_on(0, 3);
  Allocation b = all_on(0, 3);
  b.order = {2, 0, 1};
  EXPECT_DOUBLE_EQ(ev.evaluate(a).energy, ev.evaluate(b).energy);
}

TEST(Evaluator, UtilityDecaysWithLateness) {
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  const Evaluation fast = ev.evaluate(all_on(0, 3));
  const Evaluation slow = ev.evaluate(all_on(1, 3));
  EXPECT_GT(fast.utility, slow.utility);
  EXPECT_GT(fast.energy, slow.energy);  // the central trade-off
}

TEST(Evaluator, EvaluateMatchesDetailAggregate) {
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  Allocation a = all_on(0, 3);
  a.machine = {0, 1, 0};
  a.order = {1, 2, 0};
  const Evaluation fast_path = ev.evaluate(a);
  const auto [agg, detail] = ev.detail(a);
  EXPECT_DOUBLE_EQ(fast_path.utility, agg.utility);
  EXPECT_DOUBLE_EQ(fast_path.energy, agg.energy);
  EXPECT_DOUBLE_EQ(fast_path.makespan, agg.makespan);
}

TEST(Evaluator, EvaluateValidatesAtTheApiBoundary) {
  // Regression: evaluate() used to skip validate() (only detail() called
  // it), so an out-of-range machine index from a user-supplied allocation
  // indexed available[m] out of bounds in release builds.
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  Allocation a = all_on(0, 3);
  a.machine[2] = 7;
  EXPECT_THROW((void)ev.evaluate(a), std::invalid_argument);
  a.machine[2] = -3;
  EXPECT_THROW((void)ev.evaluate(a), std::invalid_argument);
  EXPECT_THROW((void)ev.evaluate(all_on(0, 2)), std::invalid_argument);
  Allocation p = all_on(0, 3);
  p.pstate = {0, 0, 0};  // pstates without a DVFS model
  EXPECT_THROW((void)ev.evaluate(p), std::invalid_argument);
}

TEST(Evaluator, ValidateRejectsShapeMismatch) {
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  EXPECT_THROW(ev.validate(all_on(0, 2)), std::invalid_argument);
}

TEST(Evaluator, ValidateRejectsBadMachine) {
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  Allocation a = all_on(0, 3);
  a.machine[1] = 9;
  EXPECT_THROW(ev.validate(a), std::invalid_argument);
  a.machine[1] = -1;
  EXPECT_THROW(ev.validate(a), std::invalid_argument);
}

TEST(Evaluator, ValidateRejectsPstatesWithoutModel) {
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  Allocation a = all_on(0, 3);
  a.pstate = {0, 0, 0};
  EXPECT_THROW(ev.validate(a), std::invalid_argument);
}

TEST(Evaluator, DroppingSkipsWorthlessTasks) {
  const SystemModel sys = two_machine_system();
  // Second task's utility fully decays before it can complete.
  TufClassLibrary lib = linear_library();
  const Trace trace({{0, 0.0, 0}, {0, 0.0, 0}}, lib);
  EvaluatorOptions opts;
  opts.drop_worthless_tasks = true;
  opts.drop_threshold = 85.0;  // second task would finish at 20 -> utility 80
  const Evaluator ev(sys, trace, opts);
  const auto [total, detail] = ev.detail(all_on(0, 2));
  EXPECT_EQ(total.dropped, 1U);
  EXPECT_TRUE(detail[1].dropped);
  EXPECT_DOUBLE_EQ(total.energy, 1000.0);  // dropped task consumes nothing
  EXPECT_DOUBLE_EQ(total.utility, 90.0);
}

TEST(Evaluator, DroppingFreesTheMachineForLaterTasks) {
  const SystemModel sys = two_machine_system();
  // Middle task is doomed (hard deadline at 5 s, execution takes 10 s):
  // dropping it lets the third task start at 10 instead of 20.
  std::vector<TufClass> classes;
  classes.push_back({"linear", 1.0, make_linear_decay_tuf(100.0, 0.0, 100.0)});
  classes.push_back({"doomed", 1.0, make_hard_deadline_tuf(50.0, 5.0)});
  const TufClassLibrary lib(std::move(classes));
  const Trace trace({{0, 0.0, 0}, {0, 0.0, 1}, {0, 0.0, 0}}, lib);
  EvaluatorOptions opts;
  opts.drop_worthless_tasks = true;
  opts.drop_threshold = 0.0;
  const Evaluator ev(sys, trace, opts);
  const auto [total, detail] = ev.detail(all_on(0, 3));
  EXPECT_EQ(total.dropped, 1U);
  EXPECT_TRUE(detail[1].dropped);
  EXPECT_FALSE(detail[2].dropped);
  EXPECT_DOUBLE_EQ(detail[2].start, 10.0);
  EXPECT_DOUBLE_EQ(detail[2].utility, 80.0);
}

TEST(Evaluator, DroppedTaskOutcomeContents) {
  const SystemModel sys = two_machine_system();
  TufClassLibrary lib = linear_library();
  const Trace trace({{0, 0.0, 0}, {0, 0.0, 0}}, lib);
  EvaluatorOptions opts;
  opts.drop_worthless_tasks = true;
  opts.drop_threshold = 85.0;  // second task would finish at 20 -> utility 80
  const Evaluator ev(sys, trace, opts);
  const auto [total, detail] = ev.detail(all_on(0, 2));
  ASSERT_EQ(total.dropped, 1U);
  // A dropped task keeps its assigned machine but consumes nothing: no
  // timeline, no utility, no energy.
  EXPECT_TRUE(detail[1].dropped);
  EXPECT_EQ(detail[1].machine, 0);
  EXPECT_DOUBLE_EQ(detail[1].start, 0.0);
  EXPECT_DOUBLE_EQ(detail[1].finish, 0.0);
  EXPECT_DOUBLE_EQ(detail[1].utility, 0.0);
  EXPECT_DOUBLE_EQ(detail[1].energy, 0.0);
  EXPECT_FALSE(detail[0].dropped);
}

TEST(Evaluator, FullyDroppedMachineBillsNoIdleEnergy) {
  // A machine whose every task is dropped never runs (available[m] stays
  // 0), so the idle-power model must treat it as powered down — not bill
  // idle wattage from t = 0.
  const SystemModel sys = two_machine_system();
  std::vector<TufClass> classes;
  classes.push_back({"linear", 1.0, make_linear_decay_tuf(100.0, 0.0, 100.0)});
  classes.push_back({"doomed", 1.0, make_hard_deadline_tuf(50.0, 5.0)});
  const TufClassLibrary lib(std::move(classes));
  // Task 0 (20 s on machine 1 against a 5 s deadline) is machine 1's only
  // work -> dropped; task 1 (live) arrives at t=50 and waits on machine 0.
  const Trace trace({{0, 0.0, 1}, {0, 50.0, 0}}, lib);
  EvaluatorOptions opts;
  opts.drop_worthless_tasks = true;
  opts.idle_watts = {20.0, 1e9};  // machine 1 would dominate if mis-billed
  const Evaluator ev(sys, trace, opts);
  Allocation a = all_on(0, 2);
  a.machine = {1, 0};
  const Evaluation e = ev.evaluate(a);
  EXPECT_EQ(e.dropped, 1U);
  EXPECT_DOUBLE_EQ(e.idle_energy, 20.0 * 50.0);  // machine 0's gap only
  EXPECT_DOUBLE_EQ(e.energy, 10.0 * 100.0 + 20.0 * 50.0);
}

TEST(Evaluator, SortPathsAgreeOnDuplicateOutOfRangeOrders) {
  // Equal order values tie-break on the task index in both the counting
  // sort (all orders in [0, T)) and the comparison fallback (any ints).
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  Allocation counting = all_on(0, 3);
  counting.order = {1, 0, 1};  // duplicates, in range
  Allocation fallback = all_on(0, 3);
  fallback.order = {7, -2, 7};  // same relative order, out of range
  const auto [ca, cd] = ev.detail(counting);
  const auto [fa, fd] = ev.detail(fallback);
  EXPECT_DOUBLE_EQ(ca.utility, fa.utility);
  EXPECT_DOUBLE_EQ(ca.energy, fa.energy);
  EXPECT_DOUBLE_EQ(ca.makespan, fa.makespan);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(cd[i].start, fd[i].start) << i;
    EXPECT_DOUBLE_EQ(cd[i].finish, fd[i].finish) << i;
  }
}

TEST(Evaluator, NoDroppingByDefault) {
  const SystemModel sys = two_machine_system();
  const Trace trace({{0, 0.0, 0}, {0, 0.0, 0}}, linear_library());
  const Evaluator ev(sys, trace);
  EXPECT_EQ(ev.evaluate(all_on(0, 2)).dropped, 0U);
}

TEST(Evaluator, DvfsScalesTimeAndPower) {
  const SystemModel sys = two_machine_system();
  const Trace trace({{0, 0.0, 0}}, linear_library());
  EvaluatorOptions opts;
  opts.dvfs = make_cubic_dvfs({0.5, 1.0});
  const Evaluator ev(sys, trace, opts);

  Allocation a = all_on(0, 1);
  a.pstate = {0};  // half clock
  const auto [total, detail] = ev.detail(a);
  EXPECT_DOUBLE_EQ(detail[0].finish, 20.0);           // 10 s / 0.5
  EXPECT_DOUBLE_EQ(detail[0].energy, 20.0 * 12.5);    // 100 W * 0.125
  EXPECT_DOUBLE_EQ(detail[0].utility, 80.0);

  a.pstate = {1};  // nominal
  const Evaluation nominal = ev.evaluate(a);
  EXPECT_DOUBLE_EQ(nominal.energy, 1000.0);
  EXPECT_GT(nominal.utility, total.utility);
  EXPECT_LT(total.energy, nominal.energy);  // DVFS saves energy
}

TEST(Evaluator, DvfsEmptyPstateMeansNominal) {
  const SystemModel sys = two_machine_system();
  const Trace trace({{0, 0.0, 0}}, linear_library());
  EvaluatorOptions opts;
  opts.dvfs = make_cubic_dvfs({0.5, 1.0});
  const Evaluator ev(sys, trace, opts);
  const Evaluation e = ev.evaluate(all_on(0, 1));
  EXPECT_DOUBLE_EQ(e.energy, 1000.0);
}

TEST(Evaluator, DvfsValidateRejectsBadPstateIndex) {
  const SystemModel sys = two_machine_system();
  const Trace trace({{0, 0.0, 0}}, linear_library());
  EvaluatorOptions opts;
  opts.dvfs = make_cubic_dvfs({0.5, 1.0});
  const Evaluator ev(sys, trace, opts);
  Allocation a = all_on(0, 1);
  a.pstate = {5};
  EXPECT_THROW(ev.validate(a), std::invalid_argument);
}

TEST(Evaluator, OutOfRangeOrdersMatchEquivalentInRangeOrders) {
  // Orders act as priorities: any values with the same relative ordering
  // must produce the same schedule (exercises the comparison-sort fallback
  // behind the counting-sort fast path).
  const SystemModel sys = two_machine_system();
  const Trace trace = three_task_trace();
  const Evaluator ev(sys, trace);
  Allocation in_range = all_on(0, 3);
  in_range.order = {2, 0, 1};
  Allocation wild = all_on(0, 3);
  wild.order = {1000000, -5, 3};
  const Evaluation a = ev.evaluate(in_range);
  const Evaluation b = ev.evaluate(wild);
  EXPECT_DOUBLE_EQ(a.utility, b.utility);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Evaluator, IdlePowerBillsGapsOnUsedMachines) {
  const SystemModel sys = two_machine_system();
  // Task arrives at t=50: machine 0 idles 50 s before running 10 s.
  const Trace trace({{0, 50.0, 0}}, linear_library());
  EvaluatorOptions opts;
  opts.idle_watts = {20.0, 4.0};
  const Evaluator ev(sys, trace, opts);
  const Evaluation e = ev.evaluate(all_on(0, 1));
  EXPECT_DOUBLE_EQ(e.idle_energy, 20.0 * 50.0);
  EXPECT_DOUBLE_EQ(e.energy, 1000.0 + 1000.0);  // busy 10s*100W + idle
}

TEST(Evaluator, IdlePowerIgnoresUnusedMachines) {
  const SystemModel sys = two_machine_system();
  const Trace trace({{0, 0.0, 0}}, linear_library());
  EvaluatorOptions opts;
  opts.idle_watts = {20.0, 1e9};  // machine 1 never used: must not bill
  const Evaluator ev(sys, trace, opts);
  const Evaluation e = ev.evaluate(all_on(0, 1));
  EXPECT_DOUBLE_EQ(e.idle_energy, 0.0);  // back-to-back, no gap
  EXPECT_DOUBLE_EQ(e.energy, 1000.0);
}

TEST(Evaluator, IdlePowerChangesConsolidationIncentive) {
  // Two identical tasks arriving together.  Busy-only model: spreading
  // across both machines and stacking on one cost the same busy energy on
  // machine 0 vs splitting (1000+800).  With idle power, the spread run
  // bills no idle (both machines busy from 0), but a *delayed* second task
  // creates a gap only under spreading.
  const SystemModel sys = two_machine_system();
  const Trace trace({{0, 0.0, 0}, {0, 30.0, 0}}, linear_library());
  EvaluatorOptions opts;
  opts.idle_watts = {50.0, 50.0};
  const Evaluator ev(sys, trace, opts);

  Allocation stacked = all_on(0, 2);       // 0..10, 30..40 on machine 0
  Allocation spread = all_on(0, 2);
  spread.machine = {0, 1};                 // 0..10 on m0, 30..50 on m1

  const Evaluation st = ev.evaluate(stacked);
  // Stacked: gap 10..30 on machine 0 -> 20 s * 50 W idle.
  EXPECT_DOUBLE_EQ(st.idle_energy, 1000.0);
  const Evaluation sp = ev.evaluate(spread);
  // Spread: m0 no gap; m1 powered 0..50, busy 20 -> 30 s * 50 W idle.
  EXPECT_DOUBLE_EQ(sp.idle_energy, 1500.0);
}

TEST(Evaluator, IdleWattsValidation) {
  const SystemModel sys = two_machine_system();
  const Trace trace({{0, 0.0, 0}}, linear_library());
  EvaluatorOptions bad_size;
  bad_size.idle_watts = {1.0};
  EXPECT_THROW(Evaluator(sys, trace, bad_size), std::invalid_argument);
  EvaluatorOptions negative;
  negative.idle_watts = {1.0, -1.0};
  EXPECT_THROW(Evaluator(sys, trace, negative), std::invalid_argument);
}

TEST(Evaluator, EmptyTraceEvaluatesToZero) {
  const SystemModel sys = two_machine_system();
  const Trace trace({}, linear_library());
  const Evaluator ev(sys, trace);
  const Evaluation e = ev.evaluate(Allocation{});
  EXPECT_DOUBLE_EQ(e.utility, 0.0);
  EXPECT_DOUBLE_EQ(e.energy, 0.0);
  EXPECT_DOUBLE_EQ(e.makespan, 0.0);
}

}  // namespace
}  // namespace eus
