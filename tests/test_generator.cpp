#include "synth/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/historical.hpp"

namespace eus {
namespace {

std::vector<std::size_t> paper_counts() {
  return {2, 3, 3, 3, 2, 4, 2, 5, 2, 1, 1, 1, 1};
}

ExpandedSystem expand_default(std::uint64_t seed = 11) {
  Rng rng(seed);
  return expand_system(historical_system(), ExpansionConfig{}, paper_counts(),
                       rng);
}

TEST(Generator, PaperShapes) {
  const ExpandedSystem ex = expand_default();
  EXPECT_EQ(ex.model.num_task_types(), 30U);     // 5 real + 25 synthetic
  EXPECT_EQ(ex.model.num_machine_types(), 13U);  // 9 general + 4 special
  EXPECT_EQ(ex.model.num_machines(), 30U);       // Table III total
}

TEST(Generator, OriginalDataPreservedVerbatim) {
  const ExpandedSystem ex = expand_default();
  const Matrix& etc = historical_etc();
  const Matrix& epc = historical_epc();
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 9; ++c) {
      EXPECT_DOUBLE_EQ(ex.model.etc()(r, c), etc(r, c));
      EXPECT_DOUBLE_EQ(ex.model.epc()(r, c), epc(r, c));
    }
  }
}

TEST(Generator, SyntheticEntriesPositiveOnGeneralMachines) {
  const ExpandedSystem ex = expand_default();
  for (std::size_t r = 0; r < 30; ++r) {
    for (std::size_t c = 0; c < 9; ++c) {
      EXPECT_TRUE(std::isfinite(ex.model.etc()(r, c)));
      EXPECT_GT(ex.model.etc()(r, c), 0.0);
      EXPECT_GT(ex.model.epc()(r, c), 0.0);
    }
  }
}

TEST(Generator, SpecialMachinesOwnTwoToThreeTasks) {
  const ExpandedSystem ex = expand_default();
  for (std::size_t mt = 9; mt < 13; ++mt) {
    std::size_t eligible = 0;
    for (std::size_t t = 0; t < 30; ++t) {
      if (ex.model.eligible_type(t, mt)) ++eligible;
    }
    EXPECT_GE(eligible, 2U);
    EXPECT_LE(eligible, 3U);
  }
}

TEST(Generator, SpecialTasksDisjointAcrossMachines) {
  const ExpandedSystem ex = expand_default();
  std::set<std::size_t> seen(ex.special_task_types.begin(),
                             ex.special_task_types.end());
  EXPECT_EQ(seen.size(), ex.special_task_types.size());
}

TEST(Generator, SpecialEtcIsRowAverageOverSpeedup) {
  const ExpandedSystem ex = expand_default();
  for (const std::size_t t : ex.special_task_types) {
    const int mt = ex.model.task_types()[t].special_machine_type;
    ASSERT_GE(mt, 9);
    double avg = 0.0;
    for (std::size_t c = 0; c < 9; ++c) avg += ex.model.etc()(t, c);
    avg /= 9.0;
    EXPECT_NEAR(ex.model.etc()(t, static_cast<std::size_t>(mt)), avg / 10.0,
                1e-9);
  }
}

TEST(Generator, SpecialEpcNotDividedByTen) {
  // §III-D2: "When calculating EPC values, the average power consumption
  // across the machines is not divided by ten."
  const ExpandedSystem ex = expand_default();
  for (const std::size_t t : ex.special_task_types) {
    const int mt = ex.model.task_types()[t].special_machine_type;
    double avg = 0.0;
    for (std::size_t c = 0; c < 9; ++c) avg += ex.model.epc()(t, c);
    avg /= 9.0;
    EXPECT_NEAR(ex.model.epc()(t, static_cast<std::size_t>(mt)), avg, 1e-9);
  }
}

TEST(Generator, SpecialMachineIsFasterThanEveryGeneralMachine) {
  const ExpandedSystem ex = expand_default();
  for (const std::size_t t : ex.special_task_types) {
    const auto mt = static_cast<std::size_t>(
        ex.model.task_types()[t].special_machine_type);
    const double special = ex.model.etc()(t, mt);
    for (std::size_t c = 0; c < 9; ++c) {
      EXPECT_LT(special, ex.model.etc()(t, c));
    }
  }
}

TEST(Generator, DeterministicForSeed) {
  const ExpandedSystem a = expand_default(5);
  const ExpandedSystem b = expand_default(5);
  EXPECT_EQ(a.model.etc(), b.model.etc());
  EXPECT_EQ(a.model.epc(), b.model.epc());
  EXPECT_EQ(a.special_task_types, b.special_task_types);
}

TEST(Generator, DifferentSeedsDiffer) {
  const ExpandedSystem a = expand_default(5);
  const ExpandedSystem b = expand_default(6);
  EXPECT_NE(a.model.etc(), b.model.etc());
}

TEST(Generator, InstanceBreakupMatchesRequest) {
  const ExpandedSystem ex = expand_default();
  const auto counts = paper_counts();
  for (std::size_t ty = 0; ty < counts.size(); ++ty) {
    EXPECT_EQ(ex.model.count_of_type(ty), counts[ty]);
  }
}

TEST(Generator, RejectsWrongInstanceVectorSize) {
  Rng rng(1);
  EXPECT_THROW(expand_system(historical_system(), ExpansionConfig{},
                             {1, 2, 3}, rng),
               std::invalid_argument);
}

TEST(Generator, RejectsZeroInstanceCount) {
  Rng rng(1);
  auto counts = paper_counts();
  counts[3] = 0;
  EXPECT_THROW(
      expand_system(historical_system(), ExpansionConfig{}, counts, rng),
      std::invalid_argument);
}

TEST(Generator, RejectsTooManySpecialTasksForPool) {
  Rng rng(1);
  ExpansionConfig cfg;
  cfg.additional_task_types = 0;  // only 5 task types
  cfg.special_machine_types = 4;
  cfg.min_tasks_per_special = 2;
  cfg.max_tasks_per_special = 2;  // needs 8 > 5
  std::vector<std::size_t> counts(13, 1);
  EXPECT_THROW(expand_system(historical_system(), cfg, counts, rng),
               std::invalid_argument);
}

TEST(Generator, RejectsNonGeneralBase) {
  const ExpandedSystem ex = expand_default();
  Rng rng(1);
  std::vector<std::size_t> counts(17, 1);
  EXPECT_THROW(expand_system(ex.model, ExpansionConfig{}, counts, rng),
               std::invalid_argument);
}

TEST(Generator, FidelityDistanceSmall) {
  // The headline §III-D2 claim: the synthetic row-average population keeps
  // the historical mvsk signature.  With 25 draws the sample moments
  // wobble, so accept a generous but meaningful bound.
  const SystemModel base = historical_system();
  double best = 1e9;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ExpandedSystem ex = expand_default(seed);
    const FidelityReport report = etc_fidelity(base, ex.model, 9);
    best = std::min(best, report.distance);
    EXPECT_LT(report.distance, 1.5) << "seed " << seed;
    // Mean should always be in the right ballpark.
    EXPECT_NEAR(report.expanded_row_averages.mean,
                report.base_row_averages.mean,
                0.6 * report.base_row_averages.mean);
  }
  EXPECT_LT(best, 0.8);
}

TEST(Generator, LargerExpansionStillValid) {
  Rng rng(2);
  ExpansionConfig cfg;
  cfg.additional_task_types = 95;
  cfg.special_machine_types = 6;
  std::vector<std::size_t> counts(15, 2);
  const ExpandedSystem ex =
      expand_system(historical_system(), cfg, counts, rng);
  EXPECT_EQ(ex.model.num_task_types(), 100U);
  EXPECT_EQ(ex.model.num_machines(), 30U);
}

}  // namespace
}  // namespace eus
