#include "pareto/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eus {
namespace {

TEST(Hypervolume, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume({}, {10.0, 0.0}), 0.0);
}

TEST(Hypervolume, SinglePointRectangle) {
  // Point (2, 8) against reference (10, 0): area (10-2)*(8-0) = 64.
  EXPECT_DOUBLE_EQ(hypervolume({{2.0, 8.0}}, {10.0, 0.0}), 64.0);
}

TEST(Hypervolume, TwoPointStaircase) {
  // (2,4) and (5,9), ref (10,0): (10-5)*9 + (5-2)*4 = 45 + 12 = 57.
  EXPECT_DOUBLE_EQ(hypervolume({{2.0, 4.0}, {5.0, 9.0}}, {10.0, 0.0}), 57.0);
}

TEST(Hypervolume, OrderIndependent) {
  const std::vector<EUPoint> a = {{2.0, 4.0}, {5.0, 9.0}, {7.0, 10.0}};
  std::vector<EUPoint> b = {a[2], a[0], a[1]};
  EXPECT_DOUBLE_EQ(hypervolume(a, {10.0, 0.0}), hypervolume(b, {10.0, 0.0}));
}

TEST(Hypervolume, DominatedPointsIgnored) {
  const double with = hypervolume({{2.0, 4.0}, {5.0, 9.0}}, {10.0, 0.0});
  const double extra =
      hypervolume({{2.0, 4.0}, {5.0, 9.0}, {6.0, 3.0}}, {10.0, 0.0});
  EXPECT_DOUBLE_EQ(with, extra);
}

TEST(Hypervolume, BetterFrontHasLargerVolume) {
  const double worse = hypervolume({{5.0, 5.0}}, {10.0, 0.0});
  const double better = hypervolume({{4.0, 6.0}}, {10.0, 0.0});
  EXPECT_GT(better, worse);
}

TEST(Hypervolume, RejectsReferenceInsideFront) {
  EXPECT_THROW((void)hypervolume({{5.0, 5.0}}, {4.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)hypervolume({{5.0, 5.0}}, {10.0, 6.0}), std::invalid_argument);
}

TEST(Coverage, FullCoverage) {
  const std::vector<EUPoint> a = {{1.0, 10.0}};
  const std::vector<EUPoint> b = {{2.0, 9.0}, {3.0, 5.0}};
  EXPECT_DOUBLE_EQ(coverage(a, b), 1.0);
}

TEST(Coverage, NoCoverage) {
  const std::vector<EUPoint> a = {{5.0, 5.0}};
  const std::vector<EUPoint> b = {{1.0, 10.0}};
  EXPECT_DOUBLE_EQ(coverage(a, b), 0.0);
}

TEST(Coverage, EqualPointsCovered) {
  const std::vector<EUPoint> a = {{1.0, 1.0}};
  EXPECT_DOUBLE_EQ(coverage(a, a), 1.0);
}

TEST(Coverage, PartialAndAsymmetric) {
  const std::vector<EUPoint> a = {{1.0, 10.0}, {9.0, 13.0}};
  const std::vector<EUPoint> b = {{2.0, 9.0}, {0.5, 12.0}};
  // a covers {2,9} (dominated by {1,10}) but not {0.5,12}.
  EXPECT_DOUBLE_EQ(coverage(a, b), 0.5);
  // b covers {1,10} (dominated by {0.5,12}) but not {9,13}.
  EXPECT_DOUBLE_EQ(coverage(b, a), 0.5);
}

TEST(Coverage, EmptyBIsZero) {
  EXPECT_DOUBLE_EQ(coverage({{1.0, 1.0}}, {}), 0.0);
}

TEST(Spread, FewerThanTwoPointsIsZero) {
  EXPECT_DOUBLE_EQ(spread({}), 0.0);
  EXPECT_DOUBLE_EQ(spread({{1.0, 1.0}}), 0.0);
}

TEST(Spread, UniformSpacingIsZero) {
  const std::vector<EUPoint> f = {
      {0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_NEAR(spread(f), 0.0, 1e-12);
}

TEST(Spread, ClusteringIncreasesSpread) {
  const std::vector<EUPoint> uniform = {
      {0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  const std::vector<EUPoint> clustered = {
      {0.0, 0.0}, {0.1, 0.1}, {0.2, 0.2}, {3.0, 3.0}};
  EXPECT_GT(spread(clustered), spread(uniform));
}

TEST(EpsilonIndicator, ZeroWhenACoversB) {
  const std::vector<EUPoint> a = {{1.0, 10.0}, {5.0, 20.0}};
  EXPECT_DOUBLE_EQ(epsilon_indicator(a, a), 0.0);
  const std::vector<EUPoint> b = {{2.0, 9.0}};
  EXPECT_LE(epsilon_indicator(a, b), 0.0);
}

TEST(EpsilonIndicator, NegativeWhenAStrictlyBetter) {
  const std::vector<EUPoint> a = {{1.0, 10.0}};
  const std::vector<EUPoint> b = {{3.0, 8.0}};
  // A needs to be worsened by 2 before it stops dominating B.
  EXPECT_DOUBLE_EQ(epsilon_indicator(a, b), -2.0);
}

TEST(EpsilonIndicator, PositiveShiftMeasured) {
  const std::vector<EUPoint> a = {{5.0, 5.0}};
  const std::vector<EUPoint> b = {{2.0, 8.0}};
  // a.energy - e <= 2 requires e >= 3; a.utility + e >= 8 requires e >= 3.
  EXPECT_DOUBLE_EQ(epsilon_indicator(a, b), 3.0);
}

TEST(EpsilonIndicator, TakesWorstCaseOverB) {
  const std::vector<EUPoint> a = {{5.0, 5.0}};
  const std::vector<EUPoint> b = {{5.0, 5.0}, {2.0, 8.0}};
  EXPECT_DOUBLE_EQ(epsilon_indicator(a, b), 3.0);
}

TEST(EpsilonIndicator, ThrowsOnEmpty) {
  EXPECT_THROW((void)epsilon_indicator({}, {{1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)epsilon_indicator({{1.0, 1.0}}, {}),
               std::invalid_argument);
}

TEST(GenerationalDistance, ZeroForIdenticalSets) {
  const std::vector<EUPoint> f = {{1.0, 1.0}, {2.0, 4.0}};
  EXPECT_DOUBLE_EQ(generational_distance(f, f), 0.0);
}

TEST(GenerationalDistance, AveragesNearestDistances) {
  const std::vector<EUPoint> reference = {{0.0, 0.0}, {10.0, 10.0}};
  const std::vector<EUPoint> front = {{3.0, 4.0}, {10.0, 10.0}};
  // First point: nearest reference is (0,0) at distance 5; second: 0.
  EXPECT_DOUBLE_EQ(generational_distance(front, reference), 2.5);
}

TEST(GenerationalDistance, IgdIsReversedArguments) {
  const std::vector<EUPoint> reference = {{0.0, 0.0}, {10.0, 10.0}};
  const std::vector<EUPoint> front = {{0.0, 0.0}};
  EXPECT_DOUBLE_EQ(inverted_generational_distance(front, reference),
                   generational_distance(reference, front));
  // Front covers only half the reference: IGD > GD here.
  EXPECT_GT(inverted_generational_distance(front, reference),
            generational_distance(front, reference));
}

TEST(GenerationalDistance, ThrowsOnEmpty) {
  EXPECT_THROW((void)generational_distance({}, {{1.0, 1.0}}),
               std::invalid_argument);
}

TEST(EnclosingReference, CoversAllSets) {
  const std::vector<std::vector<EUPoint>> sets = {
      {{1.0, 5.0}, {4.0, 9.0}},
      {{2.0, 3.0}},
  };
  const EUPoint ref = enclosing_reference(sets);
  for (const auto& set : sets) {
    for (const auto& p : set) {
      EXPECT_GE(ref.energy, p.energy);
      EXPECT_LE(ref.utility, p.utility);
    }
  }
  // Usable with hypervolume immediately:
  EXPECT_GT(hypervolume(sets[0], ref), 0.0);
}

TEST(EnclosingReference, EmptyFallback) {
  const EUPoint ref = enclosing_reference({});
  EXPECT_DOUBLE_EQ(ref.energy, 1.0);
  EXPECT_DOUBLE_EQ(ref.utility, 0.0);
}

}  // namespace
}  // namespace eus
