// ScenarioCatalog / SharedCatalog unit tests: all-or-nothing validation,
// sorted lookup, built-in protection, and the snapshot/swap hot-reload
// contract (old snapshots survive a swap untouched).

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/scenario_catalog.hpp"

namespace eus {
namespace {

TEST(ScenarioCatalog, FindsValidatedRecipesByAlias) {
  const ScenarioCatalog catalog(std::vector<ScenarioRecipe>{
      {.name = "quick", .base = "custom", .seed = 7, .tasks = 10,
       .window_s = 30.0},
      {.name = "paper", .base = "dataset2"},
      {.name = "nightly", .base = "dataset3", .seed = 42},
  });
  EXPECT_EQ(catalog.size(), 3U);

  const ScenarioRecipe* quick = catalog.find("quick");
  ASSERT_NE(quick, nullptr);
  EXPECT_EQ(quick->base, "custom");
  EXPECT_EQ(quick->seed, 7U);
  EXPECT_EQ(quick->tasks, 10U);
  EXPECT_DOUBLE_EQ(quick->window_s, 30.0);

  const ScenarioRecipe* paper = catalog.find("paper");
  ASSERT_NE(paper, nullptr);
  EXPECT_EQ(paper->base, "dataset2");
  EXPECT_EQ(paper->seed, 20130520U);  // recipe default

  EXPECT_EQ(catalog.find("absent"), nullptr);
  EXPECT_EQ(catalog.find(""), nullptr);
  // Built-ins never live in the catalog; they resolve before lookup.
  EXPECT_EQ(catalog.find("dataset2"), nullptr);
}

TEST(ScenarioCatalog, DefaultCatalogIsEmpty) {
  const ScenarioCatalog catalog;
  EXPECT_EQ(catalog.size(), 0U);
  EXPECT_EQ(catalog.find("anything"), nullptr);
}

TEST(ScenarioCatalog, RejectsIncoherentRecipeSets) {
  // Empty alias.
  EXPECT_THROW(ScenarioCatalog(std::vector<ScenarioRecipe>{{.name = "", .base = "dataset1"}}),
               std::invalid_argument);
  // Aliases may not shadow built-in names ("inline" included).
  EXPECT_THROW(ScenarioCatalog(std::vector<ScenarioRecipe>{{.name = "dataset1", .base = "dataset2"}}),
               std::invalid_argument);
  EXPECT_THROW(ScenarioCatalog(std::vector<ScenarioRecipe>{{.name = "inline", .base = "custom"}}),
               std::invalid_argument);
  // Unknown base (and "inline" is not a valid base either).
  EXPECT_THROW(ScenarioCatalog(std::vector<ScenarioRecipe>{{.name = "x", .base = "dataset9"}}),
               std::invalid_argument);
  EXPECT_THROW(ScenarioCatalog(std::vector<ScenarioRecipe>{{.name = "x", .base = "inline"}}),
               std::invalid_argument);
  // Out-of-range custom parameters.
  EXPECT_THROW(ScenarioCatalog(std::vector<ScenarioRecipe>{{.name = "x", .base = "custom", .tasks = 0}}),
               std::invalid_argument);
  EXPECT_THROW(
      ScenarioCatalog(std::vector<ScenarioRecipe>{{.name = "x", .base = "custom", .window_s = 0.0}}),
      std::invalid_argument);
  EXPECT_THROW(
      ScenarioCatalog(std::vector<ScenarioRecipe>{{.name = "x", .base = "custom", .window_s = -5.0}}),
      std::invalid_argument);
  // Duplicate aliases.
  EXPECT_THROW(ScenarioCatalog(std::vector<ScenarioRecipe>{{.name = "x", .base = "dataset1"},
                                {.name = "x", .base = "dataset2"}}),
               std::invalid_argument);
  // One bad recipe poisons the whole set: all-or-nothing.
  EXPECT_THROW(ScenarioCatalog(std::vector<ScenarioRecipe>{{.name = "good", .base = "dataset1"},
                                {.name = "bad", .base = "nope"}}),
               std::invalid_argument);
}

TEST(ScenarioCatalog, BuiltinNamesAreRecognised) {
  EXPECT_TRUE(ScenarioCatalog::is_builtin_name("dataset1"));
  EXPECT_TRUE(ScenarioCatalog::is_builtin_name("dataset2"));
  EXPECT_TRUE(ScenarioCatalog::is_builtin_name("dataset3"));
  EXPECT_TRUE(ScenarioCatalog::is_builtin_name("custom"));
  EXPECT_TRUE(ScenarioCatalog::is_builtin_name("inline"));
  EXPECT_FALSE(ScenarioCatalog::is_builtin_name("dataset4"));
  EXPECT_FALSE(ScenarioCatalog::is_builtin_name(""));
  EXPECT_FALSE(ScenarioCatalog::is_builtin_name("Dataset1"));
}

TEST(SharedCatalog, SwapPublishesAtomicallyAndSnapshotsSurvive) {
  SharedCatalog shared;
  EXPECT_EQ(shared.generation(), 0U);  // boot catalog: empty, generation 0

  const std::shared_ptr<const ScenarioCatalog> boot = shared.snapshot();
  ASSERT_NE(boot, nullptr);
  EXPECT_EQ(boot->size(), 0U);

  const std::uint64_t gen1 = shared.swap(std::make_shared<const ScenarioCatalog>(
      std::vector<ScenarioRecipe>{{.name = "quick", .base = "custom",
                                   .tasks = 10, .window_s = 30.0}}));
  EXPECT_EQ(gen1, 1U);
  EXPECT_EQ(shared.generation(), 1U);

  // The pre-swap snapshot is untouched; a fresh snapshot sees the reload.
  EXPECT_EQ(boot->size(), 0U);
  const std::shared_ptr<const ScenarioCatalog> current = shared.snapshot();
  EXPECT_EQ(current->size(), 1U);
  EXPECT_NE(current->find("quick"), nullptr);

  // Swapping nullptr resets to the empty catalog and still bumps the
  // generation — "unload everything" is a valid reload.
  const std::uint64_t gen2 = shared.swap(nullptr);
  EXPECT_EQ(gen2, 2U);
  EXPECT_EQ(shared.snapshot()->size(), 0U);
  // The generation-1 snapshot keeps serving its aliases.
  EXPECT_NE(current->find("quick"), nullptr);
}

}  // namespace
}  // namespace eus
