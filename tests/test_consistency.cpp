#include "synth/consistency.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/historical.hpp"
#include "synth/etc_generators.hpp"

namespace eus {
namespace {

TEST(Consistency, RejectsEmpty) {
  EXPECT_THROW((void)classify_consistency(Matrix{}), std::invalid_argument);
  EXPECT_THROW((void)make_consistent(Matrix{}), std::invalid_argument);
}

TEST(Consistency, TrivialCasesConsistent) {
  EXPECT_EQ(classify_consistency(Matrix(1, 5, 1.0)).classification,
            Consistency::kConsistent);
  EXPECT_EQ(classify_consistency(Matrix(5, 1, 1.0)).classification,
            Consistency::kConsistent);
}

TEST(Consistency, SpeedOrderedMatrixIsConsistent) {
  // Column m is uniformly (m+1)x slower than column 0.
  Matrix etc(4, 3);
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t m = 0; m < 3; ++m) {
      etc(t, m) = (static_cast<double>(t) + 1.0) * (static_cast<double>(m) + 1.0);
    }
  }
  const ConsistencyReport r = classify_consistency(etc);
  EXPECT_EQ(r.classification, Consistency::kConsistent);
  EXPECT_DOUBLE_EQ(r.consistent_pair_fraction, 1.0);
  EXPECT_EQ(r.largest_consistent_subset, 3U);
}

TEST(Consistency, CrossedMatrixIsInconsistent) {
  const Matrix etc = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});
  const ConsistencyReport r = classify_consistency(etc);
  EXPECT_EQ(r.classification, Consistency::kInconsistent);
  EXPECT_DOUBLE_EQ(r.consistent_pair_fraction, 0.0);
}

TEST(Consistency, SemiConsistentDetected) {
  // Machines 0-2 speed-ordered; machine 3 crossed against all of them.
  const Matrix etc = Matrix::from_rows({
      {1.0, 2.0, 3.0, 10.0},
      {2.0, 4.0, 6.0, 1.0},
  });
  const ConsistencyReport r = classify_consistency(etc);
  EXPECT_EQ(r.classification, Consistency::kSemiConsistent);
  EXPECT_EQ(r.largest_consistent_subset, 3U);
  EXPECT_LT(r.consistent_pair_fraction, 1.0);
}

TEST(Consistency, HistoricalMatrixIsNotFullyConsistent) {
  const ConsistencyReport r = classify_consistency(historical_etc());
  EXPECT_NE(r.classification, Consistency::kConsistent);
  EXPECT_LT(r.consistent_pair_fraction, 1.0);
  // But most Intel pairs are speed-ordered: far from fully crossed.
  EXPECT_GT(r.consistent_pair_fraction, 0.5);
}

TEST(Consistency, MakeConsistentProducesConsistent) {
  const Matrix fixed = make_consistent(historical_etc());
  EXPECT_EQ(classify_consistency(fixed).classification,
            Consistency::kConsistent);
}

TEST(Consistency, MakeConsistentPreservesRowMultisets) {
  const Matrix original = historical_etc();
  const Matrix fixed = make_consistent(original);
  for (std::size_t t = 0; t < original.rows(); ++t) {
    auto a = original.row_finite(t);
    auto b = fixed.row_finite(t);
    std::sort(a.begin(), a.end());
    EXPECT_EQ(a, b);  // fixed rows are already ascending
    EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
  }
}

TEST(Consistency, CvbMatricesAreInconsistent) {
  Rng rng(5);
  CvbParams p;
  p.tasks = 30;
  p.machines = 10;
  p.task_cv = 0.5;
  p.machine_cv = 0.5;
  const ConsistencyReport r = classify_consistency(cvb_etc(p, rng));
  EXPECT_NE(r.classification, Consistency::kConsistent);
}

TEST(Consistency, Names) {
  EXPECT_STREQ(to_string(Consistency::kConsistent), "consistent");
  EXPECT_STREQ(to_string(Consistency::kSemiConsistent), "semi-consistent");
  EXPECT_STREQ(to_string(Consistency::kInconsistent), "inconsistent");
}

}  // namespace
}  // namespace eus
