#include "data/matrix_io.hpp"

#include <gtest/gtest.h>

#include "data/historical.hpp"

namespace eus {
namespace {

NamedMatrix sample() {
  NamedMatrix m;
  m.row_names = {"t1", "t2"};
  m.col_names = {"m1", "m2", "m3"};
  m.values = Matrix::from_rows({{1.5, 2.0, kIneligible}, {3.0, 4.5, 6.0}});
  return m;
}

TEST(MatrixIo, SerializeHasHeaderAndRows) {
  const std::string csv = matrix_to_csv(sample());
  EXPECT_EQ(csv.find("task,m1,m2,m3\n"), 0U);
  EXPECT_NE(csv.find("t1,"), std::string::npos);
  EXPECT_NE(csv.find("inf"), std::string::npos);
}

TEST(MatrixIo, RoundTrip) {
  const NamedMatrix original = sample();
  const NamedMatrix parsed = matrix_from_csv(matrix_to_csv(original));
  EXPECT_EQ(parsed.row_names, original.row_names);
  EXPECT_EQ(parsed.col_names, original.col_names);
  ASSERT_EQ(parsed.values.rows(), original.values.rows());
  ASSERT_EQ(parsed.values.cols(), original.values.cols());
  for (std::size_t r = 0; r < original.values.rows(); ++r) {
    for (std::size_t c = 0; c < original.values.cols(); ++c) {
      EXPECT_DOUBLE_EQ(parsed.values(r, c), original.values(r, c));
    }
  }
}

TEST(MatrixIo, ParsesInfVariants) {
  const NamedMatrix m =
      matrix_from_csv("task,m1,m2,m3\nt,inf,INF,Infinity\n");
  EXPECT_EQ(m.values(0, 0), kIneligible);
  EXPECT_EQ(m.values(0, 1), kIneligible);
  EXPECT_EQ(m.values(0, 2), kIneligible);
}

TEST(MatrixIo, RejectsMissingHeader) {
  EXPECT_THROW(matrix_from_csv("only-one-line"), std::runtime_error);
}

TEST(MatrixIo, RejectsRaggedRows) {
  EXPECT_THROW(matrix_from_csv("task,m1,m2\nt,1.0\n"), std::runtime_error);
}

TEST(MatrixIo, RejectsNonNumericCell) {
  EXPECT_THROW(matrix_from_csv("task,m1\nt,banana\n"), std::runtime_error);
}

TEST(MatrixIo, RejectsTrailingJunk) {
  EXPECT_THROW(matrix_from_csv("task,m1\nt,1.5abc\n"), std::runtime_error);
}

TEST(MatrixIo, QuotedNamesWithCommasSurvive) {
  NamedMatrix m;
  m.row_names = {"task, with comma"};
  m.col_names = {"machine \"quoted\""};
  m.values = Matrix::from_rows({{2.0}});
  const NamedMatrix parsed = matrix_from_csv(matrix_to_csv(m));
  EXPECT_EQ(parsed.row_names[0], "task, with comma");
  EXPECT_EQ(parsed.col_names[0], "machine \"quoted\"");
}

TEST(MatrixIo, HistoricalEtcRoundTrips) {
  NamedMatrix m;
  for (const auto& t : historical_task_types()) m.row_names.push_back(t.name);
  for (const auto& mt : historical_machine_types()) {
    m.col_names.push_back(mt.name);
  }
  m.values = historical_etc();
  const NamedMatrix parsed = matrix_from_csv(matrix_to_csv(m));
  EXPECT_EQ(parsed.values, historical_etc());
}

}  // namespace
}  // namespace eus
