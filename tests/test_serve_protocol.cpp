// Wire-protocol unit tests: framing round trips, eager oversized-frame
// rejection, request-document validation and cache-fingerprint identity.

#include <gtest/gtest.h>

#include <string>

#include "serve/protocol.hpp"

namespace eus::serve {
namespace {

TEST(Framing, RoundTripsOnePayload) {
  const std::string payload = R"({"type":"healthz"})";
  const std::string frame = encode_frame(payload);
  ASSERT_EQ(frame.size(), payload.size() + 4);

  FrameDecoder decoder;
  EXPECT_FALSE(decoder.next().has_value());
  decoder.feed(frame.data(), frame.size());
  const std::optional<std::string> out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0U);
}

TEST(Framing, ReassemblesByteByByte) {
  const std::string frame = encode_frame("hello") + encode_frame("world");
  FrameDecoder decoder;
  std::vector<std::string> seen;
  for (const char byte : frame) {
    decoder.feed(&byte, 1);
    while (const std::optional<std::string> payload = decoder.next()) {
      seen.push_back(*payload);
    }
  }
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0], "hello");
  EXPECT_EQ(seen[1], "world");
}

TEST(Framing, EmptyPayloadIsLegal) {
  const std::string frame = encode_frame("");
  FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  const std::optional<std::string> out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(Framing, RejectsOversizedPrefixBeforePayloadArrives) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  const std::string frame = encode_frame(std::string(17, 'x'));
  // Only the 4-byte prefix: the decoder must refuse without seeing payload.
  EXPECT_THROW(decoder.feed(frame.data(), 4), ProtocolError);
}

TEST(Framing, RevalidatesPrefixExposedByPop) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  const std::string good = encode_frame("ok");
  const std::string bad = encode_frame(std::string(17, 'x'));
  const std::string stream = good + bad;
  // Feeding the good frame plus the bad prefix in one call: the pending
  // prefix (the good frame's) is fine, but popping the good frame exposes
  // the oversized one.
  decoder.feed(stream.data(), good.size() + 4);
  EXPECT_THROW(decoder.next(), ProtocolError);
}

TEST(ParseRequest, HealthzAndMetricsz) {
  const ServeRequest h = parse_request_text(R"({"type":"healthz","id":"a"})");
  EXPECT_EQ(h.kind, RequestKind::kHealthz);
  EXPECT_EQ(h.id, "a");
  const ServeRequest m = parse_request_text(R"({"type":"metricsz"})");
  EXPECT_EQ(m.kind, RequestKind::kMetricsz);
}

TEST(ParseRequest, HeuristicModeOnNamedDataset) {
  const ServeRequest r = parse_request_text(
      R"({"type":"allocate","mode":"heuristic:min-min",)"
      R"("scenario":{"name":"dataset2","seed":7}})");
  EXPECT_EQ(r.kind, RequestKind::kAllocate);
  EXPECT_EQ(r.mode, ModeKind::kHeuristic);
  EXPECT_EQ(r.heuristic, SeedHeuristic::kMinMinCompletionTime);
  EXPECT_EQ(r.scenario.name, "dataset2");
  EXPECT_EQ(r.scenario.seed, 7U);
  EXPECT_EQ(r.deadline_ms, 0.0);
}

TEST(ParseRequest, Nsga2ParametersAndDeadline) {
  const ServeRequest r = parse_request_text(
      R"({"type":"allocate","mode":"nsga2",)"
      R"("scenario":{"name":"custom","tasks":12,"window_s":30},)"
      R"("nsga2":{"population":8,"generations":5,)"
      R"("mutation_probability":0.5,"seeds":["min-energy","max-utility"]},)"
      R"("deadline_ms":250})");
  EXPECT_EQ(r.mode, ModeKind::kNsga2);
  EXPECT_EQ(r.scenario.tasks, 12U);
  EXPECT_EQ(r.nsga2.population, 8U);
  EXPECT_EQ(r.nsga2.generations, 5U);
  EXPECT_EQ(r.nsga2.mutation_probability, 0.5);
  ASSERT_EQ(r.nsga2.seeds.size(), 2U);
  EXPECT_EQ(r.nsga2.seeds[0], SeedHeuristic::kMinEnergy);
  EXPECT_EQ(r.deadline_ms, 250.0);
}

TEST(ParseRequest, InlineScenarioWithNullIneligibility) {
  const ServeRequest r = parse_request_text(
      R"({"type":"allocate","mode":"heuristic:min-energy",)"
      R"("scenario":{"etc":[[1.0,null],[2.0,3.0]],)"
      R"("epc":[[10.0,20.0],[30.0,40.0]],)"
      R"("machine_counts":[2,1],"tasks":6,"window_s":20}})");
  EXPECT_EQ(r.scenario.name, "inline");
  ASSERT_EQ(r.scenario.etc.size(), 2U);
  EXPECT_GT(r.scenario.etc[0][1], 1e100);  // null arrived as kIneligible
  ASSERT_EQ(r.scenario.machine_counts.size(), 2U);
  EXPECT_EQ(r.scenario.machine_counts[0], 2U);
}

TEST(ParseRequest, RejectsGarbage) {
  EXPECT_THROW(parse_request_text("not json at all"), ProtocolError);
  EXPECT_THROW(parse_request_text("[1,2,3]"), ProtocolError);
  EXPECT_THROW(parse_request_text(R"({"type":"teapot"})"), ProtocolError);
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"magic",
                       "scenario":{"name":"dataset1"}})"),
               ProtocolError);
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"heuristic:nope",
                       "scenario":{"name":"dataset1"}})"),
               ProtocolError);
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"nsga2",
                       "scenario":{"name":"galaxy5"}})"),
               ProtocolError);
  // Odd population.
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"nsga2",
                       "scenario":{"name":"dataset1"},
                       "nsga2":{"population":7}})"),
               ProtocolError);
  // ETC/EPC shape mismatch.
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"nsga2",
                       "scenario":{"etc":[[1.0]],"epc":[[1.0],[2.0]]}})"),
               ProtocolError);
  // Negative deadline.
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"nsga2",
                       "scenario":{"name":"dataset1"},"deadline_ms":-1})"),
               ProtocolError);
}

TEST(Fingerprint, IdenticalRequestsShareAKey) {
  const char* text =
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"},
          "nsga2":{"population":16,"generations":8}})";
  EXPECT_EQ(request_fingerprint(parse_request_text(text)),
            request_fingerprint(parse_request_text(text)));
}

TEST(Fingerprint, DeadlineAndQueryDoNotChangeTheKey) {
  const ServeRequest base = parse_request_text(
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"}})");
  const ServeRequest with_deadline = parse_request_text(
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"},
          "deadline_ms":50})");
  // pareto-query deliberately shares the nsga2 fingerprint: it resolves
  // against the front the equivalent nsga2 request computes.
  const ServeRequest query = parse_request_text(
      R"({"type":"allocate","mode":"pareto-query",
          "scenario":{"name":"dataset1"},"query":{"max_energy":100}})");
  EXPECT_EQ(request_fingerprint(base), request_fingerprint(with_deadline));
  EXPECT_EQ(request_fingerprint(base), request_fingerprint(query));
}

TEST(Fingerprint, ParameterChangesChangeTheKey) {
  const auto fp = [](const char* text) {
    return request_fingerprint(parse_request_text(text));
  };
  const std::string base = fp(
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"}})");
  EXPECT_NE(base, fp(R"({"type":"allocate","mode":"nsga2",
                          "scenario":{"name":"dataset2"}})"));
  EXPECT_NE(base, fp(R"({"type":"allocate","mode":"nsga2",
                          "scenario":{"name":"dataset1","seed":9}})"));
  EXPECT_NE(base, fp(R"({"type":"allocate","mode":"nsga2",
                          "scenario":{"name":"dataset1"},
                          "nsga2":{"generations":64}})"));
  EXPECT_NE(base, fp(R"({"type":"allocate","mode":"heuristic:min-energy",
                          "scenario":{"name":"dataset1"}})"));
}

TEST(Fingerprint, InlineMatricesAreHashedIn) {
  const auto fp = [](const char* etc) {
    return request_fingerprint(parse_request_text(
        std::string(R"({"type":"allocate","mode":"nsga2","scenario":{)") +
        R"("etc":)" + etc + R"(,"epc":[[5.0,5.0]],"tasks":4}})"));
  };
  EXPECT_NE(fp("[[1.0,2.0]]"), fp("[[1.0,3.0]]"));
  EXPECT_EQ(fp("[[1.0,2.0]]"), fp("[[1.0,2.0]]"));
}

TEST(Slugs, RoundTripEveryHeuristic) {
  for (const SeedHeuristic h : all_seed_heuristics()) {
    const std::optional<SeedHeuristic> back =
        heuristic_from_slug(heuristic_slug(h));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, h);
  }
  EXPECT_FALSE(heuristic_from_slug("made-up").has_value());
}

}  // namespace
}  // namespace eus::serve
