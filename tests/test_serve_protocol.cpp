// Wire-protocol unit tests: framing round trips, eager oversized-frame
// rejection, request-document validation and cache-fingerprint identity.

#include <gtest/gtest.h>

#include <string>

#include "serve/protocol.hpp"

namespace eus::serve {
namespace {

TEST(Framing, RoundTripsOnePayload) {
  const std::string payload = R"({"type":"healthz"})";
  const std::string frame = encode_frame(payload);
  ASSERT_EQ(frame.size(), payload.size() + 4);

  FrameDecoder decoder;
  EXPECT_FALSE(decoder.next().has_value());
  decoder.feed(frame.data(), frame.size());
  const std::optional<std::string> out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0U);
}

TEST(Framing, ReassemblesByteByByte) {
  const std::string frame = encode_frame("hello") + encode_frame("world");
  FrameDecoder decoder;
  std::vector<std::string> seen;
  for (const char byte : frame) {
    decoder.feed(&byte, 1);
    while (const std::optional<std::string> payload = decoder.next()) {
      seen.push_back(*payload);
    }
  }
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0], "hello");
  EXPECT_EQ(seen[1], "world");
}

TEST(Framing, EmptyPayloadIsLegal) {
  const std::string frame = encode_frame("");
  FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  const std::optional<std::string> out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(Framing, RejectsOversizedPrefixBeforePayloadArrives) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  const std::string frame = encode_frame(std::string(17, 'x'));
  // Only the 4-byte prefix: the decoder must refuse without seeing payload.
  EXPECT_THROW(decoder.feed(frame.data(), 4), ProtocolError);
}

TEST(Framing, RevalidatesPrefixExposedByPop) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  const std::string good = encode_frame("ok");
  const std::string bad = encode_frame(std::string(17, 'x'));
  const std::string stream = good + bad;
  // Feeding the good frame plus the bad prefix in one call: the pending
  // prefix (the good frame's) is fine, but popping the good frame exposes
  // the oversized one.
  decoder.feed(stream.data(), good.size() + 4);
  EXPECT_THROW(decoder.next(), ProtocolError);
}

TEST(ParseRequest, HealthzAndMetricsz) {
  const ServeRequest h = parse_request_text(R"({"type":"healthz","id":"a"})");
  EXPECT_EQ(h.kind, RequestKind::kHealthz);
  EXPECT_EQ(h.id, "a");
  const ServeRequest m = parse_request_text(R"({"type":"metricsz"})");
  EXPECT_EQ(m.kind, RequestKind::kMetricsz);
}

TEST(ParseRequest, HeuristicModeOnNamedDataset) {
  const ServeRequest r = parse_request_text(
      R"({"type":"allocate","mode":"heuristic:min-min",)"
      R"("scenario":{"name":"dataset2","seed":7}})");
  EXPECT_EQ(r.kind, RequestKind::kAllocate);
  EXPECT_EQ(r.mode, ModeKind::kHeuristic);
  EXPECT_EQ(r.heuristic, SeedHeuristic::kMinMinCompletionTime);
  EXPECT_EQ(r.scenario.name, "dataset2");
  EXPECT_EQ(r.scenario.seed, 7U);
  EXPECT_EQ(r.deadline_ms, 0.0);
}

TEST(ParseRequest, Nsga2ParametersAndDeadline) {
  const ServeRequest r = parse_request_text(
      R"({"type":"allocate","mode":"nsga2",)"
      R"("scenario":{"name":"custom","tasks":12,"window_s":30},)"
      R"("nsga2":{"population":8,"generations":5,)"
      R"("mutation_probability":0.5,"seeds":["min-energy","max-utility"]},)"
      R"("deadline_ms":250})");
  EXPECT_EQ(r.mode, ModeKind::kNsga2);
  EXPECT_EQ(r.scenario.tasks, 12U);
  EXPECT_EQ(r.nsga2.population, 8U);
  EXPECT_EQ(r.nsga2.generations, 5U);
  EXPECT_EQ(r.nsga2.mutation_probability, 0.5);
  ASSERT_EQ(r.nsga2.seeds.size(), 2U);
  EXPECT_EQ(r.nsga2.seeds[0], SeedHeuristic::kMinEnergy);
  EXPECT_EQ(r.deadline_ms, 250.0);
}

TEST(ParseRequest, InlineScenarioWithNullIneligibility) {
  const ServeRequest r = parse_request_text(
      R"({"type":"allocate","mode":"heuristic:min-energy",)"
      R"("scenario":{"etc":[[1.0,null],[2.0,3.0]],)"
      R"("epc":[[10.0,20.0],[30.0,40.0]],)"
      R"("machine_counts":[2,1],"tasks":6,"window_s":20}})");
  EXPECT_EQ(r.scenario.name, "inline");
  ASSERT_EQ(r.scenario.etc.size(), 2U);
  EXPECT_GT(r.scenario.etc[0][1], 1e100);  // null arrived as kIneligible
  ASSERT_EQ(r.scenario.machine_counts.size(), 2U);
  EXPECT_EQ(r.scenario.machine_counts[0], 2U);
}

TEST(ParseRequest, RejectsGarbage) {
  EXPECT_THROW(parse_request_text("not json at all"), ProtocolError);
  EXPECT_THROW(parse_request_text("[1,2,3]"), ProtocolError);
  EXPECT_THROW(parse_request_text(R"({"type":"teapot"})"), ProtocolError);
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"magic",
                       "scenario":{"name":"dataset1"}})"),
               ProtocolError);
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"heuristic:nope",
                       "scenario":{"name":"dataset1"}})"),
               ProtocolError);
  // Unknown names parse as catalog aliases; without a catalog entry they
  // die at resolution time instead (server-side, before queueing).
  {
    const ServeRequest alias = parse_request_text(
        R"({"type":"allocate","mode":"nsga2",
            "scenario":{"name":"galaxy5"}})");
    EXPECT_EQ(alias.scenario.name, "galaxy5");
    EXPECT_FALSE(alias.scenario.seed_set);
    EXPECT_THROW((void)resolve_scenario(alias.scenario, nullptr),
                 ProtocolError);
    const ScenarioCatalog empty;
    EXPECT_THROW((void)resolve_scenario(alias.scenario, &empty),
                 ProtocolError);
  }
  // Odd population.
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"nsga2",
                       "scenario":{"name":"dataset1"},
                       "nsga2":{"population":7}})"),
               ProtocolError);
  // ETC/EPC shape mismatch.
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"nsga2",
                       "scenario":{"etc":[[1.0]],"epc":[[1.0],[2.0]]}})"),
               ProtocolError);
  // Negative deadline.
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"nsga2",
                       "scenario":{"name":"dataset1"},"deadline_ms":-1})"),
               ProtocolError);
}

TEST(ParseRequest, AdminVerbsParseAndValidate) {
  {
    const ServeRequest r = parse_request_text(R"({"type":"adminz"})");
    EXPECT_EQ(r.kind, RequestKind::kAdminz);
    EXPECT_EQ(r.admin.action, AdminAction::kGetConfig);
  }
  {
    const ServeRequest r = parse_request_text(
        R"({"type":"adminz","action":"set-queue-depth","value":16})");
    EXPECT_EQ(r.admin.action, AdminAction::kSetQueueDepth);
    EXPECT_EQ(r.admin.value, 16U);
  }
  {
    const ServeRequest r = parse_request_text(
        R"({"type":"adminz","action":"catalog-reload","catalog":
            {"scenarios":[{"name":"quick","base":"custom","tasks":10,
                           "window_s":30,"seed":7}]}})");
    EXPECT_EQ(r.admin.action, AdminAction::kCatalogReload);
    ASSERT_EQ(r.admin.catalog.size(), 1U);
    EXPECT_EQ(r.admin.catalog[0].name, "quick");
    EXPECT_EQ(r.admin.catalog[0].base, "custom");
    EXPECT_EQ(r.admin.catalog[0].tasks, 10U);
    EXPECT_EQ(r.admin.catalog[0].seed, 7U);
  }
  // set-* verbs need an integer value >= 1.
  EXPECT_THROW(
      parse_request_text(R"({"type":"adminz","action":"set-workers"})"),
      ProtocolError);
  EXPECT_THROW(parse_request_text(
                   R"({"type":"adminz","action":"set-workers","value":0})"),
               ProtocolError);
  // catalog-reload needs a catalog object with a scenarios array.
  EXPECT_THROW(
      parse_request_text(R"({"type":"adminz","action":"catalog-reload"})"),
      ProtocolError);
  EXPECT_THROW(parse_request_text(R"({"type":"adminz","action":"flush"})"),
               ProtocolError);
}

TEST(ResolveScenario, AliasesResolveToConcreteSpecs) {
  const ScenarioCatalog catalog({
      {"quick", "custom", 99, 10, 30.0},
      {"paper", "dataset2", 20130520, 60, 120.0},
  });

  // Built-ins pass through untouched, catalog or not.
  ScenarioSpec builtin;
  builtin.name = "dataset1";
  builtin.seed = 5;
  EXPECT_EQ(resolve_scenario(builtin, &catalog).name, "dataset1");
  EXPECT_EQ(resolve_scenario(builtin, nullptr).seed, 5U);

  // An alias becomes its recipe's base + parameters.
  ScenarioSpec alias;
  alias.name = "quick";
  const ScenarioSpec resolved = resolve_scenario(alias, &catalog);
  EXPECT_EQ(resolved.name, "custom");
  EXPECT_EQ(resolved.seed, 99U);
  EXPECT_EQ(resolved.tasks, 10U);
  EXPECT_EQ(resolved.window_s, 30.0);

  // An explicit request seed overrides the recipe seed.
  alias.seed = 1234;
  alias.seed_set = true;
  EXPECT_EQ(resolve_scenario(alias, &catalog).seed, 1234U);

  // The resolved spec fingerprints identically to a direct request for
  // the same concrete scenario — aliases share cache entries.
  ScenarioSpec paper_alias;
  paper_alias.name = "paper";
  ServeRequest via_alias;
  via_alias.mode = ModeKind::kNsga2;
  via_alias.scenario = resolve_scenario(paper_alias, &catalog);
  ServeRequest direct;
  direct.mode = ModeKind::kNsga2;
  direct.scenario.name = "dataset2";
  direct.scenario.seed = 20130520;
  EXPECT_EQ(request_fingerprint(via_alias), request_fingerprint(direct));
}

TEST(Fingerprint, IdenticalRequestsShareAKey) {
  const char* text =
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"},
          "nsga2":{"population":16,"generations":8}})";
  EXPECT_EQ(request_fingerprint(parse_request_text(text)),
            request_fingerprint(parse_request_text(text)));
}

TEST(Fingerprint, DeadlineAndQueryDoNotChangeTheKey) {
  const ServeRequest base = parse_request_text(
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"}})");
  const ServeRequest with_deadline = parse_request_text(
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"},
          "deadline_ms":50})");
  // pareto-query deliberately shares the nsga2 fingerprint: it resolves
  // against the front the equivalent nsga2 request computes.
  const ServeRequest query = parse_request_text(
      R"({"type":"allocate","mode":"pareto-query",
          "scenario":{"name":"dataset1"},"query":{"max_energy":100}})");
  EXPECT_EQ(request_fingerprint(base), request_fingerprint(with_deadline));
  EXPECT_EQ(request_fingerprint(base), request_fingerprint(query));
}

TEST(Fingerprint, ParameterChangesChangeTheKey) {
  const auto fp = [](const char* text) {
    return request_fingerprint(parse_request_text(text));
  };
  const std::string base = fp(
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"}})");
  EXPECT_NE(base, fp(R"({"type":"allocate","mode":"nsga2",
                          "scenario":{"name":"dataset2"}})"));
  EXPECT_NE(base, fp(R"({"type":"allocate","mode":"nsga2",
                          "scenario":{"name":"dataset1","seed":9}})"));
  EXPECT_NE(base, fp(R"({"type":"allocate","mode":"nsga2",
                          "scenario":{"name":"dataset1"},
                          "nsga2":{"generations":64}})"));
  EXPECT_NE(base, fp(R"({"type":"allocate","mode":"heuristic:min-energy",
                          "scenario":{"name":"dataset1"}})"));
}

TEST(Fingerprint, InlineMatricesAreHashedIn) {
  const auto fp = [](const char* etc) {
    return request_fingerprint(parse_request_text(
        std::string(R"({"type":"allocate","mode":"nsga2","scenario":{)") +
        R"("etc":)" + etc + R"(,"epc":[[5.0,5.0]],"tasks":4}})"));
  };
  EXPECT_NE(fp("[[1.0,2.0]]"), fp("[[1.0,3.0]]"));
  EXPECT_EQ(fp("[[1.0,2.0]]"), fp("[[1.0,2.0]]"));
}

TEST(ParseRequest, DeltaDocumentParses) {
  const ServeRequest r = parse_request_text(
      R"({"type":"delta","id":"d1","tenant":"acme.prod-1",
          "base":{"name":"custom","tasks":40,"window_s":120,"seed":9},
          "mutations":[{"op":"add-tasks","count":6},
                       {"op":"remove-tasks","count":2},
                       {"op":"set-window","window_s":90.5},
                       {"op":"drop-machine","machine":3}],
          "polish_generations":4,"cold_fallback":false,
          "nsga2":{"population":16,"generations":32},"deadline_ms":500})");
  EXPECT_EQ(r.kind, RequestKind::kDelta);
  EXPECT_EQ(r.id, "d1");
  EXPECT_EQ(r.tenant, "acme.prod-1");
  EXPECT_EQ(r.mode, ModeKind::kNsga2);  // routed/budgeted as nsga2
  EXPECT_EQ(r.delta.base.name, "custom");
  EXPECT_EQ(r.delta.base.tasks, 40U);
  EXPECT_EQ(r.delta.base.seed, 9U);
  ASSERT_EQ(r.delta.mutations.size(), 4U);
  EXPECT_EQ(r.delta.mutations[0].op, ScenarioMutation::Op::kAddTasks);
  EXPECT_EQ(r.delta.mutations[0].count, 6U);
  EXPECT_EQ(r.delta.mutations[1].op, ScenarioMutation::Op::kRemoveTasks);
  EXPECT_EQ(r.delta.mutations[1].count, 2U);
  EXPECT_EQ(r.delta.mutations[2].op, ScenarioMutation::Op::kSetWindow);
  EXPECT_EQ(r.delta.mutations[2].window_s, 90.5);
  EXPECT_EQ(r.delta.mutations[3].op, ScenarioMutation::Op::kDropMachine);
  EXPECT_EQ(r.delta.mutations[3].machine, 3U);
  EXPECT_EQ(r.delta.polish_generations, 4U);
  EXPECT_FALSE(r.delta.cold_fallback);
  EXPECT_EQ(r.nsga2.generations, 32U);
  EXPECT_EQ(r.deadline_ms, 500.0);

  // Defaults: cold fallback on, auto polish budget.
  const ServeRequest d = parse_request_text(
      R"({"type":"delta","tenant":"t",
          "base":{"name":"custom","tasks":10},
          "mutations":[{"op":"add-tasks","count":1}]})");
  EXPECT_TRUE(d.delta.cold_fallback);
  EXPECT_EQ(d.delta.polish_generations, 0U);
}

TEST(ParseRequest, DeltaRejectsMalformedDocuments) {
  const auto reject = [](const char* text) {
    EXPECT_THROW((void)parse_request_text(text), ProtocolError) << text;
  };
  // No tenant (and tenants must match the id alphabet).
  reject(R"({"type":"delta","base":{"name":"custom"},
             "mutations":[{"op":"add-tasks","count":1}]})");
  reject(R"({"type":"delta","tenant":"has space",
             "base":{"name":"custom"},
             "mutations":[{"op":"add-tasks","count":1}]})");
  // Missing / empty mutations.
  reject(R"({"type":"delta","tenant":"t","base":{"name":"custom"}})");
  reject(R"({"type":"delta","tenant":"t","base":{"name":"custom"},
             "mutations":[]})");
  // Unknown op, zero count, bad window.
  reject(R"({"type":"delta","tenant":"t","base":{"name":"custom"},
             "mutations":[{"op":"recolor","count":1}]})");
  reject(R"({"type":"delta","tenant":"t","base":{"name":"custom"},
             "mutations":[{"op":"add-tasks","count":0}]})");
  reject(R"({"type":"delta","tenant":"t","base":{"name":"custom"},
             "mutations":[{"op":"set-window","window_s":-5}]})");
  // Inline bases are not archivable.
  reject(R"({"type":"delta","tenant":"t",
             "base":{"etc":[[1.0]],"epc":[[2.0]],"tasks":4},
             "mutations":[{"op":"add-tasks","count":1}]})");
  // An allocate tenant is optional but still validated.
  reject(R"({"type":"allocate","mode":"nsga2","tenant":"bad/slash",
             "scenario":{"name":"dataset1"}})");
}

TEST(ApplyMutations, MutatesCustomSpecsAndRefusesDatasetShapes) {
  ScenarioSpec base;
  base.name = "custom";
  base.tasks = 40;
  base.window_s = 120.0;

  ScenarioMutation add;
  add.op = ScenarioMutation::Op::kAddTasks;
  add.count = 6;
  ScenarioMutation remove;
  remove.op = ScenarioMutation::Op::kRemoveTasks;
  remove.count = 2;
  ScenarioMutation window;
  window.op = ScenarioMutation::Op::kSetWindow;
  window.window_s = 90.0;
  ScenarioMutation drop;
  drop.op = ScenarioMutation::Op::kDropMachine;
  drop.machine = 2;

  const ScenarioSpec out =
      apply_mutations(base, {add, remove, window, drop});
  EXPECT_EQ(out.tasks, 44U);
  EXPECT_EQ(out.window_s, 90.0);
  ASSERT_EQ(out.dropped_machines.size(), 1U);
  EXPECT_EQ(out.dropped_machines[0], 2U);

  // Mutating every task away refuses.
  ScenarioMutation remove_all = remove;
  remove_all.count = 40;
  EXPECT_THROW((void)apply_mutations(base, {remove_all}), ProtocolError);
  // A duplicate drop refuses.
  EXPECT_THROW((void)apply_mutations(base, {drop, drop}), ProtocolError);

  // Trace-shape mutations are custom-only; drop-machine works anywhere.
  ScenarioSpec dataset;
  dataset.name = "dataset1";
  EXPECT_THROW((void)apply_mutations(dataset, {add}), ProtocolError);
  EXPECT_THROW((void)apply_mutations(dataset, {window}), ProtocolError);
  EXPECT_EQ(apply_mutations(dataset, {drop}).dropped_machines.size(), 1U);
}

TEST(Fingerprint, ScenarioLineageConvergesOnEqualSpecs) {
  // The scenario fingerprint identifies the *scenario*, however it was
  // reached: a delta lineage that lands on the same concrete spec shares
  // the archive key with a direct request for it.
  ScenarioSpec base;
  base.name = "custom";
  base.tasks = 40;
  base.window_s = 120.0;
  ScenarioMutation window;
  window.op = ScenarioMutation::Op::kSetWindow;
  window.window_s = 90.0;

  ScenarioSpec direct = base;
  direct.window_s = 90.0;
  EXPECT_EQ(scenario_fingerprint(apply_mutations(base, {window})),
            scenario_fingerprint(direct));
  EXPECT_NE(scenario_fingerprint(base), scenario_fingerprint(direct));

  // Dropped machines are part of the scenario identity.
  ScenarioMutation drop;
  drop.op = ScenarioMutation::Op::kDropMachine;
  drop.machine = 1;
  const std::string dropped =
      scenario_fingerprint(apply_mutations(base, {drop}));
  EXPECT_NE(dropped, scenario_fingerprint(base));
  EXPECT_NE(dropped.find("drop=1"), std::string::npos);
}

TEST(Fingerprint, TenantAndDeltaKeySeparately) {
  const ServeRequest plain = parse_request_text(
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"}})");
  const ServeRequest tenanted = parse_request_text(
      R"({"type":"allocate","mode":"nsga2","tenant":"acme",
          "scenario":{"name":"dataset1"}})");
  // Warm-started fronts may strictly dominate the tenant-less result, so
  // they must never share a cache entry.
  EXPECT_NE(request_fingerprint(plain), request_fingerprint(tenanted));

  const ServeRequest delta = parse_request_text(
      R"({"type":"delta","tenant":"acme","base":{"name":"dataset1"},
          "mutations":[{"op":"drop-machine","machine":1}]})");
  const std::string delta_fp = request_fingerprint(delta);
  EXPECT_EQ(delta_fp.rfind("delta;", 0), 0U);
  EXPECT_NE(delta_fp, request_fingerprint(plain));
  EXPECT_NE(delta_fp, request_fingerprint(tenanted));
}

TEST(RenderDeltaRequest, RoundTripsThroughParse) {
  const ServeRequest original = parse_request_text(
      R"({"type":"delta","id":"x7","tenant":"acme",
          "base":{"name":"custom","tasks":30,"window_s":60,"seed":4},
          "mutations":[{"op":"add-tasks","count":3},
                       {"op":"set-window","window_s":45},
                       {"op":"drop-machine","machine":2}],
          "polish_generations":2,"cold_fallback":false,
          "nsga2":{"population":8,"generations":16},"deadline_ms":250})");
  const ServeRequest back =
      parse_request_text(render_delta_request(original));
  EXPECT_EQ(back.kind, RequestKind::kDelta);
  EXPECT_EQ(back.id, original.id);
  EXPECT_EQ(back.tenant, original.tenant);
  EXPECT_EQ(back.delta.base.name, original.delta.base.name);
  EXPECT_EQ(back.delta.base.tasks, original.delta.base.tasks);
  ASSERT_EQ(back.delta.mutations.size(), original.delta.mutations.size());
  for (std::size_t i = 0; i < back.delta.mutations.size(); ++i) {
    EXPECT_EQ(back.delta.mutations[i].op, original.delta.mutations[i].op);
  }
  EXPECT_EQ(back.delta.polish_generations,
            original.delta.polish_generations);
  EXPECT_EQ(back.delta.cold_fallback, original.delta.cold_fallback);
  EXPECT_EQ(back.deadline_ms, original.deadline_ms);
  EXPECT_EQ(request_fingerprint(back), request_fingerprint(original));
}

TEST(Slugs, RoundTripEveryHeuristic) {
  for (const SeedHeuristic h : all_seed_heuristics()) {
    const std::optional<SeedHeuristic> back =
        heuristic_from_slug(heuristic_slug(h));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, h);
  }
  EXPECT_FALSE(heuristic_from_slug("made-up").has_value());
}

}  // namespace
}  // namespace eus::serve
