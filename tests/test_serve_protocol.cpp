// Wire-protocol unit tests: framing round trips, eager oversized-frame
// rejection, request-document validation and cache-fingerprint identity.

#include <gtest/gtest.h>

#include <string>

#include "serve/protocol.hpp"

namespace eus::serve {
namespace {

TEST(Framing, RoundTripsOnePayload) {
  const std::string payload = R"({"type":"healthz"})";
  const std::string frame = encode_frame(payload);
  ASSERT_EQ(frame.size(), payload.size() + 4);

  FrameDecoder decoder;
  EXPECT_FALSE(decoder.next().has_value());
  decoder.feed(frame.data(), frame.size());
  const std::optional<std::string> out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0U);
}

TEST(Framing, ReassemblesByteByByte) {
  const std::string frame = encode_frame("hello") + encode_frame("world");
  FrameDecoder decoder;
  std::vector<std::string> seen;
  for (const char byte : frame) {
    decoder.feed(&byte, 1);
    while (const std::optional<std::string> payload = decoder.next()) {
      seen.push_back(*payload);
    }
  }
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0], "hello");
  EXPECT_EQ(seen[1], "world");
}

TEST(Framing, EmptyPayloadIsLegal) {
  const std::string frame = encode_frame("");
  FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  const std::optional<std::string> out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(Framing, RejectsOversizedPrefixBeforePayloadArrives) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  const std::string frame = encode_frame(std::string(17, 'x'));
  // Only the 4-byte prefix: the decoder must refuse without seeing payload.
  EXPECT_THROW(decoder.feed(frame.data(), 4), ProtocolError);
}

TEST(Framing, RevalidatesPrefixExposedByPop) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  const std::string good = encode_frame("ok");
  const std::string bad = encode_frame(std::string(17, 'x'));
  const std::string stream = good + bad;
  // Feeding the good frame plus the bad prefix in one call: the pending
  // prefix (the good frame's) is fine, but popping the good frame exposes
  // the oversized one.
  decoder.feed(stream.data(), good.size() + 4);
  EXPECT_THROW(decoder.next(), ProtocolError);
}

TEST(ParseRequest, HealthzAndMetricsz) {
  const ServeRequest h = parse_request_text(R"({"type":"healthz","id":"a"})");
  EXPECT_EQ(h.kind, RequestKind::kHealthz);
  EXPECT_EQ(h.id, "a");
  const ServeRequest m = parse_request_text(R"({"type":"metricsz"})");
  EXPECT_EQ(m.kind, RequestKind::kMetricsz);
}

TEST(ParseRequest, HeuristicModeOnNamedDataset) {
  const ServeRequest r = parse_request_text(
      R"({"type":"allocate","mode":"heuristic:min-min",)"
      R"("scenario":{"name":"dataset2","seed":7}})");
  EXPECT_EQ(r.kind, RequestKind::kAllocate);
  EXPECT_EQ(r.mode, ModeKind::kHeuristic);
  EXPECT_EQ(r.heuristic, SeedHeuristic::kMinMinCompletionTime);
  EXPECT_EQ(r.scenario.name, "dataset2");
  EXPECT_EQ(r.scenario.seed, 7U);
  EXPECT_EQ(r.deadline_ms, 0.0);
}

TEST(ParseRequest, Nsga2ParametersAndDeadline) {
  const ServeRequest r = parse_request_text(
      R"({"type":"allocate","mode":"nsga2",)"
      R"("scenario":{"name":"custom","tasks":12,"window_s":30},)"
      R"("nsga2":{"population":8,"generations":5,)"
      R"("mutation_probability":0.5,"seeds":["min-energy","max-utility"]},)"
      R"("deadline_ms":250})");
  EXPECT_EQ(r.mode, ModeKind::kNsga2);
  EXPECT_EQ(r.scenario.tasks, 12U);
  EXPECT_EQ(r.nsga2.population, 8U);
  EXPECT_EQ(r.nsga2.generations, 5U);
  EXPECT_EQ(r.nsga2.mutation_probability, 0.5);
  ASSERT_EQ(r.nsga2.seeds.size(), 2U);
  EXPECT_EQ(r.nsga2.seeds[0], SeedHeuristic::kMinEnergy);
  EXPECT_EQ(r.deadline_ms, 250.0);
}

TEST(ParseRequest, InlineScenarioWithNullIneligibility) {
  const ServeRequest r = parse_request_text(
      R"({"type":"allocate","mode":"heuristic:min-energy",)"
      R"("scenario":{"etc":[[1.0,null],[2.0,3.0]],)"
      R"("epc":[[10.0,20.0],[30.0,40.0]],)"
      R"("machine_counts":[2,1],"tasks":6,"window_s":20}})");
  EXPECT_EQ(r.scenario.name, "inline");
  ASSERT_EQ(r.scenario.etc.size(), 2U);
  EXPECT_GT(r.scenario.etc[0][1], 1e100);  // null arrived as kIneligible
  ASSERT_EQ(r.scenario.machine_counts.size(), 2U);
  EXPECT_EQ(r.scenario.machine_counts[0], 2U);
}

TEST(ParseRequest, RejectsGarbage) {
  EXPECT_THROW(parse_request_text("not json at all"), ProtocolError);
  EXPECT_THROW(parse_request_text("[1,2,3]"), ProtocolError);
  EXPECT_THROW(parse_request_text(R"({"type":"teapot"})"), ProtocolError);
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"magic",
                       "scenario":{"name":"dataset1"}})"),
               ProtocolError);
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"heuristic:nope",
                       "scenario":{"name":"dataset1"}})"),
               ProtocolError);
  // Unknown names parse as catalog aliases; without a catalog entry they
  // die at resolution time instead (server-side, before queueing).
  {
    const ServeRequest alias = parse_request_text(
        R"({"type":"allocate","mode":"nsga2",
            "scenario":{"name":"galaxy5"}})");
    EXPECT_EQ(alias.scenario.name, "galaxy5");
    EXPECT_FALSE(alias.scenario.seed_set);
    EXPECT_THROW((void)resolve_scenario(alias.scenario, nullptr),
                 ProtocolError);
    const ScenarioCatalog empty;
    EXPECT_THROW((void)resolve_scenario(alias.scenario, &empty),
                 ProtocolError);
  }
  // Odd population.
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"nsga2",
                       "scenario":{"name":"dataset1"},
                       "nsga2":{"population":7}})"),
               ProtocolError);
  // ETC/EPC shape mismatch.
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"nsga2",
                       "scenario":{"etc":[[1.0]],"epc":[[1.0],[2.0]]}})"),
               ProtocolError);
  // Negative deadline.
  EXPECT_THROW(parse_request_text(
                   R"({"type":"allocate","mode":"nsga2",
                       "scenario":{"name":"dataset1"},"deadline_ms":-1})"),
               ProtocolError);
}

TEST(ParseRequest, AdminVerbsParseAndValidate) {
  {
    const ServeRequest r = parse_request_text(R"({"type":"adminz"})");
    EXPECT_EQ(r.kind, RequestKind::kAdminz);
    EXPECT_EQ(r.admin.action, AdminAction::kGetConfig);
  }
  {
    const ServeRequest r = parse_request_text(
        R"({"type":"adminz","action":"set-queue-depth","value":16})");
    EXPECT_EQ(r.admin.action, AdminAction::kSetQueueDepth);
    EXPECT_EQ(r.admin.value, 16U);
  }
  {
    const ServeRequest r = parse_request_text(
        R"({"type":"adminz","action":"catalog-reload","catalog":
            {"scenarios":[{"name":"quick","base":"custom","tasks":10,
                           "window_s":30,"seed":7}]}})");
    EXPECT_EQ(r.admin.action, AdminAction::kCatalogReload);
    ASSERT_EQ(r.admin.catalog.size(), 1U);
    EXPECT_EQ(r.admin.catalog[0].name, "quick");
    EXPECT_EQ(r.admin.catalog[0].base, "custom");
    EXPECT_EQ(r.admin.catalog[0].tasks, 10U);
    EXPECT_EQ(r.admin.catalog[0].seed, 7U);
  }
  // set-* verbs need an integer value >= 1.
  EXPECT_THROW(
      parse_request_text(R"({"type":"adminz","action":"set-workers"})"),
      ProtocolError);
  EXPECT_THROW(parse_request_text(
                   R"({"type":"adminz","action":"set-workers","value":0})"),
               ProtocolError);
  // catalog-reload needs a catalog object with a scenarios array.
  EXPECT_THROW(
      parse_request_text(R"({"type":"adminz","action":"catalog-reload"})"),
      ProtocolError);
  EXPECT_THROW(parse_request_text(R"({"type":"adminz","action":"flush"})"),
               ProtocolError);
}

TEST(ResolveScenario, AliasesResolveToConcreteSpecs) {
  const ScenarioCatalog catalog({
      {"quick", "custom", 99, 10, 30.0},
      {"paper", "dataset2", 20130520, 60, 120.0},
  });

  // Built-ins pass through untouched, catalog or not.
  ScenarioSpec builtin;
  builtin.name = "dataset1";
  builtin.seed = 5;
  EXPECT_EQ(resolve_scenario(builtin, &catalog).name, "dataset1");
  EXPECT_EQ(resolve_scenario(builtin, nullptr).seed, 5U);

  // An alias becomes its recipe's base + parameters.
  ScenarioSpec alias;
  alias.name = "quick";
  const ScenarioSpec resolved = resolve_scenario(alias, &catalog);
  EXPECT_EQ(resolved.name, "custom");
  EXPECT_EQ(resolved.seed, 99U);
  EXPECT_EQ(resolved.tasks, 10U);
  EXPECT_EQ(resolved.window_s, 30.0);

  // An explicit request seed overrides the recipe seed.
  alias.seed = 1234;
  alias.seed_set = true;
  EXPECT_EQ(resolve_scenario(alias, &catalog).seed, 1234U);

  // The resolved spec fingerprints identically to a direct request for
  // the same concrete scenario — aliases share cache entries.
  ScenarioSpec paper_alias;
  paper_alias.name = "paper";
  ServeRequest via_alias;
  via_alias.mode = ModeKind::kNsga2;
  via_alias.scenario = resolve_scenario(paper_alias, &catalog);
  ServeRequest direct;
  direct.mode = ModeKind::kNsga2;
  direct.scenario.name = "dataset2";
  direct.scenario.seed = 20130520;
  EXPECT_EQ(request_fingerprint(via_alias), request_fingerprint(direct));
}

TEST(Fingerprint, IdenticalRequestsShareAKey) {
  const char* text =
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"},
          "nsga2":{"population":16,"generations":8}})";
  EXPECT_EQ(request_fingerprint(parse_request_text(text)),
            request_fingerprint(parse_request_text(text)));
}

TEST(Fingerprint, DeadlineAndQueryDoNotChangeTheKey) {
  const ServeRequest base = parse_request_text(
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"}})");
  const ServeRequest with_deadline = parse_request_text(
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"},
          "deadline_ms":50})");
  // pareto-query deliberately shares the nsga2 fingerprint: it resolves
  // against the front the equivalent nsga2 request computes.
  const ServeRequest query = parse_request_text(
      R"({"type":"allocate","mode":"pareto-query",
          "scenario":{"name":"dataset1"},"query":{"max_energy":100}})");
  EXPECT_EQ(request_fingerprint(base), request_fingerprint(with_deadline));
  EXPECT_EQ(request_fingerprint(base), request_fingerprint(query));
}

TEST(Fingerprint, ParameterChangesChangeTheKey) {
  const auto fp = [](const char* text) {
    return request_fingerprint(parse_request_text(text));
  };
  const std::string base = fp(
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"dataset1"}})");
  EXPECT_NE(base, fp(R"({"type":"allocate","mode":"nsga2",
                          "scenario":{"name":"dataset2"}})"));
  EXPECT_NE(base, fp(R"({"type":"allocate","mode":"nsga2",
                          "scenario":{"name":"dataset1","seed":9}})"));
  EXPECT_NE(base, fp(R"({"type":"allocate","mode":"nsga2",
                          "scenario":{"name":"dataset1"},
                          "nsga2":{"generations":64}})"));
  EXPECT_NE(base, fp(R"({"type":"allocate","mode":"heuristic:min-energy",
                          "scenario":{"name":"dataset1"}})"));
}

TEST(Fingerprint, InlineMatricesAreHashedIn) {
  const auto fp = [](const char* etc) {
    return request_fingerprint(parse_request_text(
        std::string(R"({"type":"allocate","mode":"nsga2","scenario":{)") +
        R"("etc":)" + etc + R"(,"epc":[[5.0,5.0]],"tasks":4}})"));
  };
  EXPECT_NE(fp("[[1.0,2.0]]"), fp("[[1.0,3.0]]"));
  EXPECT_EQ(fp("[[1.0,2.0]]"), fp("[[1.0,2.0]]"));
}

TEST(Slugs, RoundTripEveryHeuristic) {
  for (const SeedHeuristic h : all_seed_heuristics()) {
    const std::optional<SeedHeuristic> back =
        heuristic_from_slug(heuristic_slug(h));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, h);
  }
  EXPECT_FALSE(heuristic_from_slug("made-up").has_value());
}

}  // namespace
}  // namespace eus::serve
