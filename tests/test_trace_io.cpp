#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/historical.hpp"
#include "tuf/classes.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

Trace sample_trace() {
  Rng rng(5);
  TraceConfig cfg;
  cfg.num_tasks = 50;
  cfg.window_seconds = 600.0;
  return generate_trace(historical_system(), standard_tuf_classes(1200.0),
                        cfg, rng);
}

TEST(TraceIo, SerializedFormHasBothSections) {
  const std::string text = trace_to_string(sample_trace());
  EXPECT_NE(text.find("[tuf-classes]"), std::string::npos);
  EXPECT_NE(text.find("[tasks]"), std::string::npos);
  EXPECT_LT(text.find("[tuf-classes]"), text.find("[tasks]"));
}

TEST(TraceIo, RoundTripPreservesTasks) {
  const Trace original = sample_trace();
  const Trace parsed = trace_from_string(trace_to_string(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed.tasks()[i].type, original.tasks()[i].type);
    EXPECT_NEAR(parsed.tasks()[i].arrival, original.tasks()[i].arrival, 1e-6);
    EXPECT_EQ(parsed.tasks()[i].tuf_class, original.tasks()[i].tuf_class);
  }
}

TEST(TraceIo, RoundTripPreservesTufClasses) {
  const Trace original = sample_trace();
  const Trace parsed = trace_from_string(trace_to_string(original));
  const auto& oc = original.tuf_classes().classes();
  const auto& pc = parsed.tuf_classes().classes();
  ASSERT_EQ(pc.size(), oc.size());
  for (std::size_t i = 0; i < oc.size(); ++i) {
    EXPECT_EQ(pc[i].name, oc[i].name);
    EXPECT_NEAR(pc[i].weight, oc[i].weight, 1e-9);
    // Functions evaluate identically across their horizons.
    for (double t = 0.0; t <= 2.0 * oc[i].function.horizon(); t += 7.3) {
      EXPECT_NEAR(pc[i].function.value(t), oc[i].function.value(t), 1e-5)
          << oc[i].name << " at " << t;
    }
  }
}

TEST(TraceIo, RoundTripPreservesUtilityUpperBound) {
  const Trace original = sample_trace();
  const Trace parsed = trace_from_string(trace_to_string(original));
  EXPECT_NEAR(parsed.utility_upper_bound(), original.utility_upper_bound(),
              1e-6);
}

TEST(TraceIo, RejectsMissingSections) {
  EXPECT_THROW(trace_from_string("just some text"), std::runtime_error);
  EXPECT_THROW(trace_from_string("[tasks]\ntype,arrival,tuf_class\n"),
               std::runtime_error);
}

TEST(TraceIo, RejectsSectionsOutOfOrder) {
  EXPECT_THROW(
      trace_from_string("[tasks]\nx\n[tuf-classes]\ny\n"),
      std::runtime_error);
}

TEST(TraceIo, RejectsBadNumbers) {
  const std::string text =
      "[tuf-classes]\n"
      "name,weight,priority,urgency,intervals\n"
      "a,1,potato,1,{1;1;0;1;lin}\n"
      "[tasks]\n"
      "type,arrival,tuf_class\n";
  EXPECT_THROW(trace_from_string(text), std::runtime_error);
}

TEST(TraceIo, RejectsBadShape) {
  const std::string text =
      "[tuf-classes]\n"
      "name,weight,priority,urgency,intervals\n"
      "a,1,5,1,{1;1;0;1;wobbly}\n"
      "[tasks]\n"
      "type,arrival,tuf_class\n";
  EXPECT_THROW(trace_from_string(text), std::runtime_error);
}

TEST(TraceIo, RejectsUnterminatedInterval) {
  const std::string text =
      "[tuf-classes]\n"
      "name,weight,priority,urgency,intervals\n"
      "a,1,5,1,{1;1;0;1;lin\n"
      "[tasks]\n"
      "type,arrival,tuf_class\n";
  EXPECT_THROW(trace_from_string(text), std::runtime_error);
}

TEST(TraceIo, RejectsUnsortedTasks) {
  const std::string text =
      "[tuf-classes]\n"
      "name,weight,priority,urgency,intervals\n"
      "a,1,5,1,{10;1;0;1;lin}\n"
      "[tasks]\n"
      "type,arrival,tuf_class\n"
      "0,5.0,0\n"
      "0,2.0,0\n";
  // The Trace constructor itself rejects unsorted arrivals.
  EXPECT_THROW(trace_from_string(text), std::invalid_argument);
}

TEST(TraceIo, MinimalHandWrittenTraceParses) {
  const std::string text =
      "[tuf-classes]\n"
      "name,weight,priority,urgency,intervals\n"
      "steady,1,5,1,{10;1;0.5;1;lin}{5;0.5;0.5;2;const}\n"
      "[tasks]\n"
      "type,arrival,tuf_class\n"
      "0,0.0,0\n"
      "1,2.5,0\n";
  const Trace trace = trace_from_string(text);
  EXPECT_EQ(trace.size(), 2U);
  EXPECT_DOUBLE_EQ(trace.tuf_of(0).value(0.0), 5.0);
  EXPECT_DOUBLE_EQ(trace.tuf_of(0).value(5.0), 3.75);  // linear half-way x2
  // Second interval: constant 0.5 fraction, urgency modifier 2 -> effective
  // span 2.5 s after the first interval's 10 s.
  EXPECT_DOUBLE_EQ(trace.tuf_of(0).value(11.0), 2.5);
  EXPECT_DOUBLE_EQ(trace.tuf_of(0).residual(), 2.5);
}

TEST(TraceIo, EmptyTaskListRoundTrips) {
  const Trace original({}, standard_tuf_classes(100.0));
  const Trace parsed = trace_from_string(trace_to_string(original));
  EXPECT_EQ(parsed.size(), 0U);
  EXPECT_EQ(parsed.tuf_classes().classes().size(),
            original.tuf_classes().classes().size());
}

}  // namespace
}  // namespace eus
