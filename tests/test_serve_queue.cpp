// BoundedQueue semantics: capacity backpressure, FIFO order, close-then-
// drain, and a concurrent smoke across producers and consumers.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "serve/bounded_queue.hpp"

namespace eus::serve {
namespace {

TEST(BoundedQueue, RefusesPushWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // explicit backpressure, no blocking
  EXPECT_EQ(queue.size(), 2U);

  const std::optional<int> first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 1);  // FIFO
  EXPECT_TRUE(queue.try_push(3));
}

TEST(BoundedQueue, CapacityClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1U);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_FALSE(queue.try_push(2));
}

TEST(BoundedQueue, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.try_push(10));
  ASSERT_TRUE(queue.try_push(11));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.try_push(12));  // refused after close

  const std::optional<int> a = queue.pop();
  const std::optional<int> b = queue.pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 10);
  EXPECT_EQ(*b, 11);
  EXPECT_FALSE(queue.pop().has_value());  // drained: consumers exit
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> queue(1);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  consumers.reserve(3);
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&queue, &woke] {
      while (queue.pop().has_value()) {
      }
      woke.fetch_add(1);
    });
  }
  queue.close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(BoundedQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(8);

  std::mutex seen_mutex;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  consumers.reserve(2);
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (const std::optional<int> item = queue.pop()) {
        const std::lock_guard lock(seen_mutex);
        seen.insert(*item);
      }
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        // Spin on backpressure: the test wants every item delivered.
        while (!queue.try_push(std::move(value))) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.close();
  for (std::thread& t : consumers) t.join();

  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace eus::serve
