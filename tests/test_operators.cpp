#include "core/operators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/historical.hpp"
#include "tuf/builder.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary linear_library() {
  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(10.0, 0.0, 1000.0)});
  return TufClassLibrary(std::move(classes));
}

struct Fixture {
  SystemModel system = historical_system();
  Trace trace;
  UtilityEnergyProblem problem;

  explicit Fixture(std::size_t n = 40)
      : trace(make_trace(system, n)), problem(system, trace) {}

  static Trace make_trace(const SystemModel& sys, std::size_t n) {
    Rng rng(77);
    TraceConfig cfg;
    cfg.num_tasks = n;
    cfg.window_seconds = 900.0;
    return generate_trace(sys, linear_library(), cfg, rng);
  }
};

bool is_permutation_0_to_n(const std::vector<int>& order) {
  std::set<int> s(order.begin(), order.end());
  return s.size() == order.size() && *s.begin() == 0 &&
         *s.rbegin() == static_cast<int>(order.size()) - 1;
}

TEST(RandomAllocation, ShapeAndEligibility) {
  const Fixture fx;
  Rng rng(1);
  const Allocation a = random_allocation(fx.problem, rng);
  EXPECT_EQ(a.size(), fx.trace.size());
  EXPECT_TRUE(a.pstate.empty());  // no DVFS
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(fx.system.eligible(fx.trace.tasks()[i].type,
                                   static_cast<std::size_t>(a.machine[i])));
  }
}

TEST(RandomAllocation, OrderIsPermutation) {
  const Fixture fx;
  Rng rng(2);
  const Allocation a = random_allocation(fx.problem, rng);
  EXPECT_TRUE(is_permutation_0_to_n(a.order));
}

TEST(RandomAllocation, DifferentDrawsDiffer) {
  const Fixture fx;
  Rng rng(3);
  const Allocation a = random_allocation(fx.problem, rng);
  const Allocation b = random_allocation(fx.problem, rng);
  EXPECT_NE(a, b);
}

TEST(RandomAllocation, UsesAllMachinesEventually) {
  const Fixture fx(200);
  Rng rng(4);
  const Allocation a = random_allocation(fx.problem, rng);
  std::set<int> used(a.machine.begin(), a.machine.end());
  EXPECT_EQ(used.size(), fx.system.num_machines());
}

TEST(RandomAllocation, PstatesPopulatedUnderDvfs) {
  const SystemModel sys = historical_system();
  const Trace trace = Fixture::make_trace(sys, 30);
  EvaluatorOptions opts;
  opts.dvfs = make_cubic_dvfs({0.6, 0.8, 1.0});
  const UtilityEnergyProblem problem(sys, trace, opts);
  Rng rng(5);
  const Allocation a = random_allocation(problem, rng);
  ASSERT_EQ(a.pstate.size(), trace.size());
  for (const int p : a.pstate) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

TEST(Crossover, SwapsASegment) {
  Allocation a = make_trivial_allocation(10);
  Allocation b = make_trivial_allocation(10);
  std::fill(a.machine.begin(), a.machine.end(), 1);
  std::fill(b.machine.begin(), b.machine.end(), 2);
  for (std::size_t i = 0; i < 10; ++i) b.order[i] = 100 + static_cast<int>(i);

  Rng rng(6);
  crossover(a, b, rng);

  // Some contiguous segment swapped: a has 2s exactly where b has 1s.
  std::size_t swapped = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (a.machine[i] == 2) {
      EXPECT_EQ(b.machine[i], 1);
      EXPECT_GE(a.order[i], 100);  // order came along with the machine
      ++swapped;
    } else {
      EXPECT_EQ(b.machine[i], 2);
      EXPECT_LT(a.order[i], 100);
    }
  }
  EXPECT_GE(swapped, 1U);  // segment [i,j] is never empty
  // Swapped region is contiguous.
  const auto first = std::find(a.machine.begin(), a.machine.end(), 2);
  const auto last = std::find(a.machine.rbegin(), a.machine.rend(), 2);
  const auto begin_idx = static_cast<std::size_t>(first - a.machine.begin());
  const auto end_idx =
      a.machine.size() - 1 - static_cast<std::size_t>(last - a.machine.rbegin());
  for (std::size_t i = begin_idx; i <= end_idx; ++i) {
    EXPECT_EQ(a.machine[i], 2);
  }
}

TEST(Crossover, PreservesGeneMultiset) {
  // Across both chromosomes, each position's (machine, order) pair multiset
  // is invariant.
  const Fixture fx;
  Rng rng(7);
  Allocation a = random_allocation(fx.problem, rng);
  Allocation b = random_allocation(fx.problem, rng);
  const Allocation a0 = a, b0 = b;
  crossover(a, b, rng);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool kept = a.machine[i] == a0.machine[i] &&
                      a.order[i] == a0.order[i] &&
                      b.machine[i] == b0.machine[i] &&
                      b.order[i] == b0.order[i];
    const bool swapped = a.machine[i] == b0.machine[i] &&
                         a.order[i] == b0.order[i] &&
                         b.machine[i] == a0.machine[i] &&
                         b.order[i] == a0.order[i];
    EXPECT_TRUE(kept || swapped) << "gene " << i;
  }
}

TEST(Crossover, SizeMismatchThrows) {
  Allocation a = make_trivial_allocation(5);
  Allocation b = make_trivial_allocation(6);
  Rng rng(8);
  EXPECT_THROW(crossover(a, b, rng), std::invalid_argument);
}

TEST(Crossover, EmptyChromosomesNoop) {
  Allocation a, b;
  Rng rng(9);
  EXPECT_NO_THROW(crossover(a, b, rng));
}

TEST(Crossover, EligibilityPreserved) {
  // Genes travel with their position (same task), so swapping keeps
  // machine eligibility automatically.
  const Fixture fx;
  Rng rng(10);
  Allocation a = random_allocation(fx.problem, rng);
  Allocation b = random_allocation(fx.problem, rng);
  crossover(a, b, rng);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(fx.system.eligible(fx.trace.tasks()[i].type,
                                   static_cast<std::size_t>(a.machine[i])));
    EXPECT_TRUE(fx.system.eligible(fx.trace.tasks()[i].type,
                                   static_cast<std::size_t>(b.machine[i])));
  }
}

TEST(Mutate, ChangesAtMostOneMachineAndSwapsOrders) {
  const Fixture fx;
  Rng rng(11);
  Allocation a = random_allocation(fx.problem, rng);
  const Allocation before = a;
  mutate(a, fx.problem, rng);

  std::size_t machine_changes = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.machine[i] != before.machine[i]) ++machine_changes;
  }
  EXPECT_LE(machine_changes, 1U);

  // Order multiset unchanged (a swap).
  std::multiset<int> ma(a.order.begin(), a.order.end());
  std::multiset<int> mb(before.order.begin(), before.order.end());
  EXPECT_EQ(ma, mb);
}

TEST(Mutate, KeepsEligibility) {
  const Fixture fx;
  Rng rng(12);
  Allocation a = random_allocation(fx.problem, rng);
  for (int round = 0; round < 200; ++round) {
    mutate(a, fx.problem, rng);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(fx.system.eligible(fx.trace.tasks()[i].type,
                                   static_cast<std::size_t>(a.machine[i])));
  }
}

TEST(Mutate, EmptyAllocationNoop) {
  const Fixture fx;
  Allocation empty;
  Rng rng(13);
  // Size-0 genome paired with a sized problem would be invalid to evaluate,
  // but mutate() itself must not crash.
  EXPECT_NO_THROW(mutate(empty, fx.problem, rng));
}

TEST(RepairOrder, ProducesPermutationPreservingSequence) {
  Allocation a = make_trivial_allocation(5);
  a.order = {10, 3, 10, -2, 7};  // duplicates + negatives
  repair_order_permutation(a);
  EXPECT_TRUE(is_permutation_0_to_n(a.order));
  // Sequence was (by (order, idx)): task3(-2), task1(3), task4(7),
  // task0(10), task2(10).
  EXPECT_EQ(a.order[3], 0);
  EXPECT_EQ(a.order[1], 1);
  EXPECT_EQ(a.order[4], 2);
  EXPECT_EQ(a.order[0], 3);
  EXPECT_EQ(a.order[2], 4);
}

TEST(RepairOrder, IdempotentOnPermutation) {
  Allocation a = make_trivial_allocation(8);
  a.order = {3, 1, 0, 2, 7, 6, 5, 4};
  const Allocation before = a;
  repair_order_permutation(a);
  EXPECT_EQ(a.order, before.order);
}

TEST(RepairOrder, EmptyNoop) {
  Allocation a;
  EXPECT_NO_THROW(repair_order_permutation(a));
}

}  // namespace
}  // namespace eus
