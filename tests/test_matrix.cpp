#include "data/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace eus {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0U);
  EXPECT_EQ(m.cols(), 0U);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 7.0);
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), 3U);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m.at(r, c), 7.0);
  }
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), 2U);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
}

TEST(Matrix, AtIsWritable) {
  Matrix m(1, 1);
  m.at(0, 0) = 42.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 42.0);
}

TEST(Matrix, RowMeanFinite) {
  const Matrix m = Matrix::from_rows({{2.0, 4.0, kInf}});
  EXPECT_DOUBLE_EQ(m.row_mean_finite(0), 3.0);
}

TEST(Matrix, RowMeanAllInfiniteIsNaN) {
  const Matrix m = Matrix::from_rows({{kInf, kInf}});
  EXPECT_TRUE(std::isnan(m.row_mean_finite(0)));
}

TEST(Matrix, RowFiniteFilters) {
  const Matrix m = Matrix::from_rows({{1.0, kInf, 3.0}});
  EXPECT_EQ(m.row_finite(0), (std::vector<double>{1.0, 3.0}));
}

TEST(Matrix, ColFiniteFilters) {
  const Matrix m = Matrix::from_rows({{1.0}, {kInf}, {5.0}});
  EXPECT_EQ(m.col_finite(0), (std::vector<double>{1.0, 5.0}));
}

TEST(Matrix, AppendRowGrows) {
  Matrix m;
  m.append_row({1.0, 2.0});
  m.append_row({3.0, 4.0});
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, AppendRowWidthMismatchThrows) {
  Matrix m(1, 2);
  EXPECT_THROW(m.append_row({1.0}), std::invalid_argument);
}

TEST(Matrix, AppendColGrows) {
  Matrix m = Matrix::from_rows({{1.0}, {2.0}});
  m.append_col({10.0, 20.0});
  EXPECT_EQ(m.cols(), 2U);
  EXPECT_DOUBLE_EQ(m(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 20.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);  // original data preserved
}

TEST(Matrix, AppendColToEmpty) {
  Matrix m;
  m.append_col({1.0, 2.0, 3.0});
  EXPECT_EQ(m.rows(), 3U);
  EXPECT_EQ(m.cols(), 1U);
  EXPECT_DOUBLE_EQ(m(2, 0), 3.0);
}

TEST(Matrix, AppendColHeightMismatchThrows) {
  Matrix m(2, 1);
  EXPECT_THROW(m.append_col({1.0}), std::invalid_argument);
}

TEST(Matrix, EqualityCompares) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}});
  const Matrix b = Matrix::from_rows({{1.0, 2.0}});
  const Matrix c = Matrix::from_rows({{1.0, 3.0}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace eus
