// ArchiveStore unit tests: put/lookup round trips, the three capacity
// bounds (tenants, entries per tenant, genomes per entry) with LRU
// eviction, duplicate-genome rejection, admin operations (flush, per-tenant
// caps, stats), the versioned checkpoint's bit-identical round trip, and
// corruption tolerance (a bad checkpoint cold-starts, never throws).

#include "tenant/archive_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace eus::tenant {
namespace {

// Distinct genomes with mutually nondominated points: genome k puts every
// task on machine k % 3 and maps to (energy 10+k, utility 50+k) — energy
// and utility both ascend, so no point dominates another.
Allocation genome(std::size_t k, std::size_t tasks = 6) {
  Allocation a;
  a.machine.assign(tasks, static_cast<int>(k % 3));
  a.order.resize(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    a.order[i] = static_cast<int>((i + k) % tasks);
  }
  return a;
}

EUPoint point(std::size_t k) {
  return {10.0 + static_cast<double>(k), 50.0 + static_cast<double>(k)};
}

std::vector<Allocation> genomes(std::size_t from, std::size_t n) {
  std::vector<Allocation> out;
  for (std::size_t k = from; k < from + n; ++k) out.push_back(genome(k));
  return out;
}

std::vector<EUPoint> points(std::size_t from, std::size_t n) {
  std::vector<EUPoint> out;
  for (std::size_t k = from; k < from + n; ++k) out.push_back(point(k));
  return out;
}

TEST(ArchiveStore, PutThenLookupRoundTrips) {
  MetricsRegistry metrics;
  ArchiveStore store({}, &metrics);
  EXPECT_EQ(store.put("acme", "key-a", "", genomes(0, 3), points(0, 3)), 3U);

  const std::optional<ArchivedFront> hit = store.lookup("acme", "key-a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->scenario_key, "key-a");
  EXPECT_EQ(hit->lineage, "");
  EXPECT_EQ(hit->revision, 1U);
  ASSERT_EQ(hit->genomes.size(), 3U);
  ASSERT_EQ(hit->points.size(), 3U);
  // Entries come back ascending energy with genomes parallel to points.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hit->points[i], point(i)) << i;
    EXPECT_EQ(hit->genomes[i], genome(i)) << i;
  }

  EXPECT_FALSE(store.lookup("acme", "other-key").has_value());
  EXPECT_FALSE(store.lookup("ghost", "key-a").has_value());

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("archive.warm_hits"), 1U);
  EXPECT_EQ(snap.counters.at("archive.misses"), 2U);
  EXPECT_EQ(snap.gauges.at("archive.tenants"), 1.0);
  EXPECT_EQ(snap.gauges.at("archive.entries"), 1.0);
  EXPECT_EQ(snap.gauges.at("archive.genomes"), 3.0);
}

TEST(ArchiveStore, MergeKeepsNondominatedUnionAndCountsRevisions) {
  ArchiveStore store;
  store.put("t", "k", "", genomes(0, 2), points(0, 2));
  // The second put merges: a dominated point must not survive.
  std::vector<Allocation> worse = {genome(9)};
  std::vector<EUPoint> worse_points = {{99.0, 1.0}};  // dominated by all
  store.put("t", "k", "", worse, worse_points);

  const std::optional<ArchivedFront> hit = store.lookup("t", "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->revision, 2U);
  EXPECT_EQ(hit->points.size(), 2U);
  for (const EUPoint& p : hit->points) EXPECT_NE(p, worse_points[0]);
}

TEST(ArchiveStore, DuplicateGenomesAreRejectedByFingerprint) {
  ArchiveStore store;
  EXPECT_EQ(store.put("t", "k", "", genomes(0, 2), points(0, 2)), 2U);
  // Same genomes again (even with different, nondominated points): the
  // fingerprint check refuses a second copy of an identical genome.
  EXPECT_EQ(store.put("t", "k", "", genomes(0, 2), points(4, 2)), 2U);
  const std::optional<ArchivedFront> hit = store.lookup("t", "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->genomes.size(), 2U);
}

TEST(ArchiveStore, GenomesPerEntryCapBounds) {
  ArchiveConfig config;
  config.genomes_per_entry = 4;
  ArchiveStore store(config);
  EXPECT_LE(store.put("t", "k", "", genomes(0, 10), points(0, 10)), 4U);
  EXPECT_EQ(store.genomes(), 4U);
}

TEST(ArchiveStore, EntryLruEvictionPerTenant) {
  MetricsRegistry metrics;
  ArchiveConfig config;
  config.entries_per_tenant = 2;
  ArchiveStore store(config, &metrics);
  store.put("t", "k1", "", genomes(0, 1), points(0, 1));
  store.put("t", "k2", "", genomes(1, 1), points(1, 1));
  // Touch k1 so k2 becomes least recently used, then overflow.
  EXPECT_TRUE(store.lookup("t", "k1").has_value());
  store.put("t", "k3", "", genomes(2, 1), points(2, 1));

  EXPECT_TRUE(store.lookup("t", "k1").has_value());
  EXPECT_FALSE(store.lookup("t", "k2").has_value());  // evicted
  EXPECT_TRUE(store.lookup("t", "k3").has_value());
  EXPECT_GE(metrics.snapshot().counters.at("archive.evictions"), 1U);
}

TEST(ArchiveStore, TenantLruEviction) {
  MetricsRegistry metrics;
  ArchiveConfig config;
  config.max_tenants = 2;
  ArchiveStore store(config, &metrics);
  store.put("a", "k", "", genomes(0, 1), points(0, 1));
  store.put("b", "k", "", genomes(1, 1), points(1, 1));
  EXPECT_TRUE(store.lookup("a", "k").has_value());  // a is now MRU
  store.put("c", "k", "", genomes(2, 1), points(2, 1));

  EXPECT_EQ(store.tenants(), 2U);
  EXPECT_TRUE(store.lookup("a", "k").has_value());
  EXPECT_FALSE(store.lookup("b", "k").has_value());  // evicted tenant
  EXPECT_TRUE(store.lookup("c", "k").has_value());
  EXPECT_EQ(metrics.snapshot().counters.at("archive.tenant_evictions"), 1U);
}

TEST(ArchiveStore, FlushOneTenantAndAll) {
  ArchiveStore store;
  store.put("a", "k1", "", genomes(0, 1), points(0, 1));
  store.put("a", "k2", "", genomes(1, 1), points(1, 1));
  store.put("b", "k1", "", genomes(2, 1), points(2, 1));

  EXPECT_EQ(store.flush("ghost"), 0U);
  EXPECT_EQ(store.flush("a"), 2U);
  EXPECT_EQ(store.tenants(), 1U);
  EXPECT_TRUE(store.lookup("b", "k1").has_value());
  EXPECT_EQ(store.flush(""), 1U);
  EXPECT_EQ(store.tenants(), 0U);
  EXPECT_EQ(store.entries(), 0U);
}

TEST(ArchiveStore, PerTenantCapTrimsLru) {
  ArchiveStore store;
  store.put("t", "k1", "", genomes(0, 1), points(0, 1));
  store.put("t", "k2", "", genomes(1, 1), points(1, 1));
  store.put("t", "k3", "", genomes(2, 1), points(2, 1));
  EXPECT_FALSE(store.set_tenant_cap("t", 0));  // cap must be >= 1
  EXPECT_TRUE(store.set_tenant_cap("t", 1));
  EXPECT_EQ(store.entries(), 1U);
  EXPECT_TRUE(store.lookup("t", "k3").has_value());  // MRU survives

  // The cap sticks for future puts.
  store.put("t", "k4", "", genomes(3, 1), points(3, 1));
  EXPECT_EQ(store.entries(), 1U);
  EXPECT_FALSE(store.lookup("t", "k3").has_value());
}

TEST(ArchiveStore, StatsReportPerTenantState) {
  ArchiveStore store;
  store.put("a", "k1", "", genomes(0, 2), points(0, 2));
  store.put("b", "k1", "", genomes(2, 3), points(2, 3));
  (void)store.lookup("b", "k1");
  (void)store.lookup("b", "nope");

  const std::vector<TenantStats> stats = store.stats();
  ASSERT_EQ(stats.size(), 2U);
  // Most recently used first: b was just touched.
  EXPECT_EQ(stats[0].tenant, "b");
  EXPECT_EQ(stats[0].entries, 1U);
  EXPECT_EQ(stats[0].genomes, 3U);
  EXPECT_EQ(stats[0].warm_hits, 1U);
  EXPECT_EQ(stats[0].misses, 1U);
  EXPECT_EQ(stats[1].tenant, "a");
  EXPECT_EQ(stats[1].warm_hits, 0U);
}

TEST(ArchiveStore, CheckpointRoundTripsBitForBit) {
  ArchiveStore store;
  store.put("acme", "key-a", "", genomes(0, 3), points(0, 3));
  store.put("acme", "key-b", "key-a", genomes(3, 2), points(3, 2));
  store.put("beta", "key-a", "", genomes(5, 1), points(5, 1));
  (void)store.set_tenant_cap("beta", 5);

  const std::string text = store.checkpoint_string();
  EXPECT_EQ(text.rfind(ArchiveStore::kCheckpointHeader, 0), 0U);

  MetricsRegistry metrics;
  ArchiveStore restored({}, &metrics);
  ASSERT_EQ(restored.restore(text), ArchiveStore::LoadResult::kLoaded);
  EXPECT_EQ(restored.checkpoint_string(), text);  // bit-identical
  EXPECT_EQ(restored.tenants(), 2U);
  EXPECT_EQ(restored.entries(), 3U);

  const std::optional<ArchivedFront> hit = restored.lookup("acme", "key-b");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->lineage, "key-a");
  ASSERT_EQ(hit->genomes.size(), 2U);
  EXPECT_EQ(hit->genomes[0], genome(3));
  EXPECT_EQ(metrics.snapshot().counters.at("archive.checkpoint.loaded"), 1U);
}

TEST(ArchiveStore, RestoreRejectsCorruptionAndColdStarts) {
  ArchiveStore donor;
  donor.put("t", "k", "", genomes(0, 2), points(0, 2));
  const std::string good = donor.checkpoint_string();

  const std::vector<std::string> corrupt = {
      "",                                   // empty
      "garbage, not a checkpoint\n",        // wrong header
      good.substr(0, good.size() / 2),      // truncated mid-entry
      good.substr(0, good.size() - 1),      // missing trailing newline
      "eus-archive-checkpoint v2\n",        // future version
  };
  for (std::size_t i = 0; i < corrupt.size(); ++i) {
    MetricsRegistry metrics;
    ArchiveStore store({}, &metrics);
    store.put("pre", "k", "", genomes(0, 1), points(0, 1));
    EXPECT_EQ(store.restore(corrupt[i]), ArchiveStore::LoadResult::kCorrupt)
        << "case " << i;
    // Cold start: even the pre-existing contents are gone.
    EXPECT_EQ(store.tenants(), 0U) << "case " << i;
    EXPECT_EQ(store.entries(), 0U) << "case " << i;
    EXPECT_EQ(metrics.snapshot().counters.at("archive.checkpoint.corrupt"),
              1U)
        << "case " << i;
  }
}

TEST(ArchiveStore, SaveAndLoadFiles) {
  const std::string path = testing::TempDir() + "/eus_archive_ckpt_test";
  std::remove(path.c_str());

  MetricsRegistry metrics;
  ArchiveStore store({}, &metrics);
  EXPECT_EQ(store.load(path), ArchiveStore::LoadResult::kMissing);

  store.put("acme", "k", "", genomes(0, 2), points(0, 2));
  ASSERT_TRUE(store.save(path));
  EXPECT_EQ(metrics.snapshot().counters.at("archive.checkpoint.saved"), 1U);

  ArchiveStore reloaded;
  ASSERT_EQ(reloaded.load(path), ArchiveStore::LoadResult::kLoaded);
  EXPECT_EQ(reloaded.checkpoint_string(), store.checkpoint_string());

  // A corrupt file on disk cold-starts too.
  std::ofstream(path) << "scribbled over\n";
  ArchiveStore victim;
  EXPECT_EQ(victim.load(path), ArchiveStore::LoadResult::kCorrupt);
  EXPECT_EQ(victim.tenants(), 0U);
  std::remove(path.c_str());
}

TEST(ArchiveStore, ValidatesTenantIds) {
  EXPECT_TRUE(valid_tenant_id("acme"));
  EXPECT_TRUE(valid_tenant_id("a.b_c-9"));
  EXPECT_TRUE(valid_tenant_id(std::string(64, 'x')));
  EXPECT_FALSE(valid_tenant_id(""));
  EXPECT_FALSE(valid_tenant_id(std::string(65, 'x')));
  EXPECT_FALSE(valid_tenant_id("has space"));
  EXPECT_FALSE(valid_tenant_id("slash/ok"));
  EXPECT_FALSE(valid_tenant_id("semi;colon"));
}

TEST(ArchiveStore, ConcurrentPutsAndLookupsStayCoherent) {
  MetricsRegistry metrics;
  ArchiveStore store({}, &metrics);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOps = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      const std::string tenant = "tenant-" + std::to_string(t % 4);
      for (std::size_t i = 0; i < kOps; ++i) {
        const std::string key = "key-" + std::to_string(i % 3);
        store.put(tenant, key, "", genomes(i % 5, 1), points(i % 5, 1));
        (void)store.lookup(tenant, key);
        if (i % 50 == 0) (void)store.stats();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.tenants(), 4U);
  EXPECT_LE(store.entries(), 4U * 8U);
  // Every lookup followed its own put: all hits, zero misses.
  EXPECT_EQ(metrics.snapshot().counters.at("archive.warm_hits"),
            kThreads * kOps);
  EXPECT_EQ(metrics.snapshot().counters.at("archive.misses"), 0U);
}

}  // namespace
}  // namespace eus::tenant
