#include "tuf/time_utility_function.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "tuf/builder.hpp"

namespace eus {
namespace {

TEST(Tuf, EmptyIntervalsIsConstantPriority) {
  const TimeUtilityFunction f(5.0, 1.0, {});
  EXPECT_DOUBLE_EQ(f.value(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f.value(1e9), 5.0);
  EXPECT_DOUBLE_EQ(f.residual(), 5.0);
  EXPECT_DOUBLE_EQ(f.horizon(), 0.0);
}

TEST(Tuf, RejectsBadPriority) {
  EXPECT_THROW(TimeUtilityFunction(0.0, 1.0, {}), std::invalid_argument);
  EXPECT_THROW(TimeUtilityFunction(-2.0, 1.0, {}), std::invalid_argument);
}

TEST(Tuf, RejectsBadUrgency) {
  EXPECT_THROW(TimeUtilityFunction(1.0, 0.0, {}), std::invalid_argument);
}

TEST(Tuf, RejectsIncreasingInterval) {
  TufInterval iv{10.0, 0.5, 0.8, 1.0, TufInterval::Shape::kLinear};
  EXPECT_THROW(TimeUtilityFunction(1.0, 1.0, {iv}), std::invalid_argument);
}

TEST(Tuf, RejectsIncreaseAcrossBoundary) {
  TufInterval a{10.0, 1.0, 0.5, 1.0, TufInterval::Shape::kLinear};
  TufInterval b{10.0, 0.8, 0.2, 1.0, TufInterval::Shape::kLinear};
  EXPECT_THROW(TimeUtilityFunction(1.0, 1.0, {a, b}), std::invalid_argument);
}

TEST(Tuf, RejectsExponentialToZero) {
  TufInterval iv{10.0, 1.0, 0.0, 1.0, TufInterval::Shape::kExponential};
  EXPECT_THROW(TimeUtilityFunction(1.0, 1.0, {iv}), std::invalid_argument);
}

TEST(Tuf, RejectsNonPositiveDuration) {
  TufInterval iv{0.0, 1.0, 0.5, 1.0, TufInterval::Shape::kLinear};
  EXPECT_THROW(TimeUtilityFunction(1.0, 1.0, {iv}), std::invalid_argument);
}

TEST(Tuf, RejectsConstantWithSlope) {
  TufInterval iv{10.0, 1.0, 0.5, 1.0, TufInterval::Shape::kConstant};
  EXPECT_THROW(TimeUtilityFunction(1.0, 1.0, {iv}), std::invalid_argument);
}

TEST(Tuf, LinearInterpolates) {
  TufInterval iv{10.0, 1.0, 0.0, 1.0, TufInterval::Shape::kLinear};
  const TimeUtilityFunction f(10.0, 1.0, {iv});
  EXPECT_DOUBLE_EQ(f.value(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.value(5.0), 5.0);
  EXPECT_NEAR(f.value(9.999), 0.001, 1e-9);
  EXPECT_DOUBLE_EQ(f.value(10.0), 0.0);  // residual after the interval
}

TEST(Tuf, NegativeElapsedClampsToZero) {
  TufInterval iv{10.0, 1.0, 0.0, 1.0, TufInterval::Shape::kLinear};
  const TimeUtilityFunction f(10.0, 1.0, {iv});
  EXPECT_DOUBLE_EQ(f.value(-5.0), 10.0);
}

TEST(Tuf, ExponentialHitsEndpoints) {
  TufInterval iv{10.0, 1.0, 0.1, 1.0, TufInterval::Shape::kExponential};
  const TimeUtilityFunction f(20.0, 1.0, {iv});
  EXPECT_DOUBLE_EQ(f.value(0.0), 20.0);
  EXPECT_NEAR(f.value(10.0 - 1e-9), 2.0, 1e-6);
  // Halfway in log space: 20 * sqrt(0.1).
  EXPECT_NEAR(f.value(5.0), 20.0 * std::sqrt(0.1), 1e-9);
}

TEST(Tuf, UrgencyCompressesTime) {
  TufInterval iv{10.0, 1.0, 0.0, 1.0, TufInterval::Shape::kLinear};
  const TimeUtilityFunction slow(10.0, 1.0, {iv});
  const TimeUtilityFunction fast(10.0, 2.0, {iv});
  EXPECT_DOUBLE_EQ(fast.horizon(), 5.0);
  // At elapsed 2.5 the urgent task has lost half its value.
  EXPECT_DOUBLE_EQ(fast.value(2.5), 5.0);
  EXPECT_DOUBLE_EQ(slow.value(2.5), 7.5);
}

TEST(Tuf, UrgencyModifierPerInterval) {
  TufInterval iv{10.0, 1.0, 0.0, 2.0, TufInterval::Shape::kLinear};
  const TimeUtilityFunction f(10.0, 1.0, {iv});
  EXPECT_DOUBLE_EQ(f.horizon(), 5.0);
}

TEST(Tuf, StepDownBoundaryUsesNextInterval) {
  TufInterval a{10.0, 1.0, 1.0, 1.0, TufInterval::Shape::kConstant};
  TufInterval b{10.0, 0.5, 0.5, 1.0, TufInterval::Shape::kConstant};
  const TimeUtilityFunction f(8.0, 1.0, {a, b});
  EXPECT_DOUBLE_EQ(f.value(9.999), 8.0);
  EXPECT_DOUBLE_EQ(f.value(10.0), 4.0);
  EXPECT_DOUBLE_EQ(f.value(20.0), 4.0);  // residual persists
}

TEST(Tuf, MonotonicityPropertyHolds) {
  const TimeUtilityFunction f = make_figure1_tuf();
  double prev = f.value(0.0);
  for (double t = 0.0; t <= 100.0; t += 0.25) {
    const double v = f.value(t);
    EXPECT_LE(v, prev + 1e-12) << "at t=" << t;
    prev = v;
  }
}

TEST(Tuf, Figure1PaperValues) {
  // §IV-B1: "if a task finished at time 20, it would earn twelve units of
  // utility, whereas if the task finished at time 47, it would only earn
  // seven units".
  const TimeUtilityFunction f = make_figure1_tuf();
  EXPECT_NEAR(f.value(20.0), 12.0, 1e-9);
  EXPECT_NEAR(f.value(47.0), 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(f.value(0.0), 16.0);
  EXPECT_DOUBLE_EQ(f.value(90.0), 0.0);
}

TEST(TufBuilder, AbsoluteIntervalRequiresPriorityFirst) {
  TufBuilder b;
  b.priority(-1.0);
  EXPECT_THROW(b.interval_absolute(10.0, 5.0, 2.0), std::invalid_argument);
}

TEST(TufBuilder, AbsoluteIntervalConvertsToFractions) {
  TufBuilder b;
  const TimeUtilityFunction f =
      b.priority(20.0).interval_absolute(10.0, 20.0, 10.0).build();
  EXPECT_DOUBLE_EQ(f.value(5.0), 15.0);
}

TEST(TufShapes, LinearDecaySoftDeadline) {
  const TimeUtilityFunction f = make_linear_decay_tuf(10.0, 5.0, 10.0);
  EXPECT_DOUBLE_EQ(f.value(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.value(5.0), 10.0);   // inside grace
  EXPECT_DOUBLE_EQ(f.value(10.0), 5.0);   // halfway through decay
  EXPECT_DOUBLE_EQ(f.value(15.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(100.0), 0.0);
}

TEST(TufShapes, LinearDecayZeroGrace) {
  const TimeUtilityFunction f = make_linear_decay_tuf(10.0, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(f.value(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.value(5.0), 5.0);
}

TEST(TufShapes, HardDeadline) {
  const TimeUtilityFunction f = make_hard_deadline_tuf(7.0, 30.0);
  EXPECT_DOUBLE_EQ(f.value(29.9), 7.0);
  EXPECT_DOUBLE_EQ(f.value(30.1), 0.0);
  EXPECT_DOUBLE_EQ(f.residual(), 0.0);
}

TEST(TufShapes, ExponentialDecayReachesFloorThenZero) {
  const TimeUtilityFunction f = make_exponential_decay_tuf(10.0, 100.0, 0.1);
  EXPECT_DOUBLE_EQ(f.value(0.0), 10.0);
  EXPECT_GT(f.value(50.0), 1.0);
  EXPECT_DOUBLE_EQ(f.value(200.0), 0.0);
}

TEST(TufShapes, ExponentialDecayRejectsBadFloor) {
  EXPECT_THROW(make_exponential_decay_tuf(10.0, 100.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(make_exponential_decay_tuf(10.0, 100.0, 1.0),
               std::invalid_argument);
}

TEST(TufShapes, StepFunctionPlateaus) {
  const TimeUtilityFunction f = make_step_tuf(8.0, 40.0, 4);
  EXPECT_DOUBLE_EQ(f.value(0.0), 8.0);
  EXPECT_DOUBLE_EQ(f.value(15.0), 6.0);
  EXPECT_DOUBLE_EQ(f.value(25.0), 4.0);
  EXPECT_DOUBLE_EQ(f.value(35.0), 2.0);
  EXPECT_DOUBLE_EQ(f.value(50.0), 0.0);
}

TEST(TufShapes, StepRejectsZeroSteps) {
  EXPECT_THROW(make_step_tuf(8.0, 40.0, 0), std::invalid_argument);
}

TEST(PiecewiseTuf, InterpolatesSamples) {
  const TimeUtilityFunction f = make_piecewise_tuf(
      {{0.0, 10.0}, {10.0, 10.0}, {30.0, 4.0}, {40.0, 0.0}});
  EXPECT_DOUBLE_EQ(f.value(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.value(5.0), 10.0);   // constant plateau
  EXPECT_DOUBLE_EQ(f.value(20.0), 7.0);   // halfway down 10 -> 4
  EXPECT_DOUBLE_EQ(f.value(35.0), 2.0);
  EXPECT_DOUBLE_EQ(f.value(100.0), 0.0);  // final value persists
}

TEST(PiecewiseTuf, FinalNonZeroValuePersists) {
  const TimeUtilityFunction f =
      make_piecewise_tuf({{0.0, 8.0}, {10.0, 2.0}});
  EXPECT_DOUBLE_EQ(f.residual(), 2.0);
  EXPECT_DOUBLE_EQ(f.value(50.0), 2.0);
}

TEST(PiecewiseTuf, UrgencyCompresses) {
  const TimeUtilityFunction f =
      make_piecewise_tuf({{0.0, 10.0}, {10.0, 0.0}}, 2.0);
  EXPECT_DOUBLE_EQ(f.value(2.5), 5.0);
  EXPECT_DOUBLE_EQ(f.value(5.0), 0.0);
}

TEST(PiecewiseTuf, Validation) {
  EXPECT_THROW(make_piecewise_tuf({{0.0, 5.0}}), std::invalid_argument);
  EXPECT_THROW(make_piecewise_tuf({{1.0, 5.0}, {2.0, 1.0}}),
               std::invalid_argument);  // must start at t=0
  EXPECT_THROW(make_piecewise_tuf({{0.0, 0.0}, {1.0, 0.0}}),
               std::invalid_argument);  // zero initial value
  EXPECT_THROW(make_piecewise_tuf({{0.0, 5.0}, {0.0, 4.0}}),
               std::invalid_argument);  // non-increasing time
  EXPECT_THROW(make_piecewise_tuf({{0.0, 5.0}, {1.0, 6.0}}),
               std::invalid_argument);  // increasing value
  EXPECT_THROW(make_piecewise_tuf({{0.0, 5.0}, {1.0, -1.0}}),
               std::invalid_argument);  // negative value
}

TEST(PiecewiseTuf, ReproducesFigure1FromItsSamples) {
  // Sampling the Figure-1 function at its breakpoints and rebuilding
  // piecewise must reproduce it within the linear segments' accuracy.
  const TimeUtilityFunction original = make_figure1_tuf();
  std::vector<std::pair<double, double>> samples;
  for (const double t : {0.0, 10.0 - 1e-9, 10.0, 30.0 - 1e-9, 30.0,
                         64.0 - 1e-9, 64.0, 80.0}) {
    samples.push_back({t, original.value(t)});
  }
  const TimeUtilityFunction rebuilt = make_piecewise_tuf(samples);
  for (double t = 0.0; t <= 90.0; t += 0.5) {
    EXPECT_NEAR(rebuilt.value(t), original.value(t), 1e-6) << t;
  }
}

}  // namespace
}  // namespace eus
