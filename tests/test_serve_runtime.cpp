// ServeRuntime lifecycle tests: the phase machine's legal/illegal edges,
// boot/run/halt ordering, idempotent double-stop, drain-under-load
// completeness, a halt that lands during eBooting, the real signal thread,
// and the diagnostics thread's run-log snapshots.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/handlers.hpp"
#include "serve/runtime.hpp"
#include "util/json_value.hpp"
#include "util/stopwatch.hpp"

namespace eus::serve {
namespace {

util::JsonValue one_shot(std::uint16_t port, const std::string& request) {
  ClientConnection connection;
  connection.connect(port);
  return util::parse_json(connection.call(request));
}

int code_of(const util::JsonValue& doc) {
  return static_cast<int>(doc.number_or("code", -1.0));
}

constexpr const char* kSmallScenario =
    R"("scenario":{"name":"custom","tasks":10,"window_s":30,"seed":11})";

TEST(RuntimeState, OnlyLegalEdgesTransition) {
  using enum Phase;
  // The legal one-way street.
  EXPECT_TRUE(RuntimeState::legal(eBooting, eRunning));
  EXPECT_TRUE(RuntimeState::legal(eBooting, eDraining));
  EXPECT_TRUE(RuntimeState::legal(eRunning, eDraining));
  EXPECT_TRUE(RuntimeState::legal(eDraining, eHalting));
  EXPECT_TRUE(RuntimeState::legal(eHalting, eHalted));
  // No skipping, no reversing, no leaving eHalted.
  EXPECT_FALSE(RuntimeState::legal(eBooting, eHalting));
  EXPECT_FALSE(RuntimeState::legal(eBooting, eHalted));
  EXPECT_FALSE(RuntimeState::legal(eRunning, eBooting));
  EXPECT_FALSE(RuntimeState::legal(eRunning, eHalted));
  EXPECT_FALSE(RuntimeState::legal(eDraining, eRunning));
  EXPECT_FALSE(RuntimeState::legal(eDraining, eHalted));
  EXPECT_FALSE(RuntimeState::legal(eHalting, eDraining));
  EXPECT_FALSE(RuntimeState::legal(eHalted, eBooting));
  EXPECT_FALSE(RuntimeState::legal(eHalted, eRunning));

  RuntimeState state;
  EXPECT_EQ(state.phase(), eBooting);
  // An illegal edge refuses and leaves the phase untouched.
  EXPECT_FALSE(state.transition(eBooting, eHalted));
  EXPECT_EQ(state.phase(), eBooting);
  // A legal edge from the wrong current phase also refuses.
  EXPECT_FALSE(state.transition(eRunning, eDraining));
  EXPECT_EQ(state.phase(), eBooting);
  // Walk the full street.
  EXPECT_TRUE(state.transition(eBooting, eRunning));
  EXPECT_TRUE(state.transition(eRunning, eDraining));
  EXPECT_TRUE(state.transition(eDraining, eHalting));
  EXPECT_TRUE(state.transition(eHalting, eHalted));
  EXPECT_EQ(state.phase(), eHalted);
  EXPECT_FALSE(state.transition(eHalted, eBooting));
}

TEST(ServeRuntime, BootServesThenHaltsInOrder) {
  RuntimeConfig config;
  config.server.queue_depth = 4;
  config.server.workers = 1;
  ServeRuntime runtime(config);
  EXPECT_EQ(runtime.phase(), Phase::eBooting);

  runtime.boot();
  EXPECT_EQ(runtime.phase(), Phase::eRunning);
  ASSERT_NE(runtime.server().port(), 0);

  // healthz reports the live phase while running.
  const util::JsonValue health =
      one_shot(runtime.server().port(), R"({"type":"healthz"})");
  EXPECT_EQ(code_of(health), kCodeOk);
  EXPECT_EQ(health.string_or("phase", ""), "running");

  runtime.request_halt();
  runtime.run();  // returns once halted
  EXPECT_EQ(runtime.phase(), Phase::eHalted);

  // Every ordered teardown step ran exactly once.
  const MetricsSnapshot snap = runtime.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("serve.lifecycle.halt_acceptor"), 1U);
  EXPECT_EQ(snap.counters.at("serve.lifecycle.halt_queue"), 1U);
  EXPECT_EQ(snap.counters.at("serve.lifecycle.halt_workers"), 1U);
  EXPECT_EQ(snap.counters.at("serve.lifecycle.halt_recorder"), 1U);
}

TEST(ServeRuntime, DoubleHaltIsIdempotent) {
  RuntimeConfig config;
  ServeRuntime runtime(config);
  runtime.boot();
  runtime.halt();
  EXPECT_EQ(runtime.phase(), Phase::eHalted);
  runtime.halt();  // second halt: no-op, no double teardown
  EXPECT_EQ(runtime.phase(), Phase::eHalted);

  const MetricsSnapshot snap = runtime.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("serve.lifecycle.halt_acceptor"), 1U);
  EXPECT_EQ(snap.counters.at("serve.lifecycle.halt_queue"), 1U);
  EXPECT_EQ(snap.counters.at("serve.lifecycle.halt_workers"), 1U);
  EXPECT_EQ(snap.counters.at("serve.lifecycle.halt_recorder"), 1U);
}

TEST(ServeRuntime, DrainAnswersEveryAcceptedRequestUnderFullQueue) {
  RuntimeConfig config;
  config.server.queue_depth = 4;
  config.server.workers = 1;
  ServeRuntime runtime(config);
  runtime.boot();

  const std::string slow =
      std::string(R"({"type":"allocate","mode":"nsga2",)") + kSmallScenario +
      R"(,"nsga2":{"population":8,"generations":5000000},
         "deadline_ms":2000})";
  ClientConnection in_flight_client;
  ClientConnection queued_client;
  in_flight_client.connect(runtime.server().port());
  queued_client.connect(runtime.server().port());

  // One request executing, one queued, then halt mid-load.
  const Stopwatch clock;
  in_flight_client.send(slow);
  while (runtime.server().in_flight() < 1 && clock.seconds() < 15.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(runtime.server().in_flight(), 1U);
  queued_client.send(slow);
  while (runtime.server().queue_size() < 1 && clock.seconds() < 15.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(runtime.server().queue_size(), 1U);

  std::thread halter([&runtime] { runtime.halt(); });
  const util::JsonValue first = util::parse_json(in_flight_client.receive());
  const util::JsonValue second = util::parse_json(queued_client.receive());
  halter.join();

  // Both accepted requests were answered (partial: the deadline burned
  // while draining), nothing dropped, and the runtime is fully halted.
  EXPECT_EQ(code_of(first), kCodePartial);
  EXPECT_EQ(code_of(second), kCodePartial);
  EXPECT_EQ(runtime.phase(), Phase::eHalted);
  const MetricsSnapshot snap = runtime.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("serve.dropped"), 0U);

  ClientConnection late;
  EXPECT_THROW(late.connect(runtime.server().port()), ConnectError);
}

TEST(ServeRuntime, HaltDuringBootingNeverAcceptsConnections) {
  RuntimeConfig config;
  ServeRuntime runtime(config);

  // The shutdown wins the race against boot: the listener never starts.
  runtime.request_halt();
  runtime.boot();
  EXPECT_EQ(runtime.phase(), Phase::eBooting);
  EXPECT_EQ(runtime.server().port(), 0);  // never bound

  runtime.run();
  EXPECT_EQ(runtime.phase(), Phase::eHalted);

  // The teardown steps still ran (each a no-op against unstarted parts)
  // and the phase took the eBooting → eDraining edge, not eRunning.
  const MetricsSnapshot snap = runtime.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("serve.lifecycle.halt_recorder"), 1U);
}

TEST(ServeRuntime, SignalThreadConsumesSigtermAndDrains) {
  RuntimeConfig config;
  config.signal_thread = true;
  ServeRuntime runtime(config);
  runtime.boot();
  EXPECT_EQ(runtime.phase(), Phase::eRunning);

  // A process-directed SIGTERM: consumed by the runtime's signal thread
  // via sigtimedwait (the signal is blocked everywhere else), which then
  // requests the halt — run() returns once eHalted.
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
  runtime.run();
  EXPECT_EQ(runtime.phase(), Phase::eHalted);
}

TEST(ServeRuntime, DiagnosticsThreadSnapshotsMetricsIntoRunLog) {
  const std::string log_path =
      testing::TempDir() + "/eus_runtime_diag_test.jsonl";
  std::remove(log_path.c_str());
  {
    RuntimeConfig config;
    config.runlog_path = log_path;
    config.diagnostics_period_s = 0.02;
    ServeRuntime runtime(config);
    runtime.boot();
    // Serve one request so the snapshots have non-zero serve counters.
    ASSERT_EQ(
        code_of(one_shot(
            runtime.server().port(),
            std::string(
                R"({"type":"allocate","mode":"heuristic:min-energy",)") +
                kSmallScenario + "}")),
        kCodeOk);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    runtime.halt();
  }

  std::ifstream in(log_path);
  std::string line;
  std::size_t periodic = 0;
  bool saw_final = false;
  std::vector<std::string> lifecycle;
  while (std::getline(in, line)) {
    const util::JsonValue doc = util::parse_json(line);
    const std::string type = doc.string_or("type", "");
    if (type == "diagnostics") {
      ASSERT_NE(doc.get("counters"), nullptr);
      if (doc.string_or("event", "") == "periodic") ++periodic;
      if (doc.string_or("event", "") == "final") {
        saw_final = true;
        // The final snapshot is written after halt_workers: the full
        // teardown history is in it.
        EXPECT_GE(doc.get("counters")->number_or(
                      "serve.lifecycle.halt_workers", 0.0),
                  1.0);
      }
    } else if (type == "lifecycle") {
      lifecycle.push_back(doc.string_or("phase", ""));
    }
  }
  EXPECT_GE(periodic, 1U);
  EXPECT_TRUE(saw_final);
  const std::vector<std::string> expected = {"running", "draining",
                                             "halting", "halted"};
  EXPECT_EQ(lifecycle, expected);
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace eus::serve
