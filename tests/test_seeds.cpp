#include "heuristics/seeds.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "data/historical.hpp"
#include "sched/evaluator.hpp"
#include "tuf/builder.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary linear_library() {
  std::vector<TufClass> classes;
  classes.push_back({"linear", 1.0,
                     make_linear_decay_tuf(100.0, 0.0, 1800.0)});
  return TufClassLibrary(std::move(classes));
}

Trace historical_trace(std::size_t n = 60, std::uint64_t seed = 21) {
  Rng rng(seed);
  TraceConfig cfg;
  cfg.num_tasks = n;
  cfg.window_seconds = 900.0;
  return generate_trace(historical_system(), linear_library(), cfg, rng);
}

TEST(Seeds, AllHeuristicsProduceValidAllocations) {
  const SystemModel sys = historical_system();
  const Trace trace = historical_trace();
  const Evaluator ev(sys, trace);
  for (const SeedHeuristic h : all_seed_heuristics()) {
    const Allocation a = make_seed(h, sys, trace);
    EXPECT_NO_THROW(ev.validate(a)) << to_string(h);
    EXPECT_EQ(a.size(), trace.size());
  }
}

TEST(Seeds, MinEnergyPicksCheapestMachinePerTask) {
  const SystemModel sys = historical_system();
  const Trace trace = historical_trace();
  const Allocation a = min_energy_allocation(sys, trace);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::size_t type = trace.tasks()[i].type;
    const double chosen =
        sys.eec_on(type, static_cast<std::size_t>(a.machine[i]));
    for (const int m : sys.eligible_machines(type)) {
      EXPECT_LE(chosen, sys.eec_on(type, static_cast<std::size_t>(m)));
    }
  }
}

TEST(Seeds, MinEnergyIsGlobalEnergyLowerBound) {
  // Energy is timing-independent, so per-task greedy == global optimum;
  // every other heuristic must consume at least as much energy (§V-B1).
  const SystemModel sys = historical_system();
  const Trace trace = historical_trace();
  const Evaluator ev(sys, trace);
  const double floor =
      ev.evaluate(min_energy_allocation(sys, trace)).energy;
  for (const SeedHeuristic h : all_seed_heuristics()) {
    EXPECT_GE(ev.evaluate(make_seed(h, sys, trace)).energy,
              floor - 1e-9)
        << to_string(h);
  }
}

TEST(Seeds, MaxUtilityBeatsMinEnergyOnUtility) {
  const SystemModel sys = historical_system();
  const Trace trace = historical_trace(120);
  const Evaluator ev(sys, trace);
  const Evaluation min_e = ev.evaluate(min_energy_allocation(sys, trace));
  const Evaluation max_u = ev.evaluate(max_utility_allocation(sys, trace));
  EXPECT_GT(max_u.utility, min_e.utility);
}

TEST(Seeds, MinMinMinimizesMakespanReasonably) {
  const SystemModel sys = historical_system();
  const Trace trace = historical_trace(120);
  const Evaluator ev(sys, trace);
  const double mm =
      ev.evaluate(min_min_completion_time_allocation(sys, trace)).makespan;
  const double me =
      ev.evaluate(min_energy_allocation(sys, trace)).makespan;
  EXPECT_LT(mm, me);
}

TEST(Seeds, MinMinOrdersFormPermutation) {
  const SystemModel sys = historical_system();
  const Trace trace = historical_trace();
  const Allocation a = min_min_completion_time_allocation(sys, trace);
  std::set<int> orders(a.order.begin(), a.order.end());
  EXPECT_EQ(orders.size(), trace.size());
  EXPECT_EQ(*orders.begin(), 0);
  EXPECT_EQ(*orders.rbegin(), static_cast<int>(trace.size()) - 1);
}

TEST(Seeds, SingleStageHeuristicsUseArrivalOrder) {
  const SystemModel sys = historical_system();
  const Trace trace = historical_trace();
  for (const SeedHeuristic h :
       {SeedHeuristic::kMinEnergy, SeedHeuristic::kMaxUtility,
        SeedHeuristic::kMaxUtilityPerEnergy}) {
    const Allocation a = make_seed(h, sys, trace);
    for (std::size_t i = 0; i < a.order.size(); ++i) {
      EXPECT_EQ(a.order[i], static_cast<int>(i)) << to_string(h);
    }
  }
}

TEST(Seeds, MaxUpeBetweenMinEnergyAndMaxUtilityOnEnergy) {
  const SystemModel sys = historical_system();
  const Trace trace = historical_trace(120);
  const Evaluator ev(sys, trace);
  const double e_min = ev.evaluate(min_energy_allocation(sys, trace)).energy;
  const double e_upe =
      ev.evaluate(max_utility_per_energy_allocation(sys, trace)).energy;
  EXPECT_GE(e_upe, e_min - 1e-9);
}

TEST(Seeds, MaxUpeEarnsMoreUtilityPerJouleThanMinEnergy) {
  const SystemModel sys = historical_system();
  const Trace trace = historical_trace(120);
  const Evaluator ev(sys, trace);
  const Evaluation me = ev.evaluate(min_energy_allocation(sys, trace));
  const Evaluation upe =
      ev.evaluate(max_utility_per_energy_allocation(sys, trace));
  EXPECT_GE(upe.utility / upe.energy, me.utility / me.energy);
}

TEST(Seeds, MaxUpeFallsBackToMinEnergyWhenNoUtilityAvailable) {
  // A trace whose TUFs are already worthless at any completion: ratios are
  // all zero, so §V-B3's tie-break should pick minimum-energy machines.
  const SystemModel sys = historical_system();
  std::vector<TufClass> classes;
  classes.push_back({"dead", 1.0, make_hard_deadline_tuf(10.0, 1e-6)});
  const TufClassLibrary lib(std::move(classes));
  const Trace trace({{0, 0.0, 0}, {1, 1.0, 0}, {2, 2.0, 0}}, lib);

  const Allocation upe = max_utility_per_energy_allocation(sys, trace);
  const Allocation me = min_energy_allocation(sys, trace);
  EXPECT_EQ(upe.machine, me.machine);
}

TEST(Seeds, DeterministicOutputs) {
  const SystemModel sys = historical_system();
  const Trace trace = historical_trace();
  for (const SeedHeuristic h : all_seed_heuristics()) {
    EXPECT_EQ(make_seed(h, sys, trace), make_seed(h, sys, trace))
        << to_string(h);
  }
}

TEST(Seeds, NamesAreDistinct) {
  std::set<std::string> names;
  for (const SeedHeuristic h : all_seed_heuristics()) {
    names.insert(to_string(h));
  }
  EXPECT_EQ(names.size(), 4U);
}

TEST(Seeds, RespectSpecialMachineEligibility) {
  // Build a system where one special machine would be tempting for every
  // task if eligibility were ignored.
  std::vector<TaskType> tasks = {{"g", Category::kGeneral, -1},
                                 {"sp", Category::kSpecial, 1}};
  std::vector<MachineType> machines = {{"gm", Category::kGeneral},
                                       {"sm", Category::kSpecial}};
  std::vector<Machine> instances = {{0, "gm"}, {1, "sm"}};
  const Matrix etc = Matrix::from_rows({{10.0, kIneligible}, {50.0, 5.0}});
  const Matrix epc = Matrix::from_rows({{100.0, 1.0}, {100.0, 10.0}});
  const SystemModel sys(tasks, machines, instances, etc, epc);

  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(10.0, 0.0, 500.0)});
  const TufClassLibrary lib(std::move(classes));
  const Trace trace({{0, 0.0, 0}, {1, 0.0, 0}, {0, 1.0, 0}}, lib);

  const Evaluator ev(sys, trace);
  for (const SeedHeuristic h : all_seed_heuristics()) {
    EXPECT_NO_THROW(ev.validate(make_seed(h, sys, trace))) << to_string(h);
  }
  // The special task should land on its fast special machine under min-min.
  const Allocation mm = min_min_completion_time_allocation(sys, trace);
  EXPECT_EQ(mm.machine[1], 1);
}

}  // namespace
}  // namespace eus
