#include "core/study.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "data/historical.hpp"
#include "tuf/builder.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary mixed_library() {
  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(10.0, 0.0, 1500.0)});
  return TufClassLibrary(std::move(classes));
}

struct Fixture {
  SystemModel system = historical_system();
  Trace trace;
  UtilityEnergyProblem problem;

  Fixture() : trace(make_trace(system)), problem(system, trace) {}

  static Trace make_trace(const SystemModel& sys) {
    Rng rng(15);
    TraceConfig cfg;
    cfg.num_tasks = 40;
    cfg.window_seconds = 900.0;
    return generate_trace(sys, mixed_library(), cfg, rng);
  }
};

Nsga2Config tiny_config() {
  Nsga2Config cfg;
  cfg.population_size = 12;
  cfg.seed = 3;
  return cfg;
}

TEST(PopulationSpecs, PaperHasFivePopulations) {
  const auto specs = paper_population_specs();
  ASSERT_EQ(specs.size(), 5U);
  EXPECT_TRUE(specs[4].seeds.empty());  // random control
  // Markers mirror the paper's legend.
  EXPECT_EQ(specs[0].marker, 'd');
  EXPECT_EQ(specs[1].marker, 's');
  EXPECT_EQ(specs[2].marker, 'o');
  EXPECT_EQ(specs[3].marker, '^');
  EXPECT_EQ(specs[4].marker, '*');
}

TEST(PopulationSpecs, ExtendedAddsAllFourSeeds) {
  const auto specs = extended_population_specs();
  ASSERT_EQ(specs.size(), 6U);
  EXPECT_EQ(specs[5].seeds.size(), 4U);
}

TEST(Study, RejectsEmptyCheckpoints) {
  const Fixture fx;
  EXPECT_THROW(run_seeding_study(fx.problem, tiny_config(), {},
                                 paper_population_specs()),
               std::invalid_argument);
}

TEST(Study, RejectsNonIncreasingCheckpoints) {
  const Fixture fx;
  EXPECT_THROW(run_seeding_study(fx.problem, tiny_config(), {5, 5},
                                 paper_population_specs()),
               std::invalid_argument);
  EXPECT_THROW(run_seeding_study(fx.problem, tiny_config(), {5, 3},
                                 paper_population_specs()),
               std::invalid_argument);
}

TEST(Study, RejectsEmptySpecs) {
  const Fixture fx;
  EXPECT_THROW(run_seeding_study(fx.problem, tiny_config(), {1, 2}, {}),
               std::invalid_argument);
}

TEST(Study, ShapesMatchSpecsAndCheckpoints) {
  const Fixture fx;
  const auto specs = paper_population_specs();
  const StudyResult r =
      run_seeding_study(fx.problem, tiny_config(), {2, 5, 9}, specs);
  ASSERT_EQ(r.population_names.size(), 5U);
  ASSERT_EQ(r.fronts.size(), 5U);
  for (const auto& per_pop : r.fronts) {
    ASSERT_EQ(per_pop.size(), 3U);
    for (const auto& front : per_pop) EXPECT_FALSE(front.empty());
  }
  EXPECT_EQ(r.checkpoints, (std::vector<std::size_t>{2, 5, 9}));
}

TEST(Study, ProgressCallbackFires) {
  const Fixture fx;
  std::size_t calls = 0;
  (void)run_seeding_study(fx.problem, tiny_config(), {1, 2},
                          paper_population_specs(),
                          [&](const std::string&, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 5U * 2U);
}

TEST(Study, FinalFrontAccessor) {
  const Fixture fx;
  const StudyResult r = run_seeding_study(fx.problem, tiny_config(), {1, 4},
                                          paper_population_specs());
  EXPECT_EQ(r.final_front(0), r.fronts[0][1]);
}

TEST(Study, PopulationsDifferAtEarlyCheckpoints) {
  const Fixture fx;
  const StudyResult r = run_seeding_study(fx.problem, tiny_config(), {1},
                                          paper_population_specs());
  // The min-energy-seeded population must reach a lower minimum energy than
  // the random control this early (the seeds' §VI role).
  const auto& min_e_front = r.fronts[0][0];
  const auto& random_front = r.fronts[4][0];
  EXPECT_LT(min_e_front.front().energy, random_front.front().energy);
}

TEST(ScaledCheckpoints, IdentityAtScaleOne) {
  EXPECT_EQ(scaled_checkpoints({100, 1000, 10000}, 1.0),
            (std::vector<std::size_t>{100, 1000, 10000}));
}

TEST(ScaledCheckpoints, ScalesDown) {
  EXPECT_EQ(scaled_checkpoints({100, 1000}, 0.01),
            (std::vector<std::size_t>{1, 10}));
}

TEST(ScaledCheckpoints, KeepsStrictlyIncreasing) {
  const auto c = scaled_checkpoints({1, 2, 3, 4}, 0.001);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_GT(c[i], c[i - 1]);
  EXPECT_GE(c[0], 1U);
}

TEST(ScaledCheckpoints, ScalesUp) {
  EXPECT_EQ(scaled_checkpoints({100, 1000, 10000}, 10.0),
            (std::vector<std::size_t>{1000, 10000, 100000}));
}

TEST(ScaledCheckpoints, FractionalScaleUpRoundsUp) {
  // ceil(100 * 1.5) = 150, ceil(1000 * 1.5) = 1500.
  EXPECT_EQ(scaled_checkpoints({100, 1000}, 1.5),
            (std::vector<std::size_t>{150, 1500}));
}

TEST(ScaledCheckpoints, CollapsedEntriesFanOutSequentially) {
  // All four entries collapse onto 1; the strict-increase repair must fan
  // them out to 1, 2, 3, 4.
  EXPECT_EQ(scaled_checkpoints({10, 11, 12, 13}, 0.01),
            (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(ScaledCheckpoints, PartialCollapseKeepsLaterEntries) {
  // ceil lands the first two on 2/2: only the second entry needs the +1
  // repair; the third stays where the scale put it.
  EXPECT_EQ(scaled_checkpoints({150, 180, 1000}, 0.01),
            (std::vector<std::size_t>{2, 3, 10}));
}

TEST(ScaledCheckpoints, SingleEntrySchedule) {
  EXPECT_EQ(scaled_checkpoints({7}, 0.5), (std::vector<std::size_t>{4}));
  EXPECT_EQ(scaled_checkpoints({1}, 0.0001), (std::vector<std::size_t>{1}));
  EXPECT_EQ(scaled_checkpoints({1}, 1000.0),
            (std::vector<std::size_t>{1000}));
}

TEST(ScaledCheckpoints, EmptyScheduleStaysEmpty) {
  EXPECT_TRUE(scaled_checkpoints({}, 2.0).empty());
}

TEST(ScaledCheckpoints, RejectsBadScale) {
  EXPECT_THROW(scaled_checkpoints({1}, 0.0), std::invalid_argument);
  EXPECT_THROW(scaled_checkpoints({1}, -1.0), std::invalid_argument);
  EXPECT_THROW(
      scaled_checkpoints({1}, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
}

}  // namespace
}  // namespace eus
