#include "synth/moments.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace eus {
namespace {

TEST(Moments, ThrowsOnEmpty) {
  EXPECT_THROW((void)compute_moments({}), std::invalid_argument);
}

TEST(Moments, SingleValue) {
  const std::vector<double> v = {5.0};
  const Moments m = compute_moments(v);
  EXPECT_DOUBLE_EQ(m.mean, 5.0);
  EXPECT_DOUBLE_EQ(m.variance, 0.0);
  EXPECT_DOUBLE_EQ(m.cv, 0.0);
  EXPECT_DOUBLE_EQ(m.skewness, 0.0);
  EXPECT_DOUBLE_EQ(m.kurtosis, 3.0);
}

TEST(Moments, KnownSmallSample) {
  const std::vector<double> v = {2.0, 4.0, 6.0, 8.0};
  const Moments m = compute_moments(v);
  EXPECT_DOUBLE_EQ(m.mean, 5.0);
  EXPECT_DOUBLE_EQ(m.variance, 5.0);  // population variance
  EXPECT_NEAR(m.stddev, std::sqrt(5.0), 1e-12);
  EXPECT_NEAR(m.cv, std::sqrt(5.0) / 5.0, 1e-12);
  EXPECT_NEAR(m.skewness, 0.0, 1e-12);  // symmetric
}

TEST(Moments, SymmetricSampleZeroSkew) {
  const std::vector<double> v = {-3.0, -1.0, 0.0, 1.0, 3.0};
  EXPECT_NEAR(compute_moments(v).skewness, 0.0, 1e-12);
}

TEST(Moments, RightSkewPositive) {
  const std::vector<double> v = {1.0, 1.0, 1.0, 1.0, 10.0};
  EXPECT_GT(compute_moments(v).skewness, 1.0);
}

TEST(Moments, LeftSkewNegative) {
  const std::vector<double> v = {-10.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_LT(compute_moments(v).skewness, -1.0);
}

TEST(Moments, UniformSampleKurtosisNearNineFifths) {
  Rng rng(7);
  std::vector<double> v(200000);
  for (double& x : v) x = rng.uniform();
  const Moments m = compute_moments(v);
  EXPECT_NEAR(m.mean, 0.5, 0.005);
  EXPECT_NEAR(m.variance, 1.0 / 12.0, 0.002);
  EXPECT_NEAR(m.kurtosis, 1.8, 0.05);  // uniform kurtosis = 9/5
  EXPECT_NEAR(m.skewness, 0.0, 0.05);
}

TEST(Moments, NormalSampleKurtosisNearThree) {
  Rng rng(8);
  std::vector<double> v(200000);
  for (double& x : v) x = rng.normal(10.0, 2.0);
  const Moments m = compute_moments(v);
  EXPECT_NEAR(m.mean, 10.0, 0.05);
  EXPECT_NEAR(m.cv, 0.2, 0.01);
  EXPECT_NEAR(m.skewness, 0.0, 0.05);
  EXPECT_NEAR(m.kurtosis, 3.0, 0.1);
}

TEST(Moments, DegenerateSampleReportsNormalShape) {
  const std::vector<double> v = {4.0, 4.0, 4.0};
  const Moments m = compute_moments(v);
  EXPECT_DOUBLE_EQ(m.skewness, 0.0);
  EXPECT_DOUBLE_EQ(m.kurtosis, 3.0);
}

TEST(MvskDistance, IdenticalIsZero) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const Moments m = compute_moments(v);
  EXPECT_DOUBLE_EQ(mvsk_distance(m, m), 0.0);
}

TEST(MvskDistance, GrowsWithMeanShift) {
  const Moments a = compute_moments(std::vector<double>{1.0, 2.0, 3.0});
  const Moments b = compute_moments(std::vector<double>{2.0, 4.0, 6.0});
  const Moments c = compute_moments(std::vector<double>{4.0, 8.0, 12.0});
  EXPECT_GT(mvsk_distance(a, c), mvsk_distance(a, b));
}

TEST(MvskDistance, StableForSmallReferenceComponents) {
  // Near-zero reference components use absolute comparison: no blow-up.
  Moments a{};
  a.mean = 0.01;
  a.cv = 0.0;
  a.skewness = 0.0;
  a.kurtosis = 3.0;
  Moments b = a;
  b.skewness = 0.05;
  EXPECT_LT(mvsk_distance(a, b), 1.0);
}

}  // namespace
}  // namespace eus
