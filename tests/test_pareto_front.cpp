#include "pareto/front.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace eus {
namespace {

TEST(Dominance, PaperFigure2Example) {
  // A dominates B (less energy, more utility); A and C incomparable.
  const EUPoint a{5.0, 10.0};
  const EUPoint b{8.0, 7.0};
  const EUPoint c{3.0, 6.0};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_TRUE(incomparable(a, c));
  EXPECT_TRUE(incomparable(c, a));
}

TEST(Dominance, EqualPointsDoNotDominate) {
  const EUPoint p{1.0, 1.0};
  EXPECT_FALSE(dominates(p, p));
  EXPECT_TRUE(incomparable(p, p));
}

TEST(Dominance, WeakImprovementSuffices) {
  // Better in one objective, equal in the other.
  EXPECT_TRUE(dominates({1.0, 5.0}, {2.0, 5.0}));
  EXPECT_TRUE(dominates({1.0, 6.0}, {1.0, 5.0}));
}

TEST(Dominance, Antisymmetric) {
  const EUPoint a{1.0, 2.0};
  const EUPoint b{2.0, 3.0};
  EXPECT_FALSE(dominates(a, b) && dominates(b, a));
}

TEST(ParetoFront, EmptyInput) {
  EXPECT_TRUE(pareto_front({}).empty());
  EXPECT_TRUE(nondominated_indices({}).empty());
}

TEST(ParetoFront, SinglePoint) {
  const auto f = pareto_front({{1.0, 1.0}});
  ASSERT_EQ(f.size(), 1U);
}

TEST(ParetoFront, FiltersDominated) {
  const std::vector<EUPoint> pts = {
      {5.0, 10.0},  // front
      {8.0, 7.0},   // dominated by the first
      {3.0, 6.0},   // front
      {9.0, 11.0},  // front
      {6.0, 9.0},   // dominated by {5,10}
  };
  const auto f = pareto_front(pts);
  ASSERT_EQ(f.size(), 3U);
  EXPECT_EQ(f[0], (EUPoint{3.0, 6.0}));
  EXPECT_EQ(f[1], (EUPoint{5.0, 10.0}));
  EXPECT_EQ(f[2], (EUPoint{9.0, 11.0}));
}

TEST(ParetoFront, AscendingEnergyAndUtility) {
  const std::vector<EUPoint> pts = {
      {4.0, 4.0}, {1.0, 1.0}, {3.0, 3.0}, {2.0, 2.0}};
  const auto f = pareto_front(pts);
  ASSERT_EQ(f.size(), 4U);
  for (std::size_t i = 1; i < f.size(); ++i) {
    EXPECT_GT(f[i].energy, f[i - 1].energy);
    EXPECT_GT(f[i].utility, f[i - 1].utility);
  }
}

TEST(ParetoFront, KeepsExactDuplicatesOfNondominated) {
  const std::vector<EUPoint> pts = {{1.0, 1.0}, {1.0, 1.0}, {2.0, 0.5}};
  const auto idx = nondominated_indices(pts);
  EXPECT_EQ(idx.size(), 2U);  // both copies of {1,1}; {2,0.5} dominated
}

TEST(ParetoFront, SameEnergyDifferentUtility) {
  const std::vector<EUPoint> pts = {{1.0, 5.0}, {1.0, 3.0}};
  const auto f = pareto_front(pts);
  ASSERT_EQ(f.size(), 1U);
  EXPECT_DOUBLE_EQ(f[0].utility, 5.0);
}

TEST(ParetoFront, SameUtilityDifferentEnergy) {
  const std::vector<EUPoint> pts = {{1.0, 5.0}, {2.0, 5.0}};
  const auto f = pareto_front(pts);
  ASSERT_EQ(f.size(), 1U);
  EXPECT_DOUBLE_EQ(f[0].energy, 1.0);
}

TEST(ParetoFront, IndicesPointAtOriginalPositions) {
  const std::vector<EUPoint> pts = {{8.0, 7.0}, {5.0, 10.0}, {3.0, 6.0}};
  const auto idx = nondominated_indices(pts);
  ASSERT_EQ(idx.size(), 2U);
  EXPECT_EQ(idx[0], 2U);  // {3,6} first (lowest energy)
  EXPECT_EQ(idx[1], 1U);
}

TEST(ParetoFront, MutualNondominationCheck) {
  EXPECT_TRUE(is_mutually_nondominated({{1.0, 1.0}, {2.0, 2.0}}));
  EXPECT_FALSE(is_mutually_nondominated({{1.0, 2.0}, {2.0, 1.0}, {0.5, 3.0}}));
  EXPECT_TRUE(is_mutually_nondominated({}));
}

TEST(ParetoFront, OutputIsMutuallyNondominated) {
  std::vector<EUPoint> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({static_cast<double>(i % 13), static_cast<double>(i % 7)});
  }
  EXPECT_TRUE(is_mutually_nondominated(pareto_front(pts)));
}

TEST(ParetoFront, EveryInputDominatedByOrOnFront) {
  std::vector<EUPoint> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({static_cast<double>((i * 17) % 23),
                   static_cast<double>((i * 11) % 19)});
  }
  const auto front = pareto_front(pts);
  for (const auto& p : pts) {
    const bool on_front =
        std::find(front.begin(), front.end(), p) != front.end();
    bool dominated = false;
    for (const auto& f : front) {
      if (dominates(f, p)) dominated = true;
    }
    EXPECT_TRUE(on_front || dominated);
  }
}

}  // namespace
}  // namespace eus
