#include "core/simulated_annealing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/operators.hpp"
#include "data/historical.hpp"
#include "heuristics/seeds.hpp"
#include "tuf/builder.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary library() {
  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(10.0, 0.0, 1500.0)});
  return TufClassLibrary(std::move(classes));
}

struct Fixture {
  SystemModel system = historical_system();
  Trace trace;
  UtilityEnergyProblem problem;

  Fixture() : trace(make_trace(system)), problem(system, trace) {}

  static Trace make_trace(const SystemModel& sys) {
    Rng rng(111);
    TraceConfig cfg;
    cfg.num_tasks = 40;
    cfg.window_seconds = 700.0;
    return generate_trace(sys, library(), cfg, rng);
  }
};

TEST(SimulatedAnnealing, OptionValidation) {
  const Fixture fx;
  Rng rng(1);
  Allocation start = random_allocation(fx.problem, rng);
  SaOptions bad;
  bad.lambda = 2.0;
  EXPECT_THROW((void)simulated_annealing(fx.problem, start, bad, rng),
               std::invalid_argument);
  bad = {};
  bad.cooling = 1.0;
  EXPECT_THROW((void)simulated_annealing(fx.problem, start, bad, rng),
               std::invalid_argument);
  bad = {};
  bad.steps_per_temperature = 0;
  EXPECT_THROW((void)simulated_annealing(fx.problem, start, bad, rng),
               std::invalid_argument);
  EXPECT_THROW((void)simulated_annealing(fx.problem,
                                         make_trivial_allocation(3), {}, rng),
               std::invalid_argument);
}

TEST(SimulatedAnnealing, RespectsBudgetAndReportsTruthfully) {
  const Fixture fx;
  Rng rng(2);
  SaOptions options;
  options.max_evaluations = 150;
  const SaResult r = simulated_annealing(
      fx.problem, random_allocation(fx.problem, rng), options, rng);
  EXPECT_LE(r.evaluations, 150U);
  const EUPoint check = fx.problem.evaluate(r.allocation);
  EXPECT_DOUBLE_EQ(check.energy, r.objectives.energy);
  EXPECT_DOUBLE_EQ(check.utility, r.objectives.utility);
  EXPECT_NO_THROW(fx.problem.evaluator().validate(r.allocation));
}

TEST(SimulatedAnnealing, ImprovesOverRandomStart) {
  const Fixture fx;
  Rng rng(3);
  const Allocation start = random_allocation(fx.problem, rng);
  const EUPoint before = fx.problem.evaluate(start);
  SaOptions options;
  options.lambda = 1.0;  // pure utility
  options.max_evaluations = 800;
  const SaResult r = simulated_annealing(fx.problem, start, options, rng);
  EXPECT_GT(r.objectives.utility, before.utility);
}

TEST(SimulatedAnnealing, LambdaZeroApproachesEnergyFloor) {
  const Fixture fx;
  Rng rng(4);
  SaOptions options;
  options.lambda = 0.0;
  options.max_evaluations = 2000;
  const SaResult r = simulated_annealing(
      fx.problem, random_allocation(fx.problem, rng), options, rng);
  const double floor =
      fx.problem.evaluate(min_energy_allocation(fx.system, fx.trace)).energy;
  EXPECT_LT(r.objectives.energy, 1.15 * floor);
  EXPECT_GE(r.objectives.energy, floor - 1e-9);
}

TEST(SimulatedAnnealing, AcceptsUphillMovesEarly) {
  const Fixture fx;
  Rng rng(5);
  SaOptions options;
  options.max_evaluations = 500;
  options.initial_temperature = 2.0;  // hot: plenty of uphill acceptance
  const SaResult r = simulated_annealing(
      fx.problem, random_allocation(fx.problem, rng), options, rng);
  // Accepted moves must exceed what pure hill climbing would explain if
  // the chain were stuck; with a hot start, acceptance is plentiful.
  EXPECT_GT(r.accepted, 50U);
}

TEST(SimulatedAnnealing, DeterministicGivenRngState) {
  const Fixture fx;
  Rng a(6), b(6);
  const Allocation start = min_energy_allocation(fx.system, fx.trace);
  const SaResult ra = simulated_annealing(fx.problem, start, {}, a);
  const SaResult rb = simulated_annealing(fx.problem, start, {}, b);
  EXPECT_EQ(ra.allocation, rb.allocation);
  EXPECT_EQ(ra.accepted, rb.accepted);
}

TEST(WeightedSumSweep, OnePointPerWeight) {
  const Fixture fx;
  Rng rng(7);
  const auto results =
      weighted_sum_sweep(fx.problem, {0.0, 0.5, 1.0}, 900, rng);
  ASSERT_EQ(results.size(), 3U);
  for (const auto& r : results) {
    EXPECT_LE(r.evaluations, 300U);
    EXPECT_NO_THROW(fx.problem.evaluator().validate(r.allocation));
  }
  // The weight sweep orders the ends correctly on average: lambda=0 end
  // cheaper than lambda=1 end.
  EXPECT_LT(results.front().objectives.energy,
            results.back().objectives.energy);
  EXPECT_LT(results.front().objectives.utility,
            results.back().objectives.utility);
}

TEST(WeightedSumSweep, RejectsEmptyWeights) {
  const Fixture fx;
  Rng rng(8);
  EXPECT_THROW((void)weighted_sum_sweep(fx.problem, {}, 100, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace eus
