// Randomized differential suite for the incremental delta-evaluator: the
// full simulator is the oracle, and every delta-path result — across option
// modes, fallback flavors, sort paths, and execution modes — must match it
// bit for bit (see docs/evaluator.md for the contract).  The min-min
// per-type-heap collapse is held to the same standard against a textbook
// O(T^2 M) reference.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fitness_cache.hpp"
#include "core/nsga2.hpp"
#include "core/problem.hpp"
#include "heuristics/seeds.hpp"
#include "sched/dvfs.hpp"
#include "sched/evaluator.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"
#include "workload/scenarios.hpp"

namespace eus {
namespace {

void expect_bit_identical(const Evaluation& a, const Evaluation& b) {
  // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is bit-identity, not
  // closeness.  (No NaNs are produced, so == is exact equality.)
  EXPECT_EQ(a.utility, b.utility);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.idle_energy, b.idle_energy);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.dropped, b.dropped);
}

void expect_states_equal(const EvalState& a, const EvalState& b) {
  ASSERT_EQ(a.machines.size(), b.machines.size());
  for (std::size_t m = 0; m < a.machines.size(); ++m) {
    EXPECT_EQ(a.machines[m], b.machines[m]) << "machine " << m;
  }
}

Allocation random_valid_allocation(const SystemModel& sys,
                                   const Trace& trace, Rng& rng,
                                   std::size_t num_pstates) {
  const std::size_t n = trace.size();
  Allocation a;
  a.machine.resize(n);
  a.order.resize(n);
  if (num_pstates > 0) a.pstate.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& eligible = sys.eligible_machines(trace.tasks()[i].type);
    a.machine[i] = eligible[rng.below(eligible.size())];
    a.order[i] = static_cast<int>(rng.below(n));
    if (num_pstates > 0) {
      a.pstate[i] = static_cast<int>(rng.below(num_pstates));
    }
  }
  return a;
}

/// Mutates `genes` random genes of a copy of `parent`, returning the child
/// and appending every edited index to `touched` — plus the occasional
/// listed-but-unchanged gene and duplicate, both of which the contract
/// explicitly allows.
Allocation mutate_genes(const Allocation& parent, const SystemModel& sys,
                        const Trace& trace, Rng& rng, std::size_t genes,
                        std::size_t num_pstates,
                        std::vector<std::uint32_t>& touched) {
  Allocation child = parent;
  const std::size_t n = parent.machine.size();
  for (std::size_t k = 0; k < genes; ++k) {
    const auto g = static_cast<std::uint32_t>(rng.below(n));
    switch (rng.below(num_pstates > 0 ? 4 : 3)) {
      case 0: {
        const auto& eligible =
            sys.eligible_machines(trace.tasks()[g].type);
        child.machine[g] = eligible[rng.below(eligible.size())];
        break;
      }
      case 1:
        child.order[g] = static_cast<int>(rng.below(n));
        break;
      case 2:
        // Listed but unchanged: touched may be a superset of the diff.
        break;
      default:
        child.pstate[g] = static_cast<int>(rng.below(num_pstates));
        break;
    }
    touched.push_back(g);
    if (rng.chance(0.2)) touched.push_back(g);  // duplicates are allowed
  }
  return child;
}

struct OptionVariant {
  std::string name;
  EvaluatorOptions options;
};

std::vector<OptionVariant> option_variants(const SystemModel& sys) {
  std::vector<OptionVariant> variants;
  variants.push_back({"plain", {}});

  EvaluatorOptions drop;
  drop.drop_worthless_tasks = true;
  drop.drop_threshold = 5.0;
  variants.push_back({"dropping", drop});

  EvaluatorOptions dvfs;
  dvfs.dvfs = make_cubic_dvfs({1.0, 0.8, 0.6});
  variants.push_back({"dvfs", dvfs});

  EvaluatorOptions idle;
  idle.idle_watts.resize(sys.num_machine_types());
  for (std::size_t t = 0; t < idle.idle_watts.size(); ++t) {
    idle.idle_watts[t] = 5.0 + 2.0 * static_cast<double>(t);
  }
  variants.push_back({"idle-watts", idle});

  EvaluatorOptions all = drop;
  all.dvfs = dvfs.dvfs;
  all.idle_watts = idle.idle_watts;
  variants.push_back({"all-options", all});
  return variants;
}

std::size_t pstates_of(const EvaluatorOptions& options) {
  return options.dvfs ? options.dvfs->size() : 0;
}

TEST(EvaluatorDifferential, DeltaMatchesFullOracleAcrossOptionModes) {
  const Scenario scenario = make_dataset1(11);
  for (const OptionVariant& variant : option_variants(scenario.system)) {
    SCOPED_TRACE(variant.name);
    const Evaluator ev(scenario.system, scenario.trace, variant.options);
    const std::size_t num_pstates = pstates_of(variant.options);
    Rng rng(42);
    for (int round = 0; round < 25; ++round) {
      const Allocation parent = random_valid_allocation(
          scenario.system, scenario.trace, rng, num_pstates);
      EvalState parent_state;
      ev.evaluate(parent, parent_state);

      std::vector<std::uint32_t> touched;
      const Allocation child =
          mutate_genes(parent, scenario.system, scenario.trace, rng,
                       1 + rng.below(10), num_pstates, touched);

      EvalState delta_state;
      const Evaluation delta = ev.evaluate_incremental(
          child, parent, parent_state, touched, delta_state);

      EvalState oracle_state;
      const Evaluation oracle = ev.evaluate(child, oracle_state);
      expect_bit_identical(delta, oracle);
      expect_states_equal(delta_state, oracle_state);

      // trusted_child rides the same structural-validity contract.
      EvalState trusted_state;
      const Evaluation trusted = ev.evaluate_incremental(
          child, parent, parent_state, touched, trusted_state,
          /*trusted_child=*/true);
      expect_bit_identical(trusted, oracle);
      expect_states_equal(trusted_state, oracle_state);
    }
  }
}

TEST(EvaluatorDifferential, LargeDeltaFallsBackAndStaysExact) {
  const Scenario scenario = make_dataset1(12);
  const Evaluator ev(scenario.system, scenario.trace);
  Rng rng(7);
  const Allocation parent =
      random_valid_allocation(scenario.system, scenario.trace, rng, 0);
  EvalState parent_state;
  ev.evaluate(parent, parent_state);

  // Touch ~80% of the genome: past T/2 the delta path must bail to the
  // full simulator, still filling out_state.
  std::vector<std::uint32_t> touched;
  const std::size_t n = scenario.trace.size();
  const Allocation child =
      mutate_genes(parent, scenario.system, scenario.trace, rng,
                   (n * 4) / 5, 0, touched);

  EvalState delta_state;
  const Evaluation delta = ev.evaluate_incremental(child, parent,
                                                   parent_state, touched,
                                                   delta_state);
  EvalState oracle_state;
  const Evaluation oracle = ev.evaluate(child, oracle_state);
  expect_bit_identical(delta, oracle);
  expect_states_equal(delta_state, oracle_state);
}

TEST(EvaluatorDifferential, InvalidParentStateFallsBack) {
  const Scenario scenario = make_dataset1(13);
  const Evaluator ev(scenario.system, scenario.trace);
  Rng rng(9);
  const Allocation parent =
      random_valid_allocation(scenario.system, scenario.trace, rng, 0);
  std::vector<std::uint32_t> touched;
  const Allocation child = mutate_genes(parent, scenario.system,
                                        scenario.trace, rng, 3, 0, touched);

  const EvalState empty_state;  // default-constructed == invalid
  EvalState out_state;
  const Evaluation via_fallback = ev.evaluate_incremental(
      child, parent, empty_state, touched, out_state);
  EvalState oracle_state;
  const Evaluation oracle = ev.evaluate(child, oracle_state);
  expect_bit_identical(via_fallback, oracle);
  expect_states_equal(out_state, oracle_state);
}

TEST(EvaluatorDifferential, IncrementalDisabledMatchesFullPath) {
  const Scenario scenario = make_dataset1(14);
  EvaluatorOptions options;
  options.incremental = false;  // the EUS_INCREMENTAL=off configuration
  const Evaluator off(scenario.system, scenario.trace, options);
  const Evaluator on(scenario.system, scenario.trace);
  EXPECT_FALSE(off.incremental_on());

  Rng rng(21);
  const Allocation parent =
      random_valid_allocation(scenario.system, scenario.trace, rng, 0);
  EvalState parent_on;
  EvalState parent_off;
  expect_bit_identical(on.evaluate(parent, parent_on),
                       off.evaluate(parent, parent_off));

  std::vector<std::uint32_t> touched;
  const Allocation child = mutate_genes(parent, scenario.system,
                                        scenario.trace, rng, 4, 0, touched);
  EvalState state_on;
  EvalState state_off;
  const Evaluation delta_on = on.evaluate_incremental(
      child, parent, parent_on, touched, state_on);
  const Evaluation delta_off = off.evaluate_incremental(
      child, parent, parent_off, touched, state_off);
  expect_bit_identical(delta_on, delta_off);
  expect_states_equal(state_on, state_off);
}

TEST(EvaluatorDifferential, ComparisonSortPathMatchesCountingSort) {
  // Orders outside [0, T) force the comparison-sort fallback; shifting
  // every order by a constant preserves ranks, so objectives must be
  // bit-identical to the counting-sorted original.
  const Scenario scenario = make_dataset1(15);
  const Evaluator ev(scenario.system, scenario.trace);
  Rng rng(33);
  const Allocation base =
      random_valid_allocation(scenario.system, scenario.trace, rng, 0);
  EvalState base_state;
  const Evaluation counted = ev.evaluate(base, base_state);

  const auto n = static_cast<int>(scenario.trace.size());
  Allocation shifted_up = base;
  Allocation shifted_down = base;
  for (std::size_t i = 0; i < base.order.size(); ++i) {
    shifted_up.order[i] = base.order[i] + 10 * n;
    shifted_down.order[i] = base.order[i] - 10 * n;
  }
  EvalState up_state;
  EvalState down_state;
  expect_bit_identical(counted, ev.evaluate(shifted_up, up_state));
  expect_bit_identical(counted, ev.evaluate(shifted_down, down_state));
  expect_states_equal(base_state, up_state);
  expect_states_equal(base_state, down_state);
}

TEST(EvaluatorDifferential, TrustedEvaluationMatchesValidated) {
  const Scenario scenario = make_dataset1(16);
  for (const OptionVariant& variant : option_variants(scenario.system)) {
    SCOPED_TRACE(variant.name);
    const Evaluator ev(scenario.system, scenario.trace, variant.options);
    Rng rng(5);
    const Allocation a = random_valid_allocation(
        scenario.system, scenario.trace, rng, pstates_of(variant.options));
    EvalState validated;
    EvalState trusted;
    expect_bit_identical(ev.evaluate(a, validated),
                         ev.evaluate_trusted(a, trusted));
    expect_states_equal(validated, trusted);
  }
}

TEST(EvaluatorDifferential, FlattenedTufReplayMatchesTufObjects) {
  // The evaluator's span-table replay (including the precomputed
  // exponential log-ratio) must reproduce TimeUtilityFunction::value
  // exactly — the TUF objects are an independent implementation.
  const Scenario scenario = make_dataset2(17);
  const Evaluator ev(scenario.system, scenario.trace);
  Rng rng(3);
  const Allocation a =
      random_valid_allocation(scenario.system, scenario.trace, rng, 0);
  const auto [total, outcomes] = ev.detail(a);
  ASSERT_EQ(outcomes.size(), scenario.trace.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].dropped) continue;
    const double elapsed =
        outcomes[i].finish - scenario.trace.tasks()[i].arrival;
    EXPECT_EQ(outcomes[i].utility, scenario.trace.tuf_of(i).value(elapsed))
        << "task " << i;
  }
}

TEST(EvaluatorDifferential, TelemetryCountsHitsAndFallbacks) {
  const Scenario scenario = make_dataset1(18);
  MetricsRegistry metrics;
  EvaluatorOptions options;
  options.metrics = &metrics;
  const Evaluator ev(scenario.system, scenario.trace, options);
  Counter& hits = metrics.counter("evaluator.incremental.hits");
  Counter& fallbacks = metrics.counter("evaluator.incremental.fallbacks");
  Counter& machines =
      metrics.counter("evaluator.incremental.machines_resimulated");

  Rng rng(8);
  const Allocation parent =
      random_valid_allocation(scenario.system, scenario.trace, rng, 0);
  EvalState parent_state;
  ev.evaluate(parent, parent_state);

  // Small delta -> hit, with at least one machine re-simulated.
  std::vector<std::uint32_t> touched;
  const Allocation child = mutate_genes(parent, scenario.system,
                                        scenario.trace, rng, 2, 0, touched);
  EvalState out;
  ev.evaluate_incremental(child, parent, parent_state, touched, out);
  EXPECT_EQ(hits.value(), 1U);
  EXPECT_EQ(fallbacks.value(), 0U);
  EXPECT_GE(machines.value(), 1U);

  // Invalid parent state -> fallback.
  const EvalState empty_state;
  ev.evaluate_incremental(child, parent, empty_state, touched, out);
  EXPECT_EQ(hits.value(), 1U);
  EXPECT_EQ(fallbacks.value(), 1U);
}

TEST(EvaluatorDifferential, FrontsInvariantAcrossExecutionModes) {
  // The same seed must yield bit-identical fronts whether evaluation is
  // interleaved (serial), pooled, delta-evaluated, or memoized: the
  // evaluator is a pure function and none of these paths may perturb it.
  const Scenario scenario = make_dataset1(19);

  const auto front_for = [&](bool incremental, std::size_t threads,
                             bool with_cache) {
    EvaluatorOptions options;
    options.incremental = incremental;
    const UtilityEnergyProblem problem(scenario.system, scenario.trace,
                                       std::move(options));
    FitnessCacheConfig cache_config;
    cache_config.capacity = 4096;
    FitnessCache cache(cache_config);
    Nsga2Config config;
    config.population_size = 16;
    config.threads = threads;
    config.seed = 123;
    if (with_cache) config.cache = &cache;
    Nsga2 algorithm(problem, config);
    algorithm.initialize({});
    algorithm.iterate(5);
    return algorithm.front_points();
  };

  const std::vector<EUPoint> reference = front_for(true, 1, false);
  ASSERT_FALSE(reference.empty());
  for (const bool incremental : {true, false}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      for (const bool with_cache : {false, true}) {
        SCOPED_TRACE(std::string("incremental=") +
                     (incremental ? "on" : "off") + " threads=" +
                     std::to_string(threads) + " cache=" +
                     (with_cache ? "on" : "off"));
        EXPECT_EQ(front_for(incremental, threads, with_cache), reference);
      }
    }
  }
}

/// Textbook O(T^2 M) min-min: every step recomputes each unmapped task's
/// best completion over its eligible machines, then maps the (completion,
/// index)-minimal task.  The production per-type-heap version must
/// reproduce this allocation exactly.
Allocation min_min_reference(const SystemModel& system, const Trace& trace) {
  const std::size_t tasks = trace.size();
  Allocation a;
  a.machine.assign(tasks, -1);
  a.order.assign(tasks, 0);
  std::vector<double> available(system.num_machines(), 0.0);
  std::vector<bool> mapped(tasks, false);
  for (std::size_t step = 0; step < tasks; ++step) {
    std::size_t pick = tasks;
    int pick_machine = -1;
    double pick_completion = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < tasks; ++i) {
      if (mapped[i]) continue;
      const auto& task = trace.tasks()[i];
      int choice = -1;
      double completion = std::numeric_limits<double>::infinity();
      for (const int m : system.eligible_machines(task.type)) {
        const auto mi = static_cast<std::size_t>(m);
        const double start = std::max(available[mi], task.arrival);
        const double finish = start + system.etc_on(task.type, mi);
        if (finish < completion) {
          completion = finish;
          choice = m;
        }
      }
      if (completion < pick_completion) {
        pick_completion = completion;
        pick = i;
        pick_machine = choice;
      }
    }
    mapped[pick] = true;
    a.machine[pick] = pick_machine;
    a.order[pick] = static_cast<int>(step);
    available[static_cast<std::size_t>(pick_machine)] = pick_completion;
  }
  return a;
}

TEST(EvaluatorDifferential, MinMinHeapsMatchQuadraticReference) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Scenario scenario = make_dataset1(seed);
    const Allocation fast =
        min_min_completion_time_allocation(scenario.system, scenario.trace);
    const Allocation slow =
        min_min_reference(scenario.system, scenario.trace);
    EXPECT_EQ(fast.machine, slow.machine);
    EXPECT_EQ(fast.order, slow.order);
  }
  // Once on the expanded 30-machine suite, where several machine types
  // have multiple instances (the per-type collapse's interesting case).
  const Scenario scenario = make_dataset2(4);
  const Allocation fast =
      min_min_completion_time_allocation(scenario.system, scenario.trace);
  const Allocation slow = min_min_reference(scenario.system, scenario.trace);
  EXPECT_EQ(fast.machine, slow.machine);
  EXPECT_EQ(fast.order, slow.order);
}

}  // namespace
}  // namespace eus
