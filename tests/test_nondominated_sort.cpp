#include "core/nondominated_sort.hpp"

#include <gtest/gtest.h>

#include "pareto/front.hpp"
#include "util/rng.hpp"

namespace eus {
namespace {

std::vector<EUPoint> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<EUPoint> pts(n);
  for (auto& p : pts) {
    p.energy = rng.uniform(0.0, 100.0);
    p.utility = rng.uniform(0.0, 100.0);
  }
  return pts;
}

TEST(NondominatedSort, EmptyInput) {
  const SortedFronts s = nondominated_sort({});
  EXPECT_TRUE(s.fronts.empty());
  EXPECT_TRUE(s.rank.empty());
}

TEST(NondominatedSort, SinglePointRankZero) {
  const SortedFronts s = nondominated_sort({{1.0, 1.0}});
  ASSERT_EQ(s.fronts.size(), 1U);
  EXPECT_EQ(s.rank[0], 0U);
}

TEST(NondominatedSort, ChainOfDominance) {
  // p0 dominates p1 dominates p2 (less energy and more utility down the
  // chain): three fronts of one point each.
  const std::vector<EUPoint> pts = {{1.0, 10.0}, {2.0, 9.0}, {3.0, 8.0}};
  const SortedFronts s = nondominated_sort(pts);
  ASSERT_EQ(s.fronts.size(), 3U);
  EXPECT_EQ(s.rank[0], 0U);
  EXPECT_EQ(s.rank[1], 1U);
  EXPECT_EQ(s.rank[2], 2U);
}

TEST(NondominatedSort, AllIncomparableSingleFront) {
  const std::vector<EUPoint> pts = {
      {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {4.0, 4.0}};
  const SortedFronts s = nondominated_sort(pts);
  ASSERT_EQ(s.fronts.size(), 1U);
  EXPECT_EQ(s.fronts[0].size(), 4U);
}

TEST(NondominatedSort, FirstFrontMatchesParetoExtraction) {
  const auto pts = random_points(200, 31);
  const SortedFronts s = nondominated_sort(pts);
  const auto expected = nondominated_indices(pts);
  ASSERT_FALSE(s.fronts.empty());
  EXPECT_EQ(s.fronts[0], expected);  // both ascending-energy ordered
}

TEST(NondominatedSort, FirstFrontMembersHaveZeroDominators) {
  const auto pts = random_points(150, 32);
  const SortedFronts s = nondominated_sort(pts);
  const auto counts = domination_counts(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(s.rank[i] == 0, counts[i] == 0);
  }
}

TEST(NondominatedSort, RanksArePeelingDepths) {
  // Peeling property: removing fronts 0..r-1 makes front r nondominated.
  const auto pts = random_points(120, 33);
  const SortedFronts s = nondominated_sort(pts);
  for (std::size_t r = 0; r < s.fronts.size(); ++r) {
    std::vector<EUPoint> remaining;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (s.rank[i] >= r) remaining.push_back(pts[i]);
    }
    const auto idx = nondominated_indices(remaining);
    EXPECT_EQ(idx.size(), s.fronts[r].size()) << "rank " << r;
  }
}

TEST(NondominatedSort, EveryPointAssignedExactlyOnce) {
  const auto pts = random_points(97, 34);
  const SortedFronts s = nondominated_sort(pts);
  std::size_t total = 0;
  for (const auto& f : s.fronts) total += f.size();
  EXPECT_EQ(total, pts.size());
}

TEST(NondominatedSort, HigherRankNeverDominatesLower) {
  const auto pts = random_points(80, 35);
  const SortedFronts s = nondominated_sort(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (s.rank[i] > s.rank[j]) {
        EXPECT_FALSE(dominates(pts[i], pts[j]));
      }
    }
  }
}

TEST(NondominatedSort, WithinFrontMutuallyNondominated) {
  const auto pts = random_points(80, 36);
  const SortedFronts s = nondominated_sort(pts);
  for (const auto& f : s.fronts) {
    std::vector<EUPoint> members;
    for (const std::size_t i : f) members.push_back(pts[i]);
    EXPECT_TRUE(is_mutually_nondominated(members));
  }
}

TEST(NondominatedSort, DuplicatePointsShareRankZeroWhenOptimal) {
  const std::vector<EUPoint> pts = {{1.0, 1.0}, {1.0, 1.0}, {2.0, 0.5}};
  const SortedFronts s = nondominated_sort(pts);
  EXPECT_EQ(s.rank[0], 0U);
  EXPECT_EQ(s.rank[1], 0U);
  EXPECT_EQ(s.rank[2], 1U);
}

class SweepVsDeb : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SweepVsDeb, IdenticalResults) {
  // The O(N log N) sweep must agree exactly with Deb's reference algorithm
  // — ranks and per-front presentation order — including on inputs dense
  // with duplicates and ties.
  Rng rng(GetParam());
  std::vector<EUPoint> pts(220);
  for (auto& p : pts) {
    p.energy = static_cast<double>(rng.below(15));   // coarse: many ties
    p.utility = static_cast<double>(rng.below(15));
  }
  const SortedFronts sweep = nondominated_sort_sweep(pts);
  const SortedFronts deb = nondominated_sort_deb(pts);
  ASSERT_EQ(sweep.rank, deb.rank);
  ASSERT_EQ(sweep.fronts.size(), deb.fronts.size());
  for (std::size_t r = 0; r < deb.fronts.size(); ++r) {
    EXPECT_EQ(sweep.fronts[r], deb.fronts[r]) << "front " << r;
  }
}

TEST_P(SweepVsDeb, IdenticalOnContinuousPoints) {
  Rng rng(GetParam() * 7 + 1);
  std::vector<EUPoint> pts(300);
  for (auto& p : pts) {
    p.energy = rng.uniform(0.0, 1.0);
    p.utility = rng.uniform(0.0, 1.0);
  }
  const SortedFronts sweep = nondominated_sort_sweep(pts);
  const SortedFronts deb = nondominated_sort_deb(pts);
  EXPECT_EQ(sweep.rank, deb.rank);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepVsDeb,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SweepSort, AllDuplicatesSingleFront) {
  const std::vector<EUPoint> pts(10, EUPoint{2.0, 3.0});
  const SortedFronts s = nondominated_sort_sweep(pts);
  ASSERT_EQ(s.fronts.size(), 1U);
  EXPECT_EQ(s.fronts[0].size(), 10U);
}

TEST(SweepSort, EqualEnergyColumn) {
  // Same energy, strictly decreasing utility: each point dominates the
  // next, giving n singleton fronts.
  std::vector<EUPoint> pts;
  for (int i = 0; i < 6; ++i) pts.push_back({1.0, 10.0 - i});
  const SortedFronts s = nondominated_sort_sweep(pts);
  EXPECT_EQ(s.fronts.size(), 6U);
}

TEST(SweepSort, EqualUtilityRow) {
  std::vector<EUPoint> pts;
  for (int i = 0; i < 6; ++i) pts.push_back({1.0 + i, 10.0});
  const SortedFronts s = nondominated_sort_sweep(pts);
  EXPECT_EQ(s.fronts.size(), 6U);
}

TEST(DominationCounts, PaperRankIsOnePlusCount) {
  // §IV-D: "A solution's rank can be found by taking 1 + the number of
  // solutions that dominate it."
  const std::vector<EUPoint> pts = {{1.0, 10.0}, {2.0, 9.0}, {3.0, 8.0}};
  const auto counts = domination_counts(pts);
  EXPECT_EQ(counts[0], 0U);
  EXPECT_EQ(counts[1], 1U);
  EXPECT_EQ(counts[2], 2U);
}

}  // namespace
}  // namespace eus
