#include "core/nsga2.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/historical.hpp"
#include "heuristics/seeds.hpp"
#include "pareto/archive.hpp"
#include "pareto/front.hpp"
#include "pareto/metrics.hpp"
#include "tuf/builder.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary mixed_library() {
  std::vector<TufClass> classes;
  classes.push_back({"l", 2.0, make_linear_decay_tuf(10.0, 0.0, 1500.0)});
  classes.push_back({"h", 1.0, make_hard_deadline_tuf(20.0, 1200.0)});
  return TufClassLibrary(std::move(classes));
}

struct Fixture {
  SystemModel system = historical_system();
  Trace trace;
  UtilityEnergyProblem problem;

  explicit Fixture(std::size_t n = 50, std::uint64_t seed = 5)
      : trace(make_trace(system, n, seed)), problem(system, trace) {}

  static Trace make_trace(const SystemModel& sys, std::size_t n,
                          std::uint64_t seed) {
    Rng rng(seed);
    TraceConfig cfg;
    cfg.num_tasks = n;
    cfg.window_seconds = 900.0;
    return generate_trace(sys, mixed_library(), cfg, rng);
  }
};

Nsga2Config small_config(std::uint64_t seed = 9) {
  Nsga2Config cfg;
  cfg.population_size = 20;
  cfg.mutation_probability = 0.3;
  cfg.seed = seed;
  return cfg;
}

TEST(Nsga2, RejectsOddPopulation) {
  const Fixture fx;
  Nsga2Config cfg = small_config();
  cfg.population_size = 21;
  EXPECT_THROW(Nsga2(fx.problem, cfg), std::invalid_argument);
}

TEST(Nsga2, RejectsBadMutationProbability) {
  const Fixture fx;
  Nsga2Config cfg = small_config();
  cfg.mutation_probability = 1.5;
  EXPECT_THROW(Nsga2(fx.problem, cfg), std::invalid_argument);
}

TEST(Nsga2, IterateBeforeInitializeThrows) {
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  EXPECT_THROW(ga.iterate(1), std::logic_error);
}

TEST(Nsga2, DoubleInitializeThrows) {
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({});
  EXPECT_THROW(ga.initialize({}), std::logic_error);
}

TEST(Nsga2, RejectsTooManySeeds) {
  const Fixture fx;
  Nsga2Config cfg = small_config();
  cfg.population_size = 2;
  Nsga2 ga(fx.problem, cfg);
  const Allocation seed = min_energy_allocation(fx.system, fx.trace);
  EXPECT_THROW(ga.initialize({seed, seed, seed}), std::invalid_argument);
}

TEST(Nsga2, RejectsWrongSizeSeed) {
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  EXPECT_THROW(ga.initialize({make_trivial_allocation(3)}),
               std::invalid_argument);
}

TEST(Nsga2, InitializePopulationSizeAndAnnotation) {
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({min_energy_allocation(fx.system, fx.trace)});
  EXPECT_EQ(ga.population().size(), 20U);
  EXPECT_EQ(ga.evaluations(), 20U);
  EXPECT_FALSE(ga.front().empty());
}

TEST(Nsga2, GenerationCounterAdvances) {
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({});
  ga.iterate(5);
  EXPECT_EQ(ga.generation(), 5U);
  ga.iterate(3);
  EXPECT_EQ(ga.generation(), 8U);
  // Each generation evaluates N offspring.
  EXPECT_EQ(ga.evaluations(), 20U + 8U * 20U);
}

TEST(Nsga2, PopulationSizeInvariantAcrossGenerations) {
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({});
  for (int g = 0; g < 10; ++g) {
    ga.iterate(1);
    EXPECT_EQ(ga.population().size(), 20U);
  }
}

TEST(Nsga2, FrontIsMutuallyNondominated) {
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({});
  ga.iterate(30);
  EXPECT_TRUE(is_mutually_nondominated(ga.front_points()));
}

TEST(Nsga2, FrontSortedByEnergy) {
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({});
  ga.iterate(20);
  const auto pts = ga.front_points();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].energy, pts[i - 1].energy);
  }
}

TEST(Nsga2, FrontOrderMatchesParetoSweepOnEnergyTies) {
  // Regression: Nsga2::front() used to break equal-energy ties by
  // *ascending* utility — worst first, the opposite of the sweep order in
  // pareto/front.cpp.  The comparator is shared now: descending utility.
  EXPECT_TRUE(front_order_less({5.0, 3.0}, {5.0, 1.0}));
  EXPECT_FALSE(front_order_less({5.0, 1.0}, {5.0, 3.0}));
  EXPECT_TRUE(front_order_less({4.0, 1.0}, {5.0, 9.0}));
  EXPECT_FALSE(front_order_less({5.0, 3.0}, {5.0, 3.0}));

  // End to end, the algorithm's front follows the canonical order.
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({});
  ga.iterate(15);
  const auto front = ga.front();
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_FALSE(
        front_order_less(front[i].objectives, front[i - 1].objectives));
  }
}

TEST(Nsga2, CrowdedTournamentPrefersRankThenCrowding) {
  std::vector<Individual> pop(2);
  Rng rng(7);
  pop[0].rank = 1;
  pop[1].rank = 0;
  // The rank-0 individual wins from either draw position.
  EXPECT_EQ(crowded_tournament_winner(pop, 0, 1, rng), 1U);
  EXPECT_EQ(crowded_tournament_winner(pop, 1, 0, rng), 1U);
  pop[0].rank = pop[1].rank = 0;
  pop[0].crowding = 2.0;
  pop[1].crowding = 3.0;
  EXPECT_EQ(crowded_tournament_winner(pop, 0, 1, rng), 1U);
  EXPECT_EQ(crowded_tournament_winner(pop, 1, 0, rng), 1U);
}

TEST(Nsga2, CrowdedTournamentBreaksExactCrowdingTiesFairly) {
  // Regression: an exact crowding tie resolved with >=, so the
  // first-drawn candidate always won — including the common case where
  // both draws land in the same (rank, crowding) class.  The tie is now a
  // coin flip from the algorithm's RNG stream.
  std::vector<Individual> pop(2);
  pop[0].rank = pop[1].rank = 0;
  pop[0].crowding = pop[1].crowding = 1.5;
  Rng rng(123);
  const int trials = 2000;
  int first = 0;
  for (int t = 0; t < trials; ++t) {
    if (crowded_tournament_winner(pop, 0, 1, rng) == 0) ++first;
  }
  EXPECT_GT(first, 2 * trials / 5);  // both sides must win ~half the time
  EXPECT_LT(first, 3 * trials / 5);
}

TEST(Nsga2, ElitismNeverLosesGround) {
  // Hypervolume against a fixed reference must be non-decreasing: the
  // elitist merge keeps every rank-0 solution unless something dominates
  // or crowds it out, and either way the front can only improve.
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({});
  const EUPoint ref{1e9, -1.0};
  double previous = hypervolume(ga.front_points(), ref);
  for (int g = 0; g < 25; ++g) {
    ga.iterate(1);
    const double current = hypervolume(ga.front_points(), ref);
    EXPECT_GE(current, previous - 1e-6);
    previous = current;
  }
}

TEST(Nsga2, ImprovesOverRandomInitialization) {
  const Fixture fx(60);
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({});
  const auto initial = ga.front_points();
  ga.iterate(150);
  const auto evolved = ga.front_points();
  const EUPoint ref = enclosing_reference({initial, evolved});
  EXPECT_GT(hypervolume(evolved, ref), hypervolume(initial, ref));
}

TEST(Nsga2, DeterministicForSeed) {
  const Fixture fx;
  Nsga2 a(fx.problem, small_config(42));
  Nsga2 b(fx.problem, small_config(42));
  a.initialize({});
  b.initialize({});
  a.iterate(10);
  b.iterate(10);
  const auto fa = a.front_points();
  const auto fb = b.front_points();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fb[i]);
}

TEST(Nsga2, DifferentSeedsDiverge) {
  const Fixture fx;
  Nsga2 a(fx.problem, small_config(1));
  Nsga2 b(fx.problem, small_config(2));
  a.initialize({});
  b.initialize({});
  a.iterate(5);
  b.iterate(5);
  EXPECT_NE(a.front_points(), b.front_points());
}

TEST(Nsga2, ThreadedEvaluationMatchesSerial) {
  const Fixture fx;
  Nsga2Config serial = small_config(7);
  Nsga2Config threaded = small_config(7);
  threaded.threads = 4;
  Nsga2 a(fx.problem, serial);
  Nsga2 b(fx.problem, threaded);
  a.initialize({});
  b.initialize({});
  a.iterate(10);
  b.iterate(10);
  EXPECT_EQ(a.front_points(), b.front_points());
}

TEST(Nsga2, SeededPopulationContainsSeedObjectives) {
  const Fixture fx;
  const Allocation seed = min_energy_allocation(fx.system, fx.trace);
  const EUPoint seed_obj = fx.problem.evaluate(seed);
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({seed});
  bool found = false;
  for (const auto& ind : ga.population()) {
    if (ind.objectives == seed_obj) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Nsga2, MinEnergySeedAnchorsEnergyFloor) {
  // Min-energy is the provable global energy optimum; elitism must keep a
  // solution at that energy forever.
  const Fixture fx;
  const Allocation seed = min_energy_allocation(fx.system, fx.trace);
  const double floor = fx.problem.evaluate(seed).energy;
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({seed});
  ga.iterate(40);
  EXPECT_NEAR(ga.front_points().front().energy, floor, 1e-9);
}

TEST(Nsga2, RepairedEncodingStillWorks) {
  const Fixture fx;
  Nsga2Config cfg = small_config();
  cfg.repair_order_permutation = true;
  Nsga2 ga(fx.problem, cfg);
  ga.initialize({});
  ga.iterate(20);
  EXPECT_FALSE(ga.front_points().empty());
  EXPECT_TRUE(is_mutually_nondominated(ga.front_points()));
}

TEST(Nsga2, CrowdingDisabledStillConverges) {
  const Fixture fx;
  Nsga2Config cfg = small_config();
  cfg.use_crowding = false;
  Nsga2 ga(fx.problem, cfg);
  ga.initialize({});
  ga.iterate(20);
  EXPECT_FALSE(ga.front_points().empty());
}

TEST(Nsga2, RanksAnnotatedConsistently) {
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({});
  ga.iterate(10);
  for (const auto& ind : ga.population()) {
    if (ind.rank == 0) {
      // No member of the population may dominate a rank-0 member.
      for (const auto& other : ga.population()) {
        EXPECT_FALSE(dominates(other.objectives, ind.objectives));
      }
    }
  }
}

TEST(Nsga2, CrowdedTournamentSelectionConverges) {
  const Fixture fx;
  Nsga2Config cfg = small_config();
  cfg.selection = SelectionMode::kCrowdedTournament;
  Nsga2 ga(fx.problem, cfg);
  ga.initialize({});
  const auto initial = ga.front_points();
  ga.iterate(60);
  const auto evolved = ga.front_points();
  EXPECT_TRUE(is_mutually_nondominated(evolved));
  const EUPoint ref = enclosing_reference({initial, evolved});
  EXPECT_GE(hypervolume(evolved, ref), hypervolume(initial, ref));
}

TEST(Nsga2, SelectionModesProduceDifferentTrajectories) {
  const Fixture fx;
  Nsga2Config uniform = small_config(21);
  Nsga2Config tournament = small_config(21);
  tournament.selection = SelectionMode::kCrowdedTournament;
  Nsga2 a(fx.problem, uniform);
  Nsga2 b(fx.problem, tournament);
  a.initialize({});
  b.initialize({});
  a.iterate(10);
  b.iterate(10);
  EXPECT_NE(a.front_points(), b.front_points());
}

TEST(Nsga2, ObserverFiresEveryGeneration) {
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({});
  std::vector<std::size_t> seen;
  ga.set_observer([&](std::size_t gen, const std::vector<Individual>& pop) {
    seen.push_back(gen);
    EXPECT_EQ(pop.size(), 20U);
  });
  ga.iterate(5);
  EXPECT_EQ(seen, (std::vector<std::size_t>{1, 2, 3, 4, 5}));
  ga.set_observer(nullptr);
  ga.iterate(2);
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Nsga2, ObserverSeesMonotoneFrontViaArchive) {
  const Fixture fx;
  Nsga2 ga(fx.problem, small_config());
  ga.initialize({});
  ParetoArchive archive;
  ga.set_observer([&](std::size_t, const std::vector<Individual>& pop) {
    for (const auto& ind : pop) {
      if (ind.rank == 0) archive.insert(ind.objectives);
    }
  });
  ga.iterate(20);
  // The all-time archive must cover the final population front.
  for (const auto& p : ga.front_points()) {
    EXPECT_TRUE(archive.covers(p));
  }
  EXPECT_TRUE(is_mutually_nondominated(archive.points()));
}

TEST(Nsga2, MakespanProblemDrivesMakespanDown) {
  const Fixture fx(60);
  const MakespanEnergyProblem problem(fx.system, fx.trace);
  Nsga2 ga(problem, small_config());
  ga.initialize({});
  const double initial_best = ga.front_points().back().utility;  // -makespan
  ga.iterate(120);
  const double final_best = ga.front_points().back().utility;
  EXPECT_GE(final_best, initial_best);
  // Sanity: utilities are negative makespans.
  for (const auto& p : ga.front_points()) EXPECT_LT(p.utility, 0.0);
}

}  // namespace
}  // namespace eus
