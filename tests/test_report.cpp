#include "des/report.hpp"

#include <gtest/gtest.h>

#include "data/historical.hpp"
#include "util/table.hpp"
#include "heuristics/seeds.hpp"
#include "tuf/builder.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary library() {
  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(10.0, 0.0, 1500.0)});
  return TufClassLibrary(std::move(classes));
}

struct Fixture {
  SystemModel system = historical_system();
  Trace trace;
  DesResult result;

  Fixture() : trace(make_trace(system)) {
    result = des_evaluate(system, trace,
                          min_min_completion_time_allocation(system, trace));
  }

  static Trace make_trace(const SystemModel& sys) {
    Rng rng(61);
    TraceConfig cfg;
    cfg.num_tasks = 60;
    cfg.window_seconds = 900.0;
    return generate_trace(sys, library(), cfg, rng);
  }
};

TEST(UtilizationReport, ListsEveryMachine) {
  const Fixture fx;
  const std::string report = utilization_report(fx.system, fx.result);
  for (const auto& m : fx.system.machines()) {
    EXPECT_NE(report.find(m.name), std::string::npos) << m.name;
  }
}

TEST(UtilizationReport, UtilizationWithinBounds) {
  const Fixture fx;
  const std::string report = utilization_report(fx.system, fx.result);
  // Spot-check structure: a percent sign per machine row (two columns).
  std::size_t percents = 0;
  for (const char ch : report) {
    if (ch == '%') ++percents;
  }
  EXPECT_GE(percents, 2 * fx.system.num_machines());
}

TEST(Gantt, EmptyScheduleStub) {
  const SystemModel sys = historical_system();
  const Trace trace({}, library());
  const DesResult r = des_evaluate(sys, trace, Allocation{});
  EXPECT_NE(gantt_chart(sys, r).find("(empty schedule)"), std::string::npos);
}

TEST(Gantt, OneRowPerMachinePlusAxis) {
  const Fixture fx;
  const std::string chart = gantt_chart(fx.system, fx.result);
  std::size_t lines = 0;
  for (const char ch : chart) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, fx.system.num_machines() + 2);
}

TEST(Gantt, BusyMarksPresentForLoadedMachines) {
  const Fixture fx;
  GanttOptions opts;
  opts.busy = '#';
  const std::string chart = gantt_chart(fx.system, fx.result, opts);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(Gantt, RespectsCustomGlyphs) {
  const Fixture fx;
  GanttOptions opts;
  opts.busy = 'B';
  opts.idle = '_';
  const std::string chart = gantt_chart(fx.system, fx.result, opts);
  EXPECT_NE(chart.find('B'), std::string::npos);
  EXPECT_EQ(chart.find('#'), std::string::npos);
}

TEST(Gantt, HorizonLabelMatchesMakespan) {
  const Fixture fx;
  const std::string chart = gantt_chart(fx.system, fx.result);
  EXPECT_NE(chart.find(format_double(fx.result.totals.makespan, 0)),
            std::string::npos);
}

}  // namespace
}  // namespace eus
