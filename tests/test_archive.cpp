#include "pareto/archive.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "pareto/front.hpp"
#include "util/rng.hpp"

namespace eus {
namespace {

TEST(Archive, StartsEmpty) {
  const ParetoArchive a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0U);
}

TEST(Archive, InsertsNondominated) {
  ParetoArchive a;
  EXPECT_TRUE(a.insert({5.0, 5.0}));
  EXPECT_TRUE(a.insert({3.0, 3.0}));
  EXPECT_TRUE(a.insert({7.0, 7.0}));
  EXPECT_EQ(a.size(), 3U);
}

TEST(Archive, RejectsDominated) {
  ParetoArchive a;
  EXPECT_TRUE(a.insert({3.0, 10.0}));
  EXPECT_FALSE(a.insert({4.0, 9.0}));
  EXPECT_FALSE(a.insert({3.0, 10.0}));  // duplicate
  EXPECT_EQ(a.size(), 1U);
}

TEST(Archive, EvictsNewlyDominated) {
  ParetoArchive a;
  EXPECT_TRUE(a.insert({4.0, 5.0}, 1));
  EXPECT_TRUE(a.insert({6.0, 6.0}, 2));
  // Dominates both.
  EXPECT_TRUE(a.insert({3.0, 7.0}, 3));
  ASSERT_EQ(a.size(), 1U);
  EXPECT_EQ(a.entries()[0].tag, 3U);
}

TEST(Archive, KeepsSortedByEnergy) {
  ParetoArchive a;
  a.insert({9.0, 9.0});
  a.insert({1.0, 1.0});
  a.insert({5.0, 5.0});
  const auto pts = a.points();
  ASSERT_EQ(pts.size(), 3U);
  EXPECT_DOUBLE_EQ(pts[0].energy, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].energy, 5.0);
  EXPECT_DOUBLE_EQ(pts[2].energy, 9.0);
}

TEST(Archive, AlwaysMutuallyNondominated) {
  ParetoArchive a;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    a.insert({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  }
  EXPECT_TRUE(is_mutually_nondominated(a.points()));
}

TEST(Archive, MatchesBatchFrontExtraction) {
  Rng rng(4);
  std::vector<EUPoint> pts;
  ParetoArchive a;
  for (int i = 0; i < 300; ++i) {
    // Coarse grid so duplicates occur (archive keeps one copy).
    const EUPoint p{static_cast<double>(rng.below(20)),
                    static_cast<double>(rng.below(20))};
    pts.push_back(p);
    a.insert(p);
  }
  // Deduplicate the batch front for comparison.
  std::vector<EUPoint> expected = pareto_front(pts);
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(a.points(), expected);
}

TEST(Archive, InsertAllCountsAdditions) {
  ParetoArchive a;
  const std::size_t added =
      a.insert_all({{1.0, 1.0}, {2.0, 2.0}, {2.0, 1.5}}, 7);
  EXPECT_EQ(added, 2U);  // third is dominated by {2,2}... wait inserted after
  EXPECT_EQ(a.size(), 2U);
  for (const auto& e : a.entries()) EXPECT_EQ(e.tag, 7U);
}

TEST(Archive, Covers) {
  ParetoArchive a;
  a.insert({3.0, 10.0});
  EXPECT_TRUE(a.covers({3.0, 10.0}));
  EXPECT_TRUE(a.covers({4.0, 9.0}));
  EXPECT_FALSE(a.covers({2.0, 5.0}));
  EXPECT_FALSE(a.covers({3.0, 11.0}));
}

TEST(Archive, CapacityBoundRespected) {
  ParetoArchive a(5);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    a.insert({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    EXPECT_LE(a.size(), 5U);
  }
  // Domination evictions and pruning can leave the archive below capacity
  // (pruned points are gone for good), but never above it or empty.
  EXPECT_GE(a.size(), 2U);
  EXPECT_TRUE(is_mutually_nondominated(a.points()));
}

TEST(Archive, PruningKeepsExtremes) {
  ParetoArchive a(3);
  a.insert({1.0, 1.0});
  a.insert({10.0, 10.0});
  a.insert({5.0, 5.0});
  a.insert({5.2, 5.3});  // crowds the middle
  ASSERT_EQ(a.size(), 3U);
  const auto pts = a.points();
  EXPECT_DOUBLE_EQ(pts.front().energy, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().energy, 10.0);
}

TEST(Archive, CapacityOneKeepsSomething) {
  ParetoArchive a(1);
  a.insert({1.0, 1.0});
  a.insert({2.0, 2.0});
  EXPECT_EQ(a.size(), 1U);
}

TEST(Archive, UnboundedNeverPrunes) {
  ParetoArchive a;
  for (int i = 0; i < 100; ++i) {
    a.insert({static_cast<double>(i), static_cast<double>(i)});
  }
  EXPECT_EQ(a.size(), 100U);
}

TEST(Archive, RejectsDuplicateFingerprint) {
  ParetoArchive a;
  EXPECT_TRUE(a.insert({3.0, 10.0}, 1, 0xdeadbeefULL));
  // Same genome re-submitted with a different (even better) point: rejected,
  // never double-inserted.
  EXPECT_FALSE(a.insert({2.0, 11.0}, 2, 0xdeadbeefULL));
  ASSERT_EQ(a.size(), 1U);
  EXPECT_EQ(a.entries()[0].tag, 1U);
  EXPECT_EQ(a.entries()[0].fingerprint, 0xdeadbeefULL);
  // A different genome with a nondominated point still gets in.
  EXPECT_TRUE(a.insert({1.0, 5.0}, 3, 0xfeedULL));
  EXPECT_EQ(a.size(), 2U);
}

TEST(Archive, ZeroFingerprintNeverCollides) {
  ParetoArchive a;
  EXPECT_TRUE(a.insert({1.0, 1.0}, 0, 0));
  EXPECT_TRUE(a.insert({2.0, 2.0}, 0, 0));  // fp 0 = unknown, no dedup
  EXPECT_EQ(a.size(), 2U);
}

TEST(Archive, PruneTieBreakEvictsLowestEnergyTiedMember) {
  // Four evenly spaced interior members have bit-equal crowding credits;
  // the pinned policy evicts the lowest-energy one (index 1).
  ParetoArchive a(5);
  a.insert({0.0, 0.0}, 0);
  a.insert({6.0, 6.0}, 5);
  a.insert({1.0, 1.0}, 1);
  a.insert({2.0, 2.0}, 2);
  a.insert({3.0, 3.0}, 3);
  ASSERT_EQ(a.size(), 5U);
  a.insert({4.0, 4.0}, 4);  // exceeds capacity: every interior credit ties
  ASSERT_EQ(a.size(), 5U);
  std::vector<std::size_t> tags;
  for (const auto& e : a.entries()) tags.push_back(e.tag);
  EXPECT_EQ(tags, (std::vector<std::size_t>{0, 2, 3, 4, 5}));
}

TEST(Archive, PruneTieBreakIndependentOfInsertionOrder) {
  // Same point set inserted in two different orders prunes identically.
  const std::vector<EUPoint> pts = {{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0},
                                    {3.0, 3.0}, {4.0, 4.0}, {6.0, 6.0}};
  ParetoArchive fwd(5);
  for (const auto& p : pts) fwd.insert(p);
  ParetoArchive rev(5);
  for (auto it = pts.rbegin(); it != pts.rend(); ++it) rev.insert(*it);
  EXPECT_EQ(fwd.points(), rev.points());
}

}  // namespace
}  // namespace eus
