#include "sched/allocation_io.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eus {
namespace {

Allocation sample() {
  Allocation a;
  a.machine = {2, 0, 5};
  a.order = {1, 0, 2};
  return a;
}

TEST(AllocationIo, HeaderWithoutPstate) {
  const std::string csv = allocation_to_csv(sample());
  EXPECT_EQ(csv.find("task,machine,order\n"), 0U);
  EXPECT_EQ(csv.find("pstate"), std::string::npos);
}

TEST(AllocationIo, HeaderWithPstate) {
  Allocation a = sample();
  a.pstate = {0, 1, 2};
  const std::string csv = allocation_to_csv(a);
  EXPECT_EQ(csv.find("task,machine,order,pstate\n"), 0U);
}

TEST(AllocationIo, RoundTripPlain) {
  const Allocation original = sample();
  EXPECT_EQ(allocation_from_csv(allocation_to_csv(original)), original);
}

TEST(AllocationIo, RoundTripWithPstate) {
  Allocation original = sample();
  original.pstate = {2, 2, 0};
  EXPECT_EQ(allocation_from_csv(allocation_to_csv(original)), original);
}

TEST(AllocationIo, RoundTripEmpty) {
  const Allocation empty;
  EXPECT_EQ(allocation_from_csv(allocation_to_csv(empty)), empty);
}

TEST(AllocationIo, NegativeOrdersSurvive) {
  Allocation a = sample();
  a.order = {-5, 0, 1000000};
  EXPECT_EQ(allocation_from_csv(allocation_to_csv(a)), a);
}

TEST(AllocationIo, RejectsEmptyInput) {
  EXPECT_THROW((void)allocation_from_csv(""), std::runtime_error);
}

TEST(AllocationIo, RejectsBadHeader) {
  EXPECT_THROW((void)allocation_from_csv("a,b,c\n0,1,2\n"),
               std::runtime_error);
}

TEST(AllocationIo, RejectsRaggedRow) {
  EXPECT_THROW((void)allocation_from_csv("task,machine,order\n0,1\n"),
               std::runtime_error);
}

TEST(AllocationIo, RejectsNonInteger) {
  EXPECT_THROW((void)allocation_from_csv("task,machine,order\n0,one,2\n"),
               std::runtime_error);
}

TEST(AllocationIo, RejectsOutOfOrderTaskIds) {
  EXPECT_THROW(
      (void)allocation_from_csv("task,machine,order\n1,0,0\n0,0,1\n"),
      std::runtime_error);
}

}  // namespace
}  // namespace eus
