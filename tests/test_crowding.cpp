#include "core/crowding.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

namespace eus {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Crowding, EmptyFront) {
  EXPECT_TRUE(crowding_distances({}, {}).empty());
}

TEST(Crowding, OneOrTwoMembersAllInfinite) {
  const std::vector<EUPoint> pts = {{1.0, 1.0}, {2.0, 2.0}};
  const auto d1 = crowding_distances(pts, {0});
  ASSERT_EQ(d1.size(), 1U);
  EXPECT_EQ(d1[0], kInf);
  const auto d2 = crowding_distances(pts, {0, 1});
  EXPECT_EQ(d2[0], kInf);
  EXPECT_EQ(d2[1], kInf);
}

TEST(Crowding, BoundariesInfinite) {
  const std::vector<EUPoint> pts = {
      {0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {10.0, 10.0}};
  const auto d = crowding_distances(pts, {0, 1, 2, 3});
  EXPECT_EQ(d[0], kInf);
  EXPECT_EQ(d[3], kInf);
  EXPECT_NE(d[1], kInf);
  EXPECT_NE(d[2], kInf);
}

TEST(Crowding, InteriorValuesMatchDebFormula) {
  // Front along a line: energy 0,1,3,10; utility equal to energy.
  const std::vector<EUPoint> pts = {
      {0.0, 0.0}, {1.0, 1.0}, {3.0, 3.0}, {10.0, 10.0}};
  const auto d = crowding_distances(pts, {0, 1, 2, 3});
  // Member 1: (3-0)/10 per objective = 0.6 total.
  EXPECT_NEAR(d[1], 0.6, 1e-12);
  // Member 2: (10-1)/10 per objective = 1.8 total.
  EXPECT_NEAR(d[2], 1.8, 1e-12);
}

TEST(Crowding, IsolatedPointsScoreHigher) {
  // Member 2 sits in a sparse region.
  const std::vector<EUPoint> pts = {
      {0.0, 0.0}, {0.1, 0.1}, {5.0, 5.0}, {9.9, 9.9}, {10.0, 10.0}};
  const std::vector<std::size_t> front = {0, 1, 2, 3, 4};
  const auto d = crowding_distances(pts, front);
  EXPECT_GT(d[2], d[1]);
  EXPECT_GT(d[2], d[3]);
}

TEST(Crowding, FrontIndicesIndirect) {
  // The front refers to scattered positions in `points`.
  const std::vector<EUPoint> pts = {
      {99.0, 99.0},  // not in front
      {0.0, 0.0}, {1.0, 1.0}, {10.0, 10.0},
  };
  const auto d = crowding_distances(pts, {1, 2, 3});
  ASSERT_EQ(d.size(), 3U);
  EXPECT_EQ(d[0], kInf);
  EXPECT_NE(d[1], kInf);
  EXPECT_EQ(d[2], kInf);
}

TEST(Crowding, DegenerateObjectiveNoNaN) {
  // All utilities equal: the utility axis contributes nothing but must not
  // produce NaN from 0/0.
  const std::vector<EUPoint> pts = {
      {0.0, 5.0}, {1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}};
  const auto d = crowding_distances(pts, {0, 1, 2, 3});
  for (const double v : d) EXPECT_FALSE(std::isnan(v));
  EXPECT_NEAR(d[1], 2.0 / 3.0, 1e-12);
}

TEST(Crowding, AllIdenticalPointsFinite) {
  const std::vector<EUPoint> pts = {
      {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  const auto d = crowding_distances(pts, {0, 1, 2, 3});
  for (const double v : d) EXPECT_FALSE(std::isnan(v));
}

}  // namespace
}  // namespace eus
