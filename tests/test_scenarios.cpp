#include "workload/scenarios.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace eus {
namespace {

TEST(Scenarios, Table3CountsSumToThirty) {
  const auto counts = table3_instance_counts();
  EXPECT_EQ(counts.size(), 13U);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}),
            30U);
}

TEST(Scenarios, Table3SpecialMachinesSingleInstance) {
  const auto counts = table3_instance_counts();
  for (std::size_t i = 9; i < 13; ++i) EXPECT_EQ(counts[i], 1U);
}

TEST(Scenarios, Dataset1MatchesPaperParameters) {
  const Scenario s = make_dataset1(123);
  EXPECT_EQ(s.trace.size(), 250U);            // §V-A
  EXPECT_DOUBLE_EQ(s.window_seconds, 900.0);  // 15 minutes
  EXPECT_EQ(s.system.num_machines(), 9U);
  EXPECT_EQ(s.system.num_task_types(), 5U);
  EXPECT_LE(s.trace.window(), 900.0);
}

TEST(Scenarios, Dataset2MatchesPaperParameters) {
  const Scenario s = make_dataset2(123);
  EXPECT_EQ(s.trace.size(), 1000U);
  EXPECT_DOUBLE_EQ(s.window_seconds, 900.0);
  EXPECT_EQ(s.system.num_machines(), 30U);
  EXPECT_EQ(s.system.num_task_types(), 30U);
  EXPECT_EQ(s.system.num_machine_types(), 13U);
}

TEST(Scenarios, Dataset3MatchesPaperParameters) {
  const Scenario s = make_dataset3(123);
  EXPECT_EQ(s.trace.size(), 4000U);
  EXPECT_DOUBLE_EQ(s.window_seconds, 3600.0);  // one hour
  EXPECT_EQ(s.system.num_machines(), 30U);
}

TEST(Scenarios, Datasets2And3ShareSystemForSameSeed) {
  const Scenario s2 = make_dataset2(7);
  const Scenario s3 = make_dataset3(7);
  EXPECT_EQ(s2.system.etc(), s3.system.etc());
  EXPECT_EQ(s2.system.epc(), s3.system.epc());
}

TEST(Scenarios, DeterministicForSeed) {
  const Scenario a = make_dataset1(99);
  const Scenario b = make_dataset1(99);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trace.tasks()[i].arrival, b.trace.tasks()[i].arrival);
    EXPECT_EQ(a.trace.tasks()[i].type, b.trace.tasks()[i].type);
  }
}

TEST(Scenarios, DifferentSeedsGiveDifferentTraces) {
  const Scenario a = make_dataset1(1);
  const Scenario b = make_dataset1(2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    if (a.trace.tasks()[i].arrival != b.trace.tasks()[i].arrival) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Scenarios, TracesValidateAgainstTheirSystems) {
  for (const auto& s : {make_dataset1(5), make_dataset2(5), make_dataset3(5)}) {
    EXPECT_NO_THROW(s.trace.validate_against(s.system));
  }
}

TEST(Scenarios, CustomScenario) {
  const Scenario s = make_custom_scenario("custom",
      make_expanded_system(3).model, 100, 120.0, 4);
  EXPECT_EQ(s.name, "custom");
  EXPECT_EQ(s.trace.size(), 100U);
  EXPECT_LE(s.trace.window(), 120.0);
}

TEST(Scenarios, UtilityUpperBoundPositive) {
  const Scenario s = make_dataset1(11);
  EXPECT_GT(s.trace.utility_upper_bound(), 0.0);
}

}  // namespace
}  // namespace eus
