#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "data/historical.hpp"
#include "tuf/builder.hpp"

namespace eus {
namespace {

TufClassLibrary tiny_library() {
  std::vector<TufClass> classes;
  classes.push_back({"only", 1.0, make_hard_deadline_tuf(1.0, 10.0)});
  return TufClassLibrary(std::move(classes));
}

TEST(PoissonArrivals, CountAndRange) {
  Rng rng(1);
  const auto times = poisson_arrivals(500, 900.0, rng);
  EXPECT_EQ(times.size(), 500U);
  for (const double t : times) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 900.0);
  }
}

TEST(PoissonArrivals, Sorted) {
  Rng rng(2);
  const auto times = poisson_arrivals(1000, 100.0, rng);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(PoissonArrivals, MeanNearHalfWindow) {
  Rng rng(3);
  const auto times = poisson_arrivals(20000, 100.0, rng);
  double sum = 0.0;
  for (const double t : times) sum += t;
  EXPECT_NEAR(sum / 20000.0, 50.0, 1.0);
}

TEST(PoissonArrivals, RejectsBadWindow) {
  Rng rng(4);
  EXPECT_THROW(poisson_arrivals(10, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(poisson_arrivals(10, -5.0, rng), std::invalid_argument);
}

TEST(PoissonArrivals, ZeroCountIsEmpty) {
  Rng rng(5);
  EXPECT_TRUE(poisson_arrivals(0, 10.0, rng).empty());
}

TEST(GenerateTrace, BasicShape) {
  Rng rng(6);
  const SystemModel sys = historical_system();
  TraceConfig cfg;
  cfg.num_tasks = 250;
  cfg.window_seconds = 900.0;
  const Trace trace = generate_trace(sys, tiny_library(), cfg, rng);
  EXPECT_EQ(trace.size(), 250U);
  EXPECT_LE(trace.window(), 900.0);
  for (const auto& t : trace.tasks()) EXPECT_LT(t.type, 5U);
}

TEST(GenerateTrace, UniformTypeMixByDefault) {
  Rng rng(7);
  const SystemModel sys = historical_system();
  TraceConfig cfg;
  cfg.num_tasks = 20000;
  cfg.window_seconds = 900.0;
  const Trace trace = generate_trace(sys, tiny_library(), cfg, rng);
  std::map<std::size_t, int> counts;
  for (const auto& t : trace.tasks()) ++counts[t.type];
  for (std::size_t ty = 0; ty < 5; ++ty) {
    EXPECT_NEAR(counts[ty] / 20000.0, 0.2, 0.02);
  }
}

TEST(GenerateTrace, WeightedTypeMix) {
  Rng rng(8);
  const SystemModel sys = historical_system();
  TraceConfig cfg;
  cfg.num_tasks = 20000;
  cfg.window_seconds = 900.0;
  cfg.type_weights = {1.0, 0.0, 0.0, 0.0, 3.0};
  const Trace trace = generate_trace(sys, tiny_library(), cfg, rng);
  std::map<std::size_t, int> counts;
  for (const auto& t : trace.tasks()) ++counts[t.type];
  EXPECT_EQ(counts[1] + counts[2] + counts[3], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[4] / 20000.0, 0.75, 0.02);
}

TEST(GenerateTrace, RejectsZeroTasks) {
  Rng rng(9);
  TraceConfig cfg;
  cfg.num_tasks = 0;
  cfg.window_seconds = 10.0;
  EXPECT_THROW(
      generate_trace(historical_system(), tiny_library(), cfg, rng),
      std::invalid_argument);
}

TEST(GenerateTrace, RejectsWeightSizeMismatch) {
  Rng rng(10);
  TraceConfig cfg;
  cfg.num_tasks = 10;
  cfg.window_seconds = 10.0;
  cfg.type_weights = {1.0, 1.0};  // 5 task types exist
  EXPECT_THROW(
      generate_trace(historical_system(), tiny_library(), cfg, rng),
      std::invalid_argument);
}

TEST(GenerateTrace, RejectsAllZeroWeights) {
  Rng rng(11);
  TraceConfig cfg;
  cfg.num_tasks = 10;
  cfg.window_seconds = 10.0;
  cfg.type_weights = {0.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(
      generate_trace(historical_system(), tiny_library(), cfg, rng),
      std::invalid_argument);
}

TEST(GenerateTrace, RejectsNegativeWeight) {
  Rng rng(12);
  TraceConfig cfg;
  cfg.num_tasks = 10;
  cfg.window_seconds = 10.0;
  cfg.type_weights = {1.0, -1.0, 1.0, 1.0, 1.0};
  EXPECT_THROW(
      generate_trace(historical_system(), tiny_library(), cfg, rng),
      std::invalid_argument);
}

double interarrival_cv(const std::vector<double>& times) {
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap = times[i] - times[i - 1];
    sum += gap;
    sum_sq += gap * gap;
  }
  const auto n = static_cast<double>(times.size() - 1);
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  return std::sqrt(std::max(var, 0.0)) / mean;
}

TEST(BurstyArrivals, SortedWithinWindowAndOverdispersed) {
  Rng rng(21);
  const auto times = bursty_arrivals(2000, 1000.0, 10.0, rng);
  EXPECT_EQ(times.size(), 2000U);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  for (const double t : times) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1000.0);
  }
  // Bursty: interarrival CV well above Poisson's ~1.
  EXPECT_GT(interarrival_cv(times), 1.5);
}

TEST(BurstyArrivals, Validation) {
  Rng rng(22);
  EXPECT_THROW(bursty_arrivals(10, 0.0, 4.0, rng), std::invalid_argument);
  EXPECT_THROW(bursty_arrivals(10, 10.0, 0.5, rng), std::invalid_argument);
}

TEST(PeriodicArrivals, EvenlySpacedUnderdispersed) {
  const auto times = periodic_arrivals(100, 1000.0);
  EXPECT_EQ(times.size(), 100U);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_DOUBLE_EQ(times[i], 10.0 * static_cast<double>(i));
  }
  EXPECT_NEAR(interarrival_cv(times), 0.0, 1e-12);
}

TEST(PeriodicArrivals, Validation) {
  EXPECT_THROW(periodic_arrivals(10, -1.0), std::invalid_argument);
  EXPECT_TRUE(periodic_arrivals(0, 10.0).empty());
}

TEST(GenerateTrace, ArrivalProcessSelection) {
  const SystemModel sys = historical_system();
  TraceConfig cfg;
  cfg.num_tasks = 600;
  cfg.window_seconds = 900.0;

  cfg.arrivals = ArrivalProcess::kBursty;
  cfg.burst_factor = 12.0;
  Rng r1(31);
  const Trace bursty = generate_trace(sys, tiny_library(), cfg, r1);
  std::vector<double> bt;
  for (const auto& t : bursty.tasks()) bt.push_back(t.arrival);
  EXPECT_GT(interarrival_cv(bt), 1.5);

  cfg.arrivals = ArrivalProcess::kPeriodic;
  Rng r2(31);
  const Trace periodic = generate_trace(sys, tiny_library(), cfg, r2);
  std::vector<double> pt;
  for (const auto& t : periodic.tasks()) pt.push_back(t.arrival);
  EXPECT_NEAR(interarrival_cv(pt), 0.0, 1e-9);
}

TEST(ArrivalProcess, Names) {
  EXPECT_STREQ(to_string(ArrivalProcess::kPoisson), "poisson");
  EXPECT_STREQ(to_string(ArrivalProcess::kBursty), "bursty");
  EXPECT_STREQ(to_string(ArrivalProcess::kPeriodic), "periodic");
}

TEST(GenerateTrace, DeterministicForSeed) {
  const SystemModel sys = historical_system();
  TraceConfig cfg;
  cfg.num_tasks = 100;
  cfg.window_seconds = 900.0;
  Rng r1(13), r2(13);
  const Trace a = generate_trace(sys, tiny_library(), cfg, r1);
  const Trace b = generate_trace(sys, tiny_library(), cfg, r2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tasks()[i].type, b.tasks()[i].type);
    EXPECT_DOUBLE_EQ(a.tasks()[i].arrival, b.tasks()[i].arrival);
    EXPECT_EQ(a.tasks()[i].tuf_class, b.tasks()[i].tuf_class);
  }
}

}  // namespace
}  // namespace eus
