// Loopback integration tests for eus_served's engine: an in-process Server
// on an ephemeral port, driven through the real ClientConnection framing.
// Covers health/metrics, heuristic correctness, the bit-identical-to-
// StudyEngine guarantee for nsga2 mode, pareto-query cache resolution,
// deadline-expiry partial fronts, queue-overflow backpressure, malformed
// input, concurrent clients and graceful drain.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/study_engine.hpp"
#include "sched/evaluator.hpp"
#include "serve/client.hpp"
#include "serve/handlers.hpp"
#include "serve/server.hpp"
#include "util/json_value.hpp"
#include "util/stopwatch.hpp"

namespace eus::serve {
namespace {

util::JsonValue call_json(ClientConnection& connection,
                          const std::string& request) {
  return util::parse_json(connection.call(request));
}

util::JsonValue one_shot(std::uint16_t port, const std::string& request) {
  ClientConnection connection;
  connection.connect(port);
  return call_json(connection, request);
}

int code_of(const util::JsonValue& doc) {
  return static_cast<int>(doc.number_or("code", -1.0));
}

// A small custom scenario keeps every NSGA-II request fast.
constexpr const char* kSmallScenario =
    R"("scenario":{"name":"custom","tasks":10,"window_s":30,"seed":11})";

std::string small_nsga2_request() {
  return std::string(R"({"type":"allocate","mode":"nsga2",)") +
         kSmallScenario +
         R"(,"nsga2":{"population":8,"generations":4,
                      "seeds":["min-energy","max-utility"]}})";
}

TEST(ServeServer, HealthzReportsConfiguration) {
  ServerConfig config;
  config.queue_depth = 5;
  config.workers = 3;
  Server server(config);
  server.start();
  ASSERT_NE(server.port(), 0);

  const util::JsonValue doc =
      one_shot(server.port(), R"({"type":"healthz","id":"h1"})");
  EXPECT_EQ(code_of(doc), kCodeOk);
  EXPECT_EQ(doc.string_or("id", ""), "h1");
  EXPECT_EQ(doc.string_or("status", ""), "ok");
  EXPECT_EQ(doc.number_or("queue_capacity", 0.0), 5.0);
  EXPECT_EQ(doc.number_or("workers", 0.0), 3.0);
  const util::JsonValue* draining = doc.get("draining");
  ASSERT_NE(draining, nullptr);
  EXPECT_FALSE(draining->boolean);
  server.stop();
}

TEST(ServeServer, HeuristicResponseMatchesDirectEvaluation) {
  Server server;
  server.start();

  const util::JsonValue doc = one_shot(
      server.port(),
      std::string(
          R"({"type":"allocate","mode":"heuristic:min-energy",)") +
          kSmallScenario + "}");
  ASSERT_EQ(code_of(doc), kCodeOk) << doc.string_or("error", "");

  // Recompute offline through the same scenario constructor.
  ScenarioSpec spec;
  spec.name = "custom";
  spec.tasks = 10;
  spec.window_s = 30.0;
  spec.seed = 11;
  const Scenario scenario = build_scenario(spec);
  const Allocation allocation = make_seed(
      SeedHeuristic::kMinEnergy, scenario.system, scenario.trace);
  const Evaluation expected =
      Evaluator(scenario.system, scenario.trace).evaluate(allocation);

  const util::JsonValue* objectives = doc.get("objectives");
  ASSERT_NE(objectives, nullptr);
  EXPECT_EQ(objectives->number_or("energy", -1.0), expected.energy);
  EXPECT_EQ(objectives->number_or("utility", -1.0), expected.utility);

  const util::JsonValue* alloc_json = doc.get("allocation");
  ASSERT_NE(alloc_json, nullptr);
  const util::JsonValue* machine = alloc_json->get("machine");
  ASSERT_NE(machine, nullptr);
  ASSERT_EQ(machine->array.size(), allocation.machine.size());
  for (std::size_t i = 0; i < allocation.machine.size(); ++i) {
    EXPECT_EQ(static_cast<int>(machine->array[i].number),
              allocation.machine[i]);
  }
  server.stop();
}

TEST(ServeServer, Nsga2FrontIsBitIdenticalToOfflineStudyEngine) {
  Server server;
  server.start();
  const util::JsonValue doc = one_shot(server.port(), small_nsga2_request());
  ASSERT_EQ(code_of(doc), kCodeOk) << doc.string_or("error", "");
  const util::JsonValue* front = doc.get("front");
  ASSERT_NE(front, nullptr);
  ASSERT_FALSE(front->array.empty());
  server.stop();

  // The same run, offline: one StudyEngine population with the same base
  // seed, budget and greedy seeds.  The served front must match
  // bit-for-bit (JSON numbers round-trip exactly).
  ScenarioSpec spec;
  spec.name = "custom";
  spec.tasks = 10;
  spec.window_s = 30.0;
  spec.seed = 11;
  const Scenario scenario = build_scenario(spec);
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);
  Nsga2Config base_config;
  base_config.population_size = 8;
  base_config.mutation_probability = 0.25;
  base_config.seed = spec.seed;
  PopulationSpec population;
  population.name = "served";
  population.seeds = {SeedHeuristic::kMinEnergy, SeedHeuristic::kMaxUtility};
  StudyEngine engine;
  const StudyResult offline =
      engine.run(problem, base_config, {4}, {population});
  const std::vector<EUPoint>& expected = offline.fronts.at(0).at(0);

  ASSERT_EQ(front->array.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(front->array[i].number_or("energy", -1.0),
              expected[i].energy);
    EXPECT_EQ(front->array[i].number_or("utility", -1.0),
              expected[i].utility);
  }
}

TEST(ServeServer, RepeatedRequestHitsTheCache) {
  Server server;
  server.start();
  ClientConnection connection;
  connection.connect(server.port());

  const util::JsonValue first = call_json(connection, small_nsga2_request());
  ASSERT_EQ(code_of(first), kCodeOk);
  EXPECT_EQ(first.string_or("cache", ""), "miss");

  const util::JsonValue second =
      call_json(connection, small_nsga2_request());
  ASSERT_EQ(code_of(second), kCodeOk);
  EXPECT_EQ(second.string_or("cache", ""), "hit");

  // The cached front is byte-identical to the computed one.
  ASSERT_EQ(first.get("front")->array.size(),
            second.get("front")->array.size());
  server.stop();
}

TEST(ServeServer, ParetoQueryResolvesAgainstCachedFront) {
  Server server;
  server.start();
  ClientConnection connection;
  connection.connect(server.port());

  const util::JsonValue computed =
      call_json(connection, small_nsga2_request());
  ASSERT_EQ(code_of(computed), kCodeOk);

  // Same scenario + budget, pareto-query mode: shares the fingerprint, so
  // it answers from the cache without re-evolving.
  const std::string query_request =
      std::string(R"({"type":"allocate","mode":"pareto-query",)") +
      kSmallScenario +
      R"(,"nsga2":{"population":8,"generations":4,
                   "seeds":["min-energy","max-utility"]}})";
  const util::JsonValue picked = call_json(connection, query_request);
  ASSERT_EQ(code_of(picked), kCodeOk) << picked.string_or("error", "");
  EXPECT_EQ(picked.string_or("cache", ""), "hit");
  ASSERT_NE(picked.get("objectives"), nullptr);

  // An impossible energy budget is unsatisfiable: 404.
  const std::string impossible =
      std::string(R"({"type":"allocate","mode":"pareto-query",)") +
      kSmallScenario +
      R"(,"nsga2":{"population":8,"generations":4,
                   "seeds":["min-energy","max-utility"]},
         "query":{"max_energy":1e-6}})";
  const util::JsonValue unsat = call_json(connection, impossible);
  EXPECT_EQ(code_of(unsat), kCodeUnsatisfiable);
  server.stop();
}

TEST(ServeServer, DeadlineExpiryReturnsPartialFront) {
  Server server;
  server.start();
  // A huge generation budget with a ~1 ms deadline: the slice loop must
  // stop early and return whatever front exists, flagged 206/partial.
  const std::string request =
      std::string(R"({"type":"allocate","mode":"nsga2",)") + kSmallScenario +
      R"(,"nsga2":{"population":8,"generations":100000},
         "deadline_ms":1})";
  const util::JsonValue doc = one_shot(server.port(), request);
  EXPECT_EQ(code_of(doc), kCodePartial);
  EXPECT_EQ(doc.string_or("status", ""), "partial");
  const util::JsonValue* exceeded = doc.get("deadline_exceeded");
  ASSERT_NE(exceeded, nullptr);
  EXPECT_TRUE(exceeded->boolean);
  ASSERT_NE(doc.get("front"), nullptr);
  EXPECT_FALSE(doc.get("front")->array.empty());
  EXPECT_LT(doc.number_or("generations", 1e18), 100000.0);

  // Partial results must not poison the cache: the same request without a
  // deadline gets a full-budget (cache-miss) run.  Use a smaller budget so
  // the full run stays fast.
  const std::string full =
      std::string(R"({"type":"allocate","mode":"nsga2",)") + kSmallScenario +
      R"(,"nsga2":{"population":8,"generations":3}})";
  const std::string partial_first =
      std::string(R"({"type":"allocate","mode":"nsga2",)") + kSmallScenario +
      R"(,"nsga2":{"population":8,"generations":3},"deadline_ms":0.000001})";
  const util::JsonValue partial = one_shot(server.port(), partial_first);
  EXPECT_EQ(code_of(partial), kCodePartial);
  const util::JsonValue complete = one_shot(server.port(), full);
  EXPECT_EQ(code_of(complete), kCodeOk);
  EXPECT_EQ(complete.string_or("cache", ""), "miss");
  EXPECT_EQ(complete.number_or("generations", 0.0), 3.0);
  server.stop();
}

TEST(ServeServer, QueueOverflowGetsExplicitBackpressure) {
  ServerConfig config;
  config.queue_depth = 1;
  config.workers = 1;
  Server server(config);
  server.start();

  // Occupy the single worker and the single queue slot with slow requests
  // (large budget, bounded by a deadline so the test stays fast).  The
  // deadline must comfortably exceed scheduling jitter on a loaded
  // machine: the queued request burns its budget while waiting, and the
  // occupancy window below must stay open long enough to observe.
  const std::string slow =
      std::string(R"({"type":"allocate","mode":"nsga2",)") + kSmallScenario +
      R"(,"nsga2":{"population":8,"generations":5000000},
         "deadline_ms":2000})";
  ClientConnection busy_a;
  ClientConnection busy_b;
  busy_a.connect(server.port());
  busy_b.connect(server.port());

  // Sequence the occupancy deterministically: the second request may only
  // be sent once the worker has picked up the first, otherwise it races
  // the (blocked, not yet scheduled) worker for the single queue slot and
  // can be the one rejected.
  const Stopwatch clock;
  busy_a.send(slow);
  while (server.in_flight() < 1 && clock.seconds() < 15.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.in_flight(), 1U);
  busy_b.send(slow);
  while (server.queue_size() < 1 && clock.seconds() < 15.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.queue_size(), 1U);

  // A third request finds the queue full: immediate 503, not a hang.
  const util::JsonValue rejected =
      one_shot(server.port(), small_nsga2_request());
  EXPECT_EQ(code_of(rejected), kCodeOverloaded);
  EXPECT_NE(rejected.string_or("error", "").find("queue"),
            std::string::npos);

  // healthz bypasses the queue and still answers under full load.
  const util::JsonValue health =
      one_shot(server.port(), R"({"type":"healthz"})");
  EXPECT_EQ(code_of(health), kCodeOk);

  // The slow requests complete (partial, but answered).
  EXPECT_EQ(static_cast<int>(
                util::parse_json(busy_a.receive()).number_or("code", -1.0)),
            kCodePartial);
  EXPECT_EQ(static_cast<int>(
                util::parse_json(busy_b.receive()).number_or("code", -1.0)),
            kCodePartial);

  server.stop();
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_GE(snap.counters.at("serve.dropped"), 1U);
}

TEST(ServeServer, MalformedJsonAnswers400AndKeepsTheConnection) {
  Server server;
  server.start();
  ClientConnection connection;
  connection.connect(server.port());

  const util::JsonValue error =
      util::parse_json(connection.call("this is not json"));
  EXPECT_EQ(code_of(error), kCodeBadRequest);
  EXPECT_NE(error.string_or("error", "").find("malformed"),
            std::string::npos);

  // Framing stayed intact: the same connection still serves healthz.
  const util::JsonValue health =
      call_json(connection, R"({"type":"healthz"})");
  EXPECT_EQ(code_of(health), kCodeOk);
  server.stop();
}

TEST(ServeServer, OversizedFrameAnswers400AndCloses) {
  ServerConfig config;
  config.max_frame_bytes = 256;
  Server server(config);
  server.start();
  ClientConnection connection;
  connection.connect(server.port());

  const util::JsonValue error = util::parse_json(
      connection.call(std::string(1024, ' ') + R"({"type":"healthz"})"));
  EXPECT_EQ(code_of(error), kCodeBadRequest);
  EXPECT_NE(error.string_or("error", "").find("exceeds"),
            std::string::npos);

  // A hostile length prefix cannot be resynchronized: the server closes.
  EXPECT_THROW(
      {
        connection.send(R"({"type":"healthz"})");
        (void)connection.receive();
      },
      ConnectError);
  server.stop();
}

TEST(ServeServer, ThirtyTwoConcurrentClients) {
  ServerConfig config;
  config.queue_depth = 64;
  config.workers = 4;
  Server server(config);
  server.start();

  constexpr std::size_t kClients = 32;
  constexpr std::size_t kRequestsEach = 3;
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &ok, &failures] {
      try {
        ClientConnection connection;
        connection.connect(server.port());
        for (std::size_t r = 0; r < kRequestsEach; ++r) {
          const util::JsonValue doc = util::parse_json(connection.call(
              std::string(
                  R"({"type":"allocate","mode":"heuristic:min-min",)") +
              kSmallScenario + "}"));
          if (static_cast<int>(doc.number_or("code", -1.0)) == kCodeOk) {
            ok.fetch_add(1);
          } else {
            failures.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(ok.load(), kClients * kRequestsEach);
  EXPECT_EQ(failures.load(), 0U);
  server.stop();

  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("serve.responses_ok"),
            kClients * kRequestsEach);
  EXPECT_EQ(snap.counters.at("serve.connections"), kClients);
  EXPECT_GE(snap.histograms.at("serve.latency").count,
            kClients * kRequestsEach);
}

TEST(ServeServer, GracefulDrainAnswersEveryAcceptedRequest) {
  ServerConfig config;
  config.queue_depth = 4;
  config.workers = 1;
  Server server(config);
  server.start();

  const std::string slow =
      std::string(R"({"type":"allocate","mode":"nsga2",)") + kSmallScenario +
      R"(,"nsga2":{"population":8,"generations":5000000},
         "deadline_ms":2000})";
  ClientConnection in_flight_client;
  ClientConnection queued_client;
  in_flight_client.connect(server.port());
  queued_client.connect(server.port());

  // As in QueueOverflow…: send the second request only once the first is
  // in flight so one is executing and one is queued when the drain begins.
  const Stopwatch clock;
  in_flight_client.send(slow);
  while (server.in_flight() < 1 && clock.seconds() < 15.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.in_flight(), 1U);
  queued_client.send(slow);
  while (server.queue_size() < 1 && clock.seconds() < 15.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.queue_size(), 1U);

  // Drain while both requests are pending: stop() must not return until
  // they are answered, and both clients must see complete responses.
  std::thread stopper([&server] { server.stop(); });
  const util::JsonValue first =
      util::parse_json(in_flight_client.receive());
  const util::JsonValue second = util::parse_json(queued_client.receive());
  stopper.join();
  EXPECT_EQ(code_of(first), kCodePartial);
  EXPECT_EQ(code_of(second), kCodePartial);

  // After the drain the port is gone.
  ClientConnection late;
  EXPECT_THROW(late.connect(server.port()), ConnectError);
}

TEST(ServeServer, MetricszAndRequestLog) {
  const std::string log_path =
      testing::TempDir() + "/eus_serve_log_test.jsonl";
  std::remove(log_path.c_str());  // RequestLog appends: start clean
  RequestLog log(log_path);
  ServerConfig config;
  config.log = &log;
  Server server(config);
  server.start();

  ClientConnection connection;
  connection.connect(server.port());
  ASSERT_EQ(code_of(call_json(
                connection,
                std::string(
                    R"({"type":"allocate","mode":"heuristic:min-energy",)") +
                    kSmallScenario + "}")),
            kCodeOk);

  const util::JsonValue metrics =
      call_json(connection, R"({"type":"metricsz"})");
  EXPECT_EQ(code_of(metrics), kCodeOk);
  const util::JsonValue* counters = metrics.get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->number_or("serve.requests", 0.0), 1.0);
  ASSERT_NE(metrics.get("histograms"), nullptr);
  server.stop();

  // One config line + one line per allocate request, all valid JSON.
  EXPECT_GE(log.lines_written(), 2U);
  std::ifstream in(log_path);
  std::string line;
  std::size_t lines = 0;
  bool saw_request_line = false;
  while (std::getline(in, line)) {
    ++lines;
    const util::JsonValue doc = util::parse_json(line);
    if (doc.string_or("type", "") == "serve_request") {
      saw_request_line = true;
      EXPECT_EQ(doc.string_or("mode", ""), "heuristic:min-energy");
      EXPECT_EQ(static_cast<int>(doc.number_or("code", -1.0)), kCodeOk);
    }
  }
  EXPECT_EQ(lines, log.lines_written());
  EXPECT_TRUE(saw_request_line);
  std::remove(log_path.c_str());
}

TEST(ServeAdmin, LiveKnobsRetuneTheRunningServer) {
  ServerConfig config;
  config.queue_depth = 4;
  config.workers = 2;
  config.cache_entries = 8;
  Server server(config);
  server.start();
  ClientConnection connection;
  connection.connect(server.port());

  const util::JsonValue before = call_json(
      connection, R"({"type":"adminz","action":"get-config","id":"a1"})");
  ASSERT_EQ(code_of(before), kCodeOk);
  EXPECT_EQ(before.string_or("id", ""), "a1");
  EXPECT_EQ(before.number_or("queue_depth", 0.0), 4.0);
  EXPECT_EQ(before.number_or("workers", 0.0), 2.0);
  EXPECT_EQ(before.number_or("cache_entries", 0.0), 8.0);

  // Each set-* verb takes effect immediately and echoes the new value.
  const util::JsonValue deeper = call_json(
      connection, R"({"type":"adminz","action":"set-queue-depth",
                      "value":16})");
  ASSERT_EQ(code_of(deeper), kCodeOk);
  EXPECT_EQ(deeper.number_or("queue_depth", 0.0), 16.0);
  EXPECT_EQ(server.queue_capacity(), 16U);

  const util::JsonValue smaller_cache = call_json(
      connection, R"({"type":"adminz","action":"set-cache-entries",
                      "value":2})");
  ASSERT_EQ(code_of(smaller_cache), kCodeOk);
  EXPECT_EQ(smaller_cache.number_or("cache_entries", 0.0), 2.0);

  const util::JsonValue more_workers = call_json(
      connection, R"({"type":"adminz","action":"set-workers","value":4})");
  ASSERT_EQ(code_of(more_workers), kCodeOk);
  EXPECT_EQ(more_workers.number_or("workers", 0.0), 4.0);
  EXPECT_EQ(server.worker_target(), 4U);
  {
    const Stopwatch clock;
    while (server.worker_active() < 4 && clock.seconds() < 15.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(server.worker_active(), 4U);
  }

  // Shrinking retires workers via poison tokens without dropping work.
  const util::JsonValue fewer_workers = call_json(
      connection, R"({"type":"adminz","action":"set-workers","value":1})");
  ASSERT_EQ(code_of(fewer_workers), kCodeOk);
  {
    const Stopwatch clock;
    while (server.worker_active() > 1 && clock.seconds() < 15.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(server.worker_active(), 1U);
  }

  // The shrunken pool still answers allocate requests.
  ASSERT_EQ(code_of(call_json(connection, small_nsga2_request())), kCodeOk);

  server.stop();
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_GE(snap.counters.at("serve.admin.actions"), 5U);
}

TEST(ServeAdmin, CatalogReloadServesAliasesLive) {
  SharedCatalog catalog;
  ServerConfig config;
  config.catalog = &catalog;
  Server server(config);
  server.start();
  ClientConnection connection;
  connection.connect(server.port());

  // Before the reload, the alias is unknown: 400, connection survives.
  const std::string aliased = std::string(
      R"({"type":"allocate","mode":"nsga2","scenario":{"name":"tiny"},)") +
      R"("nsga2":{"population":8,"generations":4,
                  "seeds":["min-energy","max-utility"]}})";
  EXPECT_EQ(code_of(call_json(connection, aliased)), kCodeBadRequest);

  const util::JsonValue reloaded = call_json(
      connection,
      R"({"type":"adminz","action":"catalog-reload","catalog":
          {"scenarios":[{"name":"tiny","base":"custom","tasks":10,
                         "window_s":30,"seed":11}]}})");
  ASSERT_EQ(code_of(reloaded), kCodeOk) << reloaded.string_or("error", "");
  EXPECT_EQ(reloaded.number_or("catalog_generation", 0.0), 1.0);
  EXPECT_EQ(reloaded.number_or("catalog_size", 0.0), 1.0);

  // The alias now resolves — and because it resolves to the same concrete
  // spec as kSmallScenario, it shares that request's cache entry: a
  // direct request then an aliased one is one miss + one hit.
  const util::JsonValue direct = call_json(connection, small_nsga2_request());
  ASSERT_EQ(code_of(direct), kCodeOk);
  EXPECT_EQ(direct.string_or("cache", ""), "miss");
  const util::JsonValue via_alias = call_json(connection, aliased);
  ASSERT_EQ(code_of(via_alias), kCodeOk) << via_alias.string_or("error", "");
  EXPECT_EQ(via_alias.string_or("cache", ""), "hit");
  ASSERT_EQ(via_alias.get("front")->array.size(),
            direct.get("front")->array.size());

  // An invalid replacement is rejected whole: the old catalog stays.
  const util::JsonValue rejected = call_json(
      connection,
      R"({"type":"adminz","action":"catalog-reload","catalog":
          {"scenarios":[{"name":"dataset1","base":"custom"}]}})");
  EXPECT_EQ(code_of(rejected), kCodeBadRequest);
  EXPECT_EQ(catalog.generation(), 1U);
  EXPECT_EQ(code_of(call_json(connection, aliased)), kCodeOk);

  // Swapping in an empty catalog drops the alias for *new* requests.
  const util::JsonValue cleared = call_json(
      connection, R"({"type":"adminz","action":"catalog-reload",
                      "catalog":{"scenarios":[]}})");
  ASSERT_EQ(code_of(cleared), kCodeOk);
  EXPECT_EQ(code_of(call_json(connection, aliased)), kCodeBadRequest);
  server.stop();
}

}  // namespace
}  // namespace eus::serve
