#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eus {
namespace {

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 3), "1.000");
  EXPECT_EQ(format_double(-2.5, 1), "-2.5");
  EXPECT_EQ(format_double(0.0, 0), "0");
}

TEST(AsciiTable, RejectsEmptyHeader) {
  EXPECT_THROW(AsciiTable({}), std::invalid_argument);
}

TEST(AsciiTable, RejectsRaggedRow) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(AsciiTable, CountsRowsAndColumns) {
  AsciiTable t({"x", "y", "z"});
  EXPECT_EQ(t.columns(), 3U);
  EXPECT_EQ(t.rows(), 0U);
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.rows(), 2U);
}

TEST(AsciiTable, RenderContainsAllCells) {
  AsciiTable t({"machine", "watts"});
  t.add_row({"i7-3960X", "196"});
  const std::string out = t.render();
  EXPECT_NE(out.find("machine"), std::string::npos);
  EXPECT_NE(out.find("watts"), std::string::npos);
  EXPECT_NE(out.find("i7-3960X"), std::string::npos);
  EXPECT_NE(out.find("196"), std::string::npos);
}

TEST(AsciiTable, RenderAlignsColumns) {
  AsciiTable t({"a"});
  t.add_row({"long-cell-content"});
  const std::string out = t.render();
  // Every line must be the same width.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    start = end + 1;
  }
}

TEST(AsciiTable, NumericRowFormatsWithPrecision) {
  AsciiTable t({"u", "e"});
  t.add_row_numeric({1.23456, 7.0}, 2);
  const std::string out = t.render();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("7.00"), std::string::npos);
}

TEST(AsciiTable, NumericRowWidthChecked) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row_numeric({1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace eus
