#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace eus {
namespace {

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1U);
}

TEST(ThreadPool, ExplicitSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3U);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(visits.size(),
                    [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleItem) {
  ThreadPool pool(4);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 7; });
  EXPECT_EQ(value, 7);
}

TEST(ThreadPool, ComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long> out(5000);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<long>(i) * 2;
  });
  const long total = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(total, 2L * 4999 * 5000 / 2);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(50, [&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(4, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, MoreBlocksThanItems) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // The StudyEngine pattern: population tasks at the top level, each
  // fanning its evaluation batch onto the *same* pool.  With fewer workers
  // than outer tasks, completion requires the work-helping wait.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(6, [&](std::size_t) {
    pool.parallel_for(50, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 6 * 50);
}

TEST(ThreadPool, DeeplyNestedParallelFor) {
  ThreadPool pool(1);  // single worker: helping is the only way forward
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(5, [&](std::size_t) { counter.fetch_add(1); });
    });
  });
  EXPECT_EQ(counter.load(), 3 * 4 * 5);
}

TEST(ThreadPool, NestedExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t) {
                          pool.parallel_for(4, [](std::size_t i) {
                            if (i == 2) throw std::runtime_error("inner");
                          });
                        }),
      std::runtime_error);
  // Still usable afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace eus
