#include "pareto/knee.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eus {
namespace {

// A concave front: utility = sqrt(energy) * 10 over energy in [1, 100].
// Ratio u/e = 10/sqrt(e) is maximized at the lowest-energy point.
std::vector<EUPoint> concave_front() {
  std::vector<EUPoint> pts;
  for (int e = 1; e <= 100; ++e) {
    pts.push_back({static_cast<double>(e), 10.0 * std::sqrt(e)});
  }
  return pts;
}

// A front with an interior efficiency peak: utility ramps steeply then
// saturates (the shape of Figures 3-6).
std::vector<EUPoint> saturating_front() {
  std::vector<EUPoint> pts;
  for (int i = 1; i <= 100; ++i) {
    const double e = i;
    const double u = 100.0 * (1.0 - std::exp(-(e - 1.0) / 15.0));
    pts.push_back({e, u});
  }
  return pts;
}

TEST(Knee, EmptyInputYieldsEmptyAnalysis) {
  const KneeAnalysis k = analyze_utility_per_energy({});
  EXPECT_TRUE(k.front.empty());
  EXPECT_TRUE(k.region.empty());
}

TEST(Knee, RejectsNonPositiveEnergy) {
  EXPECT_THROW(analyze_utility_per_energy({{0.0, 1.0}}),
               std::invalid_argument);
}

TEST(Knee, RatiosMatchDefinition) {
  const KneeAnalysis k = analyze_utility_per_energy(concave_front());
  ASSERT_EQ(k.ratio.size(), k.front.size());
  for (std::size_t i = 0; i < k.front.size(); ++i) {
    EXPECT_DOUBLE_EQ(k.ratio[i], k.front[i].utility / k.front[i].energy);
  }
}

TEST(Knee, ConcaveFrontPeaksAtLowEnergyEnd) {
  const KneeAnalysis k = analyze_utility_per_energy(concave_front());
  EXPECT_EQ(k.peak_index, 0U);
  EXPECT_DOUBLE_EQ(k.peak.energy, 1.0);
}

TEST(Knee, SaturatingFrontHasInteriorPeak) {
  const KneeAnalysis k = analyze_utility_per_energy(saturating_front());
  EXPECT_GT(k.peak_index, 0U);
  EXPECT_LT(k.peak_index, k.front.size() - 1);
  // The ratio 100(1-e^{-(e-1)/15})/e rises from ~0 at e=1, peaks around
  // e ≈ 6-7, and falls thereafter.
  EXPECT_NEAR(k.peak.energy, 6.5, 3.0);
}

TEST(Knee, PeakRatioIsMaximal) {
  const KneeAnalysis k = analyze_utility_per_energy(saturating_front());
  for (const double r : k.ratio) EXPECT_LE(r, k.peak_ratio);
}

TEST(Knee, RegionContainsPeak) {
  const KneeAnalysis k = analyze_utility_per_energy(saturating_front());
  EXPECT_NE(std::find(k.region.begin(), k.region.end(), k.peak_index),
            k.region.end());
}

TEST(Knee, RegionGrowsWithTolerance) {
  const auto tight = analyze_utility_per_energy(saturating_front(), 0.01);
  const auto loose = analyze_utility_per_energy(saturating_front(), 0.20);
  EXPECT_GE(loose.region.size(), tight.region.size());
}

TEST(Knee, RegionMembersAllWithinTolerance) {
  const double tol = 0.05;
  const KneeAnalysis k = analyze_utility_per_energy(saturating_front(), tol);
  for (const std::size_t i : k.region) {
    EXPECT_GE(k.ratio[i], k.peak_ratio * (1.0 - tol) - 1e-12);
  }
}

TEST(Knee, DominatedInputsCleanedFirst) {
  std::vector<EUPoint> pts = saturating_front();
  pts.push_back({50.0, 1.0});  // deeply dominated
  const KneeAnalysis k = analyze_utility_per_energy(pts);
  for (const auto& p : k.front) {
    EXPECT_FALSE(p.energy == 50.0 && p.utility == 1.0);
  }
}

TEST(ChordKnee, SmallFrontsReturnZero) {
  EXPECT_EQ(chord_knee_index({}), 0U);
  EXPECT_EQ(chord_knee_index({{1.0, 1.0}}), 0U);
  EXPECT_EQ(chord_knee_index({{1.0, 1.0}, {2.0, 2.0}}), 0U);
}

TEST(ChordKnee, FindsTheBulge) {
  // A sharp elbow at (2, 9) between extremes (1,1) and (10,10).
  const std::vector<EUPoint> pts = {{1.0, 1.0}, {2.0, 9.0}, {10.0, 10.0}};
  EXPECT_EQ(chord_knee_index(pts), 1U);
}

TEST(ChordKnee, SaturatingFrontKneeNearRampEnd) {
  const KneeAnalysis upe = analyze_utility_per_energy(saturating_front());
  const std::size_t chord = chord_knee_index(saturating_front());
  // Both definitions land on the ramp-to-plateau transition; the chord
  // knee sits at or beyond the U/E peak (it ignores the origin).
  EXPECT_GE(chord, 1U);
  EXPECT_LE(upe.front[chord].energy, 60.0);
  EXPECT_GE(upe.front[chord].energy, upe.peak.energy - 5.0);
}

TEST(ChordKnee, StraightLineFrontPicksAnEnd) {
  std::vector<EUPoint> pts;
  for (int i = 0; i <= 10; ++i) {
    pts.push_back({1.0 + i, 1.0 + i});
  }
  // Zero bulge everywhere: any point is acceptable; must not crash and
  // must return a valid index.
  EXPECT_LT(chord_knee_index(pts), pts.size());
}

TEST(Knee, SinglePointAnalysis) {
  const KneeAnalysis k = analyze_utility_per_energy({{4.0, 8.0}});
  EXPECT_EQ(k.peak_index, 0U);
  EXPECT_DOUBLE_EQ(k.peak_ratio, 2.0);
  EXPECT_EQ(k.region.size(), 1U);
}

}  // namespace
}  // namespace eus
