#include "data/historical.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace eus {
namespace {

TEST(Historical, TableIDimensions) {
  EXPECT_EQ(historical_machine_types().size(), 9U);  // Table I
  EXPECT_EQ(historical_task_types().size(), 5U);     // Table II
}

TEST(Historical, MatrixShapesAre5x9) {
  EXPECT_EQ(historical_etc().rows(), 5U);
  EXPECT_EQ(historical_etc().cols(), 9U);
  EXPECT_EQ(historical_epc().rows(), 5U);
  EXPECT_EQ(historical_epc().cols(), 9U);
}

TEST(Historical, AllMachinesGeneralPurpose) {
  for (const auto& m : historical_machine_types()) {
    EXPECT_EQ(m.category, Category::kGeneral);
  }
}

TEST(Historical, AllTasksGeneralPurpose) {
  for (const auto& t : historical_task_types()) {
    EXPECT_EQ(t.category, Category::kGeneral);
    EXPECT_EQ(t.special_machine_type, -1);
  }
}

TEST(Historical, TableINamesPresent) {
  const auto& m = historical_machine_types();
  EXPECT_EQ(m[0].name, "AMD A8-3870K");
  EXPECT_EQ(m[5].name, "Intel Core i7 3960X");
  EXPECT_EQ(m[8].name, "Intel Core i7 3770K @ 4.3 GHz");
}

TEST(Historical, TableIINamesPresent) {
  const auto& t = historical_task_types();
  EXPECT_EQ(t[0].name, "C-Ray");
  EXPECT_EQ(t[4].name, "Timed Linux Kernel Compilation");
}

TEST(Historical, AllEntriesPositiveFinite) {
  const Matrix& etc = historical_etc();
  const Matrix& epc = historical_epc();
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 9; ++c) {
      EXPECT_TRUE(std::isfinite(etc(r, c)) && etc(r, c) > 0.0);
      EXPECT_TRUE(std::isfinite(epc(r, c)) && epc(r, c) > 0.0);
    }
  }
}

TEST(Historical, MachineHeterogeneityPresent) {
  // Machine type A may be faster than B on one task and slower on another
  // (§III-B): verify the matrix is *inconsistent* in the Ali et al. sense
  // for the A8 (quad core) vs i3 (dual core) pair.
  const Matrix& etc = historical_etc();
  // A8 (col 0) is faster than i3 (col 2) for well-threaded C-Ray...
  EXPECT_LT(etc(0, 0), etc(0, 2));
  // ...but slower for the lightly threaded Warsow.
  EXPECT_GT(etc(2, 0), etc(2, 2));
}

TEST(Historical, OverclockedVariantsAreFaster) {
  const Matrix& etc = historical_etc();
  for (std::size_t task = 0; task < 5; ++task) {
    EXPECT_LT(etc(task, 6), etc(task, 5));  // 3960X @4.2 < 3960X
    EXPECT_LT(etc(task, 8), etc(task, 7));  // 3770K @4.3 < 3770K
  }
}

TEST(Historical, OverclockedVariantsDrawMorePower) {
  const Matrix& epc = historical_epc();
  for (std::size_t task = 0; task < 5; ++task) {
    EXPECT_GT(epc(task, 6), epc(task, 5));
    EXPECT_GT(epc(task, 8), epc(task, 7));
  }
}

TEST(Historical, SystemHasOneMachinePerType) {
  const SystemModel sys = historical_system();
  EXPECT_EQ(sys.num_machines(), 9U);
  for (std::size_t ty = 0; ty < 9; ++ty) {
    EXPECT_EQ(sys.count_of_type(ty), 1U);
  }
}

TEST(Historical, SystemValidates) {
  // Construction runs the SystemModel validator; reaching here means the
  // reconstruction satisfies every §III eligibility/positivity rule.
  const SystemModel sys = historical_system();
  EXPECT_EQ(sys.num_task_types(), 5U);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(sys.eligible_machines(t).size(), 9U);
  }
}

}  // namespace
}  // namespace eus
