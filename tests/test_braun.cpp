#include "heuristics/braun.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/historical.hpp"
#include "heuristics/seeds.hpp"
#include "sched/evaluator.hpp"
#include "tuf/builder.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary linear_library() {
  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(100.0, 0.0, 1800.0)});
  return TufClassLibrary(std::move(classes));
}

struct Fixture {
  SystemModel system = historical_system();
  Trace trace;

  explicit Fixture(std::size_t n = 80, std::uint64_t seed = 17)
      : trace(make_trace(system, n, seed)) {}

  static Trace make_trace(const SystemModel& sys, std::size_t n,
                          std::uint64_t seed) {
    Rng rng(seed);
    TraceConfig cfg;
    cfg.num_tasks = n;
    cfg.window_seconds = 900.0;
    return generate_trace(sys, linear_library(), cfg, rng);
  }
};

TEST(Braun, AllHeuristicsProduceValidAllocations) {
  const Fixture fx;
  const Evaluator ev(fx.system, fx.trace);
  for (const BatchHeuristic h : all_batch_heuristics()) {
    const Allocation a = make_batch_seed(h, fx.system, fx.trace);
    EXPECT_NO_THROW(ev.validate(a)) << to_string(h);
  }
}

TEST(Braun, MetPicksFastestMachinePerTask) {
  const Fixture fx;
  const Allocation a = met_allocation(fx.system, fx.trace);
  for (std::size_t i = 0; i < fx.trace.size(); ++i) {
    const std::size_t type = fx.trace.tasks()[i].type;
    const double chosen =
        fx.system.etc_on(type, static_cast<std::size_t>(a.machine[i]));
    for (const int m : fx.system.eligible_machines(type)) {
      EXPECT_LE(chosen, fx.system.etc_on(type, static_cast<std::size_t>(m)));
    }
  }
}

TEST(Braun, MetOverloadsFavoriteMachines) {
  // With the historical matrix the overclocked i7s win most rows, so MET
  // funnels tasks onto few machines.
  const Fixture fx(100);
  const Allocation a = met_allocation(fx.system, fx.trace);
  std::set<int> used(a.machine.begin(), a.machine.end());
  EXPECT_LE(used.size(), 4U);
}

TEST(Braun, OlbUsesEveryMachine) {
  const Fixture fx(100);
  const Allocation a = olb_allocation(fx.system, fx.trace);
  std::set<int> used(a.machine.begin(), a.machine.end());
  EXPECT_EQ(used.size(), fx.system.num_machines());
}

TEST(Braun, OlbBalancesAssignmentCounts) {
  const Fixture fx(180);
  const Allocation a = olb_allocation(fx.system, fx.trace);
  std::vector<int> counts(fx.system.num_machines(), 0);
  for (const int m : a.machine) ++counts[static_cast<std::size_t>(m)];
  // OLB ignores speed, so counts even out (not exactly: faster machines
  // drain sooner and get more) — every machine gets a meaningful share.
  for (const int c : counts) EXPECT_GE(c, 5);
}

TEST(Braun, TwoStageOrdersArePermutations) {
  const Fixture fx;
  for (const BatchHeuristic h :
       {BatchHeuristic::kMaxMin, BatchHeuristic::kSufferage}) {
    const Allocation a = make_batch_seed(h, fx.system, fx.trace);
    std::set<int> orders(a.order.begin(), a.order.end());
    EXPECT_EQ(orders.size(), fx.trace.size()) << to_string(h);
  }
}

TEST(Braun, MaxMinDiffersFromMinMin) {
  const Fixture fx;
  const Allocation max_min =
      max_min_completion_time_allocation(fx.system, fx.trace);
  const Allocation min_min =
      min_min_completion_time_allocation(fx.system, fx.trace);
  EXPECT_NE(max_min.machine, min_min.machine);
}

TEST(Braun, MinMinBeatsOlbOnMakespan) {
  const Fixture fx(120);
  const Evaluator ev(fx.system, fx.trace);
  const double mm =
      ev.evaluate(min_min_completion_time_allocation(fx.system, fx.trace))
          .makespan;
  const double olb = ev.evaluate(olb_allocation(fx.system, fx.trace)).makespan;
  EXPECT_LT(mm, olb * 1.2);  // min-min is the strong baseline of ref [24]
}

TEST(Braun, SufferageMapsConstrainedTasksFirst) {
  // A system where task type 1 runs on one machine only (its special
  // machine): sufferage must schedule those tasks before flexible ones.
  std::vector<TaskType> tasks = {{"g", Category::kGeneral, -1},
                                 {"sp", Category::kSpecial, 1}};
  std::vector<MachineType> types = {{"gm", Category::kGeneral},
                                    {"sm", Category::kSpecial}};
  std::vector<Machine> machines = {{0, "gm"}, {1, "sm"}};
  const Matrix etc = Matrix::from_rows({{10.0, kIneligible}, {50.0, 5.0}});
  const Matrix epc = Matrix::from_rows({{10.0, 1.0}, {10.0, 10.0}});
  const SystemModel sys(tasks, types, machines, etc, epc);

  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(5.0, 0.0, 500.0)});
  const TufClassLibrary lib(std::move(classes));
  const Trace trace({{0, 0.0, 0}, {1, 0.0, 0}, {0, 0.0, 0}}, lib);

  const Allocation a = sufferage_allocation(sys, trace);
  // The special task's fast machine is exclusive to it; sufferage must put
  // it there (its sufferage vs the slow general machine is large).
  EXPECT_EQ(a.machine[1], 1);
  const Evaluator ev(sys, trace);
  EXPECT_NO_THROW(ev.validate(a));
}

TEST(Braun, SufferagePrefersTasksWithBigRegret) {
  const Fixture fx(60);
  const Allocation a = sufferage_allocation(fx.system, fx.trace);
  const Evaluator ev(fx.system, fx.trace);
  // Sanity: a real schedule with finite makespan and competitive quality
  // vs OLB.
  const double suff = ev.evaluate(a).makespan;
  const double olb = ev.evaluate(olb_allocation(fx.system, fx.trace)).makespan;
  EXPECT_LT(suff, olb * 1.5);
}

TEST(Braun, DeterministicOutputs) {
  const Fixture fx;
  for (const BatchHeuristic h : all_batch_heuristics()) {
    EXPECT_EQ(make_batch_seed(h, fx.system, fx.trace),
              make_batch_seed(h, fx.system, fx.trace))
        << to_string(h);
  }
}

TEST(Braun, NamesDistinct) {
  std::set<std::string> names;
  for (const BatchHeuristic h : all_batch_heuristics()) {
    names.insert(to_string(h));
  }
  EXPECT_EQ(names.size(), 4U);
}

}  // namespace
}  // namespace eus
