// Fleet-config parser tests: the strict-validation contract of
// fleet/config.hpp (duplicate names, bad ports, unknown capability syntax,
// non-loopback hosts, bad factors) plus the capability-tag eligibility
// semantics (dimension-wise whitelisting with mode:/scenario:/*).

#include <gtest/gtest.h>

#include <string>

#include "fleet/config.hpp"

namespace eus::fleet {
namespace {

FleetConfig parse(const std::string& json) {
  return parse_fleet_config_text(json);
}

void expect_rejected(const std::string& json, const std::string& needle) {
  try {
    (void)parse_fleet_config_text(json);
    FAIL() << "config was accepted: " << json;
  } catch (const FleetConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error '" << e.what() << "' does not mention '" << needle << "'";
  }
}

TEST(FleetConfig, ParsesMinimalBackend) {
  const FleetConfig fleet =
      parse(R"({"backends":[{"name":"a","port":7471}]})");
  ASSERT_EQ(fleet.backends.size(), 1U);
  const BackendConfig& b = fleet.backends[0];
  EXPECT_EQ(b.name, "a");
  EXPECT_EQ(b.host, "127.0.0.1");
  EXPECT_EQ(b.port, 7471);
  EXPECT_TRUE(b.capabilities.empty());
  EXPECT_DOUBLE_EQ(b.speed_factor, 1.0);
  EXPECT_DOUBLE_EQ(b.watts, 1.0);
  EXPECT_EQ(b.max_in_flight, 32U);
  EXPECT_TRUE(b.enabled);
}

TEST(FleetConfig, ParsesFullDescriptor) {
  const FleetConfig fleet = parse(R"({"backends":[
    {"name":"big.box-1", "host":"localhost", "port":1,
     "capabilities":["mode:nsga2","scenario:dataset1","*"],
     "speed_factor":2.5, "watts":95.0, "max_in_flight":8,
     "enabled":false}]})");
  ASSERT_EQ(fleet.backends.size(), 1U);
  const BackendConfig& b = fleet.backends[0];
  EXPECT_EQ(b.name, "big.box-1");
  EXPECT_EQ(b.port, 1);
  EXPECT_EQ(b.capabilities.size(), 3U);
  EXPECT_DOUBLE_EQ(b.speed_factor, 2.5);
  EXPECT_DOUBLE_EQ(b.watts, 95.0);
  EXPECT_EQ(b.max_in_flight, 8U);
  EXPECT_FALSE(b.enabled);
}

TEST(FleetConfig, RejectsEmptyAndMissingBackendList) {
  expect_rejected(R"({"backends":[]})", "at least one");
  expect_rejected(R"({})", "backends");
  expect_rejected(R"({"backends":42})", "backends");
}

TEST(FleetConfig, RejectsDuplicateNames) {
  expect_rejected(R"({"backends":[{"name":"a","port":7471},
                                  {"name":"a","port":7472}]})",
                  "duplicate");
}

TEST(FleetConfig, RejectsDuplicateEndpoints) {
  expect_rejected(R"({"backends":[{"name":"a","port":7471},
                                  {"name":"b","port":7471}]})",
                  "duplicate");
}

TEST(FleetConfig, RejectsBadPorts) {
  expect_rejected(R"({"backends":[{"name":"a","port":0}]})", "port");
  expect_rejected(R"({"backends":[{"name":"a","port":65536}]})", "port");
  expect_rejected(R"({"backends":[{"name":"a","port":-1}]})", "port");
  expect_rejected(R"({"backends":[{"name":"a","port":7471.5}]})", "port");
  expect_rejected(R"({"backends":[{"name":"a","port":"7471"}]})", "port");
  expect_rejected(R"({"backends":[{"name":"a"}]})", "port");
}

TEST(FleetConfig, RejectsBadNames) {
  expect_rejected(R"({"backends":[{"name":"","port":7471}]})", "name");
  expect_rejected(R"({"backends":[{"name":"a b","port":7471}]})", "name");
  expect_rejected(R"({"backends":[{"port":7471}]})", "name");
}

TEST(FleetConfig, RejectsNonLoopbackHosts) {
  expect_rejected(
      R"({"backends":[{"name":"a","host":"10.0.0.7","port":7471}]})",
      "loopback");
}

TEST(FleetConfig, RejectsUnknownCapabilitySyntax) {
  expect_rejected(R"({"backends":[
      {"name":"a","port":7471,"capabilities":["gpu"]}]})",
                  "unknown capability syntax");
  expect_rejected(R"({"backends":[
      {"name":"a","port":7471,"capabilities":["mode:warp-drive"]}]})",
                  "mode");
  expect_rejected(R"({"backends":[
      {"name":"a","port":7471,"capabilities":["scenario:"]}]})",
                  "scenario");
  expect_rejected(R"({"backends":[
      {"name":"a","port":7471,"capabilities":[7]}]})",
                  "capabilit");
}

TEST(FleetConfig, RejectsBadFactorsAndCaps) {
  expect_rejected(
      R"({"backends":[{"name":"a","port":7471,"speed_factor":0}]})",
      "speed_factor");
  expect_rejected(
      R"({"backends":[{"name":"a","port":7471,"watts":-1}]})", "watts");
  expect_rejected(
      R"({"backends":[{"name":"a","port":7471,"max_in_flight":0}]})",
      "max_in_flight");
  expect_rejected(
      R"({"backends":[{"name":"a","port":7471,"enabled":"yes"}]})",
      "enabled");
}

TEST(FleetConfig, RejectsInvalidJson) {
  EXPECT_THROW((void)parse_fleet_config_text("{nope"), FleetConfigError);
}

TEST(FleetCapabilities, EmptyListAndStarAcceptEverything) {
  EXPECT_TRUE(capabilities_allow({}, "nsga2", "dataset1"));
  EXPECT_TRUE(capabilities_allow({"*"}, "heuristic", "inline"));
}

TEST(FleetCapabilities, ModeTagsWhitelistModes) {
  const std::vector<std::string> caps = {"mode:nsga2", "mode:pareto-query"};
  EXPECT_TRUE(capabilities_allow(caps, "nsga2", "dataset1"));
  EXPECT_TRUE(capabilities_allow(caps, "pareto-query", "dataset2"));
  EXPECT_FALSE(capabilities_allow(caps, "heuristic", "dataset1"));
}

TEST(FleetCapabilities, ScenarioTagsWhitelistScenarios) {
  const std::vector<std::string> caps = {"scenario:dataset1"};
  EXPECT_TRUE(capabilities_allow(caps, "nsga2", "dataset1"));
  EXPECT_FALSE(capabilities_allow(caps, "nsga2", "dataset2"));
}

TEST(FleetCapabilities, DimensionsComposeIndependently) {
  const std::vector<std::string> caps = {"mode:nsga2", "scenario:dataset1"};
  EXPECT_TRUE(capabilities_allow(caps, "nsga2", "dataset1"));
  EXPECT_FALSE(capabilities_allow(caps, "nsga2", "dataset2"));
  EXPECT_FALSE(capabilities_allow(caps, "heuristic", "dataset1"));
  // "*" is the documented escape hatch: it accepts everything even next
  // to narrower tags.
  const std::vector<std::string> star = {"*", "mode:nsga2"};
  EXPECT_TRUE(capabilities_allow(star, "heuristic", "dataset1"));
}

}  // namespace
}  // namespace eus::fleet
