#include "sched/dvfs.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eus {
namespace {

TEST(Dvfs, RejectsEmptyTable) {
  EXPECT_THROW(DvfsModel({}), std::invalid_argument);
}

TEST(Dvfs, RejectsNonPositiveScales) {
  EXPECT_THROW(DvfsModel({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(DvfsModel({{1.0, -1.0}}), std::invalid_argument);
}

TEST(Dvfs, NominalIsClosestToUnity) {
  const DvfsModel m({{0.6, 0.2}, {0.8, 0.5}, {1.0, 1.0}});
  EXPECT_EQ(m.nominal_index(), 2U);
  const DvfsModel n({{1.2, 1.7}, {0.95, 0.9}});
  EXPECT_EQ(n.nominal_index(), 1U);
}

TEST(Dvfs, Multipliers) {
  const DvfsModel m({{0.5, 0.25}});
  EXPECT_DOUBLE_EQ(m.time_multiplier(0), 2.0);
  EXPECT_DOUBLE_EQ(m.power_multiplier(0), 0.25);
  EXPECT_THROW((void)m.time_multiplier(3), std::out_of_range);
}

TEST(Dvfs, CubicModelPowerLaw) {
  const DvfsModel m = make_cubic_dvfs({0.5, 1.0});
  EXPECT_DOUBLE_EQ(m.pstates()[0].power_scale, 0.125);
  EXPECT_DOUBLE_EQ(m.pstates()[1].power_scale, 1.0);
}

TEST(Dvfs, CubicModelEnergyDropsWithFrequency) {
  // Energy multiplier = time_multiplier * power_multiplier = f^2.
  const DvfsModel m = make_cubic_dvfs({0.6, 0.8, 1.0});
  double prev = 0.0;
  for (std::size_t p = 0; p < m.size(); ++p) {
    const double energy = m.time_multiplier(p) * m.power_multiplier(p);
    EXPECT_GT(energy, prev);
    prev = energy;
    EXPECT_NEAR(energy, m.pstates()[p].freq_scale * m.pstates()[p].freq_scale,
                1e-12);
  }
}

}  // namespace
}  // namespace eus
