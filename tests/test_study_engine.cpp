#include "core/study_engine.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "data/historical.hpp"
#include "tuf/builder.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary mixed_library() {
  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(10.0, 0.0, 1500.0)});
  return TufClassLibrary(std::move(classes));
}

struct Fixture {
  SystemModel system = historical_system();
  Trace trace;
  UtilityEnergyProblem problem;

  Fixture() : trace(make_trace(system)), problem(system, trace) {}

  static Trace make_trace(const SystemModel& sys) {
    Rng rng(15);
    TraceConfig cfg;
    cfg.num_tasks = 40;
    cfg.window_seconds = 900.0;
    return generate_trace(sys, mixed_library(), cfg, rng);
  }
};

Nsga2Config tiny_config() {
  Nsga2Config cfg;
  cfg.population_size = 12;
  cfg.seed = 3;
  return cfg;
}

// The tentpole guarantee: concurrent execution is a scheduling change only.
// Every checkpointed front must match the serial harness bit for bit.
TEST(StudyEngine, ConcurrentMatchesSerialBitIdentical) {
  const Fixture fx;
  const auto specs = paper_population_specs();
  const std::vector<std::size_t> checkpoints = {2, 5, 9};

  const StudyResult serial =
      run_seeding_study(fx.problem, tiny_config(), checkpoints, specs);

  StudyEngineConfig config;
  config.threads = 4;
  StudyEngine engine(config);
  const StudyResult parallel =
      engine.run(fx.problem, tiny_config(), checkpoints, specs);

  ASSERT_EQ(serial.fronts.size(), parallel.fronts.size());
  EXPECT_EQ(serial.fronts, parallel.fronts);
  EXPECT_EQ(serial.population_names, parallel.population_names);
  EXPECT_EQ(serial.checkpoints, parallel.checkpoints);
}

// Extension of the bit-identity guarantee: the fitness cache is a
// scheduling/memoization change only.  Serial + uncached must match
// cached runs at 1, 2, and N threads bit for bit.
TEST(StudyEngine, CachedFrontsBitIdenticalAcrossThreadCounts) {
  const Fixture fx;
  const auto specs = paper_population_specs();
  const std::vector<std::size_t> checkpoints = {2, 5, 9};

  const StudyResult baseline =
      run_seeding_study(fx.problem, tiny_config(), checkpoints, specs);

  for (const std::size_t threads : {1U, 2U, 4U}) {
    FitnessCache cache;
    StudyEngineConfig config;
    config.threads = threads;
    config.cache = &cache;
    StudyEngine engine(config);
    const StudyResult cached =
        engine.run(fx.problem, tiny_config(), checkpoints, specs);
    EXPECT_EQ(baseline.fronts, cached.fronts) << threads << " threads";
    EXPECT_GT(cache.misses(), 0U);
  }
}

TEST(StudyEngine, SharedCacheServesRepeatWorkAndPublishesCounters) {
  const Fixture fx;
  const auto specs = paper_population_specs();
  MetricsRegistry metrics;
  FitnessCacheConfig cache_config;
  cache_config.metrics = &metrics;
  // Ample slots: with the small default table, direct-mapped conflicts
  // among this fixture's genomes would blur the all-hits arithmetic below.
  cache_config.capacity = 1U << 16U;
  FitnessCache cache(cache_config);
  StudyEngineConfig config;
  config.threads = 2;
  config.cache = &cache;
  config.metrics = &metrics;
  StudyEngine engine(config);

  const StudyResult first = engine.run(fx.problem, tiny_config(), {3}, specs);
  const std::uint64_t misses_after_first = cache.misses();
  const std::uint64_t hits_after_first = cache.hits();
  const StudyResult second = engine.run(fx.problem, tiny_config(), {3}, specs);

  EXPECT_EQ(first.fronts, second.fronts);
  // The repeat run re-generates the exact same genomes (same seeds), so it
  // makes the same number of lookups and nearly all of them hit — only a
  // genome whose direct-mapped slot a later sibling claimed can re-miss.
  const std::uint64_t hits_delta = cache.hits() - hits_after_first;
  const std::uint64_t misses_delta = cache.misses() - misses_after_first;
  EXPECT_EQ(hits_delta + misses_delta, hits_after_first + misses_after_first);
  EXPECT_GE(hits_delta, 9 * misses_delta);
  EXPECT_GT(hits_delta, 0U);

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("cache.hits"), cache.hits());
  EXPECT_EQ(snap.counters.at("cache.misses"), cache.misses());
  EXPECT_EQ(snap.counters.at("cache.evictions"), cache.evictions());
}

TEST(StudyEngine, ResultIndependentOfThreadCount) {
  const Fixture fx;
  const auto specs = paper_population_specs();

  StudyEngineConfig two;
  two.threads = 2;
  StudyEngineConfig five;
  five.threads = 5;
  StudyEngine a(two);
  StudyEngine b(five);
  const StudyResult ra = a.run(fx.problem, tiny_config(), {3, 7}, specs);
  const StudyResult rb = b.run(fx.problem, tiny_config(), {3, 7}, specs);
  EXPECT_EQ(ra.fronts, rb.fronts);
}

TEST(StudyEngine, SharedPoolNsga2MatchesSerialNsga2) {
  const Fixture fx;
  ThreadPool pool(4);

  Nsga2Config serial = tiny_config();
  Nsga2Config shared = tiny_config();
  shared.shared_pool = &pool;

  Nsga2 a(fx.problem, serial);
  Nsga2 b(fx.problem, shared);
  a.initialize({});
  b.initialize({});
  a.iterate(8);
  b.iterate(8);
  EXPECT_EQ(a.front_points(), b.front_points());
}

TEST(StudyEngine, ResolvedThreadCount) {
  StudyEngine serial;
  EXPECT_EQ(serial.threads(), 1U);

  StudyEngineConfig config;
  config.threads = 3;
  StudyEngine pooled(config);
  EXPECT_EQ(pooled.threads(), 3U);
}

TEST(StudyEngine, ValidatesArguments) {
  const Fixture fx;
  StudyEngine engine;
  EXPECT_THROW(
      engine.run(fx.problem, tiny_config(), {}, paper_population_specs()),
      std::invalid_argument);
  EXPECT_THROW(
      engine.run(fx.problem, tiny_config(), {5, 5},
                 paper_population_specs()),
      std::invalid_argument);
  EXPECT_THROW(engine.run(fx.problem, tiny_config(), {1, 2}, {}),
               std::invalid_argument);
}

TEST(StudyEngine, ProgressSerializedAndComplete) {
  const Fixture fx;
  StudyEngineConfig config;
  config.threads = 4;
  StudyEngine engine(config);
  std::size_t calls = 0;
  (void)engine.run(fx.problem, tiny_config(), {1, 2},
                   paper_population_specs(),
                   [&](const std::string&, std::size_t) { ++calls; });
  // The engine serializes the callback, so a plain counter must be exact.
  EXPECT_EQ(calls, 5U * 2U);
}

TEST(StudyEngine, MetricsAggregateAcrossPopulations) {
  const Fixture fx;
  MetricsRegistry metrics;
  StudyEngineConfig config;
  config.threads = 2;
  config.metrics = &metrics;
  StudyEngine engine(config);
  const auto specs = paper_population_specs();
  (void)engine.run(fx.problem, tiny_config(), {4}, specs);

  const MetricsSnapshot snap = metrics.snapshot();
  // Every population runs 4 generations.
  EXPECT_EQ(snap.counters.at("nsga2.generations"), specs.size() * 4U);
  // Per population: N initial evaluations + N offspring per generation.
  EXPECT_EQ(snap.counters.at("nsga2.evaluations"),
            specs.size() * 12U * (1U + 4U));
  EXPECT_GT(snap.timers.at("nsga2.evaluation_s").count, 0U);
  EXPECT_GT(snap.gauges.at("nsga2.front_size"), 0.0);
}

TEST(StudyEngine, RecorderEmitsParseableJsonl) {
  const Fixture fx;
  std::ostringstream out;
  RunRecorder recorder(out);
  MetricsRegistry metrics;
  StudyEngineConfig config;
  config.threads = 2;
  config.metrics = &metrics;
  config.recorder = &recorder;
  config.study_label = "unit study";
  StudyEngine engine(config);
  const auto specs = paper_population_specs();
  const std::vector<std::size_t> checkpoints = {1, 3};
  (void)engine.run(fx.problem, tiny_config(), checkpoints, specs);

  // config + one line per (population, checkpoint) + summary.
  EXPECT_EQ(recorder.lines_written(),
            1U + specs.size() * checkpoints.size() + 1U);
  std::istringstream in(out.str());
  std::string line;
  std::size_t config_lines = 0, checkpoint_lines = 0, summary_lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"type\":\"config\"") != std::string::npos) ++config_lines;
    if (line.find("\"type\":\"checkpoint\"") != std::string::npos) {
      ++checkpoint_lines;
      EXPECT_NE(line.find("\"front\":[["), std::string::npos);
    }
    if (line.find("\"type\":\"summary\"") != std::string::npos) {
      ++summary_lines;
      EXPECT_NE(line.find("\"nsga2.evaluations\""), std::string::npos);
    }
  }
  EXPECT_EQ(config_lines, 1U);
  EXPECT_EQ(checkpoint_lines, specs.size() * checkpoints.size());
  EXPECT_EQ(summary_lines, 1U);
}

TEST(StudyEngine, EvaluatorMetricsCountViaProblemOptions) {
  MetricsRegistry metrics;
  const Fixture fx;
  EvaluatorOptions options;
  options.metrics = &metrics;
  const UtilityEnergyProblem instrumented(fx.system, fx.trace, options);

  StudyEngine engine;
  (void)engine.run(instrumented, tiny_config(), {2},
                   paper_population_specs());
  const MetricsSnapshot snap = metrics.snapshot();
  // Seed construction evaluates nothing through the evaluator's fast path
  // beyond the populations: N initial + N per generation, per population.
  EXPECT_EQ(snap.counters.at("evaluator.evaluations"), 5U * 12U * (1U + 2U));
}

}  // namespace
}  // namespace eus
