#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace eus {
namespace {

TEST(AsciiPlot, EmptySeriesListYieldsStub) {
  const std::string out = render_scatter({}, {});
  EXPECT_NE(out.find("(no data)"), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesDataYieldsStub) {
  PlotSeries s{"empty", 'x', {}, {}};
  const std::string out = render_scatter({s}, {});
  EXPECT_NE(out.find("(no data)"), std::string::npos);
}

TEST(AsciiPlot, TitleAppears) {
  PlotOptions opts;
  opts.title = "Pareto front";
  PlotSeries s{"front", '*', {1.0}, {2.0}};
  const std::string out = render_scatter({s}, opts);
  EXPECT_EQ(out.find("Pareto front"), 0U);
}

TEST(AsciiPlot, MarkerAppearsInCanvas) {
  PlotSeries s{"a", '@', {0.0, 1.0}, {0.0, 1.0}};
  const std::string out = render_scatter({s}, {});
  EXPECT_NE(out.find('@'), std::string::npos);
}

TEST(AsciiPlot, LegendListsAllSeries) {
  PlotSeries s1{"first", '1', {0.0}, {0.0}};
  PlotSeries s2{"second", '2', {1.0}, {1.0}};
  const std::string out = render_scatter({s1, s2}, {});
  EXPECT_NE(out.find("1 = first"), std::string::npos);
  EXPECT_NE(out.find("2 = second"), std::string::npos);
}

TEST(AsciiPlot, AxisLabelsAppear) {
  PlotOptions opts;
  opts.x_label = "energy (MJ)";
  opts.y_label = "utility";
  PlotSeries s{"a", '*', {1.0, 2.0}, {3.0, 4.0}};
  const std::string out = render_scatter({s}, opts);
  EXPECT_NE(out.find("energy (MJ)"), std::string::npos);
  EXPECT_NE(out.find("utility"), std::string::npos);
}

TEST(AsciiPlot, NonFinitePointsSkipped) {
  PlotSeries s{"a", '*',
               {1.0, std::numeric_limits<double>::quiet_NaN()},
               {2.0, 3.0}};
  const std::string out = render_scatter({s}, {});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, AllNonFiniteYieldsStub) {
  const double inf = std::numeric_limits<double>::infinity();
  PlotSeries s{"a", '*', {inf}, {1.0}};
  const std::string out = render_scatter({s}, {});
  EXPECT_NE(out.find("(no data)"), std::string::npos);
}

TEST(AsciiPlot, SinglePointDoesNotDivideByZero) {
  PlotSeries s{"a", '*', {5.0}, {5.0}};
  const std::string out = render_scatter({s}, {});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, RangeLabelsReflectData) {
  PlotSeries s{"a", '*', {10.0, 20.0}, {100.0, 200.0}};
  const std::string out = render_scatter({s}, {});
  EXPECT_NE(out.find("200.00"), std::string::npos);  // y max
  EXPECT_NE(out.find("100.00"), std::string::npos);  // y min
  EXPECT_NE(out.find("10.00"), std::string::npos);   // x min
  EXPECT_NE(out.find("20.00"), std::string::npos);   // x max
}

}  // namespace
}  // namespace eus
