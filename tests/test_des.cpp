#include "des/des_evaluator.hpp"

#include <gtest/gtest.h>

#include "core/operators.hpp"
#include "core/problem.hpp"
#include "data/historical.hpp"
#include "heuristics/seeds.hpp"
#include "tuf/builder.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary mixed_library() {
  std::vector<TufClass> classes;
  classes.push_back({"l", 2.0, make_linear_decay_tuf(10.0, 0.0, 1500.0)});
  classes.push_back({"h", 1.0, make_hard_deadline_tuf(20.0, 1200.0)});
  return TufClassLibrary(std::move(classes));
}

struct Fixture {
  SystemModel system = historical_system();
  Trace trace;

  explicit Fixture(std::size_t n = 60, std::uint64_t seed = 41)
      : trace(make_trace(system, n, seed)) {}

  static Trace make_trace(const SystemModel& sys, std::size_t n,
                          std::uint64_t seed) {
    Rng rng(seed);
    TraceConfig cfg;
    cfg.num_tasks = n;
    cfg.window_seconds = 900.0;
    return generate_trace(sys, mixed_library(), cfg, rng);
  }
};

void expect_equal(const Evaluation& a, const Evaluation& b) {
  EXPECT_DOUBLE_EQ(a.utility, b.utility);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_DOUBLE_EQ(a.idle_energy, b.idle_energy);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.dropped, b.dropped);
}

TEST(Des, MatchesAnalyticEvaluatorOnSeeds) {
  const Fixture fx;
  const Evaluator analytic(fx.system, fx.trace);
  for (const SeedHeuristic h : all_seed_heuristics()) {
    const Allocation a = make_seed(h, fx.system, fx.trace);
    expect_equal(des_evaluate(fx.system, fx.trace, a).totals,
                 analytic.evaluate(a));
  }
}

TEST(Des, PerTaskOutcomesMatchAnalyticDetail) {
  const Fixture fx;
  const Evaluator analytic(fx.system, fx.trace);
  const Allocation a =
      min_min_completion_time_allocation(fx.system, fx.trace);
  const auto [totals, detail] = analytic.detail(a);
  const DesResult des = des_evaluate(fx.system, fx.trace, a);
  ASSERT_EQ(des.outcomes.size(), detail.size());
  for (std::size_t i = 0; i < detail.size(); ++i) {
    EXPECT_DOUBLE_EQ(des.outcomes[i].start, detail[i].start) << i;
    EXPECT_DOUBLE_EQ(des.outcomes[i].finish, detail[i].finish) << i;
    EXPECT_DOUBLE_EQ(des.outcomes[i].utility, detail[i].utility) << i;
    EXPECT_EQ(des.outcomes[i].machine, detail[i].machine) << i;
  }
}

TEST(Des, MachineTimelinesAreSequentialAndChronological) {
  const Fixture fx;
  const Allocation a = max_utility_allocation(fx.system, fx.trace);
  const DesResult des = des_evaluate(fx.system, fx.trace, a);
  std::size_t total_runs = 0;
  for (const auto& m : des.machines) {
    double prev_finish = 0.0;
    double busy = 0.0;
    for (const auto& span : m.timeline) {
      EXPECT_GE(span.start, prev_finish);
      EXPECT_GT(span.finish, span.start);
      prev_finish = span.finish;
      busy += span.finish - span.start;
    }
    EXPECT_NEAR(busy, m.busy_time, 1e-9);
    EXPECT_EQ(m.timeline.size(), m.tasks_run);
    total_runs += m.tasks_run;
  }
  EXPECT_EQ(total_runs, fx.trace.size());
}

TEST(Des, QueueWaitNonNegative) {
  const Fixture fx;
  const Allocation a = min_energy_allocation(fx.system, fx.trace);
  const DesResult des = des_evaluate(fx.system, fx.trace, a);
  EXPECT_GE(des.mean_queue_wait, 0.0);
  // Min-energy overloads the cheapest machines: waits must be substantial.
  EXPECT_GT(des.mean_queue_wait, 1.0);
}

TEST(Des, EventCountIsBounded) {
  // Each executed task fires exactly one completion event; plus at most one
  // initial event per used machine and one arrival-sleep per wait.
  const Fixture fx;
  const Allocation a = max_utility_allocation(fx.system, fx.trace);
  const DesResult des = des_evaluate(fx.system, fx.trace, a);
  EXPECT_GE(des.events_fired, fx.trace.size());
  EXPECT_LE(des.events_fired, 3 * fx.trace.size() + fx.system.num_machines());
}

TEST(Des, ValidatesAllocation) {
  const Fixture fx;
  EXPECT_THROW(
      (void)des_evaluate(fx.system, fx.trace, make_trivial_allocation(3)),
      std::invalid_argument);
}

class DesCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesCrossValidation, RandomAllocationsAgreeBitExactly) {
  // The strongest check in the suite: two independent implementations of
  // the scheduling semantics (analytic replay vs event simulation) agree
  // exactly on random genomes, with every option combination.
  const Fixture fx(50, GetParam());
  Rng rng(GetParam() * 13 + 5);

  EvaluatorOptions plain;
  EvaluatorOptions dropping;
  dropping.drop_worthless_tasks = true;
  dropping.drop_threshold = 0.5;
  EvaluatorOptions dvfs;
  dvfs.dvfs = make_cubic_dvfs({0.6, 0.8, 1.0});
  EvaluatorOptions idle;
  idle.idle_watts.assign(fx.system.num_machine_types(), 15.0);
  EvaluatorOptions everything = dvfs;
  everything.drop_worthless_tasks = true;
  everything.idle_watts.assign(fx.system.num_machine_types(), 10.0);

  for (const EvaluatorOptions& options :
       {plain, dropping, dvfs, idle, everything}) {
    const Evaluator analytic(fx.system, fx.trace, options);
    const UtilityEnergyProblem problem(fx.system, fx.trace, options);
    for (int round = 0; round < 3; ++round) {
      const Allocation a = random_allocation(problem, rng);
      expect_equal(des_evaluate(fx.system, fx.trace, a, options).totals,
                   analytic.evaluate(a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesCrossValidation,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace eus
