#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/run_recorder.hpp"

namespace eus {
namespace {

TEST(Json, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, NumbersRoundTripAndDegrade) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(std::stod(json_number(1.0 / 3.0)), 1.0 / 3.0);
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(Json, ObjectBuilder) {
  JsonObject o;
  o.field("s", "x\"y")
      .field("d", 2.5)
      .field("u", std::uint64_t{7})
      .field("b", true)
      .raw("a", "[1,2]");
  EXPECT_EQ(o.str(), R"({"s":"x\"y","d":2.5,"u":7,"b":true,"a":[1,2]})");
}

TEST(Metrics, CounterGaugeTimer) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5U);

  registry.gauge("g").set(2.25);
  EXPECT_EQ(registry.gauge("g").value(), 2.25);

  TimerMetric& t = registry.timer("t");
  { const ScopedTimer scope(&t); }
  { const ScopedTimer scope(&t); }
  EXPECT_EQ(t.count(), 2U);
  EXPECT_GE(t.total_seconds(), 0.0);
}

TEST(Metrics, NullScopedTimerIsNoop) {
  const ScopedTimer scope(nullptr);  // must not crash
}

TEST(Metrics, LookupReturnsSameInstance) {
  MetricsRegistry registry;
  EXPECT_EQ(&registry.counter("x"), &registry.counter("x"));
  EXPECT_NE(&registry.counter("x"), &registry.counter("y"));
}

TEST(Metrics, ConcurrentCountsAreExact) {
  MetricsRegistry registry;
  Counter& c = registry.counter("hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 80000U);
}

TEST(Metrics, SnapshotCopiesEverything) {
  MetricsRegistry registry;
  registry.counter("evals").add(42);
  registry.gauge("front").set(12.0);
  registry.timer("phase").add(std::chrono::nanoseconds(2'000'000'000));

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("evals"), 42U);
  EXPECT_EQ(snap.gauges.at("front"), 12.0);
  EXPECT_NEAR(snap.timers.at("phase").seconds, 2.0, 1e-9);
  EXPECT_EQ(snap.timers.at("phase").count, 1U);
}

TEST(RunRecorder, EmitsOneJsonObjectPerLine) {
  std::ostringstream out;
  RunRecorder recorder(out);

  RunInfo info;
  info.study = "unit \"study\"";
  info.seed = 99;
  info.population_size = 12;
  info.threads = 4;
  info.mutation_probability = 0.25;
  info.checkpoints = {1, 5};
  info.populations = {"a", "b"};
  recorder.record_config(info);
  recorder.record_checkpoint("a", 5, {{1.5, 2.0}, {3.0, 1.0}}, 0.75);
  MetricsRegistry registry;
  registry.counter("nsga2.evaluations").add(100);
  recorder.record_summary(1.5, registry.snapshot());

  EXPECT_EQ(recorder.lines_written(), 3U);
  std::istringstream in(out.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3U);
  for (const auto& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
  EXPECT_NE(lines[0].find("\"type\":\"config\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seed\":99"), std::string::npos);
  EXPECT_NE(lines[0].find("\"checkpoints\":[1,5]"), std::string::npos);
  EXPECT_NE(lines[0].find("unit \\\"study\\\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"checkpoint\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"front\":[[1.5,2],[3,1]]"), std::string::npos);
  EXPECT_NE(lines[1].find("\"front_size\":2"), std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"summary\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"nsga2.evaluations\":100"), std::string::npos);
}

TEST(RunRecorder, ThrowsOnUnopenablePath) {
  EXPECT_THROW(RunRecorder("/nonexistent-dir/x/y.jsonl"),
               std::runtime_error);
}

}  // namespace
}  // namespace eus
