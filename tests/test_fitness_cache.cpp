#include "core/fitness_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "core/problem.hpp"
#include "tuf/builder.hpp"
#include "util/thread_pool.hpp"

namespace eus {
namespace {

Allocation genome(std::vector<int> machine, std::vector<int> order,
                  std::vector<int> pstate = {}) {
  Allocation a;
  a.machine = std::move(machine);
  a.order = std::move(order);
  a.pstate = std::move(pstate);
  return a;
}

/// Distinct genomes derived from an index (n tasks on machine 0/1).
Allocation nth_genome(std::size_t n, std::size_t tasks = 8) {
  Allocation a;
  a.machine.resize(tasks);
  a.order.resize(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    a.machine[i] = static_cast<int>((n >> i) & 1U);
    a.order[i] = static_cast<int>(i);
  }
  return a;
}

TEST(FitnessCache, MissThenHitReturnsTheMemoizedPoint) {
  FitnessCache cache;
  const Allocation g = genome({0, 1}, {0, 1});
  std::size_t calls = 0;
  const auto eval = [&](const Allocation&) {
    ++calls;
    return EUPoint{42.0, 7.0};
  };
  EXPECT_FALSE(cache.lookup(g).has_value());
  EXPECT_EQ(cache.evaluate_through(g, eval), (EUPoint{42.0, 7.0}));
  EXPECT_EQ(cache.evaluate_through(g, eval), (EUPoint{42.0, 7.0}));
  EXPECT_EQ(calls, 1U);  // the second call was served from the cache
  EXPECT_EQ(cache.hits(), 1U);
  EXPECT_EQ(cache.misses(), 2U);  // explicit lookup + first evaluate_through
  EXPECT_EQ(cache.size(), 1U);
}

TEST(FitnessCache, FingerprintSeparatesGeneVectors) {
  // The fingerprint must distinguish which vector a gene lives in and
  // where vector boundaries fall, not just the concatenated values.
  const auto fp = [](const Allocation& a) {
    return FitnessCache::fingerprint(a);
  };
  EXPECT_EQ(fp(genome({0, 1}, {2, 3})), fp(genome({0, 1}, {2, 3})));
  EXPECT_NE(fp(genome({0, 1}, {2, 3})), fp(genome({1, 0}, {2, 3})));
  EXPECT_NE(fp(genome({0, 1}, {2, 3})), fp(genome({0, 1}, {3, 2})));
  EXPECT_NE(fp(genome({0, 1}, {2, 3})), fp(genome({0, 1}, {2, 3}, {0, 0})));
  EXPECT_NE(fp(genome({0, 1, 2}, {0, 1, 2})), fp(genome({0, 1}, {2, 0, 1, 2})));
  EXPECT_NE(fp(genome({-1}, {0})), fp(genome({1}, {0})));
}

TEST(FitnessCache, FingerprintCollisionFallsBackToVerification) {
  // A constant fingerprinter makes every genome collide; full-genome
  // verification must keep results correct (collision == miss), never
  // serve another genome's objectives.
  FitnessCacheConfig config;
  config.fingerprinter = [](const Allocation&) { return 0x1234ULL; };
  FitnessCache cache(config);

  const Allocation a = genome({0, 0}, {0, 1});
  const Allocation b = genome({1, 1}, {0, 1});
  const auto eval_a = [](const Allocation&) { return EUPoint{1.0, 1.0}; };
  const auto eval_b = [](const Allocation&) { return EUPoint{2.0, 2.0}; };

  EXPECT_EQ(cache.evaluate_through(a, eval_a), (EUPoint{1.0, 1.0}));
  // b collides with a's fingerprint but is a different genome: miss.
  EXPECT_EQ(cache.evaluate_through(b, eval_b), (EUPoint{2.0, 2.0}));
  EXPECT_EQ(cache.hits(), 0U);
  EXPECT_EQ(cache.evictions(), 1U);  // b displaced a in the shared slot
  // The slot now belongs to b; a is a miss again but stays correct.
  EXPECT_EQ(cache.evaluate_through(b, eval_b), (EUPoint{2.0, 2.0}));
  EXPECT_EQ(cache.hits(), 1U);
  EXPECT_EQ(cache.evaluate_through(a, eval_a), (EUPoint{1.0, 1.0}));
  EXPECT_EQ(cache.size(), 1U);
}

TEST(FitnessCache, WideGenesVerifyExactly) {
  // Genes outside int16 take the wide (un-narrowed) storage path; pin both
  // genomes to one slot so verification alone must tell them apart — even
  // when they agree in their low 16 bits.
  FitnessCacheConfig config;
  config.fingerprinter = [](const Allocation&) { return 7ULL; };
  FitnessCache cache(config);
  const Allocation big = genome({1 << 20}, {0});
  const Allocation low16_twin = genome({(1 << 20) + (1 << 16)}, {0});
  cache.insert(big, EUPoint{1.0, 1.0});
  EXPECT_EQ(*cache.lookup(big), (EUPoint{1.0, 1.0}));
  EXPECT_FALSE(cache.lookup(low16_twin).has_value());
  // A narrow genome recycles the slot that held wide genes, and vice versa.
  cache.insert(genome({1}, {0}), EUPoint{2.0, 2.0});
  EXPECT_EQ(*cache.lookup(genome({1}, {0})), (EUPoint{2.0, 2.0}));
  EXPECT_FALSE(cache.lookup(big).has_value());
  cache.insert(big, EUPoint{1.0, 1.0});
  EXPECT_EQ(*cache.lookup(big), (EUPoint{1.0, 1.0}));
}

TEST(FitnessCache, ConflictEvictionBoundsSizeAndBalancesTheBooks) {
  FitnessCacheConfig config;
  config.capacity = 4;
  config.shards = 1;
  FitnessCache cache(config);
  EXPECT_EQ(cache.capacity(), 4U);

  constexpr std::size_t kInserts = 10;
  for (std::size_t n = 0; n < kInserts; ++n) {
    cache.insert(nth_genome(n), EUPoint{static_cast<double>(n), 0.0});
    EXPECT_LE(cache.size(), 4U);
  }
  // Every insert either filled an empty slot or evicted its resident.
  EXPECT_EQ(cache.evictions(), kInserts - cache.size());
  EXPECT_GT(cache.evictions(), 0U);  // 10 genomes into 4 slots must evict
  // Survivors answer with their own objectives; evicted genomes miss.
  std::size_t survivors = 0;
  for (std::size_t n = 0; n < kInserts; ++n) {
    if (const auto hit = cache.lookup(nth_genome(n))) {
      ++survivors;
      EXPECT_DOUBLE_EQ(hit->energy, static_cast<double>(n)) << n;
    }
  }
  EXPECT_EQ(survivors, cache.size());
}

TEST(FitnessCache, ReinsertingAKnownGenomeIsANoOp) {
  FitnessCacheConfig config;
  config.capacity = 4;
  config.shards = 1;
  FitnessCache cache(config);
  cache.insert(nth_genome(0), EUPoint{1.0, 1.0});
  cache.insert(nth_genome(0), EUPoint{9.0, 9.0});  // concurrent double-compute
  EXPECT_EQ(cache.size(), 1U);
  EXPECT_EQ(cache.evictions(), 0U);
  // First write wins; evaluation is pure so both writers hold equal values
  // in production — keeping the original is the bit-stable choice.
  EXPECT_EQ(*cache.lookup(nth_genome(0)), (EUPoint{1.0, 1.0}));
}

TEST(FitnessCache, PublishesCountersToTheRegistry) {
  MetricsRegistry metrics;
  FitnessCacheConfig config;
  config.capacity = 2;
  config.shards = 1;
  config.metrics = &metrics;
  FitnessCache cache(config);
  const auto eval = [](const Allocation& g) {
    return EUPoint{static_cast<double>(g.machine[0]), 0.0};
  };
  for (std::size_t n = 0; n < 4; ++n) {
    (void)cache.evaluate_through(nth_genome(n), eval);
  }
  (void)cache.evaluate_through(nth_genome(3), eval);  // hit

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("cache.hits"), cache.hits());
  EXPECT_EQ(snap.counters.at("cache.misses"), cache.misses());
  EXPECT_EQ(snap.counters.at("cache.evictions"), cache.evictions());
  EXPECT_EQ(cache.hits(), 1U);
  EXPECT_EQ(cache.misses(), 4U);
  // Direct-mapped: which of the four genomes conflicted depends on their
  // fingerprints, but the books always balance.
  EXPECT_EQ(cache.evictions(), 4U - cache.size());
}

TEST(FitnessCache, EvaluateDelegatesToTheProblem) {
  std::vector<TaskType> tasks = {{"t", Category::kGeneral, -1}};
  std::vector<MachineType> machines = {{"m", Category::kGeneral}};
  std::vector<Machine> instances = {{0, "m"}};
  const SystemModel system(tasks, machines, instances,
                           Matrix::from_rows({{10.0}}),
                           Matrix::from_rows({{100.0}}));
  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(100.0, 0.0, 100.0)});
  const Trace trace({{0, 0.0, 0}}, TufClassLibrary(std::move(classes)));
  const UtilityEnergyProblem problem(system, trace);

  FitnessCache cache;
  const Allocation a = genome({0}, {0});
  EXPECT_EQ(cache.evaluate(problem, a), problem.evaluate(a));
  EXPECT_EQ(cache.evaluate(problem, a), problem.evaluate(a));
  EXPECT_EQ(cache.hits(), 1U);
}

TEST(FitnessCache, ConcurrentLookupsStayConsistent) {
  // Hammer a small genome set from every pool worker: every result must
  // match the pure function, and the books must balance.  (Also the
  // ThreadSanitizer target for the sharded table.)
  FitnessCacheConfig config;
  config.capacity = 64;
  config.shards = 4;
  FitnessCache cache(config);
  ThreadPool pool(4);
  constexpr std::size_t kGenomes = 32;
  constexpr std::size_t kLookups = 4000;
  std::atomic<std::size_t> wrong{0};
  pool.parallel_for(kLookups, [&](std::size_t i) {
    const std::size_t n = i % kGenomes;
    const EUPoint expected{static_cast<double>(n), -static_cast<double>(n)};
    const EUPoint got = cache.evaluate_through(
        nth_genome(n), [&](const Allocation&) { return expected; });
    if (!(got == expected)) wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0U);
  EXPECT_EQ(cache.hits() + cache.misses(), kLookups);
  EXPECT_GT(cache.hits(), 0U);
  EXPECT_LE(cache.size(), 64U);
}

}  // namespace
}  // namespace eus
