// End-to-end integration tests: the full pipeline (historical data ->
// synthetic expansion -> trace -> seeds -> NSGA-II -> Pareto analysis) on
// miniature versions of the paper's three experiments.

#include <gtest/gtest.h>

#include "core/study.hpp"
#include "pareto/front.hpp"
#include "pareto/knee.hpp"
#include "pareto/metrics.hpp"
#include "workload/scenarios.hpp"

namespace eus {
namespace {

Nsga2Config integration_config() {
  Nsga2Config cfg;
  cfg.population_size = 24;
  cfg.mutation_probability = 0.3;
  cfg.seed = 77;
  return cfg;
}

TEST(Integration, Dataset1MiniatureStudy) {
  const Scenario s = make_dataset1(101);
  const UtilityEnergyProblem problem(s.system, s.trace);
  const StudyResult r = run_seeding_study(
      problem, integration_config(), {5, 25}, paper_population_specs());

  for (std::size_t p = 0; p < r.fronts.size(); ++p) {
    for (const auto& front : r.fronts[p]) {
      EXPECT_TRUE(is_mutually_nondominated(front)) << r.population_names[p];
      for (const auto& pt : front) {
        EXPECT_GT(pt.energy, 0.0);
        EXPECT_GE(pt.utility, 0.0);
      }
    }
  }
}

TEST(Integration, FrontsImproveBetweenCheckpoints) {
  const Scenario s = make_dataset1(102);
  const UtilityEnergyProblem problem(s.system, s.trace);
  const StudyResult r = run_seeding_study(
      problem, integration_config(), {2, 40}, paper_population_specs());

  for (std::size_t p = 0; p < r.fronts.size(); ++p) {
    const EUPoint ref = enclosing_reference({r.fronts[p][0], r.fronts[p][1]});
    EXPECT_GE(hypervolume(r.fronts[p][1], ref),
              hypervolume(r.fronts[p][0], ref) - 1e-9)
        << r.population_names[p];
  }
}

TEST(Integration, Dataset2ExpandedSystemRuns) {
  const Scenario s = make_dataset2(103);
  const UtilityEnergyProblem problem(s.system, s.trace);
  Nsga2Config cfg = integration_config();
  cfg.population_size = 12;
  Nsga2 ga(problem, cfg);
  ga.initialize({min_energy_allocation(s.system, s.trace)});
  ga.iterate(8);
  const auto front = ga.front_points();
  EXPECT_FALSE(front.empty());
  EXPECT_TRUE(is_mutually_nondominated(front));
}

TEST(Integration, KneeAnalysisOnEvolvedFront) {
  const Scenario s = make_dataset1(104);
  const UtilityEnergyProblem problem(s.system, s.trace);
  Nsga2 ga(problem, integration_config());
  ga.initialize({max_utility_per_energy_allocation(s.system, s.trace)});
  ga.iterate(60);
  const KneeAnalysis knee = analyze_utility_per_energy(ga.front_points());
  ASSERT_FALSE(knee.front.empty());
  EXPECT_GT(knee.peak_ratio, 0.0);
  EXPECT_FALSE(knee.region.empty());
}

TEST(Integration, UtilityNeverExceedsUpperBound) {
  const Scenario s = make_dataset1(105);
  const UtilityEnergyProblem problem(s.system, s.trace);
  const double bound = s.trace.utility_upper_bound();
  Nsga2 ga(problem, integration_config());
  ga.initialize({});
  ga.iterate(30);
  for (const auto& p : ga.front_points()) {
    EXPECT_LE(p.utility, bound + 1e-9);
  }
}

TEST(Integration, EnergyNeverBelowMinEnergySeed) {
  const Scenario s = make_dataset1(106);
  const UtilityEnergyProblem problem(s.system, s.trace);
  const double floor =
      problem.evaluate(min_energy_allocation(s.system, s.trace)).energy;
  Nsga2 ga(problem, integration_config());
  ga.initialize({});
  ga.iterate(30);
  for (const auto& p : ga.front_points()) {
    EXPECT_GE(p.energy, floor - 1e-6);
  }
}

TEST(Integration, SeededDominatesRandomEarlyOnLargeProblem) {
  // Figure 6's observation, shrunk: on the bigger problem the seeded
  // populations dominate the random one at equal (small) iteration counts.
  const Scenario s = make_dataset2(107);
  const UtilityEnergyProblem problem(s.system, s.trace);
  Nsga2Config cfg = integration_config();
  cfg.population_size = 12;
  const StudyResult r = run_seeding_study(
      problem, cfg, {5},
      {{"min-energy", 'd', {SeedHeuristic::kMinEnergy}}, {"random", '*', {}}});
  const auto& seeded = r.fronts[0][0];
  const auto& random = r.fronts[1][0];
  // The seeded front must cover a decent share of the random one and reach
  // strictly lower energy.
  EXPECT_GT(coverage(seeded, random), 0.2);
  EXPECT_LT(seeded.front().energy, random.front().energy);
}

TEST(Integration, DroppingExtensionReducesEnergyAtEqualIterations) {
  const Scenario s = make_dataset1(108);
  EvaluatorOptions opts;
  opts.drop_worthless_tasks = true;
  opts.drop_threshold = 0.0;
  const UtilityEnergyProblem with_drop(s.system, s.trace, opts);
  const UtilityEnergyProblem without(s.system, s.trace);

  const Allocation a = min_min_completion_time_allocation(s.system, s.trace);
  const EUPoint pd = with_drop.evaluate(a);
  const EUPoint pn = without.evaluate(a);
  EXPECT_LE(pd.energy, pn.energy);
  EXPECT_GE(pd.utility, pn.utility - 1e-9);
}

TEST(Integration, DvfsProblemEndToEnd) {
  const Scenario s = make_dataset1(109);
  EvaluatorOptions opts;
  opts.dvfs = make_cubic_dvfs({0.6, 0.8, 1.0});
  const UtilityEnergyProblem problem(s.system, s.trace, opts);
  EXPECT_EQ(problem.num_pstates(), 3U);
  Nsga2 ga(problem, integration_config());
  ga.initialize({});
  ga.iterate(15);
  const auto front = ga.front_points();
  EXPECT_TRUE(is_mutually_nondominated(front));
  // DVFS unlocks energies below the nominal minimum-energy floor.
  const UtilityEnergyProblem nominal(s.system, s.trace);
  const double nominal_floor =
      nominal.evaluate(min_energy_allocation(s.system, s.trace)).energy;
  Nsga2 ga2(problem, integration_config());
  Allocation seed = min_energy_allocation(s.system, s.trace);
  seed.pstate.assign(seed.size(), 0);  // slowest P-state everywhere
  ga2.initialize({seed});
  EXPECT_LT(ga2.front_points().front().energy, nominal_floor);
}

}  // namespace
}  // namespace eus
