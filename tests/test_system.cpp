#include "data/system.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eus {
namespace {

// A small mixed system: 2 general machine types, 1 special type; 3 task
// types, the last one special-purpose on machine type 2.
SystemModel make_mixed_system() {
  std::vector<TaskType> tasks = {
      {"g1", Category::kGeneral, -1},
      {"g2", Category::kGeneral, -1},
      {"sp", Category::kSpecial, 2},
  };
  std::vector<MachineType> machines = {
      {"gm-a", Category::kGeneral},
      {"gm-b", Category::kGeneral},
      {"sm-x", Category::kSpecial},
  };
  std::vector<Machine> instances = {
      {0, "gm-a #1"}, {0, "gm-a #2"}, {1, "gm-b #1"}, {2, "sm-x #1"}};
  const Matrix etc = Matrix::from_rows({
      {10.0, 20.0, kIneligible},
      {30.0, 15.0, kIneligible},
      {40.0, 50.0, 4.0},
  });
  const Matrix epc = Matrix::from_rows({
      {100.0, 80.0, 1.0},
      {100.0, 80.0, 1.0},
      {100.0, 80.0, 90.0},
  });
  return SystemModel(tasks, machines, instances, etc, epc);
}

TEST(SystemModel, BasicCounts) {
  const SystemModel sys = make_mixed_system();
  EXPECT_EQ(sys.num_task_types(), 3U);
  EXPECT_EQ(sys.num_machine_types(), 3U);
  EXPECT_EQ(sys.num_machines(), 4U);
}

TEST(SystemModel, EligibilityRules) {
  const SystemModel sys = make_mixed_system();
  EXPECT_TRUE(sys.eligible_type(0, 0));
  EXPECT_TRUE(sys.eligible_type(0, 1));
  EXPECT_FALSE(sys.eligible_type(0, 2));  // general task, special machine
  EXPECT_TRUE(sys.eligible_type(2, 2));   // special task, its machine
}

TEST(SystemModel, EligibleMachinesInstances) {
  const SystemModel sys = make_mixed_system();
  EXPECT_EQ(sys.eligible_machines(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sys.eligible_machines(2), (std::vector<int>{0, 1, 2, 3}));
}

TEST(SystemModel, EtcEpcOnInstance) {
  const SystemModel sys = make_mixed_system();
  EXPECT_DOUBLE_EQ(sys.etc_on(1, 2), 15.0);  // machine 2 is type gm-b
  EXPECT_DOUBLE_EQ(sys.epc_on(1, 2), 80.0);
  EXPECT_DOUBLE_EQ(sys.eec_on(1, 2), 15.0 * 80.0);
}

TEST(SystemModel, SpecialMachineEec) {
  const SystemModel sys = make_mixed_system();
  EXPECT_DOUBLE_EQ(sys.eec_on(2, 3), 4.0 * 90.0);
}

TEST(SystemModel, CountOfType) {
  const SystemModel sys = make_mixed_system();
  EXPECT_EQ(sys.count_of_type(0), 2U);
  EXPECT_EQ(sys.count_of_type(1), 1U);
  EXPECT_EQ(sys.count_of_type(2), 1U);
}

TEST(SystemModel, RejectsEmptyCatalogs) {
  EXPECT_THROW(SystemModel({}, {{"m", Category::kGeneral}}, {{0, "m"}},
                           Matrix(0, 1), Matrix(0, 1)),
               std::invalid_argument);
}

TEST(SystemModel, RejectsShapeMismatch) {
  std::vector<TaskType> tasks = {{"t", Category::kGeneral, -1}};
  std::vector<MachineType> machines = {{"m", Category::kGeneral}};
  std::vector<Machine> instances = {{0, "m"}};
  EXPECT_THROW(SystemModel(tasks, machines, instances, Matrix(2, 1, 1.0),
                           Matrix(2, 1, 1.0)),
               std::invalid_argument);
}

TEST(SystemModel, RejectsMachineWithUnknownType) {
  std::vector<TaskType> tasks = {{"t", Category::kGeneral, -1}};
  std::vector<MachineType> machines = {{"m", Category::kGeneral}};
  std::vector<Machine> instances = {{5, "bogus"}};
  EXPECT_THROW(SystemModel(tasks, machines, instances, Matrix(1, 1, 1.0),
                           Matrix(1, 1, 1.0)),
               std::invalid_argument);
}

TEST(SystemModel, RejectsGeneralMachineIneligible) {
  std::vector<TaskType> tasks = {{"t", Category::kGeneral, -1}};
  std::vector<MachineType> machines = {{"m", Category::kGeneral}};
  std::vector<Machine> instances = {{0, "m"}};
  const Matrix etc = Matrix::from_rows({{kIneligible}});
  EXPECT_THROW(SystemModel(tasks, machines, instances, etc, Matrix(1, 1, 1.0)),
               std::invalid_argument);
}

TEST(SystemModel, RejectsNonPositiveEtc) {
  std::vector<TaskType> tasks = {{"t", Category::kGeneral, -1}};
  std::vector<MachineType> machines = {{"m", Category::kGeneral}};
  std::vector<Machine> instances = {{0, "m"}};
  EXPECT_THROW(SystemModel(tasks, machines, instances, Matrix(1, 1, 0.0),
                           Matrix(1, 1, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(SystemModel(tasks, machines, instances, Matrix(1, 1, -2.0),
                           Matrix(1, 1, 1.0)),
               std::invalid_argument);
}

TEST(SystemModel, RejectsNonPositiveEpc) {
  std::vector<TaskType> tasks = {{"t", Category::kGeneral, -1}};
  std::vector<MachineType> machines = {{"m", Category::kGeneral}};
  std::vector<Machine> instances = {{0, "m"}};
  EXPECT_THROW(SystemModel(tasks, machines, instances, Matrix(1, 1, 1.0),
                           Matrix(1, 1, 0.0)),
               std::invalid_argument);
}

TEST(SystemModel, RejectsSpecialTaskWithoutMachinePointer) {
  std::vector<TaskType> tasks = {{"sp", Category::kSpecial, -1}};
  std::vector<MachineType> machines = {{"m", Category::kGeneral}};
  std::vector<Machine> instances = {{0, "m"}};
  EXPECT_THROW(SystemModel(tasks, machines, instances, Matrix(1, 1, 1.0),
                           Matrix(1, 1, 1.0)),
               std::invalid_argument);
}

TEST(SystemModel, RejectsSpecialMachineRunningForeignTask) {
  // Special machine eligible for a general task type: invalid.
  std::vector<TaskType> tasks = {{"g", Category::kGeneral, -1}};
  std::vector<MachineType> machines = {{"gm", Category::kGeneral},
                                       {"sm", Category::kSpecial}};
  std::vector<Machine> instances = {{0, "gm"}, {1, "sm"}};
  const Matrix etc = Matrix::from_rows({{5.0, 1.0}});
  EXPECT_THROW(
      SystemModel(tasks, machines, instances, etc, Matrix(1, 2, 1.0)),
      std::invalid_argument);
}

TEST(SystemModel, RejectsSpecialTaskPointingAtGeneralMachine) {
  std::vector<TaskType> tasks = {{"sp", Category::kSpecial, 0}};
  std::vector<MachineType> machines = {{"gm", Category::kGeneral}};
  std::vector<Machine> instances = {{0, "gm"}};
  EXPECT_THROW(SystemModel(tasks, machines, instances, Matrix(1, 1, 1.0),
                           Matrix(1, 1, 1.0)),
               std::invalid_argument);
}

TEST(CategoryToString, Names) {
  EXPECT_STREQ(to_string(Category::kGeneral), "general");
  EXPECT_STREQ(to_string(Category::kSpecial), "special");
}

}  // namespace
}  // namespace eus
