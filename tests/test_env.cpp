#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace eus {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("EUS_TEST_VAR");
    unsetenv("EUS_SCALE");
    unsetenv("EUS_SEED");
    unsetenv("EUS_CACHE");
  }
};

TEST_F(EnvTest, StringUnsetIsNullopt) {
  unsetenv("EUS_TEST_VAR");
  EXPECT_FALSE(env_string("EUS_TEST_VAR").has_value());
}

TEST_F(EnvTest, StringEmptyIsNullopt) {
  setenv("EUS_TEST_VAR", "", 1);
  EXPECT_FALSE(env_string("EUS_TEST_VAR").has_value());
}

TEST_F(EnvTest, StringSet) {
  setenv("EUS_TEST_VAR", "hello", 1);
  EXPECT_EQ(env_string("EUS_TEST_VAR").value(), "hello");
}

TEST_F(EnvTest, DoubleParses) {
  setenv("EUS_TEST_VAR", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("EUS_TEST_VAR", 1.0), 2.5);
}

TEST_F(EnvTest, DoubleFallbackOnGarbage) {
  setenv("EUS_TEST_VAR", "2.5x", 1);
  EXPECT_DOUBLE_EQ(env_double("EUS_TEST_VAR", 1.0), 1.0);
  setenv("EUS_TEST_VAR", "abc", 1);
  EXPECT_DOUBLE_EQ(env_double("EUS_TEST_VAR", 1.0), 1.0);
}

TEST_F(EnvTest, IntParses) {
  setenv("EUS_TEST_VAR", "-17", 1);
  EXPECT_EQ(env_int("EUS_TEST_VAR", 0), -17);
}

TEST_F(EnvTest, IntFallbackOnGarbage) {
  setenv("EUS_TEST_VAR", "17.5", 1);
  EXPECT_EQ(env_int("EUS_TEST_VAR", 3), 3);
}

TEST_F(EnvTest, BenchScaleDefaultsToOne) {
  unsetenv("EUS_SCALE");
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
}

TEST_F(EnvTest, BenchScaleReadsEnv) {
  setenv("EUS_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 0.25);
}

TEST_F(EnvTest, BenchScaleRejectsNonPositive) {
  setenv("EUS_SCALE", "-1", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  setenv("EUS_SCALE", "0", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
}

TEST_F(EnvTest, BenchSeedDefault) {
  unsetenv("EUS_SEED");
  EXPECT_EQ(bench_seed(), 20130520ULL);
}

TEST_F(EnvTest, BenchSeedReadsEnv) {
  setenv("EUS_SEED", "99", 1);
  EXPECT_EQ(bench_seed(), 99ULL);
}

TEST_F(EnvTest, BenchCacheDefaultsOn) {
  unsetenv("EUS_CACHE");
  EXPECT_EQ(bench_cache_capacity(), 1U << 12U);
  setenv("EUS_CACHE", "on", 1);
  EXPECT_EQ(bench_cache_capacity(), 1U << 12U);
}

TEST_F(EnvTest, BenchCacheOffSpellings) {
  for (const char* off : {"off", "none", "0"}) {
    setenv("EUS_CACHE", off, 1);
    EXPECT_EQ(bench_cache_capacity(), 0U) << off;
  }
}

TEST_F(EnvTest, BenchCacheExplicitCapacity) {
  setenv("EUS_CACHE", "4096", 1);
  EXPECT_EQ(bench_cache_capacity(), 4096U);
}

TEST_F(EnvTest, BenchCacheFallbackOnGarbage) {
  setenv("EUS_CACHE", "lots", 1);
  EXPECT_EQ(bench_cache_capacity(), 1U << 12U);
  setenv("EUS_CACHE", "-5", 1);
  EXPECT_EQ(bench_cache_capacity(), 1U << 12U);
}

}  // namespace
}  // namespace eus
