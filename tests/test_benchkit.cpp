// benchkit: scenario registry, robust aggregates, the BENCH_results.json
// round-trip, baseline compare/update semantics, and the measurement loop's
// metrics snapshotting.

#include <gtest/gtest.h>

#include <cmath>
#include <regex>

#include "benchkit/compare.hpp"
#include "benchkit/json_value.hpp"
#include "benchkit/registry.hpp"
#include "benchkit/results.hpp"
#include "benchkit/runner.hpp"
#include "benchkit/stats.hpp"
#include "telemetry/metrics.hpp"

namespace eus::benchkit {
namespace {

int noop_scenario(ScenarioContext&) { return 0; }

// ---------------------------------------------------------------- registry

TEST(BenchkitRegistry, RegistersAndSortsByName) {
  ScenarioRegistry registry;
  EXPECT_TRUE(registry.add("zeta", "last", &noop_scenario));
  EXPECT_TRUE(registry.add("alpha", "first", &noop_scenario));
  EXPECT_TRUE(registry.add("mid", "middle", &noop_scenario));
  ASSERT_EQ(registry.size(), 3U);
  const auto all = registry.all();
  ASSERT_EQ(all.size(), 3U);
  EXPECT_EQ(all[0]->name, "alpha");
  EXPECT_EQ(all[1]->name, "mid");
  EXPECT_EQ(all[2]->name, "zeta");
}

TEST(BenchkitRegistry, RejectsDuplicatesNullsAndEmptyNames) {
  ScenarioRegistry registry;
  EXPECT_TRUE(registry.add("fig3", "keeper", &noop_scenario));
  EXPECT_FALSE(registry.add("fig3", "imposter", &noop_scenario));
  EXPECT_FALSE(registry.add("", "anonymous", &noop_scenario));
  EXPECT_FALSE(registry.add("nullfn", "no body", nullptr));
  ASSERT_EQ(registry.size(), 1U);
  EXPECT_EQ(registry.find("fig3")->description, "keeper");
}

TEST(BenchkitRegistry, FiltersWithGrepStyleRegex) {
  ScenarioRegistry registry;
  for (const char* name :
       {"fig3_dataset1", "fig4_dataset2", "ablation_crowding",
        "ablation_seeds", "micro_ops"}) {
    ASSERT_TRUE(registry.add(name, "", &noop_scenario));
  }
  const auto figs = registry.matching("fig");
  ASSERT_EQ(figs.size(), 2U);
  EXPECT_EQ(figs[0]->name, "fig3_dataset1");

  const auto alternation = registry.matching("fig|ablation_crowding");
  EXPECT_EQ(alternation.size(), 3U);

  EXPECT_TRUE(registry.matching("^dataset").empty());
  EXPECT_THROW((void)registry.matching("["), std::regex_error);
}

TEST(BenchkitRegistry, GlobalRegistryBacksTheMacro) {
  // The macro registers through register_scenario(); exercise that path
  // with a unique name rather than relying on bench TUs being linked in.
  const std::size_t before = ScenarioRegistry::global().size();
  ASSERT_TRUE(register_scenario("test_benchkit_probe", "probe",
                                &noop_scenario));
  EXPECT_EQ(ScenarioRegistry::global().size(), before + 1);
  EXPECT_FALSE(register_scenario("test_benchkit_probe", "dup",
                                 &noop_scenario));
}

// ------------------------------------------------------------------- stats

TEST(BenchkitStats, MedianOddEvenAndEmpty) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({7.5}), 7.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(BenchkitStats, AggregateOnFixedSamples) {
  // median 4, deviations {3,2,1,0,1,2,3} -> MAD 2.
  const Aggregate a = aggregate({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0});
  EXPECT_EQ(a.count, 7U);
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 7.0);
  EXPECT_DOUBLE_EQ(a.mean, 4.0);
  EXPECT_DOUBLE_EQ(a.median, 4.0);
  EXPECT_DOUBLE_EQ(a.mad, 2.0);
}

TEST(BenchkitStats, MadAbsorbsOneOutlier) {
  // One wild sample moves the mean but not median/MAD much — the property
  // the baseline gate relies on.
  const Aggregate a = aggregate({1.0, 1.1, 0.9, 1.0, 50.0});
  EXPECT_DOUBLE_EQ(a.median, 1.0);
  EXPECT_NEAR(a.mad, 0.1, 1e-12);
  EXPECT_GT(a.mean, 10.0);
}

// -------------------------------------------------------------------- json

TEST(BenchkitJson, ParsesScalarsContainersAndEscapes) {
  const JsonValue doc = parse_json(
      R"({"a": 1.5, "b": "x\n\"yA", "c": [true, null, -2e3],
          "nested": {"k": 7}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.number_or("a", 0.0), 1.5);
  EXPECT_EQ(doc.string_or("b", ""), "x\n\"yA");
  const JsonValue* c = doc.get("c");
  ASSERT_TRUE(c != nullptr && c->is_array());
  ASSERT_EQ(c->array.size(), 3U);
  EXPECT_TRUE(c->array[0].boolean);
  EXPECT_EQ(c->array[1].kind, JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(c->array[2].number, -2000.0);
  ASSERT_TRUE(doc.get("nested") != nullptr);
  EXPECT_DOUBLE_EQ(doc.get("nested")->number_or("k", 0.0), 7.0);
}

TEST(BenchkitJson, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_json(""), JsonParseError);
  EXPECT_THROW((void)parse_json("{"), JsonParseError);
  EXPECT_THROW((void)parse_json("{\"a\":}"), JsonParseError);
  EXPECT_THROW((void)parse_json("[1,]"), JsonParseError);
  EXPECT_THROW((void)parse_json("{} trailing"), JsonParseError);
  EXPECT_THROW((void)parse_json("nul"), JsonParseError);
  EXPECT_THROW((void)parse_json("\"unterminated"), JsonParseError);
}

BenchResults sample_results() {
  BenchResults results;
  results.git_sha = "abc123";
  results.machine.host = "test-host";
  results.machine.hardware_threads = 8;
  results.config.scale = 0.001;
  results.config.seed = 20130520;
  results.config.threads = 4;
  results.config.warmup = 1;
  results.config.repetitions = 3;
  ScenarioResult fig3;
  fig3.name = "fig3_dataset1";
  fig3.wall_s = {0.5, 0.4, 0.6};
  fig3.counters = {{"nsga2.evaluations", 5500.0}, {"cache.hits", 1200.0}};
  fig3.timers_s = {{"nsga2.evaluation_s", 0.31}};
  results.scenarios.push_back(fig3);
  ScenarioResult quick;
  quick.name = "fig1_tuf";
  quick.wall_s = {0.001, 0.0012, 0.0011};
  results.scenarios.push_back(quick);
  return results;
}

TEST(BenchkitResults, JsonRoundTrip) {
  const BenchResults original = sample_results();
  const std::string json = to_json(original);
  const BenchResults parsed = results_from_json(parse_json(json));

  EXPECT_EQ(parsed.schema_version, 1);
  EXPECT_EQ(parsed.git_sha, "abc123");
  EXPECT_EQ(parsed.machine.host, "test-host");
  EXPECT_EQ(parsed.machine.hardware_threads, 8U);
  EXPECT_DOUBLE_EQ(parsed.config.scale, 0.001);
  EXPECT_EQ(parsed.config.seed, 20130520U);
  EXPECT_EQ(parsed.config.repetitions, 3U);
  ASSERT_EQ(parsed.scenarios.size(), 2U);

  const ScenarioResult* fig3 = parsed.find("fig3_dataset1");
  ASSERT_NE(fig3, nullptr);
  ASSERT_EQ(fig3->wall_s.size(), 3U);
  EXPECT_DOUBLE_EQ(fig3->wall_s[1], 0.4);
  EXPECT_DOUBLE_EQ(fig3->wall().median, 0.5);
  EXPECT_DOUBLE_EQ(fig3->counters.at("nsga2.evaluations"), 5500.0);
  EXPECT_DOUBLE_EQ(fig3->timers_s.at("nsga2.evaluation_s"), 0.31);
}

TEST(BenchkitResults, MetricLookupNamespaces) {
  const BenchResults results = sample_results();
  const ScenarioResult* fig3 = results.find("fig3_dataset1");
  ASSERT_NE(fig3, nullptr);
  EXPECT_DOUBLE_EQ(fig3->metric("wall_s").value(), 0.5);
  EXPECT_DOUBLE_EQ(fig3->metric("counter.cache.hits").value(), 1200.0);
  EXPECT_DOUBLE_EQ(fig3->metric("timer.nsga2.evaluation_s").value(), 0.31);
  EXPECT_FALSE(fig3->metric("counter.unknown").has_value());
  EXPECT_FALSE(fig3->metric("bogus").has_value());
}

TEST(BenchkitResults, ParserRejectsWrongSchemaVersion) {
  EXPECT_THROW(
      (void)results_from_json(parse_json(R"({"schema_version": 2,
                                             "scenarios": {}})")),
      std::runtime_error);
  EXPECT_THROW(
      (void)results_from_json(parse_json(R"({"schema_version": 1})")),
      std::runtime_error);
}

// ----------------------------------------------------------------- compare

Baselines sample_baselines() {
  Baselines b;
  b.machine = "baseline-host";
  b.scenarios["fig3_dataset1"]["wall_s"] = {0.5, std::nullopt};
  b.scenarios["fig3_dataset1"]["counter.nsga2.evaluations"] = {5500.0, 0.0};
  b.scenarios["fig1_tuf"]["wall_s"] = {0.001, 50.0};
  return b;
}

TEST(BenchkitCompare, PassesWithinTolerance) {
  const CompareReport report =
      compare(sample_results(), sample_baselines(), 25.0);
  EXPECT_TRUE(report.ok());
  for (const CompareEntry& e : report.entries) {
    EXPECT_NE(e.status, CompareStatus::kRegression) << e.scenario;
  }
}

TEST(BenchkitCompare, FlagsRegressionBeyondTolerance) {
  BenchResults results = sample_results();
  results.scenarios[0].wall_s = {0.9, 0.95, 0.85};  // median 0.9 vs 0.5
  const CompareReport report =
      compare(results, sample_baselines(), 25.0);
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const CompareEntry& e : report.entries) {
    if (e.scenario == "fig3_dataset1" && e.metric == "wall_s") {
      found = true;
      EXPECT_EQ(e.status, CompareStatus::kRegression);
      EXPECT_NEAR(e.delta_pct, 80.0, 1e-9);
      EXPECT_DOUBLE_EQ(e.tolerance_pct, 25.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchkitCompare, PerMetricToleranceOverridesDefault) {
  BenchResults results = sample_results();
  // 40% over the fig1 baseline: beyond a 25% default, inside its own 50%.
  results.scenarios[1].wall_s = {0.0014, 0.0014, 0.0014};
  const CompareReport report =
      compare(results, sample_baselines(), 25.0);
  EXPECT_TRUE(report.ok());

  // The zero-tolerance counter baseline catches a one-count drift.
  results = sample_results();
  results.scenarios[0].counters["nsga2.evaluations"] = 5501.0;
  const CompareReport strict =
      compare(results, sample_baselines(), 25.0);
  EXPECT_FALSE(strict.ok());
}

TEST(BenchkitCompare, ImprovementIsNotAFailure) {
  BenchResults results = sample_results();
  results.scenarios[0].wall_s = {0.1, 0.1, 0.1};
  const CompareReport report =
      compare(results, sample_baselines(), 25.0);
  EXPECT_TRUE(report.ok());
  bool improved = false;
  for (const CompareEntry& e : report.entries) {
    if (e.scenario == "fig3_dataset1" && e.metric == "wall_s") {
      improved = e.status == CompareStatus::kImproved;
    }
  }
  EXPECT_TRUE(improved);
}

TEST(BenchkitCompare, FilteredRunSkipsUnmeasuredBaselines) {
  BenchResults results = sample_results();
  results.scenarios.erase(results.scenarios.begin());  // drop fig3
  const CompareReport report =
      compare(results, sample_baselines(), 25.0);
  EXPECT_TRUE(report.ok());
  bool skipped = false;
  for (const CompareEntry& e : report.entries) {
    if (e.scenario == "fig3_dataset1") {
      EXPECT_EQ(e.status, CompareStatus::kNotMeasured);
      skipped = true;
    }
  }
  EXPECT_TRUE(skipped);
}

TEST(BenchkitCompare, MissingMetricFailsLoudly) {
  BenchResults results = sample_results();
  results.scenarios[0].counters.clear();  // telemetry broke
  const CompareReport report =
      compare(results, sample_baselines(), 25.0);
  EXPECT_FALSE(report.ok());
}

TEST(BenchkitCompare, BaselinesJsonRoundTrip) {
  const Baselines original = sample_baselines();
  const Baselines parsed = baselines_from_json(parse_json(to_json(original)));
  EXPECT_EQ(parsed.machine, "baseline-host");
  ASSERT_EQ(parsed.scenarios.size(), 2U);
  const auto& fig3 = parsed.scenarios.at("fig3_dataset1");
  EXPECT_DOUBLE_EQ(fig3.at("wall_s").value, 0.5);
  EXPECT_FALSE(fig3.at("wall_s").tolerance_pct.has_value());
  ASSERT_TRUE(fig3.at("counter.nsga2.evaluations").tolerance_pct.has_value());
  EXPECT_DOUBLE_EQ(*fig3.at("counter.nsga2.evaluations").tolerance_pct, 0.0);
}

TEST(BenchkitCompare, UpdateMergesWithoutForgetting) {
  Baselines existing = sample_baselines();
  BenchResults results = sample_results();
  results.scenarios.erase(results.scenarios.begin() + 1);  // filtered run
  results.scenarios[0].wall_s = {0.7, 0.7, 0.7};
  results.scenarios[0].counters["nsga2.evaluations"] = 6000.0;

  const Baselines updated = update_baselines(existing, results);
  // Measured scenario: values refreshed, explicit tolerance kept.
  const auto& fig3 = updated.scenarios.at("fig3_dataset1");
  EXPECT_DOUBLE_EQ(fig3.at("wall_s").value, 0.7);
  EXPECT_DOUBLE_EQ(fig3.at("counter.nsga2.evaluations").value, 6000.0);
  ASSERT_TRUE(fig3.at("counter.nsga2.evaluations").tolerance_pct.has_value());
  // Unmeasured scenario survives untouched.
  EXPECT_DOUBLE_EQ(updated.scenarios.at("fig1_tuf").at("wall_s").value,
                   0.001);
}

// ------------------------------------------------------------------ runner

int counting_scenario(ScenarioContext& ctx) {
  if (ctx.metrics != nullptr) {
    ctx.metrics->counter("probe.calls").add(42);
    ctx.metrics->gauge("probe.level").set(7.0);
  }
  return 0;
}

int failing_scenario(ScenarioContext&) { return 9; }

TEST(BenchkitRunner, RecordsPerRepetitionCounterDeltas) {
  Scenario scenario{"probe", "", &counting_scenario};
  RunOptions options;
  options.warmup = 2;
  options.repetitions = 3;
  const ScenarioResult result = run_scenario(scenario, options);
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.wall_s.size(), 3U);
  // Each repetition adds 42; warmups must not leak into the delta.
  EXPECT_DOUBLE_EQ(result.counters.at("probe.calls"), 42.0);
}

TEST(BenchkitRunner, PropagatesScenarioFailure) {
  Scenario scenario{"fails", "", &failing_scenario};
  const ScenarioResult result = run_scenario(scenario, RunOptions{});
  EXPECT_EQ(result.exit_code, 9);
}

// --------------------------------------------------------- snapshot delta

TEST(TelemetrySnapshotDelta, SubtractsCountersAndTimers) {
  MetricsRegistry registry;
  registry.counter("evals").add(10);
  registry.timer("phase").add(std::chrono::nanoseconds(2'000'000'000));
  const MetricsSnapshot before = registry.snapshot();
  registry.counter("evals").add(5);
  registry.counter("fresh").add(3);
  registry.gauge("level").set(1.5);
  registry.timer("phase").add(std::chrono::nanoseconds(500'000'000));
  const MetricsSnapshot after = registry.snapshot();

  const MetricsSnapshot delta = snapshot_delta(before, after);
  EXPECT_EQ(delta.counters.at("evals"), 5U);
  EXPECT_EQ(delta.counters.at("fresh"), 3U);
  EXPECT_DOUBLE_EQ(delta.gauges.at("level"), 1.5);
  EXPECT_NEAR(delta.timers.at("phase").seconds, 0.5, 1e-9);
  EXPECT_EQ(delta.timers.at("phase").count, 1U);
}

}  // namespace
}  // namespace eus::benchkit
