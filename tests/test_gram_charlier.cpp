#include "synth/gram_charlier.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace eus {
namespace {

Moments normal_target(double mean, double stddev) {
  Moments m{};
  m.mean = mean;
  m.stddev = stddev;
  m.variance = stddev * stddev;
  m.cv = stddev / std::abs(mean);
  m.skewness = 0.0;
  m.kurtosis = 3.0;
  return m;
}

TEST(GramCharlier, RejectsZeroStddev) {
  EXPECT_THROW(GramCharlierPdf(normal_target(1.0, 0.0)),
               std::invalid_argument);
}

TEST(GramCharlier, NormalTargetReducesToGaussian) {
  const GramCharlierPdf pdf(normal_target(0.0, 1.0));
  const double at_zero = 1.0 / std::sqrt(2.0 * std::numbers::pi);
  EXPECT_NEAR(pdf.density(0.0), at_zero, 1e-12);
  EXPECT_NEAR(pdf.density(1.0), at_zero * std::exp(-0.5), 1e-12);
  // Symmetric when skew == 0.
  EXPECT_NEAR(pdf.density(-1.3), pdf.density(1.3), 1e-12);
}

TEST(GramCharlier, ScalesWithStddev) {
  const GramCharlierPdf narrow(normal_target(5.0, 1.0));
  const GramCharlierPdf wide(normal_target(5.0, 2.0));
  EXPECT_NEAR(narrow.density(5.0), 2.0 * wide.density(5.0), 1e-12);
}

TEST(GramCharlier, PositiveSkewShiftsMassRight) {
  Moments m = normal_target(0.0, 1.0);
  m.skewness = 0.8;
  const GramCharlierPdf pdf(m);
  // He3(z) changes sign at z = sqrt(3): positive skew fattens the *far*
  // right tail (|z| > sqrt(3)) at the expense of the far left.
  EXPECT_GT(pdf.density(2.5), pdf.density(-2.5));
}

TEST(GramCharlier, NegativeSkewShiftsMassLeft) {
  Moments m = normal_target(0.0, 1.0);
  m.skewness = -0.8;
  const GramCharlierPdf pdf(m);
  EXPECT_LT(pdf.density(2.5), pdf.density(-2.5));
}

TEST(GramCharlier, ExcessKurtosisFattensTails) {
  Moments heavy = normal_target(0.0, 1.0);
  heavy.kurtosis = 5.0;
  const GramCharlierPdf fat(heavy);
  const GramCharlierPdf normal(normal_target(0.0, 1.0));
  EXPECT_GT(fat.density(3.0), normal.density(3.0));
}

TEST(GramCharlier, DensityClampsNegativeLobes) {
  Moments extreme = normal_target(0.0, 1.0);
  extreme.skewness = 3.0;  // strong enough to drive raw() negative somewhere
  const GramCharlierPdf pdf(extreme);
  bool found_negative_raw = false;
  for (double x = -5.0; x <= 5.0; x += 0.01) {
    if (pdf.raw(x) < 0.0) found_negative_raw = true;
    EXPECT_GE(pdf.density(x), 0.0);
  }
  EXPECT_TRUE(found_negative_raw);
}

TEST(GramCharlier, IntegratesToApproximatelyOneForMildMoments) {
  Moments m = normal_target(10.0, 2.0);
  m.skewness = 0.4;
  m.kurtosis = 3.5;
  const GramCharlierPdf pdf(m);
  double integral = 0.0;
  const double step = 0.001;
  for (double x = 0.0; x <= 20.0; x += step) {
    integral += pdf.density(x) * step;
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(GramCharlier, RecoversTargetMomentsForMildInputs) {
  Moments m = normal_target(100.0, 15.0);
  m.skewness = 0.5;
  m.kurtosis = 3.2;
  const GramCharlierPdf pdf(m);

  // Numerically integrate moments of the clamped density.
  double mass = 0.0, mean = 0.0;
  const double step = 0.01;
  for (double x = 0.0; x <= 200.0; x += step) {
    const double d = pdf.density(x) * step;
    mass += d;
    mean += x * d;
  }
  mean /= mass;
  double m2 = 0.0, m3 = 0.0;
  for (double x = 0.0; x <= 200.0; x += step) {
    const double d = pdf.density(x) * step / mass;
    m2 += (x - mean) * (x - mean) * d;
    m3 += std::pow(x - mean, 3.0) * d;
  }
  EXPECT_NEAR(mean, 100.0, 0.5);
  EXPECT_NEAR(std::sqrt(m2), 15.0, 0.5);
  EXPECT_NEAR(m3 / std::pow(m2, 1.5), 0.5, 0.1);
}

}  // namespace
}  // namespace eus
