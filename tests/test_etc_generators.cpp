#include "synth/etc_generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "data/historical.hpp"
#include "synth/moments.hpp"

namespace eus {
namespace {

TEST(RngGamma, MomentsMatch) {
  Rng rng(1);
  const double shape = 4.0, scale = 2.5;
  const int n = 200000;
  std::vector<double> draws(n);
  for (double& d : draws) d = rng.gamma(shape, scale);
  const Moments m = compute_moments(draws);
  EXPECT_NEAR(m.mean, shape * scale, 0.05);              // 10
  EXPECT_NEAR(m.variance, shape * scale * scale, 0.3);   // 25
  EXPECT_NEAR(m.cv, 1.0 / std::sqrt(shape), 0.01);       // 0.5
  EXPECT_NEAR(m.skewness, 2.0 / std::sqrt(shape), 0.05);  // 1.0
}

TEST(RngGamma, ShapeBelowOne) {
  Rng rng(2);
  const double shape = 0.5, scale = 3.0;
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = rng.gamma(shape, scale);
    EXPECT_GT(d, 0.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, shape * scale, 0.05);
}

TEST(RangeBased, ShapeAndBounds) {
  Rng rng(3);
  RangeBasedParams p;
  p.tasks = 40;
  p.machines = 12;
  p.task_range = 50.0;
  p.machine_range = 5.0;
  const Matrix etc = range_based_etc(p, rng);
  EXPECT_EQ(etc.rows(), 40U);
  EXPECT_EQ(etc.cols(), 12U);
  for (std::size_t r = 0; r < etc.rows(); ++r) {
    for (std::size_t c = 0; c < etc.cols(); ++c) {
      EXPECT_GE(etc(r, c), 1.0);
      EXPECT_LT(etc(r, c), 250.0);
    }
  }
}

TEST(RangeBased, RejectsBadParams) {
  Rng rng(4);
  RangeBasedParams p;
  p.tasks = 0;
  p.machines = 5;
  EXPECT_THROW(range_based_etc(p, rng), std::invalid_argument);
  p.tasks = 5;
  p.task_range = 1.0;
  EXPECT_THROW(range_based_etc(p, rng), std::invalid_argument);
}

TEST(RangeBased, RowsShareTaskFactor) {
  // Entries of one row divided by each other stay within the machine
  // range ratio bounds.
  Rng rng(5);
  RangeBasedParams p;
  p.tasks = 10;
  p.machines = 8;
  p.task_range = 1000.0;
  p.machine_range = 3.0;
  const Matrix etc = range_based_etc(p, rng);
  for (std::size_t r = 0; r < etc.rows(); ++r) {
    for (std::size_t c = 1; c < etc.cols(); ++c) {
      const double ratio = etc(r, c) / etc(r, 0);
      EXPECT_GT(ratio, 1.0 / 3.0);
      EXPECT_LT(ratio, 3.0);
    }
  }
}

TEST(Cvb, MeanMatchesTarget) {
  Rng rng(6);
  CvbParams p;
  p.tasks = 300;
  p.machines = 30;
  p.task_mean = 80.0;
  p.task_cv = 0.4;
  p.machine_cv = 0.3;
  const Matrix etc = cvb_etc(p, rng);
  double sum = 0.0;
  for (std::size_t r = 0; r < etc.rows(); ++r) {
    for (std::size_t c = 0; c < etc.cols(); ++c) sum += etc(r, c);
  }
  EXPECT_NEAR(sum / (300.0 * 30.0), 80.0, 3.0);
}

TEST(Cvb, RejectsBadParams) {
  Rng rng(7);
  CvbParams p;
  p.tasks = 5;
  p.machines = 5;
  p.task_cv = 0.0;
  EXPECT_THROW(cvb_etc(p, rng), std::invalid_argument);
}

TEST(Cvb, MachineCvControlsRowVariation) {
  Rng rng(8);
  CvbParams lo;
  lo.tasks = 200;
  lo.machines = 20;
  lo.machine_cv = 0.1;
  CvbParams hi = lo;
  hi.machine_cv = 0.9;
  const EtcHeterogeneity h_lo = measure_heterogeneity(cvb_etc(lo, rng));
  const EtcHeterogeneity h_hi = measure_heterogeneity(cvb_etc(hi, rng));
  EXPECT_GT(h_hi.machine_heterogeneity, 3.0 * h_lo.machine_heterogeneity);
}

TEST(Cvb, TaskCvControlsColumnVariation) {
  Rng rng(9);
  CvbParams lo;
  lo.tasks = 200;
  lo.machines = 20;
  lo.task_cv = 0.1;
  lo.machine_cv = 0.1;
  CvbParams hi = lo;
  hi.task_cv = 0.9;
  const EtcHeterogeneity h_lo = measure_heterogeneity(cvb_etc(lo, rng));
  const EtcHeterogeneity h_hi = measure_heterogeneity(cvb_etc(hi, rng));
  EXPECT_GT(h_hi.task_heterogeneity, 2.0 * h_lo.task_heterogeneity);
}

TEST(HeterogeneityClasses, NamesDistinct) {
  EXPECT_STREQ(to_string(HeterogeneityClass::kHiHi), "hi-hi");
  EXPECT_STREQ(to_string(HeterogeneityClass::kLoLo), "lo-lo");
}

TEST(HeterogeneityClasses, MeasuredOrdering) {
  Rng rng(10);
  const auto measure = [&](HeterogeneityClass c) {
    return measure_heterogeneity(
        cvb_etc_for_class(c, 150, 16, 100.0, rng));
  };
  const auto hihi = measure(HeterogeneityClass::kHiHi);
  const auto hilo = measure(HeterogeneityClass::kHiLo);
  const auto lohi = measure(HeterogeneityClass::kLoHi);
  const auto lolo = measure(HeterogeneityClass::kLoLo);

  // Machine heterogeneity responds to the machine CV knob...
  EXPECT_GT(hihi.machine_heterogeneity, hilo.machine_heterogeneity);
  EXPECT_GT(lohi.machine_heterogeneity, lolo.machine_heterogeneity);
  // ...and task heterogeneity to the task CV knob.
  EXPECT_GT(hihi.task_heterogeneity, lohi.task_heterogeneity);
  EXPECT_GT(hilo.task_heterogeneity, lolo.task_heterogeneity);
}

TEST(MeasureHeterogeneity, KnownMatrix) {
  // Rows are scalar multiples of each other: column CVs all equal; row CVs
  // all equal.
  const Matrix etc = Matrix::from_rows({
      {10.0, 20.0, 30.0},
      {20.0, 40.0, 60.0},
  });
  const EtcHeterogeneity h = measure_heterogeneity(etc);
  const double row_cv =
      compute_moments(std::vector<double>{10.0, 20.0, 30.0}).cv;
  const double col_cv =
      compute_moments(std::vector<double>{10.0, 20.0}).cv;
  EXPECT_NEAR(h.machine_heterogeneity, row_cv, 1e-12);
  EXPECT_NEAR(h.task_heterogeneity, col_cv, 1e-12);
}

TEST(MeasureHeterogeneity, SkipsIneligibleEntries) {
  const Matrix etc = Matrix::from_rows({
      {10.0, 20.0, kIneligible},
      {20.0, 40.0, kIneligible},
  });
  const EtcHeterogeneity h = measure_heterogeneity(etc);
  EXPECT_NEAR(h.machine_heterogeneity,
              compute_moments(std::vector<double>{10.0, 20.0}).cv, 1e-12);
}

TEST(MeasureHeterogeneity, HistoricalDataIsInconsistentlyHeterogeneous) {
  const EtcHeterogeneity h = measure_heterogeneity(historical_etc());
  EXPECT_GT(h.machine_heterogeneity, 0.05);
  EXPECT_GT(h.task_heterogeneity, 0.1);
}

TEST(MeasureHeterogeneity, RejectsEmpty) {
  EXPECT_THROW((void)measure_heterogeneity(Matrix{}), std::invalid_argument);
}

}  // namespace
}  // namespace eus
