#include "core/local_search.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/operators.hpp"
#include "data/historical.hpp"
#include "heuristics/seeds.hpp"
#include "pareto/front.hpp"
#include "tuf/builder.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary mixed_library() {
  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(10.0, 0.0, 1500.0)});
  return TufClassLibrary(std::move(classes));
}

struct Fixture {
  SystemModel system = historical_system();
  Trace trace;
  UtilityEnergyProblem problem;

  explicit Fixture(std::size_t n = 50)
      : trace(make_trace(system, n)), problem(system, trace) {}

  static Trace make_trace(const SystemModel& sys, std::size_t n) {
    Rng rng(23);
    TraceConfig cfg;
    cfg.num_tasks = n;
    cfg.window_seconds = 900.0;
    return generate_trace(sys, mixed_library(), cfg, rng);
  }
};

TEST(LocalSearch, RejectsBadLambda) {
  const Fixture fx;
  Rng rng(1);
  LocalSearchOptions opts;
  opts.lambda = 1.5;
  EXPECT_THROW((void)local_search(fx.problem,
                                  make_trivial_allocation(fx.trace.size()),
                                  opts, rng),
               std::invalid_argument);
}

TEST(LocalSearch, RejectsSizeMismatch) {
  const Fixture fx;
  Rng rng(2);
  EXPECT_THROW(
      (void)local_search(fx.problem, make_trivial_allocation(3), {}, rng),
      std::invalid_argument);
}

TEST(LocalSearch, NeverWorsensTheScalarizedScore) {
  const Fixture fx;
  Rng rng(3);
  const Allocation start = random_allocation(fx.problem, rng);
  const EUPoint before = fx.problem.evaluate(start);

  for (const double lambda : {0.0, 0.5, 1.0}) {
    Rng search_rng(4);
    LocalSearchOptions opts;
    opts.lambda = lambda;
    opts.max_evaluations = 150;
    const LocalSearchResult r =
        local_search(fx.problem, start, opts, search_rng);
    const double u_scale = std::max(std::abs(before.utility), 1.0);
    const double e_scale = std::max(std::abs(before.energy), 1.0);
    const double score_before = lambda * before.utility / u_scale -
                                (1.0 - lambda) * before.energy / e_scale;
    const double score_after = lambda * r.objectives.utility / u_scale -
                               (1.0 - lambda) * r.objectives.energy / e_scale;
    EXPECT_GE(score_after, score_before - 1e-12) << "lambda " << lambda;
  }
}

TEST(LocalSearch, LambdaZeroDescendsEnergy) {
  const Fixture fx;
  Rng rng(5);
  const Allocation start = random_allocation(fx.problem, rng);
  const double before = fx.problem.evaluate(start).energy;
  LocalSearchOptions opts;
  opts.lambda = 0.0;
  opts.max_evaluations = 400;
  const LocalSearchResult r = local_search(fx.problem, start, opts, rng);
  EXPECT_LT(r.objectives.energy, before);
}

TEST(LocalSearch, LambdaOneClimbsUtility) {
  const Fixture fx;
  Rng rng(6);
  const Allocation start = random_allocation(fx.problem, rng);
  const double before = fx.problem.evaluate(start).utility;
  LocalSearchOptions opts;
  opts.lambda = 1.0;
  opts.max_evaluations = 400;
  const LocalSearchResult r = local_search(fx.problem, start, opts, rng);
  EXPECT_GT(r.objectives.utility, before);
}

TEST(LocalSearch, RespectsEvaluationBudget) {
  const Fixture fx;
  Rng rng(7);
  LocalSearchOptions opts;
  opts.max_evaluations = 25;
  opts.patience = 1000;
  const LocalSearchResult r = local_search(
      fx.problem, random_allocation(fx.problem, rng), opts, rng);
  EXPECT_LE(r.evaluations, 25U);
}

TEST(LocalSearch, ResultRemainsValid) {
  const Fixture fx;
  Rng rng(8);
  LocalSearchOptions opts;
  opts.max_evaluations = 300;
  const LocalSearchResult r = local_search(
      fx.problem, random_allocation(fx.problem, rng), opts, rng);
  EXPECT_NO_THROW(fx.problem.evaluator().validate(r.allocation));
  // Reported objectives are truthful.
  const EUPoint check = fx.problem.evaluate(r.allocation);
  EXPECT_DOUBLE_EQ(check.energy, r.objectives.energy);
  EXPECT_DOUBLE_EQ(check.utility, r.objectives.utility);
}

TEST(LocalSearch, CannotBreakMinEnergyOptimality) {
  // The min-energy allocation is the provable energy optimum; a lambda-0
  // search may reshuffle but can never find lower energy.
  const Fixture fx;
  Rng rng(9);
  const Allocation seed = min_energy_allocation(fx.system, fx.trace);
  const double floor = fx.problem.evaluate(seed).energy;
  LocalSearchOptions opts;
  opts.lambda = 0.0;
  opts.max_evaluations = 300;
  const LocalSearchResult r = local_search(fx.problem, seed, opts, rng);
  EXPECT_NEAR(r.objectives.energy, floor, 1e-9);
}

TEST(PolishFront, ImprovesOrKeepsEveryMember) {
  const Fixture fx;
  Rng rng(10);
  std::vector<Allocation> front;
  std::vector<EUPoint> before;
  for (int i = 0; i < 5; ++i) {
    front.push_back(random_allocation(fx.problem, rng));
    before.push_back(fx.problem.evaluate(front.back()));
  }
  const auto polished = polish_front(fx.problem, front, 100, rng);
  ASSERT_EQ(polished.size(), front.size());
  // The polished set, unioned with the originals, must weakly dominate the
  // originals overall.
  std::vector<EUPoint> union_points = before;
  for (const auto& r : polished) union_points.push_back(r.objectives);
  const auto new_front = pareto_front(union_points);
  for (const auto& b : before) {
    bool covered = false;
    for (const auto& f : new_front) {
      if (f == b || dominates(f, b)) covered = true;
    }
    EXPECT_TRUE(covered);
  }
}

TEST(PolishFront, EmptyFrontIsNoop) {
  const Fixture fx;
  Rng rng(11);
  EXPECT_TRUE(polish_front(fx.problem, {}, 50, rng).empty());
}

TEST(PolishFront, SingleMemberUsesMidLambda) {
  const Fixture fx;
  Rng rng(12);
  const auto polished = polish_front(
      fx.problem, {random_allocation(fx.problem, rng)}, 50, rng);
  EXPECT_EQ(polished.size(), 1U);
  EXPECT_GE(polished[0].evaluations, 1U);
}

}  // namespace
}  // namespace eus
