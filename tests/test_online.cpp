#include "online/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/historical.hpp"
#include "heuristics/seeds.hpp"
#include "tuf/builder.hpp"
#include "workload/generator.hpp"

namespace eus {
namespace {

TufClassLibrary mixed_library() {
  std::vector<TufClass> classes;
  classes.push_back({"l", 2.0, make_linear_decay_tuf(10.0, 0.0, 1500.0)});
  classes.push_back({"h", 1.0, make_hard_deadline_tuf(25.0, 1200.0)});
  return TufClassLibrary(std::move(classes));
}

struct Fixture {
  SystemModel system = historical_system();
  Trace trace;

  explicit Fixture(std::size_t n = 80, std::uint64_t seed = 3)
      : trace(make_trace(system, n, seed)) {}

  static Trace make_trace(const SystemModel& sys, std::size_t n,
                          std::uint64_t seed) {
    Rng rng(seed);
    TraceConfig cfg;
    cfg.num_tasks = n;
    cfg.window_seconds = 900.0;
    return generate_trace(sys, mixed_library(), cfg, rng);
  }
};

TEST(OnlineSimulator, MinEnergyPolicyMatchesOfflineGreedy) {
  // The offline §V-B1 heuristic processes tasks in arrival order with the
  // same queue semantics, so its online twin must reproduce it exactly.
  const Fixture fx;
  OnlineMinEnergy policy;
  const OnlineResult r = simulate_online(fx.system, fx.trace, policy);
  const Allocation offline = min_energy_allocation(fx.system, fx.trace);
  EXPECT_EQ(r.allocation.machine, offline.machine);
  EXPECT_EQ(r.allocation.order, offline.order);
}

TEST(OnlineSimulator, MaxUtilityPolicyMatchesOfflineGreedy) {
  const Fixture fx;
  OnlineMaxUtility policy;
  const OnlineResult r = simulate_online(fx.system, fx.trace, policy);
  const Allocation offline = max_utility_allocation(fx.system, fx.trace);
  EXPECT_EQ(r.allocation.machine, offline.machine);
  EXPECT_EQ(r.allocation.order, offline.order);
}

TEST(OnlineSimulator, ResultConsistentWithOfflineEvaluator) {
  // Replaying the produced allocation through the offline evaluator must
  // reproduce the online accounting exactly (no dropping, no budget).
  const Fixture fx;
  for (const auto make :
       {+[]() -> OnlinePolicy* { return new OnlineMaxUtility; },
        +[]() -> OnlinePolicy* { return new OnlineMinCompletionTime; },
        +[]() -> OnlinePolicy* { return new OnlineMaxUtilityPerEnergy; }}) {
    std::unique_ptr<OnlinePolicy> policy(make());
    const OnlineResult r = simulate_online(fx.system, fx.trace, *policy);
    const Evaluator ev(fx.system, fx.trace);
    const Evaluation off = ev.evaluate(r.allocation);
    EXPECT_NEAR(r.utility, off.utility, 1e-9) << policy->name();
    EXPECT_NEAR(r.energy, off.energy, 1e-9) << policy->name();
    EXPECT_NEAR(r.makespan, off.makespan, 1e-9) << policy->name();
  }
}

TEST(OnlineSimulator, MinEnergyIsEnergyFloor) {
  const Fixture fx;
  OnlineMinEnergy min_energy;
  OnlineMaxUtility max_utility;
  OnlineMinCompletionTime mct;
  const double floor =
      simulate_online(fx.system, fx.trace, min_energy).energy;
  EXPECT_GE(simulate_online(fx.system, fx.trace, max_utility).energy, floor);
  EXPECT_GE(simulate_online(fx.system, fx.trace, mct).energy, floor);
}

TEST(OnlineSimulator, MaxUtilityEarnsMostAmongGreedyPolicies) {
  const Fixture fx(150);
  OnlineMinEnergy min_energy;
  OnlineMaxUtility max_utility;
  const double u_min =
      simulate_online(fx.system, fx.trace, min_energy).utility;
  const double u_max =
      simulate_online(fx.system, fx.trace, max_utility).utility;
  EXPECT_GT(u_max, u_min);
}

TEST(OnlineSimulator, BudgetRespectedWithDropping) {
  const Fixture fx(120);
  OnlineMaxUtility policy;
  const double unconstrained =
      simulate_online(fx.system, fx.trace, policy).energy;

  OnlineOptions opts;
  opts.energy_budget = 0.5 * unconstrained;
  opts.allow_dropping = true;
  const OnlineResult r = simulate_online(fx.system, fx.trace, policy, opts);
  EXPECT_LE(r.energy, opts.energy_budget + 1e-9);
  EXPECT_GT(r.dropped, 0U);
  EXPECT_FALSE(r.budget_overrun);
}

TEST(OnlineSimulator, BudgetOverrunFlaggedWithoutDropping) {
  const Fixture fx(60);
  OnlineMaxUtility policy;
  OnlineOptions opts;
  opts.energy_budget = 1.0;  // absurdly small
  opts.allow_dropping = false;
  const OnlineResult r = simulate_online(fx.system, fx.trace, policy, opts);
  EXPECT_TRUE(r.budget_overrun);
  EXPECT_GT(r.energy, opts.energy_budget);
  EXPECT_EQ(r.dropped, 0U);
}

TEST(OnlineSimulator, BudgetPacedPolicyStaysNearBudget) {
  const Fixture fx(150);
  OnlineMinEnergy min_energy;
  OnlineMaxUtility max_utility;
  const double floor = simulate_online(fx.system, fx.trace, min_energy).energy;
  const double ceiling =
      simulate_online(fx.system, fx.trace, max_utility).energy;

  BudgetPacedUtility paced;
  OnlineOptions opts;
  opts.energy_budget = 0.5 * (floor + ceiling);
  opts.allow_dropping = true;
  const OnlineResult r = simulate_online(fx.system, fx.trace, paced, opts);
  EXPECT_LE(r.energy, opts.energy_budget + 1e-9);
  // Pacing should beat naive min-energy on utility at this budget.
  const double u_floor =
      simulate_online(fx.system, fx.trace, min_energy).utility;
  EXPECT_GE(r.utility, u_floor);
}

TEST(OnlineSimulator, BudgetPacedWithoutBudgetIsPureUtility) {
  const Fixture fx;
  BudgetPacedUtility paced;
  OnlineMaxUtility max_utility;
  const OnlineResult a = simulate_online(fx.system, fx.trace, paced);
  const OnlineResult b = simulate_online(fx.system, fx.trace, max_utility);
  EXPECT_NEAR(a.utility, b.utility, 1e-9);
  EXPECT_NEAR(a.energy, b.energy, 1e-9);
}

TEST(OnlineSimulator, DroppedTasksEarnAndCostNothing) {
  const Fixture fx(60);
  OnlineMaxUtility policy;
  OnlineOptions opts;
  opts.energy_budget = 2e6;
  opts.allow_dropping = true;
  const OnlineResult r = simulate_online(fx.system, fx.trace, policy, opts);
  double utility = 0.0, energy = 0.0;
  for (const auto& o : r.outcomes) {
    if (o.dropped) {
      EXPECT_DOUBLE_EQ(o.utility, 0.0);
      EXPECT_DOUBLE_EQ(o.energy, 0.0);
    }
    utility += o.utility;
    energy += o.energy;
  }
  EXPECT_NEAR(utility, r.utility, 1e-9);
  EXPECT_NEAR(energy, r.energy, 1e-9);
}

TEST(OnlineSimulator, RejectsIneligiblePolicyChoice) {
  // A hostile policy pointing every task at machine 0 of a system where
  // task "sp" cannot run there.
  class Hostile final : public OnlinePolicy {
   public:
    [[nodiscard]] std::string name() const override { return "hostile"; }
    [[nodiscard]] int place(const OnlineContext&, const TaskInstance&,
                            const TimeUtilityFunction&) override {
      return 1;  // the special machine
    }
  };
  std::vector<TaskType> tasks = {{"g", Category::kGeneral, -1},
                                 {"sp", Category::kSpecial, 1}};
  std::vector<MachineType> types = {{"gm", Category::kGeneral},
                                    {"sm", Category::kSpecial}};
  std::vector<Machine> machines = {{0, "gm"}, {1, "sm"}};
  const Matrix etc = Matrix::from_rows({{10.0, kIneligible}, {50.0, 5.0}});
  const Matrix epc = Matrix::from_rows({{10.0, 1.0}, {10.0, 10.0}});
  const SystemModel sys(tasks, types, machines, etc, epc);

  std::vector<TufClass> classes;
  classes.push_back({"l", 1.0, make_linear_decay_tuf(5.0, 0.0, 100.0)});
  const Trace trace({{0, 0.0, 0}}, TufClassLibrary(std::move(classes)));

  Hostile hostile;
  EXPECT_THROW(simulate_online(sys, trace, hostile), std::invalid_argument);
}

TEST(OnlineSimulator, DecliningWithoutDroppingThrows) {
  class Decliner final : public OnlinePolicy {
   public:
    [[nodiscard]] std::string name() const override { return "decliner"; }
    [[nodiscard]] int place(const OnlineContext&, const TaskInstance&,
                            const TimeUtilityFunction&) override {
      return -1;
    }
  };
  const Fixture fx(5);
  Decliner decliner;
  EXPECT_THROW(simulate_online(fx.system, fx.trace, decliner),
               std::invalid_argument);
  OnlineOptions opts;
  opts.allow_dropping = true;
  const OnlineResult r =
      simulate_online(fx.system, fx.trace, decliner, opts);
  EXPECT_EQ(r.dropped, 5U);
  EXPECT_DOUBLE_EQ(r.energy, 0.0);
}

TEST(OnlineSimulator, OnlineNeverBeatsOfflineParetoFrontByMuch) {
  // The online policies only see the past; an offline allocation with the
  // same machines+order exists for each, so no online run can exceed the
  // utility upper bound, and each maps into the offline objective space.
  const Fixture fx(100);
  OnlineMaxUtility policy;
  const OnlineResult r = simulate_online(fx.system, fx.trace, policy);
  EXPECT_LE(r.utility, fx.trace.utility_upper_bound() + 1e-9);
}

}  // namespace
}  // namespace eus
