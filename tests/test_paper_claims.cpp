// The paper's §IV-§VI claims, pinned as miniature regression tests: if a
// change breaks one of the *conclusions* (not just a number), this file
// fails by claim name.

#include <gtest/gtest.h>

#include "core/study.hpp"
#include "data/historical.hpp"
#include "pareto/front.hpp"
#include "pareto/knee.hpp"
#include "pareto/metrics.hpp"
#include "sched/bounds.hpp"
#include "tuf/builder.hpp"
#include "workload/scenarios.hpp"

namespace eus {
namespace {

Nsga2Config claim_config(std::uint64_t seed = 2013) {
  Nsga2Config cfg;
  cfg.population_size = 32;
  cfg.mutation_probability = 0.25;
  cfg.seed = seed;
  return cfg;
}

// §IV-A: "In general, a well-structured resource allocation that uses more
// energy will earn more utility and one that uses less energy will earn
// less utility."
TEST(PaperClaims, FrontTradesEnergyForUtility) {
  const Scenario s = make_dataset1(301);
  const UtilityEnergyProblem problem(s.system, s.trace);
  Nsga2 ga(problem, claim_config());
  ga.initialize({min_energy_allocation(s.system, s.trace),
                 min_min_completion_time_allocation(s.system, s.trace)});
  ga.iterate(120);
  const auto front = ga.front_points();
  ASSERT_GE(front.size(), 5U);
  // Along the front: more energy <=> more utility (exact duplicates are
  // retained by design, so equality is allowed only for identical points).
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].energy, front[i - 1].energy);
    EXPECT_GE(front[i].utility, front[i - 1].utility);
    if (front[i] != front[i - 1]) {
      EXPECT_GT(front[i].energy, front[i - 1].energy);
      EXPECT_GT(front[i].utility, front[i - 1].utility);
    }
  }
  // And the spread is substantial: the top earns well over the bottom.
  EXPECT_GT(front.back().utility, 2.0 * front.front().utility);
}

// §VI (Figure 3): "the presence of the seed within a population allows
// that population to initially explore the solution space close to where
// the seed originated."
TEST(PaperClaims, SeedsAnchorInitialExploration) {
  const Scenario s = make_dataset1(302);
  const UtilityEnergyProblem problem(s.system, s.trace);
  const StudyResult r = run_seeding_study(
      problem, claim_config(), {3},
      {{"min-energy", 'd', {SeedHeuristic::kMinEnergy}},
       {"min-min", 's', {SeedHeuristic::kMinMinCompletionTime}}});
  const auto& energy_front = r.fronts[0][0];
  const auto& utility_front = r.fronts[1][0];
  // The min-energy population's best energy beats min-min's...
  EXPECT_LT(energy_front.front().energy, utility_front.front().energy);
  // ...and the min-min population's best utility beats min-energy's.
  EXPECT_GT(utility_front.back().utility, energy_front.back().utility);
}

// §VI (Figure 3): "as the number of iterations increase though, the
// presence of the seed starts to become irrelevant because all the
// populations ... start converging to very similar Pareto fronts."
TEST(PaperClaims, PopulationsConvergeWithIterations) {
  const Scenario s = make_custom_scenario("conv", historical_system(), 40,
                                          600.0, 303);
  const UtilityEnergyProblem problem(s.system, s.trace);
  const StudyResult r = run_seeding_study(
      problem, claim_config(), {3, 400},
      {{"min-energy", 'd', {SeedHeuristic::kMinEnergy}}, {"random", '*', {}}});
  std::vector<std::vector<EUPoint>> all;
  for (const auto& per_pop : r.fronts) {
    for (const auto& f : per_pop) all.push_back(f);
  }
  const EUPoint ref = enclosing_reference(all);
  const double gap_early = std::abs(hypervolume(r.fronts[0][0], ref) -
                                    hypervolume(r.fronts[1][0], ref));
  const double gap_late = std::abs(hypervolume(r.fronts[0][1], ref) -
                                   hypervolume(r.fronts[1][1], ref));
  EXPECT_LT(gap_late, gap_early);
}

// §VI (Figure 6): "In all cases, our seeded populations are finding
// solutions that dominate those found by the random population."
TEST(PaperClaims, SeededDominatesRandomOnLargeProblems) {
  const Scenario s = make_dataset2(304);
  const UtilityEnergyProblem problem(s.system, s.trace);
  const StudyResult r = run_seeding_study(
      problem, claim_config(), {4},
      {{"min-min", 's', {SeedHeuristic::kMinMinCompletionTime}},
       {"random", '*', {}}});
  EXPECT_GT(coverage(r.final_front(0), r.final_front(1)), 0.5);
}

// §VI (Figures 3-6): every converged front has a utility-per-energy peak
// region — "the location where the system is operating as efficiently as
// possible".
TEST(PaperClaims, EfficientOperationRegionExists) {
  const Scenario s = make_dataset1(305);
  const UtilityEnergyProblem problem(s.system, s.trace);
  Nsga2 ga(problem, claim_config());
  ga.initialize({max_utility_per_energy_allocation(s.system, s.trace)});
  ga.iterate(200);
  const KneeAnalysis knee = analyze_utility_per_energy(ga.front_points());
  EXPECT_GT(knee.peak_ratio, 0.0);
  EXPECT_FALSE(knee.region.empty());
  // Figure 5's method: the same point maximizes U/E vs utility and vs
  // energy (it is one peak viewed along two axes).
  EXPECT_DOUBLE_EQ(knee.peak.utility / knee.peak.energy, knee.peak_ratio);
}

// §V-B1: "This heuristic will create a solution with the minimum possible
// energy consumption."
TEST(PaperClaims, MinEnergySeedIsOptimal) {
  const Scenario s = make_dataset1(306);
  const UtilityEnergyProblem problem(s.system, s.trace);
  const ObjectiveBounds bounds = compute_bounds(s.system, s.trace);
  const double seed_energy =
      problem.evaluate(min_energy_allocation(s.system, s.trace)).energy;
  EXPECT_NEAR(seed_energy, bounds.energy_lower, 1e-9);
}

// §II: one NSGA-II run produces a whole front, unlike single-solution
// heuristics — the front must carry many mutually nondominated points.
TEST(PaperClaims, OneRunManySolutions) {
  const Scenario s = make_dataset1(307);
  const UtilityEnergyProblem problem(s.system, s.trace);
  Nsga2 ga(problem, claim_config());
  ga.initialize({});
  ga.iterate(150);
  const auto front = ga.front_points();
  EXPECT_GE(front.size(), 10U);
  EXPECT_TRUE(is_mutually_nondominated(front));
}

// Figure 1's exact published values.
TEST(PaperClaims, Figure1Values) {
  const TimeUtilityFunction f = make_figure1_tuf();
  EXPECT_NEAR(f.value(20.0), 12.0, 1e-9);
  EXPECT_NEAR(f.value(47.0), 7.0, 1e-9);
}

// §III-D2: special machines are ~10x on ETC, EPC undivided — so a special
// task's EEC on its special machine is ~10x cheaper than the suite
// average, which is the whole point of owning the hardware.
TEST(PaperClaims, SpecialMachinesSaveEnergyAndTime) {
  const ExpandedSystem ex = make_expanded_system(308);
  for (const std::size_t t : ex.special_task_types) {
    const auto mt = static_cast<std::size_t>(
        ex.model.task_types()[t].special_machine_type);
    double avg_eec = 0.0;
    for (std::size_t c = 0; c < 9; ++c) {
      avg_eec += ex.model.etc()(t, c) * ex.model.epc()(t, c);
    }
    avg_eec /= 9.0;
    const double special_eec =
        ex.model.etc()(t, mt) * ex.model.epc()(t, mt);
    EXPECT_LT(special_eec, 0.35 * avg_eec);
  }
}

}  // namespace
}  // namespace eus
