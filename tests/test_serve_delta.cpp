// End-to-end delta / warm-start serving tests over loopback: the
// allocate-then-delta warm round trip, the 404 unknown-base path, protocol
// rejections, the archive admin verbs, and the checkpoint lifecycle —
// SIGTERM drain writes the archive, a restarted runtime reloads it and
// answers the next delta warm, and a corrupt checkpoint cold-starts.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "serve/client.hpp"
#include "serve/handlers.hpp"
#include "serve/runtime.hpp"
#include "util/json_value.hpp"

namespace eus::serve {
namespace {

util::JsonValue one_shot(std::uint16_t port, const std::string& request) {
  ClientConnection connection;
  connection.connect(port);
  return util::parse_json(connection.call(request));
}

int code_of(const util::JsonValue& doc) {
  return static_cast<int>(doc.number_or("code", -1.0));
}

double counter_of(const util::JsonValue& metricsz, const std::string& name) {
  const util::JsonValue* counters = metricsz.get("counters");
  return counters == nullptr ? 0.0 : counters->number_or(name, 0.0);
}

constexpr const char* kBase =
    R"({"name":"custom","tasks":24,"window_s":60,"seed":5})";
constexpr const char* kBudget =
    R"({"population":16,"generations":16,"seeds":["min-energy"]})";

std::string allocate_request(const std::string& tenant) {
  return std::string(R"({"type":"allocate","mode":"nsga2",)") +
         (tenant.empty() ? "" : R"("tenant":")" + tenant + R"(",)") +
         R"("scenario":)" + kBase + R"(,"nsga2":)" + kBudget + "}";
}

std::string delta_request(const std::string& tenant,
                          const std::string& mutations,
                          const std::string& extra = "") {
  return std::string(R"({"type":"delta","tenant":")") + tenant +
         R"(","base":)" + kBase + R"(,"mutations":)" + mutations + extra +
         R"(,"nsga2":)" + kBudget + "}";
}

TEST(ServeDelta, WarmDeltaRoundTripOverLoopback) {
  RuntimeConfig config;
  ServeRuntime runtime(config);
  runtime.boot();
  const std::uint16_t port = runtime.server().port();

  // Prime: the tenant's first allocate runs cold and archives its front.
  const util::JsonValue prime = one_shot(port, allocate_request("acme"));
  ASSERT_EQ(code_of(prime), kCodeOk);
  ASSERT_NE(prime.get("warm"), nullptr);
  EXPECT_FALSE(prime.get("warm")->boolean);
  EXPECT_EQ(prime.string_or("tenant", ""), "acme");

  // Delta: mutate the archived base; the response is warm and carries the
  // lineage fingerprints.
  const util::JsonValue delta = one_shot(
      port, delta_request("acme",
                          R"([{"op":"add-tasks","count":4},)"
                          R"({"op":"drop-machine","machine":1}])"));
  ASSERT_EQ(code_of(delta), kCodeOk) << delta.string_or("error", "");
  EXPECT_EQ(delta.string_or("mode", ""), "nsga2");
  ASSERT_NE(delta.get("warm"), nullptr);
  EXPECT_TRUE(delta.get("warm")->boolean);
  const std::string base_fp = delta.string_or("base_fingerprint", "");
  const std::string new_fp = delta.string_or("fingerprint", "");
  EXPECT_FALSE(base_fp.empty());
  EXPECT_FALSE(new_fp.empty());
  EXPECT_NE(base_fp, new_fp);
  EXPECT_NE(new_fp.find("drop=1"), std::string::npos);
  ASSERT_NE(delta.get("front"), nullptr);
  EXPECT_FALSE(delta.get("front")->array.empty());

  // The same base can be mutated again — the archive entry survives.
  const util::JsonValue again = one_shot(
      port,
      delta_request("acme", R"([{"op":"set-window","window_s":45}])"));
  ASSERT_EQ(code_of(again), kCodeOk);
  EXPECT_TRUE(again.get("warm")->boolean);

  const util::JsonValue m = one_shot(port, R"({"type":"metricsz"})");
  EXPECT_GE(counter_of(m, "serve.delta.warm"), 2.0);
  EXPECT_GE(counter_of(m, "archive.warm_hits"), 2.0);
  EXPECT_GE(counter_of(m, "nsga2.warm_seeds"), 1.0);

  runtime.halt();
}

TEST(ServeDelta, UnknownBaseAnswers404WithoutColdFallback) {
  RuntimeConfig config;
  ServeRuntime runtime(config);
  runtime.boot();
  const std::uint16_t port = runtime.server().port();

  const util::JsonValue r = one_shot(
      port, delta_request("ghost", R"([{"op":"add-tasks","count":2}])",
                          R"(,"cold_fallback":false)"));
  EXPECT_EQ(code_of(r), kCodeUnsatisfiable);
  EXPECT_NE(r.string_or("error", "").find("unknown base fingerprint"),
            std::string::npos);

  const util::JsonValue m = one_shot(port, R"({"type":"metricsz"})");
  EXPECT_GE(counter_of(m, "serve.delta.unknown_base"), 1.0);

  runtime.halt();
}

TEST(ServeDelta, UnknownBaseFallsBackToColdRunByDefault) {
  RuntimeConfig config;
  ServeRuntime runtime(config);
  runtime.boot();
  const std::uint16_t port = runtime.server().port();

  const util::JsonValue r = one_shot(
      port, delta_request("newcomer", R"([{"op":"remove-tasks","count":4}])"));
  ASSERT_EQ(code_of(r), kCodeOk) << r.string_or("error", "");
  ASSERT_NE(r.get("warm"), nullptr);
  EXPECT_FALSE(r.get("warm")->boolean);
  ASSERT_NE(r.get("front"), nullptr);
  EXPECT_FALSE(r.get("front")->array.empty());

  const util::JsonValue m = one_shot(port, R"({"type":"metricsz"})");
  EXPECT_GE(counter_of(m, "serve.delta.cold"), 1.0);

  runtime.halt();
}

TEST(ServeDelta, ProtocolRejectionsAnswer400) {
  RuntimeConfig config;
  ServeRuntime runtime(config);
  runtime.boot();
  const std::uint16_t port = runtime.server().port();

  // Empty mutation list.
  EXPECT_EQ(code_of(one_shot(port, delta_request("acme", "[]"))),
            kCodeBadRequest);
  // Missing tenant.
  EXPECT_EQ(code_of(one_shot(port,
                             std::string(R"({"type":"delta","base":)") +
                                 kBase +
                                 R"(,"mutations":[{"op":"add-tasks",)"
                                 R"("count":1}]})")),
            kCodeBadRequest);
  // Trace-shape mutations are custom-only: the datasets' traces are fixed.
  EXPECT_EQ(
      code_of(one_shot(
          port, R"({"type":"delta","tenant":"acme",
                    "base":{"name":"dataset1"},
                    "mutations":[{"op":"add-tasks","count":2}]})")),
      kCodeBadRequest);
  // Infeasible machine drop (way out of range).
  EXPECT_EQ(
      code_of(one_shot(
          port, delta_request(
                    "acme", R"([{"op":"drop-machine","machine":9999}])"))),
      kCodeBadRequest);

  runtime.halt();
}

TEST(ServeDelta, ArchiveAdminVerbsOverLoopback) {
  RuntimeConfig config;
  ServeRuntime runtime(config);
  runtime.boot();
  const std::uint16_t port = runtime.server().port();

  ASSERT_EQ(code_of(one_shot(port, allocate_request("acme"))), kCodeOk);

  const util::JsonValue stats =
      one_shot(port, R"({"type":"adminz","action":"archive-stats"})");
  ASSERT_EQ(code_of(stats), kCodeOk);
  EXPECT_EQ(stats.number_or("tenants", 0.0), 1.0);
  EXPECT_GE(stats.number_or("entries", 0.0), 1.0);
  ASSERT_NE(stats.get("per_tenant"), nullptr);
  ASSERT_EQ(stats.get("per_tenant")->array.size(), 1U);
  EXPECT_EQ(stats.get("per_tenant")->array[0].string_or("tenant", ""),
            "acme");

  const util::JsonValue cap = one_shot(
      port,
      R"({"type":"adminz","action":"archive-cap","name":"acme","value":2})");
  EXPECT_EQ(code_of(cap), kCodeOk);

  const util::JsonValue flush = one_shot(
      port, R"({"type":"adminz","action":"archive-flush","name":"acme"})");
  ASSERT_EQ(code_of(flush), kCodeOk);
  EXPECT_GE(flush.number_or("flushed", 0.0), 1.0);

  const util::JsonValue empty_stats =
      one_shot(port, R"({"type":"adminz","action":"archive-stats"})");
  EXPECT_EQ(empty_stats.number_or("entries", -1.0), 0.0);

  runtime.halt();
}

TEST(ServeDelta, ArchiveVerbsWithoutArchiveAnswer400) {
  RuntimeConfig config;
  config.archive.max_tenants = 0;  // archive disabled
  ServeRuntime runtime(config);
  runtime.boot();
  const std::uint16_t port = runtime.server().port();

  const util::JsonValue r =
      one_shot(port, R"({"type":"adminz","action":"archive-stats"})");
  EXPECT_EQ(code_of(r), kCodeBadRequest);
  EXPECT_NE(r.string_or("error", "").find("no warm-start archive"),
            std::string::npos);

  // A tenant allocate still works — it just never warms.
  const util::JsonValue a = one_shot(port, allocate_request("acme"));
  ASSERT_EQ(code_of(a), kCodeOk);

  runtime.halt();
}

TEST(ServeDelta, CheckpointSurvivesSigtermKillAndRestart) {
  const std::string path =
      testing::TempDir() + "/eus_delta_ckpt_restart_test";
  std::remove(path.c_str());

  // Life 1: archive a front for acme, then die by process-directed
  // SIGTERM — the drain writes the checkpoint.
  {
    RuntimeConfig config;
    config.archive_path = path;
    config.signal_thread = true;
    ServeRuntime runtime(config);
    runtime.boot();
    ASSERT_EQ(code_of(one_shot(runtime.server().port(),
                               allocate_request("acme"))),
              kCodeOk);
    ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
    runtime.run();
    EXPECT_EQ(runtime.phase(), Phase::eHalted);
  }
  {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "checkpoint not written on drain";
  }

  // Life 2: a fresh runtime reloads the checkpoint and answers the
  // tenant's delta warm — no re-priming allocate needed.
  {
    RuntimeConfig config;
    config.archive_path = path;
    ServeRuntime runtime(config);
    runtime.boot();
    const util::JsonValue delta = one_shot(
        runtime.server().port(),
        delta_request("acme", R"([{"op":"add-tasks","count":2}])",
                      R"(,"cold_fallback":false)"));
    ASSERT_EQ(code_of(delta), kCodeOk) << delta.string_or("error", "");
    ASSERT_NE(delta.get("warm"), nullptr);
    EXPECT_TRUE(delta.get("warm")->boolean);
    runtime.halt();
  }
  std::remove(path.c_str());
}

TEST(ServeDelta, CorruptCheckpointColdStartsTheBoot) {
  const std::string path =
      testing::TempDir() + "/eus_delta_ckpt_corrupt_test";
  std::ofstream(path) << "this is not an archive checkpoint\n";

  RuntimeConfig config;
  config.archive_path = path;
  ServeRuntime runtime(config);
  runtime.boot();  // must not throw
  EXPECT_EQ(runtime.phase(), Phase::eRunning);
  const std::uint16_t port = runtime.server().port();

  const util::JsonValue m = one_shot(port, R"({"type":"metricsz"})");
  EXPECT_EQ(counter_of(m, "archive.checkpoint.corrupt"), 1.0);

  // The daemon serves normally from the empty archive.
  ASSERT_EQ(code_of(one_shot(port, allocate_request("acme"))), kCodeOk);

  runtime.halt();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eus::serve
