# Empty compiler generated dependencies file for eus_pareto.
# This may be replaced when dependencies are built.
