file(REMOVE_RECURSE
  "libeus_pareto.a"
)
