
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pareto/archive.cpp" "src/pareto/CMakeFiles/eus_pareto.dir/archive.cpp.o" "gcc" "src/pareto/CMakeFiles/eus_pareto.dir/archive.cpp.o.d"
  "/root/repo/src/pareto/attainment.cpp" "src/pareto/CMakeFiles/eus_pareto.dir/attainment.cpp.o" "gcc" "src/pareto/CMakeFiles/eus_pareto.dir/attainment.cpp.o.d"
  "/root/repo/src/pareto/front.cpp" "src/pareto/CMakeFiles/eus_pareto.dir/front.cpp.o" "gcc" "src/pareto/CMakeFiles/eus_pareto.dir/front.cpp.o.d"
  "/root/repo/src/pareto/knee.cpp" "src/pareto/CMakeFiles/eus_pareto.dir/knee.cpp.o" "gcc" "src/pareto/CMakeFiles/eus_pareto.dir/knee.cpp.o.d"
  "/root/repo/src/pareto/metrics.cpp" "src/pareto/CMakeFiles/eus_pareto.dir/metrics.cpp.o" "gcc" "src/pareto/CMakeFiles/eus_pareto.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
