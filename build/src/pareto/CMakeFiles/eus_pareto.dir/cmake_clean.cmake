file(REMOVE_RECURSE
  "CMakeFiles/eus_pareto.dir/archive.cpp.o"
  "CMakeFiles/eus_pareto.dir/archive.cpp.o.d"
  "CMakeFiles/eus_pareto.dir/attainment.cpp.o"
  "CMakeFiles/eus_pareto.dir/attainment.cpp.o.d"
  "CMakeFiles/eus_pareto.dir/front.cpp.o"
  "CMakeFiles/eus_pareto.dir/front.cpp.o.d"
  "CMakeFiles/eus_pareto.dir/knee.cpp.o"
  "CMakeFiles/eus_pareto.dir/knee.cpp.o.d"
  "CMakeFiles/eus_pareto.dir/metrics.cpp.o"
  "CMakeFiles/eus_pareto.dir/metrics.cpp.o.d"
  "libeus_pareto.a"
  "libeus_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eus_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
