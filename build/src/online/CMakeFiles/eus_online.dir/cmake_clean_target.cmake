file(REMOVE_RECURSE
  "libeus_online.a"
)
