file(REMOVE_RECURSE
  "CMakeFiles/eus_online.dir/policy.cpp.o"
  "CMakeFiles/eus_online.dir/policy.cpp.o.d"
  "CMakeFiles/eus_online.dir/simulator.cpp.o"
  "CMakeFiles/eus_online.dir/simulator.cpp.o.d"
  "libeus_online.a"
  "libeus_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eus_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
