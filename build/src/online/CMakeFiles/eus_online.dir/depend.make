# Empty dependencies file for eus_online.
# This may be replaced when dependencies are built.
