# Empty dependencies file for eus_workload.
# This may be replaced when dependencies are built.
