file(REMOVE_RECURSE
  "CMakeFiles/eus_workload.dir/analysis.cpp.o"
  "CMakeFiles/eus_workload.dir/analysis.cpp.o.d"
  "CMakeFiles/eus_workload.dir/generator.cpp.o"
  "CMakeFiles/eus_workload.dir/generator.cpp.o.d"
  "CMakeFiles/eus_workload.dir/scenarios.cpp.o"
  "CMakeFiles/eus_workload.dir/scenarios.cpp.o.d"
  "CMakeFiles/eus_workload.dir/trace.cpp.o"
  "CMakeFiles/eus_workload.dir/trace.cpp.o.d"
  "CMakeFiles/eus_workload.dir/trace_io.cpp.o"
  "CMakeFiles/eus_workload.dir/trace_io.cpp.o.d"
  "libeus_workload.a"
  "libeus_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eus_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
