file(REMOVE_RECURSE
  "libeus_workload.a"
)
