# Empty dependencies file for eus_des.
# This may be replaced when dependencies are built.
