file(REMOVE_RECURSE
  "CMakeFiles/eus_des.dir/des_evaluator.cpp.o"
  "CMakeFiles/eus_des.dir/des_evaluator.cpp.o.d"
  "CMakeFiles/eus_des.dir/event_queue.cpp.o"
  "CMakeFiles/eus_des.dir/event_queue.cpp.o.d"
  "CMakeFiles/eus_des.dir/report.cpp.o"
  "CMakeFiles/eus_des.dir/report.cpp.o.d"
  "libeus_des.a"
  "libeus_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eus_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
