file(REMOVE_RECURSE
  "libeus_des.a"
)
