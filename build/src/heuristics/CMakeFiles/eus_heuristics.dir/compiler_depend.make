# Empty compiler generated dependencies file for eus_heuristics.
# This may be replaced when dependencies are built.
