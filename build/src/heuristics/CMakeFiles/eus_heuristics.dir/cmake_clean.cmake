file(REMOVE_RECURSE
  "CMakeFiles/eus_heuristics.dir/braun.cpp.o"
  "CMakeFiles/eus_heuristics.dir/braun.cpp.o.d"
  "CMakeFiles/eus_heuristics.dir/seeds.cpp.o"
  "CMakeFiles/eus_heuristics.dir/seeds.cpp.o.d"
  "libeus_heuristics.a"
  "libeus_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eus_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
