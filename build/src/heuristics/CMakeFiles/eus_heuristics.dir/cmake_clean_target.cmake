file(REMOVE_RECURSE
  "libeus_heuristics.a"
)
