# Empty compiler generated dependencies file for eus_sched.
# This may be replaced when dependencies are built.
