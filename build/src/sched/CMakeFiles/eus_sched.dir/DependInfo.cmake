
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/allocation_io.cpp" "src/sched/CMakeFiles/eus_sched.dir/allocation_io.cpp.o" "gcc" "src/sched/CMakeFiles/eus_sched.dir/allocation_io.cpp.o.d"
  "/root/repo/src/sched/bounds.cpp" "src/sched/CMakeFiles/eus_sched.dir/bounds.cpp.o" "gcc" "src/sched/CMakeFiles/eus_sched.dir/bounds.cpp.o.d"
  "/root/repo/src/sched/dvfs.cpp" "src/sched/CMakeFiles/eus_sched.dir/dvfs.cpp.o" "gcc" "src/sched/CMakeFiles/eus_sched.dir/dvfs.cpp.o.d"
  "/root/repo/src/sched/evaluator.cpp" "src/sched/CMakeFiles/eus_sched.dir/evaluator.cpp.o" "gcc" "src/sched/CMakeFiles/eus_sched.dir/evaluator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/eus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tuf/CMakeFiles/eus_tuf.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/eus_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/eus_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
