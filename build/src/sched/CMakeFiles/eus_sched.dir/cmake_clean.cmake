file(REMOVE_RECURSE
  "CMakeFiles/eus_sched.dir/allocation_io.cpp.o"
  "CMakeFiles/eus_sched.dir/allocation_io.cpp.o.d"
  "CMakeFiles/eus_sched.dir/bounds.cpp.o"
  "CMakeFiles/eus_sched.dir/bounds.cpp.o.d"
  "CMakeFiles/eus_sched.dir/dvfs.cpp.o"
  "CMakeFiles/eus_sched.dir/dvfs.cpp.o.d"
  "CMakeFiles/eus_sched.dir/evaluator.cpp.o"
  "CMakeFiles/eus_sched.dir/evaluator.cpp.o.d"
  "libeus_sched.a"
  "libeus_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eus_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
