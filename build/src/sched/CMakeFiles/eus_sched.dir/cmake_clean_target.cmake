file(REMOVE_RECURSE
  "libeus_sched.a"
)
