file(REMOVE_RECURSE
  "CMakeFiles/eus_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/eus_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/eus_util.dir/csv.cpp.o"
  "CMakeFiles/eus_util.dir/csv.cpp.o.d"
  "CMakeFiles/eus_util.dir/env.cpp.o"
  "CMakeFiles/eus_util.dir/env.cpp.o.d"
  "CMakeFiles/eus_util.dir/rng.cpp.o"
  "CMakeFiles/eus_util.dir/rng.cpp.o.d"
  "CMakeFiles/eus_util.dir/table.cpp.o"
  "CMakeFiles/eus_util.dir/table.cpp.o.d"
  "CMakeFiles/eus_util.dir/thread_pool.cpp.o"
  "CMakeFiles/eus_util.dir/thread_pool.cpp.o.d"
  "libeus_util.a"
  "libeus_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eus_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
