# Empty compiler generated dependencies file for eus_util.
# This may be replaced when dependencies are built.
