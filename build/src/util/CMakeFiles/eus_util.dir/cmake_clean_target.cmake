file(REMOVE_RECURSE
  "libeus_util.a"
)
