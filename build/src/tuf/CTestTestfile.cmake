# CMake generated Testfile for 
# Source directory: /root/repo/src/tuf
# Build directory: /root/repo/build/src/tuf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
