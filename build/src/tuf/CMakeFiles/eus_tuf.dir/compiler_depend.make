# Empty compiler generated dependencies file for eus_tuf.
# This may be replaced when dependencies are built.
