file(REMOVE_RECURSE
  "libeus_tuf.a"
)
