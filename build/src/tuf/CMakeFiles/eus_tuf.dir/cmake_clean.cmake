file(REMOVE_RECURSE
  "CMakeFiles/eus_tuf.dir/builder.cpp.o"
  "CMakeFiles/eus_tuf.dir/builder.cpp.o.d"
  "CMakeFiles/eus_tuf.dir/classes.cpp.o"
  "CMakeFiles/eus_tuf.dir/classes.cpp.o.d"
  "CMakeFiles/eus_tuf.dir/time_utility_function.cpp.o"
  "CMakeFiles/eus_tuf.dir/time_utility_function.cpp.o.d"
  "libeus_tuf.a"
  "libeus_tuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eus_tuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
