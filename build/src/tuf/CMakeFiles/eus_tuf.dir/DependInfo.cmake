
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuf/builder.cpp" "src/tuf/CMakeFiles/eus_tuf.dir/builder.cpp.o" "gcc" "src/tuf/CMakeFiles/eus_tuf.dir/builder.cpp.o.d"
  "/root/repo/src/tuf/classes.cpp" "src/tuf/CMakeFiles/eus_tuf.dir/classes.cpp.o" "gcc" "src/tuf/CMakeFiles/eus_tuf.dir/classes.cpp.o.d"
  "/root/repo/src/tuf/time_utility_function.cpp" "src/tuf/CMakeFiles/eus_tuf.dir/time_utility_function.cpp.o" "gcc" "src/tuf/CMakeFiles/eus_tuf.dir/time_utility_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
