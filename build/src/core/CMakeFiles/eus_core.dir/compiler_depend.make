# Empty compiler generated dependencies file for eus_core.
# This may be replaced when dependencies are built.
