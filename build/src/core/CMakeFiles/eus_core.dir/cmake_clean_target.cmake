file(REMOVE_RECURSE
  "libeus_core.a"
)
