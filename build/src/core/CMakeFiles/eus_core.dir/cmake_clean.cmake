file(REMOVE_RECURSE
  "CMakeFiles/eus_core.dir/crowding.cpp.o"
  "CMakeFiles/eus_core.dir/crowding.cpp.o.d"
  "CMakeFiles/eus_core.dir/local_search.cpp.o"
  "CMakeFiles/eus_core.dir/local_search.cpp.o.d"
  "CMakeFiles/eus_core.dir/nondominated_sort.cpp.o"
  "CMakeFiles/eus_core.dir/nondominated_sort.cpp.o.d"
  "CMakeFiles/eus_core.dir/nsga2.cpp.o"
  "CMakeFiles/eus_core.dir/nsga2.cpp.o.d"
  "CMakeFiles/eus_core.dir/operators.cpp.o"
  "CMakeFiles/eus_core.dir/operators.cpp.o.d"
  "CMakeFiles/eus_core.dir/population_io.cpp.o"
  "CMakeFiles/eus_core.dir/population_io.cpp.o.d"
  "CMakeFiles/eus_core.dir/simulated_annealing.cpp.o"
  "CMakeFiles/eus_core.dir/simulated_annealing.cpp.o.d"
  "CMakeFiles/eus_core.dir/study.cpp.o"
  "CMakeFiles/eus_core.dir/study.cpp.o.d"
  "libeus_core.a"
  "libeus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
