
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/crowding.cpp" "src/core/CMakeFiles/eus_core.dir/crowding.cpp.o" "gcc" "src/core/CMakeFiles/eus_core.dir/crowding.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/core/CMakeFiles/eus_core.dir/local_search.cpp.o" "gcc" "src/core/CMakeFiles/eus_core.dir/local_search.cpp.o.d"
  "/root/repo/src/core/nondominated_sort.cpp" "src/core/CMakeFiles/eus_core.dir/nondominated_sort.cpp.o" "gcc" "src/core/CMakeFiles/eus_core.dir/nondominated_sort.cpp.o.d"
  "/root/repo/src/core/nsga2.cpp" "src/core/CMakeFiles/eus_core.dir/nsga2.cpp.o" "gcc" "src/core/CMakeFiles/eus_core.dir/nsga2.cpp.o.d"
  "/root/repo/src/core/operators.cpp" "src/core/CMakeFiles/eus_core.dir/operators.cpp.o" "gcc" "src/core/CMakeFiles/eus_core.dir/operators.cpp.o.d"
  "/root/repo/src/core/population_io.cpp" "src/core/CMakeFiles/eus_core.dir/population_io.cpp.o" "gcc" "src/core/CMakeFiles/eus_core.dir/population_io.cpp.o.d"
  "/root/repo/src/core/simulated_annealing.cpp" "src/core/CMakeFiles/eus_core.dir/simulated_annealing.cpp.o" "gcc" "src/core/CMakeFiles/eus_core.dir/simulated_annealing.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/eus_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/eus_core.dir/study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/eus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tuf/CMakeFiles/eus_tuf.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/eus_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/eus_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/heuristics/CMakeFiles/eus_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/eus_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/eus_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
