file(REMOVE_RECURSE
  "libeus_synth.a"
)
