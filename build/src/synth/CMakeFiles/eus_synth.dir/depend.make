# Empty dependencies file for eus_synth.
# This may be replaced when dependencies are built.
