file(REMOVE_RECURSE
  "CMakeFiles/eus_synth.dir/consistency.cpp.o"
  "CMakeFiles/eus_synth.dir/consistency.cpp.o.d"
  "CMakeFiles/eus_synth.dir/etc_generators.cpp.o"
  "CMakeFiles/eus_synth.dir/etc_generators.cpp.o.d"
  "CMakeFiles/eus_synth.dir/generator.cpp.o"
  "CMakeFiles/eus_synth.dir/generator.cpp.o.d"
  "CMakeFiles/eus_synth.dir/gram_charlier.cpp.o"
  "CMakeFiles/eus_synth.dir/gram_charlier.cpp.o.d"
  "CMakeFiles/eus_synth.dir/moments.cpp.o"
  "CMakeFiles/eus_synth.dir/moments.cpp.o.d"
  "CMakeFiles/eus_synth.dir/sampler.cpp.o"
  "CMakeFiles/eus_synth.dir/sampler.cpp.o.d"
  "libeus_synth.a"
  "libeus_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eus_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
