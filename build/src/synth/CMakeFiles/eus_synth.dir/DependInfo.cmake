
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/consistency.cpp" "src/synth/CMakeFiles/eus_synth.dir/consistency.cpp.o" "gcc" "src/synth/CMakeFiles/eus_synth.dir/consistency.cpp.o.d"
  "/root/repo/src/synth/etc_generators.cpp" "src/synth/CMakeFiles/eus_synth.dir/etc_generators.cpp.o" "gcc" "src/synth/CMakeFiles/eus_synth.dir/etc_generators.cpp.o.d"
  "/root/repo/src/synth/generator.cpp" "src/synth/CMakeFiles/eus_synth.dir/generator.cpp.o" "gcc" "src/synth/CMakeFiles/eus_synth.dir/generator.cpp.o.d"
  "/root/repo/src/synth/gram_charlier.cpp" "src/synth/CMakeFiles/eus_synth.dir/gram_charlier.cpp.o" "gcc" "src/synth/CMakeFiles/eus_synth.dir/gram_charlier.cpp.o.d"
  "/root/repo/src/synth/moments.cpp" "src/synth/CMakeFiles/eus_synth.dir/moments.cpp.o" "gcc" "src/synth/CMakeFiles/eus_synth.dir/moments.cpp.o.d"
  "/root/repo/src/synth/sampler.cpp" "src/synth/CMakeFiles/eus_synth.dir/sampler.cpp.o" "gcc" "src/synth/CMakeFiles/eus_synth.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/eus_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
