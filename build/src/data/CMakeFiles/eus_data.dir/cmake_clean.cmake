file(REMOVE_RECURSE
  "CMakeFiles/eus_data.dir/historical.cpp.o"
  "CMakeFiles/eus_data.dir/historical.cpp.o.d"
  "CMakeFiles/eus_data.dir/matrix.cpp.o"
  "CMakeFiles/eus_data.dir/matrix.cpp.o.d"
  "CMakeFiles/eus_data.dir/matrix_io.cpp.o"
  "CMakeFiles/eus_data.dir/matrix_io.cpp.o.d"
  "CMakeFiles/eus_data.dir/system.cpp.o"
  "CMakeFiles/eus_data.dir/system.cpp.o.d"
  "libeus_data.a"
  "libeus_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eus_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
