file(REMOVE_RECURSE
  "libeus_data.a"
)
