# Empty dependencies file for eus_data.
# This may be replaced when dependencies are built.
