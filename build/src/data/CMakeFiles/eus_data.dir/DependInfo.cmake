
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/historical.cpp" "src/data/CMakeFiles/eus_data.dir/historical.cpp.o" "gcc" "src/data/CMakeFiles/eus_data.dir/historical.cpp.o.d"
  "/root/repo/src/data/matrix.cpp" "src/data/CMakeFiles/eus_data.dir/matrix.cpp.o" "gcc" "src/data/CMakeFiles/eus_data.dir/matrix.cpp.o.d"
  "/root/repo/src/data/matrix_io.cpp" "src/data/CMakeFiles/eus_data.dir/matrix_io.cpp.o" "gcc" "src/data/CMakeFiles/eus_data.dir/matrix_io.cpp.o.d"
  "/root/repo/src/data/system.cpp" "src/data/CMakeFiles/eus_data.dir/system.cpp.o" "gcc" "src/data/CMakeFiles/eus_data.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
