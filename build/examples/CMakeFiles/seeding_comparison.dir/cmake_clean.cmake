file(REMOVE_RECURSE
  "CMakeFiles/seeding_comparison.dir/seeding_comparison.cpp.o"
  "CMakeFiles/seeding_comparison.dir/seeding_comparison.cpp.o.d"
  "seeding_comparison"
  "seeding_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seeding_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
