# Empty compiler generated dependencies file for custom_data_cli.
# This may be replaced when dependencies are built.
