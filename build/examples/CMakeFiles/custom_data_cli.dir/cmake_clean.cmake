file(REMOVE_RECURSE
  "CMakeFiles/custom_data_cli.dir/custom_data_cli.cpp.o"
  "CMakeFiles/custom_data_cli.dir/custom_data_cli.cpp.o.d"
  "custom_data_cli"
  "custom_data_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_data_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
