# Empty compiler generated dependencies file for synthetic_scaling.
# This may be replaced when dependencies are built.
