file(REMOVE_RECURSE
  "CMakeFiles/admin_tradeoff.dir/admin_tradeoff.cpp.o"
  "CMakeFiles/admin_tradeoff.dir/admin_tradeoff.cpp.o.d"
  "admin_tradeoff"
  "admin_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
