# Empty compiler generated dependencies file for admin_tradeoff.
# This may be replaced when dependencies are built.
