# Empty compiler generated dependencies file for test_seeds.
# This may be replaced when dependencies are built.
