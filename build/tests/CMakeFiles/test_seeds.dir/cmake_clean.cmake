file(REMOVE_RECURSE
  "CMakeFiles/test_seeds.dir/test_seeds.cpp.o"
  "CMakeFiles/test_seeds.dir/test_seeds.cpp.o.d"
  "test_seeds"
  "test_seeds.pdb"
  "test_seeds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
