# Empty dependencies file for test_crowding.
# This may be replaced when dependencies are built.
