file(REMOVE_RECURSE
  "CMakeFiles/test_crowding.dir/test_crowding.cpp.o"
  "CMakeFiles/test_crowding.dir/test_crowding.cpp.o.d"
  "test_crowding"
  "test_crowding.pdb"
  "test_crowding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crowding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
