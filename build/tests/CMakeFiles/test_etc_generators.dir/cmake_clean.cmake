file(REMOVE_RECURSE
  "CMakeFiles/test_etc_generators.dir/test_etc_generators.cpp.o"
  "CMakeFiles/test_etc_generators.dir/test_etc_generators.cpp.o.d"
  "test_etc_generators"
  "test_etc_generators.pdb"
  "test_etc_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_etc_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
