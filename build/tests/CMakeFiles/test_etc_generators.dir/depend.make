# Empty dependencies file for test_etc_generators.
# This may be replaced when dependencies are built.
