# Empty dependencies file for test_historical.
# This may be replaced when dependencies are built.
