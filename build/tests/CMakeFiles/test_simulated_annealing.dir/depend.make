# Empty dependencies file for test_simulated_annealing.
# This may be replaced when dependencies are built.
