file(REMOVE_RECURSE
  "CMakeFiles/test_simulated_annealing.dir/test_simulated_annealing.cpp.o"
  "CMakeFiles/test_simulated_annealing.dir/test_simulated_annealing.cpp.o.d"
  "test_simulated_annealing"
  "test_simulated_annealing.pdb"
  "test_simulated_annealing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulated_annealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
