
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_simulated_annealing.cpp" "tests/CMakeFiles/test_simulated_annealing.dir/test_simulated_annealing.cpp.o" "gcc" "tests/CMakeFiles/test_simulated_annealing.dir/test_simulated_annealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/eus_des.dir/DependInfo.cmake"
  "/root/repo/build/src/online/CMakeFiles/eus_online.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/heuristics/CMakeFiles/eus_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/eus_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/eus_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tuf/CMakeFiles/eus_tuf.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/eus_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/eus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/eus_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
