file(REMOVE_RECURSE
  "CMakeFiles/test_pareto_front.dir/test_pareto_front.cpp.o"
  "CMakeFiles/test_pareto_front.dir/test_pareto_front.cpp.o.d"
  "test_pareto_front"
  "test_pareto_front.pdb"
  "test_pareto_front[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pareto_front.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
