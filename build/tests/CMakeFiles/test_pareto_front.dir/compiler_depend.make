# Empty compiler generated dependencies file for test_pareto_front.
# This may be replaced when dependencies are built.
