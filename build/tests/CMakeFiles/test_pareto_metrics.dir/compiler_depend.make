# Empty compiler generated dependencies file for test_pareto_metrics.
# This may be replaced when dependencies are built.
