file(REMOVE_RECURSE
  "CMakeFiles/test_pareto_metrics.dir/test_pareto_metrics.cpp.o"
  "CMakeFiles/test_pareto_metrics.dir/test_pareto_metrics.cpp.o.d"
  "test_pareto_metrics"
  "test_pareto_metrics.pdb"
  "test_pareto_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pareto_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
