# Empty dependencies file for test_braun.
# This may be replaced when dependencies are built.
