file(REMOVE_RECURSE
  "CMakeFiles/test_braun.dir/test_braun.cpp.o"
  "CMakeFiles/test_braun.dir/test_braun.cpp.o.d"
  "test_braun"
  "test_braun.pdb"
  "test_braun[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_braun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
