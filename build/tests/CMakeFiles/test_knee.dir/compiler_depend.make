# Empty compiler generated dependencies file for test_knee.
# This may be replaced when dependencies are built.
