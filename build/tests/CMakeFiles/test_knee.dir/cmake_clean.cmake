file(REMOVE_RECURSE
  "CMakeFiles/test_knee.dir/test_knee.cpp.o"
  "CMakeFiles/test_knee.dir/test_knee.cpp.o.d"
  "test_knee"
  "test_knee.pdb"
  "test_knee[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
