file(REMOVE_RECURSE
  "CMakeFiles/test_allocation_io.dir/test_allocation_io.cpp.o"
  "CMakeFiles/test_allocation_io.dir/test_allocation_io.cpp.o.d"
  "test_allocation_io"
  "test_allocation_io.pdb"
  "test_allocation_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allocation_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
