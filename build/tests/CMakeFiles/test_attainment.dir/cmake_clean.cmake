file(REMOVE_RECURSE
  "CMakeFiles/test_attainment.dir/test_attainment.cpp.o"
  "CMakeFiles/test_attainment.dir/test_attainment.cpp.o.d"
  "test_attainment"
  "test_attainment.pdb"
  "test_attainment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attainment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
