# Empty dependencies file for test_attainment.
# This may be replaced when dependencies are built.
