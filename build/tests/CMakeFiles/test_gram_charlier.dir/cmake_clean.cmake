file(REMOVE_RECURSE
  "CMakeFiles/test_gram_charlier.dir/test_gram_charlier.cpp.o"
  "CMakeFiles/test_gram_charlier.dir/test_gram_charlier.cpp.o.d"
  "test_gram_charlier"
  "test_gram_charlier.pdb"
  "test_gram_charlier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gram_charlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
