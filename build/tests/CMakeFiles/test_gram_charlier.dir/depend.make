# Empty dependencies file for test_gram_charlier.
# This may be replaced when dependencies are built.
