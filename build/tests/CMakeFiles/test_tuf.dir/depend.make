# Empty dependencies file for test_tuf.
# This may be replaced when dependencies are built.
