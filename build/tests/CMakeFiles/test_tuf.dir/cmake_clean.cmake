file(REMOVE_RECURSE
  "CMakeFiles/test_tuf.dir/test_tuf.cpp.o"
  "CMakeFiles/test_tuf.dir/test_tuf.cpp.o.d"
  "test_tuf"
  "test_tuf.pdb"
  "test_tuf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
