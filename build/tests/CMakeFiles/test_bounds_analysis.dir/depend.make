# Empty dependencies file for test_bounds_analysis.
# This may be replaced when dependencies are built.
