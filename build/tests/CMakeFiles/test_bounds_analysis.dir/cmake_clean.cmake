file(REMOVE_RECURSE
  "CMakeFiles/test_bounds_analysis.dir/test_bounds_analysis.cpp.o"
  "CMakeFiles/test_bounds_analysis.dir/test_bounds_analysis.cpp.o.d"
  "test_bounds_analysis"
  "test_bounds_analysis.pdb"
  "test_bounds_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bounds_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
