file(REMOVE_RECURSE
  "CMakeFiles/test_nondominated_sort.dir/test_nondominated_sort.cpp.o"
  "CMakeFiles/test_nondominated_sort.dir/test_nondominated_sort.cpp.o.d"
  "test_nondominated_sort"
  "test_nondominated_sort.pdb"
  "test_nondominated_sort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nondominated_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
