# Empty dependencies file for test_nondominated_sort.
# This may be replaced when dependencies are built.
