file(REMOVE_RECURSE
  "CMakeFiles/test_tuf_classes.dir/test_tuf_classes.cpp.o"
  "CMakeFiles/test_tuf_classes.dir/test_tuf_classes.cpp.o.d"
  "test_tuf_classes"
  "test_tuf_classes.pdb"
  "test_tuf_classes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuf_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
