# Empty dependencies file for test_tuf_classes.
# This may be replaced when dependencies are built.
