# Empty compiler generated dependencies file for bench_heterogeneity_classes.
# This may be replaced when dependencies are built.
