file(REMOVE_RECURSE
  "../bench/bench_heterogeneity_classes"
  "../bench/bench_heterogeneity_classes.pdb"
  "CMakeFiles/bench_heterogeneity_classes.dir/bench_heterogeneity_classes.cpp.o"
  "CMakeFiles/bench_heterogeneity_classes.dir/bench_heterogeneity_classes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heterogeneity_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
