file(REMOVE_RECURSE
  "../bench/bench_baseline_makespan"
  "../bench/bench_baseline_makespan.pdb"
  "CMakeFiles/bench_baseline_makespan.dir/bench_baseline_makespan.cpp.o"
  "CMakeFiles/bench_baseline_makespan.dir/bench_baseline_makespan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
