# Empty dependencies file for bench_fig6_dataset3.
# This may be replaced when dependencies are built.
