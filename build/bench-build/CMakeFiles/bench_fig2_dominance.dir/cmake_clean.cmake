file(REMOVE_RECURSE
  "../bench/bench_fig2_dominance"
  "../bench/bench_fig2_dominance.pdb"
  "CMakeFiles/bench_fig2_dominance.dir/bench_fig2_dominance.cpp.o"
  "CMakeFiles/bench_fig2_dominance.dir/bench_fig2_dominance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_dominance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
