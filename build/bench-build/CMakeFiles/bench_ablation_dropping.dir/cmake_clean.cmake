file(REMOVE_RECURSE
  "../bench/bench_ablation_dropping"
  "../bench/bench_ablation_dropping.pdb"
  "CMakeFiles/bench_ablation_dropping.dir/bench_ablation_dropping.cpp.o"
  "CMakeFiles/bench_ablation_dropping.dir/bench_ablation_dropping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dropping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
