file(REMOVE_RECURSE
  "../bench/bench_fig1_tuf"
  "../bench/bench_fig1_tuf.pdb"
  "CMakeFiles/bench_fig1_tuf.dir/bench_fig1_tuf.cpp.o"
  "CMakeFiles/bench_fig1_tuf.dir/bench_fig1_tuf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_tuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
