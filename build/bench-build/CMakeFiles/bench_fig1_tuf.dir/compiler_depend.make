# Empty compiler generated dependencies file for bench_fig1_tuf.
# This may be replaced when dependencies are built.
