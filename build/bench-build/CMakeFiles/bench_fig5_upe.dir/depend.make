# Empty dependencies file for bench_fig5_upe.
# This may be replaced when dependencies are built.
