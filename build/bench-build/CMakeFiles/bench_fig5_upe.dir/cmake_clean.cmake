file(REMOVE_RECURSE
  "../bench/bench_fig5_upe"
  "../bench/bench_fig5_upe.pdb"
  "CMakeFiles/bench_fig5_upe.dir/bench_fig5_upe.cpp.o"
  "CMakeFiles/bench_fig5_upe.dir/bench_fig5_upe.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_upe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
