file(REMOVE_RECURSE
  "../bench/bench_fig4_dataset2"
  "../bench/bench_fig4_dataset2.pdb"
  "CMakeFiles/bench_fig4_dataset2.dir/bench_fig4_dataset2.cpp.o"
  "CMakeFiles/bench_fig4_dataset2.dir/bench_fig4_dataset2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_dataset2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
