file(REMOVE_RECURSE
  "../bench/bench_stats_robustness"
  "../bench/bench_stats_robustness.pdb"
  "CMakeFiles/bench_stats_robustness.dir/bench_stats_robustness.cpp.o"
  "CMakeFiles/bench_stats_robustness.dir/bench_stats_robustness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stats_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
