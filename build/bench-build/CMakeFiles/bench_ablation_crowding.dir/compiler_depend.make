# Empty compiler generated dependencies file for bench_ablation_crowding.
# This may be replaced when dependencies are built.
