file(REMOVE_RECURSE
  "../bench/bench_ablation_crowding"
  "../bench/bench_ablation_crowding.pdb"
  "CMakeFiles/bench_ablation_crowding.dir/bench_ablation_crowding.cpp.o"
  "CMakeFiles/bench_ablation_crowding.dir/bench_ablation_crowding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_crowding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
