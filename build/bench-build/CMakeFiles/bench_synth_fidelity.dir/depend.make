# Empty dependencies file for bench_synth_fidelity.
# This may be replaced when dependencies are built.
