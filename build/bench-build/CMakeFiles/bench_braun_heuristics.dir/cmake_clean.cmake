file(REMOVE_RECURSE
  "../bench/bench_braun_heuristics"
  "../bench/bench_braun_heuristics.pdb"
  "CMakeFiles/bench_braun_heuristics.dir/bench_braun_heuristics.cpp.o"
  "CMakeFiles/bench_braun_heuristics.dir/bench_braun_heuristics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_braun_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
