# Empty dependencies file for bench_braun_heuristics.
# This may be replaced when dependencies are built.
