file(REMOVE_RECURSE
  "../bench/bench_table1_table2_data"
  "../bench/bench_table1_table2_data.pdb"
  "CMakeFiles/bench_table1_table2_data.dir/bench_table1_table2_data.cpp.o"
  "CMakeFiles/bench_table1_table2_data.dir/bench_table1_table2_data.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_table2_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
