file(REMOVE_RECURSE
  "../bench/bench_table3_machines"
  "../bench/bench_table3_machines.pdb"
  "CMakeFiles/bench_table3_machines.dir/bench_table3_machines.cpp.o"
  "CMakeFiles/bench_table3_machines.dir/bench_table3_machines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
