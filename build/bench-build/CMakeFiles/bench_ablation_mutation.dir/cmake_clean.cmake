file(REMOVE_RECURSE
  "../bench/bench_ablation_mutation"
  "../bench/bench_ablation_mutation.pdb"
  "CMakeFiles/bench_ablation_mutation.dir/bench_ablation_mutation.cpp.o"
  "CMakeFiles/bench_ablation_mutation.dir/bench_ablation_mutation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
