# Empty compiler generated dependencies file for bench_ablation_mutation.
# This may be replaced when dependencies are built.
