file(REMOVE_RECURSE
  "../bench/bench_ablation_arrivals"
  "../bench/bench_ablation_arrivals.pdb"
  "CMakeFiles/bench_ablation_arrivals.dir/bench_ablation_arrivals.cpp.o"
  "CMakeFiles/bench_ablation_arrivals.dir/bench_ablation_arrivals.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
