file(REMOVE_RECURSE
  "../bench/bench_ablation_selection"
  "../bench/bench_ablation_selection.pdb"
  "CMakeFiles/bench_ablation_selection.dir/bench_ablation_selection.cpp.o"
  "CMakeFiles/bench_ablation_selection.dir/bench_ablation_selection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
