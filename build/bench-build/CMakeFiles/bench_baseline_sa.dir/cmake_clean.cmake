file(REMOVE_RECURSE
  "../bench/bench_baseline_sa"
  "../bench/bench_baseline_sa.pdb"
  "CMakeFiles/bench_baseline_sa.dir/bench_baseline_sa.cpp.o"
  "CMakeFiles/bench_baseline_sa.dir/bench_baseline_sa.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
