file(REMOVE_RECURSE
  "../bench/bench_online_policies"
  "../bench/bench_online_policies.pdb"
  "CMakeFiles/bench_online_policies.dir/bench_online_policies.cpp.o"
  "CMakeFiles/bench_online_policies.dir/bench_online_policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
