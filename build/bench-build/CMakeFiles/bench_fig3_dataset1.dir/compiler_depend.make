# Empty compiler generated dependencies file for bench_fig3_dataset1.
# This may be replaced when dependencies are built.
