file(REMOVE_RECURSE
  "../bench/bench_fig3_dataset1"
  "../bench/bench_fig3_dataset1.pdb"
  "CMakeFiles/bench_fig3_dataset1.dir/bench_fig3_dataset1.cpp.o"
  "CMakeFiles/bench_fig3_dataset1.dir/bench_fig3_dataset1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_dataset1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
