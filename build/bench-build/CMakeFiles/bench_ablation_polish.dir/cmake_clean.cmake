file(REMOVE_RECURSE
  "../bench/bench_ablation_polish"
  "../bench/bench_ablation_polish.pdb"
  "CMakeFiles/bench_ablation_polish.dir/bench_ablation_polish.cpp.o"
  "CMakeFiles/bench_ablation_polish.dir/bench_ablation_polish.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_polish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
