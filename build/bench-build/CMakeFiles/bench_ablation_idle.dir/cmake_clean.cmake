file(REMOVE_RECURSE
  "../bench/bench_ablation_idle"
  "../bench/bench_ablation_idle.pdb"
  "CMakeFiles/bench_ablation_idle.dir/bench_ablation_idle.cpp.o"
  "CMakeFiles/bench_ablation_idle.dir/bench_ablation_idle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
