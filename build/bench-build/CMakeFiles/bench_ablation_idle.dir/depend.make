# Empty dependencies file for bench_ablation_idle.
# This may be replaced when dependencies are built.
