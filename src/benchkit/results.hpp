#pragma once

// The BENCH_results.json model: what one eus_bench invocation measured.
//
// Schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "git_sha": "<40 hex or 'unknown'>",
//     "machine": {"host": "...", "hardware_threads": N},
//     "config": {"scale": .., "seed": .., "threads": ..,
//                "warmup": .., "repetitions": ..},
//     "scenarios": {
//       "<name>": {
//         "exit_code": 0,
//         "wall_s": {"samples": [..], "min": .., "max": .., "mean": ..,
//                    "median": .., "mad": ..},
//         "counters": {"nsga2.evaluations": .., "cache.hits": .., ...},
//         "timers_s": {"nsga2.evaluation_s": .., ...}
//       }, ...
//     }
//   }
//
// Counters/timers are per-repetition deltas of the scenario's
// MetricsRegistry, reduced to the median across measured repetitions.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "benchkit/json_value.hpp"

#include "benchkit/stats.hpp"

namespace eus::benchkit {

struct ScenarioResult {
  std::string name;
  int exit_code = 0;
  std::vector<double> wall_s;  ///< one sample per measured repetition
  std::map<std::string, double> counters;  ///< median per-rep delta
  std::map<std::string, double> timers_s;  ///< median per-rep seconds

  [[nodiscard]] Aggregate wall() const { return aggregate(wall_s); }

  /// Flat metric lookup for baseline gating: "wall_s" (the median),
  /// "counter.<name>" or "timer.<name>".  std::nullopt when unknown.
  [[nodiscard]] std::optional<double> metric(const std::string& id) const;
};

struct MachineInfo {
  std::string host;
  unsigned hardware_threads = 0;
};

struct RunConfig {
  double scale = 1.0;          ///< resolved EUS_SCALE
  std::uint64_t seed = 0;      ///< resolved EUS_SEED
  std::size_t threads = 0;     ///< resolved EUS_THREADS (0 = all cores)
  std::size_t warmup = 0;
  std::size_t repetitions = 1;
};

struct BenchResults {
  int schema_version = 1;
  std::string git_sha = "unknown";
  MachineInfo machine;
  RunConfig config;
  std::vector<ScenarioResult> scenarios;

  [[nodiscard]] const ScenarioResult* find(const std::string& name) const;
};

/// Serializes to the schema above (stable key order; scenarios sorted).
[[nodiscard]] std::string to_json(const BenchResults& results);

/// Parses a document produced by to_json().  Throws std::runtime_error on
/// schema violations (wrong schema_version, missing scenarios table).
[[nodiscard]] BenchResults results_from_json(const JsonValue& doc);

/// Hostname + hardware thread count of this process's machine.
[[nodiscard]] MachineInfo local_machine();

/// Commit id for the results header: $GITHUB_SHA, then $EUS_GIT_SHA, then
/// "unknown" — the harness never shells out.
[[nodiscard]] std::string discover_git_sha();

}  // namespace eus::benchkit
