#pragma once

// The measurement loop shared by tools/eus_bench and the tests: run one
// scenario with warmup + repeated timed repetitions, snapshotting its
// MetricsRegistry around each repetition so counter/timer deltas become
// secondary metrics next to the wall-clock samples.

#include <cstddef>
#include <iosfwd>

#include "benchkit/registry.hpp"
#include "benchkit/results.hpp"

namespace eus::benchkit {

struct RunOptions {
  std::size_t warmup = 1;
  std::size_t repetitions = 3;
  /// Swallow the scenario's stdout during runs (scenarios print ASCII
  /// plots and CSV blocks; the harness only wants their side effects).
  bool quiet = true;
};

/// Runs `scenario` under `options` and returns its measured result.  The
/// scenario sees a fresh MetricsRegistry that lives for all repetitions;
/// a nonzero scenario return lands in ScenarioResult::exit_code and stops
/// further repetitions.
[[nodiscard]] ScenarioResult run_scenario(const Scenario& scenario,
                                          const RunOptions& options);

}  // namespace eus::benchkit
