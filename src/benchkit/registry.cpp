#include "benchkit/registry.hpp"

#include <algorithm>
#include <regex>

namespace eus::benchkit {

bool ScenarioRegistry::add(std::string name, std::string description,
                           ScenarioFn fn) {
  if (fn == nullptr || name.empty() || find(name) != nullptr) return false;
  scenarios_.push_back({std::move(name), std::move(description), fn});
  return true;
}

std::vector<const Scenario*> ScenarioRegistry::all() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const Scenario& s : scenarios_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const Scenario* a, const Scenario* b) {
              return a->name < b->name;
            });
  return out;
}

std::vector<const Scenario*> ScenarioRegistry::matching(
    const std::string& pattern) const {
  const std::regex re(pattern);
  std::vector<const Scenario*> out;
  for (const Scenario* s : all()) {
    if (std::regex_search(s->name, re)) out.push_back(s);
  }
  return out;
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry registry;
  return registry;
}

bool register_scenario(std::string name, std::string description,
                       ScenarioFn fn) {
  return ScenarioRegistry::global().add(std::move(name),
                                        std::move(description), fn);
}

}  // namespace eus::benchkit
