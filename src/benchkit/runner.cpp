#include "benchkit/runner.hpp"

#include <iostream>
#include <map>
#include <streambuf>
#include <string>
#include <vector>

#include "benchkit/stats.hpp"
#include "telemetry/metrics.hpp"
#include "util/stopwatch.hpp"

namespace eus::benchkit {

namespace {

/// Discards everything written to it.
class NullBuf final : public std::streambuf {
 protected:
  int overflow(int c) override { return traits_type::not_eof(c); }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

/// RAII stdout silencer (scoped so an exception cannot leave std::cout
/// pointing at a dead buffer).
class ScopedQuietStdout {
 public:
  explicit ScopedQuietStdout(bool active) {
    if (active) saved_ = std::cout.rdbuf(&null_buf_);
  }
  ~ScopedQuietStdout() {
    if (saved_ != nullptr) std::cout.rdbuf(saved_);
  }
  ScopedQuietStdout(const ScopedQuietStdout&) = delete;
  ScopedQuietStdout& operator=(const ScopedQuietStdout&) = delete;

 private:
  NullBuf null_buf_;
  std::streambuf* saved_ = nullptr;
};

/// Median across repetitions for every metric name seen in any repetition
/// (absent repetitions count as zero so a flaky metric cannot vanish).
std::map<std::string, double> median_per_name(
    const std::vector<std::map<std::string, double>>& reps) {
  std::map<std::string, std::vector<double>> by_name;
  for (const auto& rep : reps) {
    for (const auto& entry : rep) by_name[entry.first];  // collect names
  }
  for (auto& [name, samples] : by_name) {
    for (const auto& rep : reps) {
      const auto it = rep.find(name);
      samples.push_back(it == rep.end() ? 0.0 : it->second);
    }
  }
  std::map<std::string, double> out;
  for (auto& [name, samples] : by_name) {
    out[name] = median(std::move(samples));
  }
  return out;
}

}  // namespace

ScenarioResult run_scenario(const Scenario& scenario,
                            const RunOptions& options) {
  ScenarioResult result;
  result.name = scenario.name;

  MetricsRegistry metrics;
  ScenarioContext ctx{&metrics};

  const auto run_once = [&]() -> int {
    const ScopedQuietStdout quiet(options.quiet);
    return scenario.fn(ctx);
  };

  for (std::size_t i = 0; i < options.warmup; ++i) {
    result.exit_code = run_once();
    if (result.exit_code != 0) return result;
  }

  std::vector<std::map<std::string, double>> counter_reps;
  std::vector<std::map<std::string, double>> timer_reps;
  const std::size_t repetitions = options.repetitions == 0
                                      ? std::size_t{1}
                                      : options.repetitions;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    const MetricsSnapshot before = metrics.snapshot();
    Stopwatch timer;
    result.exit_code = run_once();
    result.wall_s.push_back(timer.seconds());
    const MetricsSnapshot after = metrics.snapshot();
    if (result.exit_code != 0) return result;

    const MetricsSnapshot delta = snapshot_delta(before, after);
    std::map<std::string, double> counters;
    for (const auto& [name, value] : delta.counters) {
      counters[name] = static_cast<double>(value);
    }
    counter_reps.push_back(std::move(counters));
    std::map<std::string, double> timers;
    for (const auto& [name, stat] : delta.timers) {
      timers[name] = stat.seconds;
    }
    timer_reps.push_back(std::move(timers));
  }

  result.counters = median_per_name(counter_reps);
  result.timers_s = median_per_name(timer_reps);
  return result;
}

}  // namespace eus::benchkit
