#pragma once

// benchkit: the registry half of the unified benchmark harness behind
// tools/eus_bench.  Each bench/bench_*.cpp defines one scenario with the
// EUS_BENCHMARK macro; a static registrar adds it to the process-wide
// table, and the runner lists/filters/runs them with shared warmup,
// repetition, timing and metrics-snapshot machinery (runner.hpp).

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace eus {
class MetricsRegistry;
}

namespace eus::benchkit {

/// Per-run services the harness hands to a scenario body.  `metrics` is a
/// registry owned by the runner (fresh per scenario, shared across that
/// scenario's repetitions); counters and timers a scenario routes through
/// it are snapshotted around every repetition and land in
/// BENCH_results.json as secondary metrics.  Standalone callers may leave
/// it null — scenario code must tolerate that.
struct ScenarioContext {
  MetricsRegistry* metrics = nullptr;
};

/// A scenario body: returns 0 on success; nonzero marks the run failed.
using ScenarioFn = int (*)(ScenarioContext&);

struct Scenario {
  std::string name;
  std::string description;
  ScenarioFn fn = nullptr;
};

/// Name -> scenario table.  The global() instance is populated by
/// EUS_BENCHMARK static registrars before main(); tests build their own.
class ScenarioRegistry {
 public:
  /// Registers a scenario; a duplicate name is rejected (returns false and
  /// keeps the first registration).
  bool add(std::string name, std::string description, ScenarioFn fn);

  /// Every scenario, sorted by name (registration order is link order,
  /// which carries no meaning).
  [[nodiscard]] std::vector<const Scenario*> all() const;

  /// Scenarios whose name matches `pattern` anywhere (ECMAScript regex,
  /// grep-style partial match), sorted by name.  Throws std::regex_error
  /// on a malformed pattern.
  [[nodiscard]] std::vector<const Scenario*> matching(
      const std::string& pattern) const;

  [[nodiscard]] const Scenario* find(std::string_view name) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return scenarios_.size();
  }

  /// The process-wide registry EUS_BENCHMARK registers into.
  static ScenarioRegistry& global();

 private:
  std::vector<Scenario> scenarios_;
};

/// EUS_BENCHMARK's hook into global(); returns the add() result so it can
/// seed a static initializer.
bool register_scenario(std::string name, std::string description,
                       ScenarioFn fn);

}  // namespace eus::benchkit

/// Defines and registers one benchmark scenario:
///
///   EUS_BENCHMARK(fig3_dataset1, "Figure 3 fronts on dataset 1") {
///     ...        // body; `ctx` is the ScenarioContext&
///     return 0;
///   }
#define EUS_BENCHMARK(name, description)                                  \
  static int eus_benchmark_##name(::eus::benchkit::ScenarioContext&);     \
  [[maybe_unused]] static const bool eus_benchmark_registered_##name =    \
      ::eus::benchkit::register_scenario(#name, description,              \
                                         &eus_benchmark_##name);          \
  static int eus_benchmark_##name(                                        \
      [[maybe_unused]] ::eus::benchkit::ScenarioContext& ctx)
