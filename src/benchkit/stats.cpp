#include "benchkit/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace eus::benchkit {

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

Aggregate aggregate(const std::vector<double>& samples) {
  Aggregate a;
  if (samples.empty()) return a;
  a.count = samples.size();
  const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
  a.min = *lo;
  a.max = *hi;
  a.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  a.median = median(samples);
  std::vector<double> deviations;
  deviations.reserve(samples.size());
  for (const double s : samples) deviations.push_back(std::fabs(s - a.median));
  a.mad = median(std::move(deviations));
  return a;
}

}  // namespace eus::benchkit
