#pragma once

// Robust aggregates for repeated wall-clock measurements.  CI runners are
// noisy; the harness gates on the median and reports the MAD so one
// descheduled repetition cannot fake a regression.

#include <cstddef>
#include <vector>

namespace eus::benchkit {

/// Summary of a sample set.  `mad` is the raw median absolute deviation
/// (no 1.4826 normal-consistency factor).
struct Aggregate {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double mad = 0.0;
};

/// Median of `values` (by copy; the even case averages the middle pair).
/// Returns 0.0 for an empty sample.
[[nodiscard]] double median(std::vector<double> values);

/// Full summary; all fields zero for an empty sample.
[[nodiscard]] Aggregate aggregate(const std::vector<double>& samples);

}  // namespace eus::benchkit
