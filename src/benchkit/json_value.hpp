#pragma once

// Compatibility alias: the JSON reader was promoted to util/json_value.hpp
// so the serve protocol and the bench harness share one implementation.
// Existing benchkit callers keep compiling; new code should include the
// util header directly.

#include "util/json_value.hpp"

namespace eus::benchkit {

using JsonParseError = util::JsonParseError;
using JsonValue = util::JsonValue;
using util::parse_json;
using util::parse_json_file;

}  // namespace eus::benchkit
