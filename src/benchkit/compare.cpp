#include "benchkit/compare.hpp"

#include <cmath>
#include <stdexcept>

#include "benchkit/json_value.hpp"
#include "benchkit/results.hpp"
#include "telemetry/json.hpp"

namespace eus::benchkit {

Baselines baselines_from_json(const JsonValue& doc) {
  if (!doc.is_object()) throw std::runtime_error("baselines: not an object");
  Baselines b;
  b.schema_version = static_cast<int>(doc.number_or("schema_version", 0));
  if (b.schema_version != 1) {
    throw std::runtime_error("baselines: unsupported schema_version " +
                             std::to_string(b.schema_version));
  }
  b.machine = doc.string_or("machine", "");
  const JsonValue* scenarios = doc.get("scenarios");
  if (scenarios == nullptr || !scenarios->is_object()) {
    throw std::runtime_error("baselines: missing scenarios table");
  }
  for (const auto& [scenario, metrics] : scenarios->object) {
    if (!metrics.is_object()) {
      throw std::runtime_error("baselines: scenario '" + scenario +
                               "' is not an object");
    }
    for (const auto& [metric, entry] : metrics.object) {
      const JsonValue* value = entry.get("value");
      if (value == nullptr || !value->is_number()) {
        throw std::runtime_error("baselines: metric '" + scenario + "." +
                                 metric + "' has no numeric value");
      }
      BaselineMetric bm;
      bm.value = value->number;
      if (const JsonValue* tol = entry.get("tolerance_pct");
          tol != nullptr && tol->is_number()) {
        bm.tolerance_pct = tol->number;
      }
      b.scenarios[scenario][metric] = bm;
    }
  }
  return b;
}

std::string to_json(const Baselines& baselines) {
  JsonObject scenarios;
  for (const auto& [scenario, metrics] : baselines.scenarios) {
    JsonObject metrics_obj;
    for (const auto& [metric, entry] : metrics) {
      JsonObject m;
      m.field("value", entry.value);
      if (entry.tolerance_pct) m.field("tolerance_pct", *entry.tolerance_pct);
      metrics_obj.raw(metric, m.str());
    }
    scenarios.raw(scenario, metrics_obj.str());
  }
  JsonObject doc;
  doc.field("schema_version",
            static_cast<std::int64_t>(baselines.schema_version))
      .field("machine", baselines.machine)
      .raw("scenarios", scenarios.str());
  return doc.str();
}

Baselines update_baselines(const Baselines& existing,
                           const BenchResults& results) {
  Baselines updated = existing;
  updated.schema_version = 1;
  if (!results.machine.host.empty()) updated.machine = results.machine.host;
  for (const ScenarioResult& s : results.scenarios) {
    auto& metrics = updated.scenarios[s.name];
    // Refresh every metric already tracked for this scenario, keeping its
    // explicit tolerance; drop it only if the run can no longer produce it.
    for (auto& [metric, entry] : metrics) {
      if (const auto measured = s.metric(metric)) entry.value = *measured;
    }
    if (const auto wall = s.metric("wall_s")) {
      metrics["wall_s"].value = *wall;
    }
  }
  return updated;
}

CompareReport compare(const BenchResults& results, const Baselines& baselines,
                      double default_tolerance_pct) {
  CompareReport report;
  for (const auto& [scenario, metrics] : baselines.scenarios) {
    const ScenarioResult* measured = results.find(scenario);
    if (measured == nullptr) {
      CompareEntry e;
      e.scenario = scenario;
      e.status = CompareStatus::kNotMeasured;
      report.entries.push_back(std::move(e));
      continue;
    }
    for (const auto& [metric, baseline] : metrics) {
      CompareEntry e;
      e.scenario = scenario;
      e.metric = metric;
      e.baseline = baseline.value;
      e.tolerance_pct = baseline.tolerance_pct.value_or(default_tolerance_pct);
      const auto value = measured->metric(metric);
      if (!value) {
        e.status = CompareStatus::kMissingMetric;
        report.entries.push_back(std::move(e));
        continue;
      }
      e.measured = *value;
      if (baseline.value > 0.0) {
        e.delta_pct = (e.measured - e.baseline) / e.baseline * 100.0;
      } else {
        // A zero baseline has no meaningful relative delta: any positive
        // measurement is reported as a full-band excursion.
        e.delta_pct = e.measured > 0.0 ? 100.0 + e.tolerance_pct : 0.0;
      }
      if (e.delta_pct > e.tolerance_pct) {
        e.status = CompareStatus::kRegression;
      } else if (e.delta_pct < -e.tolerance_pct) {
        e.status = CompareStatus::kImproved;
      } else {
        e.status = CompareStatus::kOk;
      }
      report.entries.push_back(std::move(e));
    }
  }
  for (const ScenarioResult& s : results.scenarios) {
    if (baselines.scenarios.find(s.name) == baselines.scenarios.end()) {
      CompareEntry e;
      e.scenario = s.name;
      e.status = CompareStatus::kNoBaseline;
      report.entries.push_back(std::move(e));
    }
  }
  return report;
}

std::size_t CompareReport::failures() const {
  std::size_t n = 0;
  for (const CompareEntry& e : entries) {
    if (e.status == CompareStatus::kRegression ||
        e.status == CompareStatus::kMissingMetric) {
      ++n;
    }
  }
  return n;
}

const char* to_string(CompareStatus status) {
  switch (status) {
    case CompareStatus::kOk:
      return "ok";
    case CompareStatus::kImproved:
      return "improved";
    case CompareStatus::kRegression:
      return "REGRESSION";
    case CompareStatus::kMissingMetric:
      return "MISSING METRIC";
    case CompareStatus::kNotMeasured:
      return "not measured";
    case CompareStatus::kNoBaseline:
      return "no baseline";
  }
  return "unknown";
}

}  // namespace eus::benchkit
