#pragma once

// Baseline regression gating: diff a BenchResults against the committed
// bench/baselines.json and decide pass/fail per metric.
//
// Baselines schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "machine": "<host the values were recorded on — informational>",
//     "scenarios": {
//       "<name>": {
//         "wall_s": {"value": 0.42},
//         "counter.nsga2.evaluations": {"value": 5500, "tolerance_pct": 0}
//       }, ...
//     }
//   }
//
// Every metric is higher-is-worse (wall seconds, event counts).  A metric
// regresses when measured > value * (1 + tolerance/100); the tolerance is
// the metric's own "tolerance_pct" when present, else the runner's
// --tolerance-pct.  Baseline scenarios missing from a (filtered) run are
// skipped; measured scenarios without a baseline are reported but never
// fail — run --update-baselines to adopt them.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "benchkit/json_value.hpp"

namespace eus::benchkit {
struct BenchResults;

struct BaselineMetric {
  double value = 0.0;
  std::optional<double> tolerance_pct;  ///< overrides the runner default
};

struct Baselines {
  int schema_version = 1;
  std::string machine;  ///< host that recorded the values (informational)
  /// scenario name -> metric id -> baseline.
  std::map<std::string, std::map<std::string, BaselineMetric>> scenarios;
};

/// Parses the schema above; throws std::runtime_error on violations.
[[nodiscard]] Baselines baselines_from_json(const JsonValue& doc);

[[nodiscard]] std::string to_json(const Baselines& baselines);

/// Merges a run into a baseline set: every measured scenario gets its
/// "wall_s" value refreshed (keeping an explicit tolerance_pct), extra
/// hand-added metrics keep their tolerances and are refreshed when the run
/// measured them, and baseline scenarios the run did not execute survive
/// untouched — updating from a filtered run never forgets the rest.
[[nodiscard]] Baselines update_baselines(const Baselines& existing,
                                         const BenchResults& results);

enum class CompareStatus {
  kOk,           ///< within the tolerance band
  kImproved,     ///< better than baseline by more than the tolerance
  kRegression,   ///< worse than baseline by more than the tolerance
  kMissingMetric,  ///< baseline names a metric the run did not produce
  kNotMeasured,  ///< baseline scenario absent from this (filtered) run
  kNoBaseline,   ///< measured scenario has no baseline entry yet
};

struct CompareEntry {
  std::string scenario;
  std::string metric;
  double baseline = 0.0;
  double measured = 0.0;
  double delta_pct = 0.0;      ///< (measured - baseline) / baseline * 100
  double tolerance_pct = 0.0;
  CompareStatus status = CompareStatus::kOk;
};

struct CompareReport {
  std::vector<CompareEntry> entries;

  /// Failures: regressions plus baselines whose metric vanished.
  [[nodiscard]] std::size_t failures() const;
  [[nodiscard]] bool ok() const { return failures() == 0; }
};

[[nodiscard]] CompareReport compare(const BenchResults& results,
                                    const Baselines& baselines,
                                    double default_tolerance_pct);

[[nodiscard]] const char* to_string(CompareStatus status);

}  // namespace eus::benchkit
