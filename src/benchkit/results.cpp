#include "benchkit/results.hpp"

#include <unistd.h>

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "benchkit/json_value.hpp"
#include "telemetry/json.hpp"
#include "util/env.hpp"

namespace eus::benchkit {

namespace {

constexpr std::string_view kCounterPrefix = "counter.";
constexpr std::string_view kTimerPrefix = "timer.";

std::string metric_map_json(const std::map<std::string, double>& values) {
  JsonObject obj;
  for (const auto& [name, value] : values) obj.field(name, value);
  return obj.str();
}

std::map<std::string, double> metric_map_from_json(const JsonValue* obj) {
  std::map<std::string, double> out;
  if (obj == nullptr || !obj->is_object()) return out;
  for (const auto& [name, value] : obj->object) {
    if (value.is_number()) out[name] = value.number;
  }
  return out;
}

}  // namespace

std::optional<double> ScenarioResult::metric(const std::string& id) const {
  if (id == "wall_s") {
    if (wall_s.empty()) return std::nullopt;
    return wall().median;
  }
  if (id.rfind(kCounterPrefix, 0) == 0) {
    const auto it = counters.find(id.substr(kCounterPrefix.size()));
    if (it != counters.end()) return it->second;
    return std::nullopt;
  }
  if (id.rfind(kTimerPrefix, 0) == 0) {
    const auto it = timers_s.find(id.substr(kTimerPrefix.size()));
    if (it != timers_s.end()) return it->second;
    return std::nullopt;
  }
  return std::nullopt;
}

const ScenarioResult* BenchResults::find(const std::string& name) const {
  for (const ScenarioResult& s : scenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string to_json(const BenchResults& results) {
  JsonObject machine;
  machine.field("host", results.machine.host)
      .field("hardware_threads",
             static_cast<std::uint64_t>(results.machine.hardware_threads));

  JsonObject config;
  config.field("scale", results.config.scale)
      .field("seed", static_cast<std::uint64_t>(results.config.seed))
      .field("threads", static_cast<std::uint64_t>(results.config.threads))
      .field("warmup", static_cast<std::uint64_t>(results.config.warmup))
      .field("repetitions",
             static_cast<std::uint64_t>(results.config.repetitions));

  std::vector<const ScenarioResult*> sorted;
  sorted.reserve(results.scenarios.size());
  for (const ScenarioResult& s : results.scenarios) sorted.push_back(&s);
  std::sort(sorted.begin(), sorted.end(),
            [](const ScenarioResult* a, const ScenarioResult* b) {
              return a->name < b->name;
            });

  JsonObject scenarios;
  for (const ScenarioResult* s : sorted) {
    const Aggregate wall = s->wall();
    std::string samples = "[";
    for (std::size_t i = 0; i < s->wall_s.size(); ++i) {
      if (i > 0) samples += ',';
      samples += json_number(s->wall_s[i]);
    }
    samples += ']';

    JsonObject wall_obj;
    wall_obj.raw("samples", samples)
        .field("min", wall.min)
        .field("max", wall.max)
        .field("mean", wall.mean)
        .field("median", wall.median)
        .field("mad", wall.mad);

    JsonObject scenario;
    scenario.field("exit_code", static_cast<std::int64_t>(s->exit_code))
        .raw("wall_s", wall_obj.str())
        .raw("counters", metric_map_json(s->counters))
        .raw("timers_s", metric_map_json(s->timers_s));
    scenarios.raw(s->name, scenario.str());
  }

  JsonObject doc;
  doc.field("schema_version",
            static_cast<std::int64_t>(results.schema_version))
      .field("git_sha", results.git_sha)
      .raw("machine", machine.str())
      .raw("config", config.str())
      .raw("scenarios", scenarios.str());
  return doc.str();
}

BenchResults results_from_json(const JsonValue& doc) {
  if (!doc.is_object()) throw std::runtime_error("results: not an object");
  BenchResults results;
  results.schema_version =
      static_cast<int>(doc.number_or("schema_version", 0));
  if (results.schema_version != 1) {
    throw std::runtime_error("results: unsupported schema_version " +
                             std::to_string(results.schema_version));
  }
  results.git_sha = doc.string_or("git_sha", "unknown");
  if (const JsonValue* machine = doc.get("machine")) {
    results.machine.host = machine->string_or("host", "");
    results.machine.hardware_threads =
        static_cast<unsigned>(machine->number_or("hardware_threads", 0));
  }
  if (const JsonValue* config = doc.get("config")) {
    results.config.scale = config->number_or("scale", 1.0);
    results.config.seed =
        static_cast<std::uint64_t>(config->number_or("seed", 0));
    results.config.threads =
        static_cast<std::size_t>(config->number_or("threads", 0));
    results.config.warmup =
        static_cast<std::size_t>(config->number_or("warmup", 0));
    results.config.repetitions =
        static_cast<std::size_t>(config->number_or("repetitions", 1));
  }
  const JsonValue* scenarios = doc.get("scenarios");
  if (scenarios == nullptr || !scenarios->is_object()) {
    throw std::runtime_error("results: missing scenarios table");
  }
  for (const auto& [name, entry] : scenarios->object) {
    ScenarioResult s;
    s.name = name;
    s.exit_code = static_cast<int>(entry.number_or("exit_code", 0));
    if (const JsonValue* wall = entry.get("wall_s")) {
      if (const JsonValue* samples = wall->get("samples")) {
        for (const JsonValue& v : samples->array) {
          if (v.is_number()) s.wall_s.push_back(v.number);
        }
      }
    }
    s.counters = metric_map_from_json(entry.get("counters"));
    s.timers_s = metric_map_from_json(entry.get("timers_s"));
    results.scenarios.push_back(std::move(s));
  }
  return results;
}

MachineInfo local_machine() {
  MachineInfo info;
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) == 0) info.host = host;
  info.hardware_threads = std::thread::hardware_concurrency();
  return info;
}

std::string discover_git_sha() {
  for (const char* name : {"GITHUB_SHA", "EUS_GIT_SHA"}) {
    if (const auto value = env_string(name)) return *value;
  }
  return "unknown";
}

}  // namespace eus::benchkit
