#pragma once

// Per-allocation simulation state for the incremental delta-evaluator.
//
// The offline simulator (§IV-B) decomposes exactly per machine: a task's
// start time depends only on its own machine's queue tail and its arrival,
// so each machine's (utility, energy, busy-time, tail) partials are a pure
// function of the tasks mapped to it and their relative scheduling order.
// An EvalState captures those partials for every machine after one full
// simulation; when a genetic operator touches only a few genes, re-running
// just the *dirty* machines and re-reducing all partials in machine order
// reproduces the full simulation bit for bit (see docs/evaluator.md for
// the oracle contract).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eus {

/// One machine's accumulated simulation partials.  All floating-point
/// fields are accumulated in within-machine execution order, so a partial
/// recomputed in isolation is bit-identical to the one the full simulator
/// produced while interleaving machines.
struct MachinePartial {
  double tail = 0.0;     ///< finish time of the last executed task (0 = unused)
  double busy = 0.0;     ///< seconds spent executing (excludes queue gaps)
  double utility = 0.0;  ///< Eq. (1) partial over this machine's tasks
  double energy = 0.0;   ///< busy-energy partial, Eq. (2) (no idle share)
  std::uint32_t dropped = 0;  ///< tasks mapped here but dropped
  std::uint32_t count = 0;    ///< tasks mapped here (including dropped)

  friend bool operator==(const MachinePartial&,
                         const MachinePartial&) = default;
};

/// Simulation partials of one allocation, indexed by machine instance.
/// Produced by Evaluator::evaluate(allocation, state) and consumed (plus
/// re-produced) by Evaluator::evaluate_incremental.  A default-constructed
/// state is invalid; states only pair with the genome they were computed
/// from, on the evaluator that computed them.
struct EvalState {
  std::vector<MachinePartial> machines;

  [[nodiscard]] bool valid() const noexcept { return !machines.empty(); }
  void reset() noexcept { machines.clear(); }
};

}  // namespace eus
