#pragma once

// Dynamic voltage & frequency scaling model — one of the paper's two
// stated future-work directions (§VII), implemented here as an optional
// evaluator extension.  A P-state scales a task's execution time by
// 1/freq_scale and its power draw by power_scale; with the classic
// power ∝ f^3 envelope, running slower trades utility for energy.

#include <cstddef>
#include <vector>

namespace eus {

struct PState {
  double freq_scale = 1.0;   ///< relative clock (1.0 == nominal); > 0
  double power_scale = 1.0;  ///< relative power draw at this clock; > 0
};

class DvfsModel {
 public:
  /// Throws std::invalid_argument on an empty table or non-positive scales.
  explicit DvfsModel(std::vector<PState> pstates);

  [[nodiscard]] const std::vector<PState>& pstates() const noexcept {
    return pstates_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return pstates_.size(); }

  /// Index of the nominal (freq_scale closest to 1.0) state.
  [[nodiscard]] std::size_t nominal_index() const noexcept {
    return nominal_;
  }

  [[nodiscard]] double time_multiplier(std::size_t p) const {
    return 1.0 / pstates_.at(p).freq_scale;
  }
  [[nodiscard]] double power_multiplier(std::size_t p) const {
    return pstates_.at(p).power_scale;
  }

 private:
  std::vector<PState> pstates_;
  std::size_t nominal_ = 0;
};

/// P-states at the given relative clocks with power ∝ freq³ (so energy per
/// task ∝ freq²: lower clocks save energy, cost time).
[[nodiscard]] DvfsModel make_cubic_dvfs(const std::vector<double>& freqs);

}  // namespace eus
