#include "sched/bounds.hpp"

#include <limits>

namespace eus {

ObjectiveBounds compute_bounds(const SystemModel& system,
                               const Trace& trace) {
  trace.validate_against(system);
  ObjectiveBounds bounds;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& task = trace.tasks()[i];
    const TimeUtilityFunction& tuf = trace.tuf_of(i);

    double min_eec = std::numeric_limits<double>::infinity();
    double best_utility = 0.0;
    for (const int m : system.eligible_machines(task.type)) {
      const auto mi = static_cast<std::size_t>(m);
      min_eec = std::min(min_eec, system.eec_on(task.type, mi));
      // Contention-free: start at arrival, finish after the bare ETC.
      best_utility =
          std::max(best_utility, tuf.value(system.etc_on(task.type, mi)));
    }
    bounds.energy_lower += min_eec;
    bounds.utility_upper_instant += tuf.value(0.0);
    bounds.utility_upper_contention_free += best_utility;
  }
  return bounds;
}

}  // namespace eus
