#pragma once

// The offline scheduling simulator (§IV-B): replays an allocation against
// the trace and reports total utility earned (Eq. 1), total energy consumed
// (Eq. 2-3), and makespan.  Tasks on each machine run in global-scheduling-
// order sequence; a machine sits idle until a task's arrival if its order
// puts the task at the head early (§IV-D).
//
// Extensions beyond the paper's evaluation (its §VII future work):
//  * task dropping — tasks whose utility at their achievable completion
//    would not exceed a threshold are skipped (no time, no energy);
//  * DVFS — an optional P-state per task scales ETC and EPC.

#include <cstddef>
#include <optional>
#include <vector>

#include "sched/allocation.hpp"
#include "sched/dvfs.hpp"
#include "telemetry/metrics.hpp"
#include "workload/trace.hpp"

namespace eus {

struct EvaluatorOptions {
  bool drop_worthless_tasks = false;
  /// A task is dropped when its utility at completion would be <= this.
  double drop_threshold = 0.0;
  /// When set, Allocation::pstate is honored (empty pstate == nominal).
  std::optional<DvfsModel> dvfs;
  /// Idle power per machine *type* in watts (empty = the paper's model,
  /// which bills busy energy only).  A machine that runs at least one task
  /// additionally draws its idle power over the gaps between time 0 and
  /// its last task's finish; unused machines draw nothing (assumed
  /// powered down).  With idle power, packing work onto fewer machines
  /// can beat pure per-task EEC minimization.
  std::vector<double> idle_watts;
  /// Optional telemetry sink (must outlive the evaluator).  When set, the
  /// evaluator counts evaluations ("evaluator.evaluations") and dropped
  /// tasks ("evaluator.tasks_dropped"); updates are relaxed atomics, safe
  /// from the population-evaluation pool.
  MetricsRegistry* metrics = nullptr;
};

/// Aggregate objectives of one allocation.
struct Evaluation {
  double utility = 0.0;   ///< U, Eq. (1) — maximize
  double energy = 0.0;    ///< total joules (busy + idle) — minimize
  double idle_energy = 0.0;  ///< idle-power share of `energy` (joules)
  double makespan = 0.0;  ///< latest finish time, seconds
  std::size_t dropped = 0;
};

/// Per-task timeline entry (slow path, for reports/examples).
struct TaskOutcome {
  int machine = -1;
  double start = 0.0;
  double finish = 0.0;
  double utility = 0.0;
  double energy = 0.0;
  bool dropped = false;
};

class Evaluator {
 public:
  /// Both referents must outlive the evaluator.
  Evaluator(const SystemModel& system, const Trace& trace,
            EvaluatorOptions options = {});

  /// Fast path: objectives only.  Thread-safe (no shared mutable state);
  /// call it concurrently from the population-evaluation pool.
  ///
  /// Contract: the allocation is validate()d first — a malformed shape, an
  /// out-of-range machine index, an ineligible mapping, or a bad P-state
  /// throws std::invalid_argument instead of indexing out of bounds.
  /// Out-of-range *order* values are fine (orders are free-form
  /// priorities).  Under the fitness cache each unique genome pays the
  /// check once; cache hits skip evaluate() entirely.
  [[nodiscard]] Evaluation evaluate(const Allocation& allocation) const;

  /// Slow path: the full per-task timeline plus the aggregate.  Validates
  /// like evaluate().
  [[nodiscard]] std::pair<Evaluation, std::vector<TaskOutcome>> detail(
      const Allocation& allocation) const;

  /// Throws std::invalid_argument when the allocation's shape is wrong,
  /// a machine index is out of range, a task is mapped to an ineligible
  /// machine, or a P-state index is invalid.
  void validate(const Allocation& allocation) const;

  [[nodiscard]] const SystemModel& system() const noexcept { return *system_; }
  [[nodiscard]] const Trace& trace() const noexcept { return *trace_; }
  [[nodiscard]] const EvaluatorOptions& options() const noexcept {
    return options_;
  }

 private:
  template <typename PerTask>
  Evaluation run(const Allocation& allocation, PerTask&& per_task) const;

  const SystemModel* system_;
  const Trace* trace_;
  EvaluatorOptions options_;
  /// Resolved once at construction so the hot path never does name lookups.
  Counter* metric_evaluations_ = nullptr;
  Counter* metric_dropped_ = nullptr;
};

}  // namespace eus
