#pragma once

// The offline scheduling simulator (§IV-B): replays an allocation against
// the trace and reports total utility earned (Eq. 1), total energy consumed
// (Eq. 2-3), and makespan.  Tasks on each machine run in global-scheduling-
// order sequence; a machine sits idle until a task's arrival if its order
// puts the task at the head early (§IV-D).
//
// Extensions beyond the paper's evaluation (its §VII future work):
//  * task dropping — tasks whose utility at their achievable completion
//    would not exceed a threshold are skipped (no time, no energy);
//  * DVFS — an optional P-state per task scales ETC and EPC.
//
// Hot-path layout (see docs/evaluator.md): the constructor flattens every
// per-task and per-machine lookup the inner loop needs — task type,
// arrival, TUF pointer, ETC/EPC rows resolved against machine *instances*,
// DVFS multipliers, per-machine idle watts, and a (task type x machine)
// eligibility bitset — into contiguous arrays, so simulation touches no
// nested containers and validate() performs no pointer-chasing.
//
// Incremental delta-evaluation: the simulation decomposes exactly per
// machine, so when a genetic operator touches only a few genes the
// evaluator re-simulates just the machines whose task sets, orders, or
// P-states changed (evaluate_incremental) and re-reduces per-machine
// partials (EvalState).  The result is bit-identical to the full
// simulation in every option mode; the full path remains the oracle the
// differential tests compare against.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sched/allocation.hpp"
#include "sched/dvfs.hpp"
#include "sched/eval_state.hpp"
#include "telemetry/metrics.hpp"
#include "tuf/time_utility_function.hpp"
#include "workload/trace.hpp"

namespace eus {

struct EvaluatorOptions {
  bool drop_worthless_tasks = false;
  /// A task is dropped when its utility at completion would be <= this.
  double drop_threshold = 0.0;
  /// When set, Allocation::pstate is honored (empty pstate == nominal).
  std::optional<DvfsModel> dvfs;
  /// Idle power per machine *type* in watts (empty = the paper's model,
  /// which bills busy energy only).  A machine that runs at least one task
  /// additionally draws its idle power over the gaps between time 0 and
  /// its last task's finish; unused machines draw nothing (assumed
  /// powered down).  With idle power, packing work onto fewer machines
  /// can beat pure per-task EEC minimization.
  std::vector<double> idle_watts;
  /// Delta-evaluation override: unset honors the EUS_INCREMENTAL knob
  /// (default on).  Off forces evaluate_incremental through the full
  /// simulator; fronts are bit-identical either way.
  std::optional<bool> incremental;
  /// Optional telemetry sink (must outlive the evaluator).  When set, the
  /// evaluator counts evaluations ("evaluator.evaluations"), dropped tasks
  /// ("evaluator.tasks_dropped"), and the delta-path outcome counters
  /// ("evaluator.incremental.hits" / ".fallbacks" /
  /// ".machines_resimulated"); updates are relaxed atomics, safe from the
  /// population-evaluation pool.
  MetricsRegistry* metrics = nullptr;
};

/// Aggregate objectives of one allocation.
struct Evaluation {
  double utility = 0.0;   ///< U, Eq. (1) — maximize
  double energy = 0.0;    ///< total joules (busy + idle) — minimize
  double idle_energy = 0.0;  ///< idle-power share of `energy` (joules)
  double makespan = 0.0;  ///< latest finish time, seconds
  std::size_t dropped = 0;
};

/// Per-task timeline entry (slow path, for reports/examples).
struct TaskOutcome {
  int machine = -1;
  double start = 0.0;
  double finish = 0.0;
  double utility = 0.0;
  double energy = 0.0;
  bool dropped = false;
};

class Evaluator {
 public:
  /// Both referents must outlive the evaluator.
  Evaluator(const SystemModel& system, const Trace& trace,
            EvaluatorOptions options = {});

  /// Fast path: objectives only.  Thread-safe (no shared mutable state);
  /// call it concurrently from the population-evaluation pool.
  ///
  /// Contract: the allocation is validate()d first — a malformed shape, an
  /// out-of-range machine index, an ineligible mapping, or a bad P-state
  /// throws std::invalid_argument instead of indexing out of bounds.
  /// Out-of-range *order* values are fine (orders are free-form
  /// priorities).  Under the fitness cache each unique genome pays the
  /// check once; cache hits skip evaluate() entirely.
  [[nodiscard]] Evaluation evaluate(const Allocation& allocation) const;

  /// Full simulation that additionally captures the per-machine partials
  /// needed to delta-evaluate this allocation's descendants.  Same
  /// validation contract as evaluate().
  Evaluation evaluate(const Allocation& allocation, EvalState& state) const;

  /// evaluate(allocation, state) minus the validation pass, for callers
  /// that can prove validity structurally: the genetic operators preserve
  /// it gene-wise (crossover mixes two valid allocations index-aligned,
  /// mutation only draws eligible machines and in-range P-states), so any
  /// descendant of a validated allocation is valid by induction.  Passing
  /// an unvalidated allocation is undefined behavior (out-of-bounds
  /// indexing), not an exception.
  Evaluation evaluate_trusted(const Allocation& allocation,
                              EvalState& state) const;

  /// Incremental re-evaluation of `child`, which differs from `parent`
  /// only at the gene indices in `touched` (duplicates allowed).
  /// `parent_state` must be the EvalState this evaluator produced for
  /// `parent`; `out_state` receives child's state and must not alias
  /// `parent_state`.  Only the machines whose task sets, orders, or
  /// P-states changed are re-simulated; the result is bit-identical to
  /// evaluate(child).  Falls back to the full simulator — still filling
  /// `out_state` — when the delta is large, the shapes diverge, the state
  /// is invalid, or incremental evaluation is disabled.  Touched genes are
  /// validated like validate(); untouched genes are trusted (the parent
  /// was validated).  With `trusted_child` the touched-gene validation is
  /// skipped too, under the same structural-validity contract as
  /// evaluate_trusted() (gene indices in `touched` are still range-checked).
  Evaluation evaluate_incremental(const Allocation& child,
                                  const Allocation& parent,
                                  const EvalState& parent_state,
                                  std::span<const std::uint32_t> touched,
                                  EvalState& out_state,
                                  bool trusted_child = false) const;

  /// Slow path: the full per-task timeline plus the aggregate.  Validates
  /// like evaluate().
  [[nodiscard]] std::pair<Evaluation, std::vector<TaskOutcome>> detail(
      const Allocation& allocation) const;

  /// Throws std::invalid_argument when the allocation's shape is wrong,
  /// a machine index is out of range, a task is mapped to an ineligible
  /// machine, or a P-state index is invalid.
  void validate(const Allocation& allocation) const;

  /// Whether evaluate_incremental may take the delta path (the
  /// EUS_INCREMENTAL knob, or EvaluatorOptions::incremental when set).
  [[nodiscard]] bool incremental_on() const noexcept {
    return incremental_on_;
  }

  [[nodiscard]] const SystemModel& system() const noexcept { return *system_; }
  [[nodiscard]] const Trace& trace() const noexcept { return *trace_; }
  [[nodiscard]] const EvaluatorOptions& options() const noexcept {
    return options_;
  }

 private:
  /// One task's simulation step against its machine's partial.  Shared by
  /// the full and delta paths so both perform the identical sequence of
  /// floating-point operations (the bit-identity contract).
  template <typename PerTask>
  void step_task(std::uint32_t i, MachinePartial& mp,
                 const Allocation& allocation, bool use_dvfs,
                 PerTask&& per_task) const;

  /// Folds per-machine partials into an Evaluation, always in machine
  /// order — the single reduction both paths share.
  [[nodiscard]] Evaluation reduce(const EvalState& state) const;

  template <typename PerTask>
  Evaluation run(const Allocation& allocation, EvalState& state,
                 PerTask&& per_task) const;

  void validate_gene(const Allocation& allocation, std::size_t gene) const;

  [[nodiscard]] bool eligible_fast(std::uint32_t type,
                                   std::uint32_t machine) const noexcept {
    const std::size_t bit = static_cast<std::size_t>(type) * num_machines_ +
                            machine;
    return (eligible_bits_[bit >> 6U] >> (bit & 63U)) & 1U;
  }

  const SystemModel* system_;
  const Trace* trace_;
  EvaluatorOptions options_;

  // --- structure-of-arrays hot-path data, resolved once at construction.
  /// One flattened TUF interval: the effective [start, end) time window
  /// plus the fraction endpoints and decay shape.  Together with the
  /// per-task priority/residual below, tuf_value() replays the exact
  /// floating-point operation sequence of TimeUtilityFunction::value
  /// without pointer-chasing through per-object interval vectors.
  struct TufSpan {
    double start = 0.0;
    double end = 0.0;
    double begin_fraction = 1.0;
    double end_fraction = 1.0;
    /// log(end_fraction / begin_fraction), precomputed for exponential
    /// spans: the decay is evaluated as exp(f * log_ratio), saving the
    /// std::log per call TimeUtilityFunction::value pays (same expression
    /// and operand bits, so the results match it exactly).  Unused — and
    /// left 0 — for other shapes.
    double log_ratio = 0.0;
    TufInterval::Shape shape = TufInterval::Shape::kLinear;
  };

  /// Per-task hot record: everything step_task() and tuf_value() read
  /// about a task, packed into one 32-byte block.  The simulation walks
  /// tasks in *sequence* order — random by task index — so parallel
  /// per-task arrays cost up to six cold cache lines per step; one aligned
  /// record costs exactly one.  tuf_run packs the span-table offset and
  /// span count 24/8 (the table is deduplicated per TUF class, so both
  /// bounds are enforced cheaply at construction).
  struct alignas(32) TaskRec {
    double arrival = 0.0;
    double tuf_priority = 1.0;
    double tuf_residual = 0.0;  ///< TUF value past the horizon
    std::uint32_t type = 0;
    std::uint32_t tuf_run = 0;  ///< (first span index << 8) | span count
  };
  static_assert(sizeof(TaskRec) == 32);

  [[nodiscard]] double tuf_value(const TaskRec& rec, double elapsed) const
      noexcept;

  std::size_t num_machines_ = 0;
  std::size_t num_tasks_ = 0;
  std::vector<TaskRec> task_rec_;  ///< per task (cache-line packed)
  /// Flattened TUF table: tasks sharing a TUF object share one span run.
  std::vector<TufSpan> tuf_spans_;
  /// ETC/EPC against machine *instances*, interleaved per row so one line
  /// serves both loads: [2 * (type * num_machines_ + m)] = ETC seconds,
  /// [... + 1] = EPC watts.
  std::vector<double> cost_tm_;
  /// Eligibility bitset, bit index = type * num_machines_ + m.
  std::vector<std::uint64_t> eligible_bits_;
  /// Idle watts per machine instance (empty when idle billing is off).
  std::vector<double> idle_watts_m_;
  /// DVFS multipliers per P-state (empty when no DVFS model).
  std::vector<double> dvfs_time_;
  std::vector<double> dvfs_power_;

  bool incremental_on_ = true;
  /// Resolved once at construction so the hot path never does name lookups.
  Counter* metric_evaluations_ = nullptr;
  Counter* metric_dropped_ = nullptr;
  Counter* metric_inc_hits_ = nullptr;
  Counter* metric_inc_fallbacks_ = nullptr;
  Counter* metric_inc_machines_ = nullptr;
};

}  // namespace eus
