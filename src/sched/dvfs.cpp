#include "sched/dvfs.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace eus {

DvfsModel::DvfsModel(std::vector<PState> pstates)
    : pstates_(std::move(pstates)) {
  if (pstates_.empty()) throw std::invalid_argument("empty P-state table");
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pstates_.size(); ++i) {
    const auto& p = pstates_[i];
    if (!(p.freq_scale > 0.0) || !(p.power_scale > 0.0)) {
      throw std::invalid_argument("P-state scales must be positive");
    }
    const double dist = std::abs(p.freq_scale - 1.0);
    if (dist < best) {
      best = dist;
      nominal_ = i;
    }
  }
}

DvfsModel make_cubic_dvfs(const std::vector<double>& freqs) {
  std::vector<PState> states;
  states.reserve(freqs.size());
  for (const double f : freqs) {
    states.push_back({f, f * f * f});
  }
  return DvfsModel(std::move(states));
}

}  // namespace eus
