#pragma once

// Analytic bounds on the objective space.  The benches report achieved
// values as fractions of these, which makes runs comparable across
// datasets and seeds.
//
//  * Energy lower bound — Σ_t min eligible EEC: exact (energy is
//    timing-independent, so per-task greedy is globally optimal; §V-B1).
//  * Utility upper bounds — two relaxations:
//      - instant:     every task completes the moment it arrives (the
//                     Trace::utility_upper_bound value);
//      - contention-free: every task runs alone on its best-utility
//                     machine (completes at arrival + min eligible ETC) —
//                     tighter, still optimistic because queues are ignored.

#include "workload/trace.hpp"

namespace eus {

struct ObjectiveBounds {
  double energy_lower = 0.0;           ///< joules; achievable exactly
  double utility_upper_instant = 0.0;  ///< loose
  double utility_upper_contention_free = 0.0;  ///< tighter, >= any schedule
};

/// Computes all bounds in one pass over the trace.
[[nodiscard]] ObjectiveBounds compute_bounds(const SystemModel& system,
                                             const Trace& trace);

}  // namespace eus
