#pragma once

// A resource allocation (§I): a complete mapping of every trace task onto a
// machine instance, plus the *global scheduling order* that sequences tasks
// within each machine's queue (§IV-D).  This is the phenotype shared by the
// greedy heuristics and the NSGA-II chromosome.

#include <cstddef>
#include <vector>

namespace eus {

struct Allocation {
  /// machine[i]: machine instance executing trace task i.
  std::vector<int> machine;
  /// order[i]: global scheduling order of task i.  Lower runs earlier on
  /// its machine; ties break on the task index (stable).  The paper draws
  /// these from 1..T, but any integers work — they act as priorities.
  std::vector<int> order;
  /// Optional DVFS extension: pstate[i] indexes the P-state task i runs
  /// at.  Empty means "nominal frequency for every task".
  std::vector<int> pstate;

  [[nodiscard]] std::size_t size() const noexcept { return machine.size(); }

  friend bool operator==(const Allocation&, const Allocation&) = default;
};

/// Identity-order allocation of the given size with every task on machine 0
/// (useful as a neutral starting point in tests).
[[nodiscard]] inline Allocation make_trivial_allocation(std::size_t tasks) {
  Allocation a;
  a.machine.assign(tasks, 0);
  a.order.resize(tasks);
  for (std::size_t i = 0; i < tasks; ++i) a.order[i] = static_cast<int>(i);
  return a;
}

}  // namespace eus
