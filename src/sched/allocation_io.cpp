#include "sched/allocation_io.hpp"

#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace eus {
namespace {

int parse_int(const std::string& text, const char* what) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos != text.size()) throw std::runtime_error("");
    return v;
  } catch (...) {
    throw std::runtime_error(std::string("bad ") + what + ": '" + text + "'");
  }
}

}  // namespace

std::string allocation_to_csv(const Allocation& allocation) {
  std::ostringstream os;
  CsvWriter csv(os);
  const bool has_pstate = !allocation.pstate.empty();
  if (has_pstate) {
    csv.write_row({"task", "machine", "order", "pstate"});
  } else {
    csv.write_row({"task", "machine", "order"});
  }
  for (std::size_t i = 0; i < allocation.size(); ++i) {
    std::vector<std::string> row = {std::to_string(i),
                                    std::to_string(allocation.machine[i]),
                                    std::to_string(allocation.order[i])};
    if (has_pstate) row.push_back(std::to_string(allocation.pstate[i]));
    csv.write_row(row);
  }
  return os.str();
}

Allocation allocation_from_csv(const std::string& csv) {
  const auto rows = parse_csv(csv);
  if (rows.empty()) throw std::runtime_error("empty allocation CSV");
  const auto& header = rows.front();
  bool has_pstate = false;
  if (header == std::vector<std::string>{"task", "machine", "order",
                                         "pstate"}) {
    has_pstate = true;
  } else if (header != std::vector<std::string>{"task", "machine", "order"}) {
    throw std::runtime_error("unrecognized allocation CSV header");
  }

  Allocation a;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != header.size()) {
      throw std::runtime_error("ragged allocation CSV row");
    }
    const int task = parse_int(row[0], "task id");
    if (task != static_cast<int>(r) - 1) {
      throw std::runtime_error("task ids must be 0..T-1 in order");
    }
    a.machine.push_back(parse_int(row[1], "machine"));
    a.order.push_back(parse_int(row[2], "order"));
    if (has_pstate) a.pstate.push_back(parse_int(row[3], "pstate"));
  }
  return a;
}

}  // namespace eus
