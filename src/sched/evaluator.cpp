#include "sched/evaluator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace eus {

Evaluator::Evaluator(const SystemModel& system, const Trace& trace,
                     EvaluatorOptions options)
    : system_(&system), trace_(&trace), options_(std::move(options)) {
  trace.validate_against(system);
  if (!options_.idle_watts.empty()) {
    if (options_.idle_watts.size() != system.num_machine_types()) {
      throw std::invalid_argument("idle_watts must cover every machine type");
    }
    for (const double w : options_.idle_watts) {
      if (!(w >= 0.0)) throw std::invalid_argument("negative idle wattage");
    }
  }
  if (options_.metrics != nullptr) {
    metric_evaluations_ = &options_.metrics->counter("evaluator.evaluations");
    metric_dropped_ = &options_.metrics->counter("evaluator.tasks_dropped");
  }
}

void Evaluator::validate(const Allocation& allocation) const {
  const std::size_t tasks = trace_->size();
  if (allocation.machine.size() != tasks ||
      allocation.order.size() != tasks) {
    throw std::invalid_argument("allocation size mismatch");
  }
  if (!allocation.pstate.empty() && allocation.pstate.size() != tasks) {
    throw std::invalid_argument("pstate size mismatch");
  }
  if (!allocation.pstate.empty() && !options_.dvfs) {
    throw std::invalid_argument("pstates present but no DVFS model");
  }
  for (std::size_t i = 0; i < tasks; ++i) {
    const int m = allocation.machine[i];
    if (m < 0 || static_cast<std::size_t>(m) >= system_->num_machines()) {
      throw std::invalid_argument("machine index out of range");
    }
    if (!system_->eligible(trace_->tasks()[i].type,
                           static_cast<std::size_t>(m))) {
      throw std::invalid_argument("task mapped to ineligible machine");
    }
    if (!allocation.pstate.empty()) {
      const int p = allocation.pstate[i];
      if (p < 0 || static_cast<std::size_t>(p) >= options_.dvfs->size()) {
        throw std::invalid_argument("pstate index out of range");
      }
    }
  }
}

template <typename PerTask>
Evaluation Evaluator::run(const Allocation& allocation,
                          PerTask&& per_task) const {
  const std::size_t tasks = trace_->size();
  const auto& instances = trace_->tasks();

  // Execution sequence: global scheduling order, ties broken by index
  // (stable), independent of arrival times (§IV-D).  Orders produced by the
  // genetic operators always stay within [0, T), so a stable counting sort
  // covers the hot path; arbitrary user-supplied orders fall back to a
  // comparison sort.  Scratch is thread_local: evaluate() runs concurrently
  // on the population-evaluation pool.
  thread_local std::vector<std::uint32_t> sequence;
  sequence.resize(tasks);
  bool orders_in_range = true;
  for (std::size_t i = 0; i < tasks; ++i) {
    const int o = allocation.order[i];
    if (o < 0 || static_cast<std::size_t>(o) >= tasks) {
      orders_in_range = false;
      break;
    }
  }
  if (orders_in_range) {
    thread_local std::vector<std::uint32_t> offsets;
    offsets.assign(tasks + 1, 0);
    for (std::size_t i = 0; i < tasks; ++i) {
      ++offsets[static_cast<std::size_t>(allocation.order[i]) + 1];
    }
    for (std::size_t k = 1; k <= tasks; ++k) offsets[k] += offsets[k - 1];
    // Visiting tasks in index order keeps equal-order ties index-stable.
    for (std::size_t i = 0; i < tasks; ++i) {
      sequence[offsets[static_cast<std::size_t>(allocation.order[i])]++] =
          static_cast<std::uint32_t>(i);
    }
  } else {
    std::iota(sequence.begin(), sequence.end(), 0U);
    std::sort(sequence.begin(), sequence.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const int oa = allocation.order[a];
                const int ob = allocation.order[b];
                return oa != ob ? oa < ob : a < b;
              });
  }

  thread_local std::vector<double> available;
  available.assign(system_->num_machines(), 0.0);
  const bool use_dvfs =
      options_.dvfs.has_value() && !allocation.pstate.empty();
  const bool use_idle = !options_.idle_watts.empty();
  thread_local std::vector<double> busy;
  if (use_idle) busy.assign(system_->num_machines(), 0.0);

  Evaluation total;
  for (const std::uint32_t i : sequence) {
    const auto& task = instances[i];
    const auto m = static_cast<std::size_t>(allocation.machine[i]);

    double exec = system_->etc_on(task.type, m);
    double power = system_->epc_on(task.type, m);
    if (use_dvfs) {
      const auto p = static_cast<std::size_t>(allocation.pstate[i]);
      exec *= options_.dvfs->time_multiplier(p);
      power *= options_.dvfs->power_multiplier(p);
    }

    const double start = std::max(available[m], task.arrival);
    const double finish = start + exec;
    const double utility = trace_->tuf_of(i).value(finish - task.arrival);

    if (options_.drop_worthless_tasks &&
        utility <= options_.drop_threshold) {
      ++total.dropped;
      per_task(i, TaskOutcome{allocation.machine[i], 0.0, 0.0, 0.0, 0.0,
                              true});
      continue;
    }

    available[m] = finish;
    if (use_idle) busy[m] += exec;
    const double energy = exec * power;  // EEC, Eq. (2)
    total.utility += utility;
    total.energy += energy;
    total.makespan = std::max(total.makespan, finish);
    per_task(i, TaskOutcome{allocation.machine[i], start, finish, utility,
                            energy, false});
  }

  if (use_idle) {
    // A used machine is powered from t = 0 until its queue drains; gaps
    // (waiting for arrivals) bill at the machine type's idle wattage.
    for (std::size_t m = 0; m < available.size(); ++m) {
      if (available[m] <= 0.0) continue;  // never used
      const auto type =
          static_cast<std::size_t>(system_->machines()[m].type);
      const double idle_time = available[m] - busy[m];
      total.idle_energy += options_.idle_watts.at(type) * idle_time;
    }
    total.energy += total.idle_energy;
  }
  if (metric_evaluations_ != nullptr) {
    metric_evaluations_->add(1);
    if (total.dropped != 0) metric_dropped_->add(total.dropped);
  }
  return total;
}

Evaluation Evaluator::evaluate(const Allocation& allocation) const {
  validate(allocation);
  return run(allocation, [](std::uint32_t, const TaskOutcome&) {});
}

std::pair<Evaluation, std::vector<TaskOutcome>> Evaluator::detail(
    const Allocation& allocation) const {
  validate(allocation);
  std::vector<TaskOutcome> outcomes(trace_->size());
  Evaluation total = run(allocation, [&](std::uint32_t i,
                                         const TaskOutcome& o) {
    outcomes[i] = o;
  });
  return {total, std::move(outcomes)};
}

}  // namespace eus
