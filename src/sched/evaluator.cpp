#include "sched/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "util/env.hpp"

namespace eus {

Evaluator::Evaluator(const SystemModel& system, const Trace& trace,
                     EvaluatorOptions options)
    : system_(&system), trace_(&trace), options_(std::move(options)) {
  trace.validate_against(system);
  if (!options_.idle_watts.empty()) {
    if (options_.idle_watts.size() != system.num_machine_types()) {
      throw std::invalid_argument("idle_watts must cover every machine type");
    }
    for (const double w : options_.idle_watts) {
      if (!(w >= 0.0)) throw std::invalid_argument("negative idle wattage");
    }
  }

  // Structure-of-arrays resolution: one pass at construction so the
  // simulation loop reads only flat arrays (docs/evaluator.md).
  num_machines_ = system.num_machines();
  num_tasks_ = trace.size();
  const std::size_t types = system.num_task_types();

  task_rec_.resize(num_tasks_);
  // Tasks routinely share TUF objects (one per utility class), so the span
  // table is deduplicated by object identity — shared runs keep the table
  // small and hot in cache.
  std::unordered_map<const TimeUtilityFunction*, std::uint32_t> span_runs;
  for (std::size_t i = 0; i < num_tasks_; ++i) {
    const TaskInstance& task = trace.tasks()[i];
    TaskRec& rec = task_rec_[i];
    rec.type = static_cast<std::uint32_t>(task.type);
    rec.arrival = task.arrival;

    const TimeUtilityFunction& f = trace.tuf_of(i);
    rec.tuf_priority = f.priority();
    rec.tuf_residual = f.residual();
    const auto [it, fresh] = span_runs.try_emplace(
        &f, static_cast<std::uint32_t>(tuf_spans_.size()));
    // 24/8 packing limits: the deduplicated span table stays far below
    // 2^24 entries and per-TUF interval counts far below 2^8 for any real
    // workload; refuse construction rather than silently truncate.
    if (it->second > 0xFFFFFFU || f.intervals().size() > 0xFFU) {
      throw std::invalid_argument("TUF span table too large to pack");
    }
    rec.tuf_run = (it->second << 8U) |
                  static_cast<std::uint32_t>(f.intervals().size());
    if (!fresh) continue;
    // Effective boundaries recomputed with the constructor's exact
    // expression, so tuf_value() sees bit-identical span edges.
    double t = 0.0;
    for (const TufInterval& iv : f.intervals()) {
      TufSpan span;
      span.start = t;
      t += iv.duration / (f.urgency() * iv.urgency_modifier);
      span.end = t;
      span.begin_fraction = iv.begin_fraction;
      span.end_fraction = iv.end_fraction;
      span.shape = iv.shape;
      if (iv.shape == TufInterval::Shape::kExponential) {
        // The exact operand TimeUtilityFunction::value feeds std::log.
        span.log_ratio = std::log(iv.end_fraction / iv.begin_fraction);
      }
      tuf_spans_.push_back(span);
    }
  }

  cost_tm_.resize(2 * types * num_machines_);
  eligible_bits_.assign((types * num_machines_ + 63U) / 64U, 0U);
  for (std::size_t t = 0; t < types; ++t) {
    for (std::size_t m = 0; m < num_machines_; ++m) {
      cost_tm_[2 * (t * num_machines_ + m)] = system.etc_on(t, m);
      cost_tm_[2 * (t * num_machines_ + m) + 1] = system.epc_on(t, m);
      if (system.eligible(t, m)) {
        const std::size_t bit = t * num_machines_ + m;
        eligible_bits_[bit >> 6U] |= std::uint64_t{1} << (bit & 63U);
      }
    }
  }

  if (!options_.idle_watts.empty()) {
    idle_watts_m_.resize(num_machines_);
    for (std::size_t m = 0; m < num_machines_; ++m) {
      idle_watts_m_[m] = options_.idle_watts[static_cast<std::size_t>(
          system.machines()[m].type)];
    }
  }

  if (options_.dvfs) {
    const std::size_t pstates = options_.dvfs->size();
    dvfs_time_.resize(pstates);
    dvfs_power_.resize(pstates);
    for (std::size_t p = 0; p < pstates; ++p) {
      dvfs_time_[p] = options_.dvfs->time_multiplier(p);
      dvfs_power_[p] = options_.dvfs->power_multiplier(p);
    }
  }

  incremental_on_ = options_.incremental.value_or(incremental_enabled());

  if (options_.metrics != nullptr) {
    metric_evaluations_ = &options_.metrics->counter("evaluator.evaluations");
    metric_dropped_ = &options_.metrics->counter("evaluator.tasks_dropped");
    metric_inc_hits_ =
        &options_.metrics->counter("evaluator.incremental.hits");
    metric_inc_fallbacks_ =
        &options_.metrics->counter("evaluator.incremental.fallbacks");
    metric_inc_machines_ = &options_.metrics->counter(
        "evaluator.incremental.machines_resimulated");
  }
}

void Evaluator::validate_gene(const Allocation& allocation,
                              std::size_t gene) const {
  const int m = allocation.machine[gene];
  if (m < 0 || static_cast<std::size_t>(m) >= num_machines_) {
    throw std::invalid_argument("machine index out of range");
  }
  if (!eligible_fast(task_rec_[gene].type, static_cast<std::uint32_t>(m))) {
    throw std::invalid_argument("task mapped to ineligible machine");
  }
  if (!allocation.pstate.empty()) {
    const int p = allocation.pstate[gene];
    if (p < 0 || static_cast<std::size_t>(p) >= dvfs_time_.size()) {
      throw std::invalid_argument("pstate index out of range");
    }
  }
}

void Evaluator::validate(const Allocation& allocation) const {
  const std::size_t tasks = num_tasks_;
  if (allocation.machine.size() != tasks ||
      allocation.order.size() != tasks) {
    throw std::invalid_argument("allocation size mismatch");
  }
  if (!allocation.pstate.empty() && allocation.pstate.size() != tasks) {
    throw std::invalid_argument("pstate size mismatch");
  }
  if (!allocation.pstate.empty() && !options_.dvfs) {
    throw std::invalid_argument("pstates present but no DVFS model");
  }
  for (std::size_t i = 0; i < tasks; ++i) {
    validate_gene(allocation, i);
  }
}

double Evaluator::tuf_value(const TaskRec& rec, double elapsed) const
    noexcept {
  // Bit-identical replay of TimeUtilityFunction::value over the flattened
  // span table (same expressions, same order — see docs/evaluator.md).
  if (elapsed < 0.0) elapsed = 0.0;
  const std::uint32_t first = rec.tuf_run >> 8U;
  const std::uint32_t last = first + (rec.tuf_run & 0xFFU);
  for (std::uint32_t k = first; k < last; ++k) {
    const TufSpan& span = tuf_spans_[k];
    if (elapsed < span.end) {
      const double width = span.end - span.start;
      const double f = width > 0.0 ? (elapsed - span.start) / width : 1.0;
      switch (span.shape) {
        case TufInterval::Shape::kConstant:
          return rec.tuf_priority * span.begin_fraction;
        case TufInterval::Shape::kLinear:
          return rec.tuf_priority *
                 (span.begin_fraction +
                  (span.end_fraction - span.begin_fraction) * f);
        case TufInterval::Shape::kExponential:
          // b * (e/b)^f via exp(f * log(e/b)) with the log precomputed at
          // construction — bit-identical to TimeUtilityFunction::value,
          // which evaluates the same expression on the same operands.
          return rec.tuf_priority * span.begin_fraction *
                 std::exp(f * span.log_ratio);
      }
    }
  }
  return rec.tuf_residual;
}

template <typename PerTask>
void Evaluator::step_task(std::uint32_t i, MachinePartial& mp,
                          const Allocation& allocation, bool use_dvfs,
                          PerTask&& per_task) const {
  const TaskRec& rec = task_rec_[i];
  const std::size_t row =
      2 * (static_cast<std::size_t>(rec.type) * num_machines_ +
           static_cast<std::size_t>(allocation.machine[i]));
  double exec = cost_tm_[row];
  double power = cost_tm_[row + 1];
  if (use_dvfs) {
    const auto p = static_cast<std::size_t>(allocation.pstate[i]);
    exec *= dvfs_time_[p];
    power *= dvfs_power_[p];
  }

  ++mp.count;
  const double arrival = rec.arrival;
  const double start = std::max(mp.tail, arrival);
  const double finish = start + exec;
  const double utility = tuf_value(rec, finish - arrival);

  if (options_.drop_worthless_tasks && utility <= options_.drop_threshold) {
    ++mp.dropped;
    per_task(i, TaskOutcome{allocation.machine[i], 0.0, 0.0, 0.0, 0.0,
                            true});
    return;
  }

  mp.tail = finish;
  mp.busy += exec;
  const double energy = exec * power;  // EEC, Eq. (2)
  mp.utility += utility;
  mp.energy += energy;
  per_task(i, TaskOutcome{allocation.machine[i], start, finish, utility,
                          energy, false});
}

Evaluation Evaluator::reduce(const EvalState& state) const {
  Evaluation total;
  for (std::size_t m = 0; m < state.machines.size(); ++m) {
    const MachinePartial& mp = state.machines[m];
    total.utility += mp.utility;
    total.energy += mp.energy;
    total.makespan = std::max(total.makespan, mp.tail);
    total.dropped += mp.dropped;
  }
  if (!idle_watts_m_.empty()) {
    // A used machine is powered from t = 0 until its queue drains; gaps
    // (waiting for arrivals) bill at the machine type's idle wattage.
    for (std::size_t m = 0; m < state.machines.size(); ++m) {
      const MachinePartial& mp = state.machines[m];
      if (mp.tail <= 0.0) continue;  // never used
      total.idle_energy += idle_watts_m_[m] * (mp.tail - mp.busy);
    }
    total.energy += total.idle_energy;
  }
  return total;
}

template <typename PerTask>
Evaluation Evaluator::run(const Allocation& allocation, EvalState& state,
                          PerTask&& per_task) const {
  const std::size_t tasks = num_tasks_;

  // Execution sequence: global scheduling order, ties broken by index
  // (stable), independent of arrival times (§IV-D).  Orders produced by the
  // genetic operators always stay within [0, T), so a stable counting sort
  // covers the hot path; arbitrary user-supplied orders fall back to a
  // comparison sort.  Scratch is thread_local: evaluate() runs concurrently
  // on the population-evaluation pool.
  thread_local std::vector<std::uint32_t> sequence;
  sequence.resize(tasks);
  // Range check fused into the counting pass: a negative order wraps to a
  // huge unsigned value, so one unsigned compare covers both ends.
  thread_local std::vector<std::uint32_t> offsets;
  offsets.assign(tasks + 1, 0);
  bool orders_in_range = true;
  for (std::size_t i = 0; i < tasks; ++i) {
    const auto o = static_cast<std::uint32_t>(allocation.order[i]);
    if (o >= tasks) {
      orders_in_range = false;
      break;
    }
    ++offsets[o + 1];
  }
  if (orders_in_range) {
    for (std::size_t k = 1; k <= tasks; ++k) offsets[k] += offsets[k - 1];
    // Visiting tasks in index order keeps equal-order ties index-stable.
    for (std::size_t i = 0; i < tasks; ++i) {
      sequence[offsets[static_cast<std::size_t>(allocation.order[i])]++] =
          static_cast<std::uint32_t>(i);
    }
  } else {
    std::iota(sequence.begin(), sequence.end(), 0U);
    std::sort(sequence.begin(), sequence.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const int oa = allocation.order[a];
                const int ob = allocation.order[b];
                return oa != ob ? oa < ob : a < b;
              });
  }

  const bool use_dvfs =
      options_.dvfs.has_value() && !allocation.pstate.empty();

  state.machines.assign(num_machines_, MachinePartial{});
  for (const std::uint32_t i : sequence) {
    step_task(i, state.machines[static_cast<std::size_t>(
                     allocation.machine[i])],
              allocation, use_dvfs, per_task);
  }

  const Evaluation total = reduce(state);
  if (metric_evaluations_ != nullptr) {
    metric_evaluations_->add(1);
    if (total.dropped != 0) metric_dropped_->add(total.dropped);
  }
  return total;
}

Evaluation Evaluator::evaluate(const Allocation& allocation) const {
  validate(allocation);
  thread_local EvalState scratch;
  return run(allocation, scratch, [](std::uint32_t, const TaskOutcome&) {});
}

Evaluation Evaluator::evaluate(const Allocation& allocation,
                               EvalState& state) const {
  validate(allocation);
  return run(allocation, state, [](std::uint32_t, const TaskOutcome&) {});
}

Evaluation Evaluator::evaluate_trusted(const Allocation& allocation,
                                       EvalState& state) const {
  return run(allocation, state, [](std::uint32_t, const TaskOutcome&) {});
}

Evaluation Evaluator::evaluate_incremental(
    const Allocation& child, const Allocation& parent,
    const EvalState& parent_state, std::span<const std::uint32_t> touched,
    EvalState& out_state, bool trusted_child) const {
  const auto noop = [](std::uint32_t, const TaskOutcome&) {};
  // Fallback flavors: a full validate() when the shapes diverged (nothing
  // about the allocation can be trusted), or a touched-genes-only check
  // when the delta is merely too large — the untouched remainder is
  // byte-identical to the already-validated parent, so re-walking all T
  // genes would be pure overhead.
  const auto validate_touched = [&]() {
    for (const std::uint32_t g : touched) {
      if (g >= num_tasks_) {
        throw std::invalid_argument("touched gene index out of range");
      }
      if (!trusted_child) validate_gene(child, g);
    }
  };
  const auto count_fallback = [&]() {
    if (metric_inc_fallbacks_ != nullptr) metric_inc_fallbacks_->add(1);
  };
  const auto full_fallback = [&]() {
    validate(child);
    return run(child, out_state, noop);
  };

  if (!incremental_on_) return full_fallback();
  if (parent_state.machines.size() != num_machines_ ||
      child.machine.size() != num_tasks_ ||
      child.order.size() != num_tasks_ ||
      child.machine.size() != parent.machine.size() ||
      child.order.size() != parent.order.size() ||
      child.pstate.size() != parent.pstate.size()) {
    count_fallback();
    return full_fallback();
  }
  if (!child.pstate.empty() &&
      (child.pstate.size() != num_tasks_ || !options_.dvfs)) {
    count_fallback();
    return full_fallback();
  }

  // A delta touching over half the trace can't win even before counting
  // the dirty machines' bystander tasks — bail before doing any marking.
  if (touched.size() * 2 > num_tasks_) {
    count_fallback();
    validate_touched();
    return run(child, out_state, noop);
  }

  // Dirty machines: every machine that gained, lost, re-ordered, or
  // re-clocked a task.  Touched genes are validated here (the untouched
  // remainder is byte-identical to the validated parent).
  thread_local std::vector<std::uint8_t> dirty_flag;
  thread_local std::vector<std::uint32_t> dirty_list;
  dirty_flag.assign(num_machines_, 0);
  dirty_list.clear();
  const auto mark = [&](std::uint32_t m) {
    if (dirty_flag[m] == 0) {
      dirty_flag[m] = 1;
      dirty_list.push_back(m);
    }
  };
  for (const std::uint32_t g : touched) {
    if (g >= num_tasks_) {
      throw std::invalid_argument("touched gene index out of range");
    }
    if (!trusted_child) validate_gene(child, g);
    const int pm = parent.machine[g];
    if (pm < 0 || static_cast<std::size_t>(pm) >= num_machines_) {
      count_fallback();
      return full_fallback();  // parent violates its own contract
    }
    mark(static_cast<std::uint32_t>(child.machine[g]));
    mark(static_cast<std::uint32_t>(pm));
  }

  // Resimulation cost estimate (parent's per-machine populations are off
  // by at most |touched|): past half the trace a full pass is cheaper —
  // it pays one counting sort instead of per-machine comparison sorts.
  std::size_t estimated = touched.size();
  for (const std::uint32_t m : dirty_list) {
    estimated += parent_state.machines[m].count;
  }
  if (estimated * 2 > num_tasks_) {
    count_fallback();
    return run(child, out_state, noop);  // touched already validated above
  }

  // Bucket the dirty machines' tasks (child mapping) per machine in index
  // order, then sort each bucket by (order, index) — exactly the stable
  // sequence the full simulator's counting sort produces for that machine.
  // Machines are independent, so no cross-machine ordering is needed; the
  // per-bucket sorts replace a much costlier global three-key sort.
  thread_local std::vector<std::vector<std::uint32_t>> buckets;
  buckets.resize(num_machines_);
  for (const std::uint32_t m : dirty_list) buckets[m].clear();
  for (std::size_t i = 0; i < num_tasks_; ++i) {
    const auto m = static_cast<std::size_t>(child.machine[i]);
    if (dirty_flag[m] != 0) buckets[m].push_back(static_cast<std::uint32_t>(i));
  }

  out_state = parent_state;
  const bool use_dvfs = options_.dvfs.has_value() && !child.pstate.empty();
  // Sort each bucket by (order, index) on packed 64-bit keys — one
  // sequential gather, then a comparator-free sort — rather than a lambda
  // re-reading order[] per comparison.  XORing the sign bit maps signed
  // order comparison onto the unsigned key compare; the low word breaks
  // ties by index, so the sequence is exactly the one the full
  // simulator's stable counting sort produces for that machine.
  thread_local std::vector<std::uint64_t> keys;
  for (const std::uint32_t m : dirty_list) {
    const std::vector<std::uint32_t>& bucket = buckets[m];
    keys.clear();
    keys.reserve(bucket.size());
    for (const std::uint32_t i : bucket) {
      keys.push_back(
          (static_cast<std::uint64_t>(
               static_cast<std::uint32_t>(child.order[i]) ^ 0x80000000U)
           << 32U) |
          i);
    }
    std::sort(keys.begin(), keys.end());
    MachinePartial& mp = out_state.machines[m];
    mp = MachinePartial{};
    for (const std::uint64_t key : keys) {
      step_task(static_cast<std::uint32_t>(key), mp, child, use_dvfs, noop);
    }
  }

  const Evaluation total = reduce(out_state);
  if (metric_evaluations_ != nullptr) {
    metric_evaluations_->add(1);
    if (total.dropped != 0) metric_dropped_->add(total.dropped);
  }
  if (metric_inc_hits_ != nullptr) {
    metric_inc_hits_->add(1);
    metric_inc_machines_->add(dirty_list.size());
  }
  return total;
}

std::pair<Evaluation, std::vector<TaskOutcome>> Evaluator::detail(
    const Allocation& allocation) const {
  validate(allocation);
  std::vector<TaskOutcome> outcomes(trace_->size());
  thread_local EvalState scratch;
  Evaluation total = run(allocation, scratch, [&](std::uint32_t i,
                                                  const TaskOutcome& o) {
    outcomes[i] = o;
  });
  return {total, std::move(outcomes)};
}

}  // namespace eus
