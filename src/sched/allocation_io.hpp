#pragma once

// Allocation persistence: the deployable artifact of the whole analysis is
// a concrete task→machine mapping with its scheduling order.  This CSV
// form (task,machine,order[,pstate]) is what an administrator exports from
// the front and hands to a dispatcher.

#include <string>

#include "sched/allocation.hpp"

namespace eus {

/// Serializes as "task,machine,order[,pstate]" rows with a header.  The
/// pstate column appears only when the allocation carries P-states.
[[nodiscard]] std::string allocation_to_csv(const Allocation& allocation);

/// Parses allocation_to_csv() output; throws std::runtime_error on
/// malformed input (bad header, ragged rows, non-integer cells, task ids
/// out of order).
[[nodiscard]] Allocation allocation_from_csv(const std::string& csv);

}  // namespace eus
