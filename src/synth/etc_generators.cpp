#include "synth/etc_generators.hpp"

#include <stdexcept>

#include "synth/moments.hpp"

namespace eus {

Matrix range_based_etc(const RangeBasedParams& params, Rng& rng) {
  if (params.tasks == 0 || params.machines == 0) {
    throw std::invalid_argument("range-based ETC needs tasks and machines");
  }
  if (params.task_range <= 1.0 || params.machine_range <= 1.0) {
    throw std::invalid_argument("range-based bounds must exceed 1");
  }
  Matrix etc(params.tasks, params.machines);
  for (std::size_t i = 0; i < params.tasks; ++i) {
    const double tau = rng.uniform(1.0, params.task_range);
    for (std::size_t j = 0; j < params.machines; ++j) {
      etc(i, j) = tau * rng.uniform(1.0, params.machine_range);
    }
  }
  return etc;
}

Matrix cvb_etc(const CvbParams& params, Rng& rng) {
  if (params.tasks == 0 || params.machines == 0) {
    throw std::invalid_argument("CVB ETC needs tasks and machines");
  }
  if (!(params.task_mean > 0.0) || !(params.task_cv > 0.0) ||
      !(params.machine_cv > 0.0)) {
    throw std::invalid_argument("CVB parameters must be positive");
  }
  const double alpha_task = 1.0 / (params.task_cv * params.task_cv);
  const double beta_task = params.task_mean / alpha_task;
  const double alpha_machine =
      1.0 / (params.machine_cv * params.machine_cv);

  Matrix etc(params.tasks, params.machines);
  for (std::size_t i = 0; i < params.tasks; ++i) {
    const double q = rng.gamma(alpha_task, beta_task);
    const double beta_machine = q / alpha_machine;
    for (std::size_t j = 0; j < params.machines; ++j) {
      etc(i, j) = rng.gamma(alpha_machine, beta_machine);
    }
  }
  return etc;
}

const char* to_string(HeterogeneityClass c) noexcept {
  switch (c) {
    case HeterogeneityClass::kHiHi:
      return "hi-hi";
    case HeterogeneityClass::kHiLo:
      return "hi-lo";
    case HeterogeneityClass::kLoHi:
      return "lo-hi";
    case HeterogeneityClass::kLoLo:
      return "lo-lo";
  }
  return "unknown";
}

Matrix cvb_etc_for_class(HeterogeneityClass c, std::size_t tasks,
                         std::size_t machines, double task_mean, Rng& rng) {
  constexpr double kHigh = 0.9;
  constexpr double kLow = 0.1;
  CvbParams params;
  params.tasks = tasks;
  params.machines = machines;
  params.task_mean = task_mean;
  switch (c) {
    case HeterogeneityClass::kHiHi:
      params.task_cv = kHigh;
      params.machine_cv = kHigh;
      break;
    case HeterogeneityClass::kHiLo:
      params.task_cv = kHigh;
      params.machine_cv = kLow;
      break;
    case HeterogeneityClass::kLoHi:
      params.task_cv = kLow;
      params.machine_cv = kHigh;
      break;
    case HeterogeneityClass::kLoLo:
      params.task_cv = kLow;
      params.machine_cv = kLow;
      break;
  }
  return cvb_etc(params, rng);
}

EtcHeterogeneity measure_heterogeneity(const Matrix& etc) {
  if (etc.empty()) throw std::invalid_argument("empty ETC");
  EtcHeterogeneity out;

  std::size_t rows_counted = 0;
  for (std::size_t r = 0; r < etc.rows(); ++r) {
    const auto values = etc.row_finite(r);
    if (values.size() < 2) continue;
    out.machine_heterogeneity += compute_moments(values).cv;
    ++rows_counted;
  }
  if (rows_counted > 0) {
    out.machine_heterogeneity /= static_cast<double>(rows_counted);
  }

  std::size_t cols_counted = 0;
  for (std::size_t c = 0; c < etc.cols(); ++c) {
    const auto values = etc.col_finite(c);
    if (values.size() < 2) continue;
    out.task_heterogeneity += compute_moments(values).cv;
    ++cols_counted;
  }
  if (cols_counted > 0) {
    out.task_heterogeneity /= static_cast<double>(cols_counted);
  }
  return out;
}

}  // namespace eus
