#pragma once

// Inverse-CDF sampling from an arbitrary 1-D density via tabulation.  Used
// to draw row-average execution times and per-machine execution-time ratios
// from Gram-Charlier densities (§III-D2), restricted to the positive axis
// (execution times, powers, and ratios are all positive quantities).

#include <functional>
#include <vector>

namespace eus {

class TabulatedSampler {
 public:
  /// Tabulates `density` (need not be normalized; must be >= 0) on
  /// `points` equally spaced abscissae over [lo, hi] and builds the
  /// trapezoidal CDF.  Throws std::invalid_argument when the range is
  /// empty/invalid or the density integrates to (numerically) zero.
  TabulatedSampler(const std::function<double(double)>& density, double lo,
                   double hi, std::size_t points = 2048);

  /// Quantile function: maps u in [0,1] to a sample value by linear
  /// interpolation of the inverse CDF.
  [[nodiscard]] double quantile(double u) const noexcept;

  /// Draws with any U(0,1) source.
  template <typename Uniform01>
  [[nodiscard]] double sample(Uniform01&& uniform01) const {
    return quantile(uniform01());
  }

  [[nodiscard]] double lo() const noexcept { return grid_.front(); }
  [[nodiscard]] double hi() const noexcept { return grid_.back(); }

 private:
  std::vector<double> grid_;
  std::vector<double> cdf_;  ///< normalized, non-decreasing, cdf_[0] == 0
};

}  // namespace eus
