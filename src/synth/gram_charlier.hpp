#pragma once

// Gram-Charlier type-A expansion (Kendall, 1945): a probability density
// built from a target mean/stddev/skewness/kurtosis,
//
//   f(x) = phi(z)/sigma * [1 + g1/6 * He3(z) + (g2 - 3)/24 * He4(z)],
//   z = (x - mu)/sigma,
//
// with He_n the probabilist Hermite polynomials.  The raw expansion can dip
// negative for strong skew/kurtosis; density() clamps at zero, and the
// tabulated sampler renormalizes, which is the standard practical fix.

#include "synth/moments.hpp"

namespace eus {

class GramCharlierPdf {
 public:
  /// Targets the sample's mean/stddev/skewness/kurtosis.  Requires a
  /// positive stddev.
  explicit GramCharlierPdf(const Moments& target);

  /// Clamped (>= 0) unnormalized density at x.
  [[nodiscard]] double density(double x) const noexcept;

  /// The raw (possibly negative) expansion value at x — exposed for tests.
  [[nodiscard]] double raw(double x) const noexcept;

  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }

 private:
  double mean_;
  double stddev_;
  double skew_term_;      ///< g1 / 6
  double kurtosis_term_;  ///< (g2 - 3) / 24
};

}  // namespace eus
