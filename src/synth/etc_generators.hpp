#pragma once

// The two classic synthetic ETC/EPC generation methods of Ali, Siegel,
// Maheswaran, Hensgen & Ali (2000) — the paper's ref [15] for modeling
// "various heterogeneous systems" — plus the Al-Qawasmeh et al. (2011,
// ref [21]) aggregate heterogeneity measures used to characterize them.
//
// Range-based: ETC(i,j) = U(1, R_task) * U(1, R_machine), one inner draw
// per cell.  Coefficient-of-variation-based (CVB): per-task mean q_i ~
// Gamma with CV V_task, cell ETC(i,j) ~ Gamma(mean q_i, CV V_machine).
// The four canonical heterogeneity classes combine {high, low} task
// heterogeneity with {high, low} machine heterogeneity.

#include "data/matrix.hpp"
#include "util/rng.hpp"

namespace eus {

struct RangeBasedParams {
  std::size_t tasks = 0;
  std::size_t machines = 0;
  /// Upper bound of the per-task uniform draw (task heterogeneity knob).
  double task_range = 100.0;
  /// Upper bound of the per-cell uniform draw (machine heterogeneity knob).
  double machine_range = 10.0;
};

/// Ali et al.'s range-based method.  All entries in
/// [1, task_range * machine_range).
[[nodiscard]] Matrix range_based_etc(const RangeBasedParams& params, Rng& rng);

struct CvbParams {
  std::size_t tasks = 0;
  std::size_t machines = 0;
  /// Mean of the per-task gamma (overall execution-time scale).
  double task_mean = 100.0;
  /// Coefficient of variation across tasks (task heterogeneity knob).
  double task_cv = 0.5;
  /// Coefficient of variation across machines (machine heterogeneity knob).
  double machine_cv = 0.5;
};

/// Ali et al.'s CVB method.  E[entry] == task_mean.
[[nodiscard]] Matrix cvb_etc(const CvbParams& params, Rng& rng);

/// Canonical heterogeneity class.
enum class HeterogeneityClass { kHiHi, kHiLo, kLoHi, kLoLo };

[[nodiscard]] const char* to_string(HeterogeneityClass c) noexcept;

/// CVB matrix with the conventional CV settings for the class
/// (high = 0.9, low = 0.1) at the given size/scale.
[[nodiscard]] Matrix cvb_etc_for_class(HeterogeneityClass c,
                                       std::size_t tasks,
                                       std::size_t machines, double task_mean,
                                       Rng& rng);

/// Al-Qawasmeh-style aggregate heterogeneity measures of an ETC matrix
/// (ineligible entries excluded).
struct EtcHeterogeneity {
  /// Mean over tasks (rows) of the CV across machines — machine
  /// heterogeneity: how differently one task runs across the suite.
  double machine_heterogeneity = 0.0;
  /// Mean over machines (columns) of the CV across tasks — task
  /// heterogeneity: how varied the workload looks to one machine.
  double task_heterogeneity = 0.0;
};

[[nodiscard]] EtcHeterogeneity measure_heterogeneity(const Matrix& etc);

}  // namespace eus
