#include "synth/gram_charlier.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace eus {
namespace {

double normal_pdf(double z) noexcept {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double hermite3(double z) noexcept { return z * z * z - 3.0 * z; }

double hermite4(double z) noexcept {
  return z * z * z * z - 6.0 * z * z + 3.0;
}

}  // namespace

GramCharlierPdf::GramCharlierPdf(const Moments& target)
    : mean_(target.mean),
      stddev_(target.stddev),
      skew_term_(target.skewness / 6.0),
      kurtosis_term_((target.kurtosis - 3.0) / 24.0) {
  if (!(stddev_ > 0.0) || !std::isfinite(stddev_)) {
    throw std::invalid_argument("Gram-Charlier needs positive stddev");
  }
}

double GramCharlierPdf::raw(double x) const noexcept {
  const double z = (x - mean_) / stddev_;
  const double correction =
      1.0 + skew_term_ * hermite3(z) + kurtosis_term_ * hermite4(z);
  return normal_pdf(z) / stddev_ * correction;
}

double GramCharlierPdf::density(double x) const noexcept {
  const double v = raw(x);
  return v > 0.0 ? v : 0.0;
}

}  // namespace eus
