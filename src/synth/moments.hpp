#pragma once

// Sample-moment statistics: the paper's "mvsk" heterogeneity signature
// (mean, variation, skewness, kurtosis) from Al-Qawasmeh et al., used both
// to characterize ETC/EPC data and to parameterize the Gram-Charlier
// synthetic generator.

#include <span>

namespace eus {

struct Moments {
  double mean = 0.0;
  double variance = 0.0;  ///< population variance (divides by n)
  double stddev = 0.0;
  double cv = 0.0;        ///< coefficient of variation stddev/mean
  double skewness = 0.0;  ///< standardized third central moment
  double kurtosis = 0.0;  ///< standardized fourth central moment (normal = 3)
};

/// Computes population moments of `values`.  Requires at least one value;
/// with fewer than three, skewness/kurtosis are reported as 0/3 (normal).
/// Degenerate (zero-variance) samples also report 0/3.
[[nodiscard]] Moments compute_moments(std::span<const double> values);

/// Root-mean-square relative difference over {mean, cv, skewness,
/// kurtosis} — the fidelity score used to verify that synthetic data
/// preserves a source signature (0 == identical).  Components with |ref|
/// < 0.1 are compared absolutely to avoid division blow-ups.
[[nodiscard]] double mvsk_distance(const Moments& reference,
                                   const Moments& candidate);

}  // namespace eus
