#include "synth/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>

#include "synth/gram_charlier.hpp"
#include "synth/sampler.hpp"

namespace eus {
namespace {

/// Builds a positive-support sampler targeting the sample's mvsk.  When the
/// sample is (near-)degenerate the Gram-Charlier machinery would divide by
/// zero, so we fall back to a point mass at the mean.
class MvskSampler {
 public:
  MvskSampler(std::span<const double> values, const ExpansionConfig& cfg) {
    const Moments m = compute_moments(values);
    if (m.stddev <= 1e-12 * std::abs(m.mean) || m.stddev <= 0.0) {
      constant_ = m.mean;
      return;
    }
    const GramCharlierPdf pdf(m);
    const double lo =
        std::max(m.mean * 1e-3, m.mean - cfg.grid_sigmas * m.stddev);
    const double hi = m.mean + cfg.grid_sigmas * m.stddev;
    sampler_.emplace([pdf](double x) { return pdf.density(x); }, lo, hi,
                     cfg.grid_points);
  }

  [[nodiscard]] double draw(Rng& rng) const {
    if (!sampler_) return constant_;
    return sampler_->quantile(rng.uniform());
  }

 private:
  std::optional<TabulatedSampler> sampler_;
  double constant_ = 0.0;
};

/// Runs §III-D2 steps 1-2 on one matrix: returns a (base+new tasks) x
/// (base machine types) matrix whose first rows are the originals.
Matrix expand_matrix(const Matrix& base, std::size_t new_rows,
                     const ExpansionConfig& cfg, Rng& rng) {
  const std::size_t rows = base.rows();
  const std::size_t cols = base.cols();

  // Step 1: sample row averages for the new task types.
  std::vector<double> base_row_avgs(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    base_row_avgs[r] = base.row_mean_finite(r);
  }
  const MvskSampler row_avg_sampler(base_row_avgs, cfg);

  std::vector<double> new_row_avgs(new_rows);
  for (double& v : new_row_avgs) v = row_avg_sampler.draw(rng);

  // Step 2: per machine type, sample execution-time ratios for the new
  // task types from that machine's real-ratio signature.
  Matrix out(rows + new_rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) out(r, c) = base(r, c);
  }

  for (std::size_t c = 0; c < cols; ++c) {
    std::vector<double> ratios(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      ratios[r] = base(r, c) / base_row_avgs[r];
    }
    const MvskSampler ratio_sampler(ratios, cfg);
    for (std::size_t k = 0; k < new_rows; ++k) {
      const double ratio = ratio_sampler.draw(rng);
      out(rows + k, c) = ratio * new_row_avgs[k];
    }
  }
  return out;
}

}  // namespace

ExpandedSystem expand_system(const SystemModel& base,
                             const ExpansionConfig& cfg,
                             const std::vector<std::size_t>& instances_per_type,
                             Rng& rng) {
  for (const auto& mt : base.machine_types()) {
    if (mt.category != Category::kGeneral) {
      throw std::invalid_argument("expansion base must be all-general");
    }
  }
  if (cfg.min_tasks_per_special < 1 ||
      cfg.max_tasks_per_special < cfg.min_tasks_per_special) {
    throw std::invalid_argument("bad tasks-per-special range");
  }
  if (!(cfg.speedup > 0.0)) throw std::invalid_argument("bad speedup");

  const std::size_t base_types = base.num_machine_types();
  const std::size_t total_machine_types =
      base_types + cfg.special_machine_types;
  if (instances_per_type.size() != total_machine_types) {
    throw std::invalid_argument("instances_per_type size mismatch");
  }
  for (const std::size_t n : instances_per_type) {
    if (n == 0) throw std::invalid_argument("every type needs >= 1 instance");
  }

  const std::size_t total_tasks =
      base.num_task_types() + cfg.additional_task_types;
  if (cfg.special_machine_types * cfg.max_tasks_per_special > total_tasks) {
    throw std::invalid_argument("not enough task types for special machines");
  }

  // Steps 1-2, independently for ETC and EPC (per the paper).
  Matrix etc = expand_matrix(base.etc(), cfg.additional_task_types, cfg, rng);
  Matrix epc = expand_matrix(base.epc(), cfg.additional_task_types, cfg, rng);

  // Task catalog: originals + synthesized.
  std::vector<TaskType> task_types = base.task_types();
  for (std::size_t k = 0; k < cfg.additional_task_types; ++k) {
    task_types.push_back({"synthetic-task-" + std::to_string(k + 1),
                          Category::kGeneral, -1});
  }

  // Machine-type catalog: originals + special A, B, C, ...
  std::vector<MachineType> machine_types = base.machine_types();
  for (std::size_t s = 0; s < cfg.special_machine_types; ++s) {
    machine_types.push_back(
        {"Special-purpose machine " + std::string(1, char('A' + s)),
         Category::kSpecial});
  }

  // Step 3: assign disjoint accelerated task sets to the special machines
  // and extend both matrices with the special columns.
  std::vector<std::size_t> pool(total_tasks);
  std::iota(pool.begin(), pool.end(), 0);
  // Fisher-Yates shuffle driven by our Rng.
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.below(i)]);
  }

  ExpandedSystem result{SystemModel{}, {}};
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < cfg.special_machine_types; ++s) {
    const std::size_t count =
        cfg.min_tasks_per_special +
        rng.below(cfg.max_tasks_per_special - cfg.min_tasks_per_special + 1);
    std::vector<double> etc_col(total_tasks, kIneligible);
    std::vector<double> epc_col(total_tasks, 1.0);  // unused where ineligible
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t t = pool[cursor++];
      // Average execution time / power across the *general* machine types.
      double etc_avg = 0.0, epc_avg = 0.0;
      for (std::size_t c = 0; c < base_types; ++c) {
        etc_avg += etc(t, c);
        epc_avg += epc(t, c);
      }
      etc_avg /= static_cast<double>(base_types);
      epc_avg /= static_cast<double>(base_types);
      etc_col[t] = etc_avg / cfg.speedup;  // 10x faster...
      epc_col[t] = epc_avg;                // ...at undiminished power (§III-D2)
      task_types[t].category = Category::kSpecial;
      task_types[t].special_machine_type = static_cast<int>(base_types + s);
      result.special_task_types.push_back(t);
    }
    etc.append_col(etc_col);
    epc.append_col(epc_col);
  }

  // Machine instances per Table-III-style breakup.
  std::vector<Machine> machines;
  for (std::size_t ty = 0; ty < total_machine_types; ++ty) {
    for (std::size_t k = 0; k < instances_per_type[ty]; ++k) {
      std::string name = machine_types[ty].name;
      if (instances_per_type[ty] > 1) {
        name += " #" + std::to_string(k + 1);
      }
      machines.push_back({static_cast<int>(ty), std::move(name)});
    }
  }

  result.model =
      SystemModel(std::move(task_types), std::move(machine_types),
                  std::move(machines), std::move(etc), std::move(epc));
  return result;
}

FidelityReport etc_fidelity(const SystemModel& base,
                            const SystemModel& expanded,
                            std::size_t num_base_machine_types) {
  const auto row_avgs = [&](const SystemModel& sys, std::size_t cols) {
    std::vector<double> avgs;
    avgs.reserve(sys.num_task_types());
    for (std::size_t r = 0; r < sys.num_task_types(); ++r) {
      double sum = 0.0;
      for (std::size_t c = 0; c < cols; ++c) sum += sys.etc()(r, c);
      avgs.push_back(sum / static_cast<double>(cols));
    }
    return avgs;
  };

  FidelityReport report;
  report.base_row_averages =
      compute_moments(row_avgs(base, base.num_machine_types()));
  report.expanded_row_averages =
      compute_moments(row_avgs(expanded, num_base_machine_types));
  report.distance =
      mvsk_distance(report.base_row_averages, report.expanded_row_averages);
  return report;
}

}  // namespace eus
