#include "synth/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eus {

TabulatedSampler::TabulatedSampler(
    const std::function<double(double)>& density, double lo, double hi,
    std::size_t points) {
  if (!(hi > lo) || !std::isfinite(lo) || !std::isfinite(hi)) {
    throw std::invalid_argument("sampler range must be finite and non-empty");
  }
  if (points < 2) throw std::invalid_argument("sampler needs >= 2 points");

  grid_.resize(points);
  std::vector<double> pdf(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    grid_[i] = lo + step * static_cast<double>(i);
    const double d = density(grid_[i]);
    if (!(d >= 0.0) || !std::isfinite(d)) {
      throw std::invalid_argument("density must be finite and >= 0");
    }
    pdf[i] = d;
  }

  cdf_.resize(points);
  cdf_[0] = 0.0;
  for (std::size_t i = 1; i < points; ++i) {
    cdf_[i] = cdf_[i - 1] + 0.5 * (pdf[i - 1] + pdf[i]) * step;
  }
  const double total = cdf_.back();
  if (!(total > 0.0)) {
    throw std::invalid_argument("density integrates to zero on range");
  }
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;
}

double TabulatedSampler::quantile(double u) const noexcept {
  u = std::clamp(u, 0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  if (idx == 0) return grid_.front();
  const double c0 = cdf_[idx - 1];
  const double c1 = cdf_[idx];
  const double f = c1 > c0 ? (u - c0) / (c1 - c0) : 0.0;
  return grid_[idx - 1] + f * (grid_[idx] - grid_[idx - 1]);
}

}  // namespace eus
