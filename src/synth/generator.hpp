#pragma once

// The paper's §III-D2 synthetic-data procedure: grow a small measured
// ETC/EPC pair into a larger system while preserving its heterogeneity
// (mvsk) signature, then add 10x special-purpose machine types.
//
// Pipeline (run identically for ETC and for EPC):
//   1. Row averages of the real task types -> mvsk -> Gram-Charlier PDF ->
//      sample row averages for the new task types.
//   2. Per real machine type: execution-time *ratios* (entry / row average)
//      of the real task types -> mvsk -> Gram-Charlier PDF -> sample a
//      ratio for each new task type on that machine; new entry = ratio x
//      new row average.
//   3. Special-purpose machine types: pick 2-3 task types each; their ETC
//      on the special machine is the task's average execution time / 10;
//      their EPC is the average power (NOT divided by 10).  All other task
//      types are ineligible there.

#include <cstddef>
#include <vector>

#include "data/system.hpp"
#include "synth/moments.hpp"
#include "util/rng.hpp"

namespace eus {

struct ExpansionConfig {
  /// New task types to synthesize on top of the base ones (paper: 25).
  std::size_t additional_task_types = 25;
  /// Special-purpose machine types to create (paper: 4, named A..D).
  std::size_t special_machine_types = 4;
  /// Task types accelerated per special machine (paper: "two to three").
  std::size_t min_tasks_per_special = 2;
  std::size_t max_tasks_per_special = 3;
  /// Execution-time speedup on the owning special machine (paper: ~10x).
  double speedup = 10.0;
  /// Gram-Charlier tabulation controls.
  double grid_sigmas = 5.0;
  std::size_t grid_points = 2048;
};

struct ExpandedSystem {
  SystemModel model;
  /// Indices (into model.task_types()) that became special-purpose.
  std::vector<std::size_t> special_task_types;
};

/// Expands `base` (a fully general-purpose system, e.g. the historical
/// 5x9) per the config.  `instances_per_type` gives the machine-instance
/// count for every machine type of the *expanded* catalog, ordered as
/// [base general types..., special types...]; its size must equal
/// base.num_machine_types() + cfg.special_machine_types and every entry
/// must be >= 1.  All randomness comes from `rng`.
[[nodiscard]] ExpandedSystem expand_system(
    const SystemModel& base, const ExpansionConfig& cfg,
    const std::vector<std::size_t>& instances_per_type, Rng& rng);

/// Fidelity report: mvsk of the base vs expanded row-average populations
/// (used by bench_synth_fidelity and the property tests).
struct FidelityReport {
  Moments base_row_averages;
  Moments expanded_row_averages;
  double distance = 0.0;  ///< mvsk_distance between the two
};

[[nodiscard]] FidelityReport etc_fidelity(const SystemModel& base,
                                          const SystemModel& expanded,
                                          std::size_t num_base_machine_types);

}  // namespace eus
