#include "synth/consistency.hpp"

#include <algorithm>
#include <stdexcept>

namespace eus {
namespace {

/// -1 / 0 / +1: a uniformly faster, mixed, or uniformly slower than b.
int pair_order(const Matrix& etc, std::size_t a, std::size_t b) {
  bool a_wins = false;
  bool b_wins = false;
  for (std::size_t t = 0; t < etc.rows(); ++t) {
    if (etc(t, a) < etc(t, b)) a_wins = true;
    if (etc(t, b) < etc(t, a)) b_wins = true;
  }
  if (a_wins && b_wins) return 0;
  return a_wins ? -1 : 1;  // ties count as consistent either way
}

}  // namespace

const char* to_string(Consistency c) noexcept {
  switch (c) {
    case Consistency::kConsistent:
      return "consistent";
    case Consistency::kSemiConsistent:
      return "semi-consistent";
    case Consistency::kInconsistent:
      return "inconsistent";
  }
  return "unknown";
}

ConsistencyReport classify_consistency(const Matrix& etc) {
  if (etc.empty()) throw std::invalid_argument("empty ETC");
  const std::size_t machines = etc.cols();

  ConsistencyReport report;
  if (machines < 2 || etc.rows() < 2) {
    report.classification = Consistency::kConsistent;
    report.consistent_pair_fraction = 1.0;
    report.largest_consistent_subset = machines;
    return report;
  }

  // Pairwise total-order matrix.
  std::vector<std::vector<int>> order(machines,
                                      std::vector<int>(machines, 0));
  std::size_t consistent_pairs = 0;
  std::size_t total_pairs = 0;
  for (std::size_t a = 0; a < machines; ++a) {
    for (std::size_t b = a + 1; b < machines; ++b) {
      const int o = pair_order(etc, a, b);
      order[a][b] = o;
      order[b][a] = -o;
      ++total_pairs;
      if (o != 0) ++consistent_pairs;
    }
  }
  report.consistent_pair_fraction =
      static_cast<double>(consistent_pairs) /
      static_cast<double>(total_pairs);

  // Largest mutually consistent subset via greedy growth from each seed
  // machine (exact max-clique is overkill for suite-sized inputs; greedy
  // from every seed is a solid lower bound and exact for interval-like
  // structures such as speed-ordered suites).
  for (std::size_t seed = 0; seed < machines; ++seed) {
    std::vector<std::size_t> subset = {seed};
    for (std::size_t cand = 0; cand < machines; ++cand) {
      if (cand == seed) continue;
      const bool compatible =
          std::all_of(subset.begin(), subset.end(), [&](std::size_t m) {
            return order[m][cand] != 0;
          });
      if (compatible) subset.push_back(cand);
    }
    report.largest_consistent_subset =
        std::max(report.largest_consistent_subset, subset.size());
  }

  if (consistent_pairs == total_pairs) {
    report.classification = Consistency::kConsistent;
  } else if (report.largest_consistent_subset >= 3) {
    report.classification = Consistency::kSemiConsistent;
  } else {
    report.classification = Consistency::kInconsistent;
  }
  return report;
}

Matrix make_consistent(const Matrix& etc) {
  if (etc.empty()) throw std::invalid_argument("empty ETC");
  Matrix out = etc;
  std::vector<double> row(etc.cols());
  for (std::size_t t = 0; t < etc.rows(); ++t) {
    for (std::size_t m = 0; m < etc.cols(); ++m) row[m] = etc(t, m);
    std::sort(row.begin(), row.end());
    for (std::size_t m = 0; m < etc.cols(); ++m) out(t, m) = row[m];
  }
  return out;
}

}  // namespace eus
