#pragma once

// ETC consistency classification (Ali, Siegel et al. 2000, the paper's
// ref [15]): a matrix is *consistent* when machine superiority is total —
// if machine A beats B on one task it beats it on every task; fully
// *inconsistent* when no such order exists; *semi-consistent* when a
// machine subset is consistent.  Real suites (and the bundled historical
// data) are inconsistent, which is what makes mapping non-trivial.

#include <cstddef>
#include <vector>

#include "data/matrix.hpp"

namespace eus {

enum class Consistency { kConsistent, kSemiConsistent, kInconsistent };

[[nodiscard]] const char* to_string(Consistency c) noexcept;

struct ConsistencyReport {
  Consistency classification = Consistency::kInconsistent;
  /// Fraction of machine pairs with a total order across all tasks
  /// (1.0 == fully consistent).
  double consistent_pair_fraction = 0.0;
  /// Largest machine subset that is mutually consistent (>= 1).
  std::size_t largest_consistent_subset = 1;
};

/// Classifies `etc` (ineligible +inf entries are not supported here — pass
/// the general-machine submatrix).  A matrix with one machine or one task
/// is trivially consistent.  Throws std::invalid_argument on empty input.
[[nodiscard]] ConsistencyReport classify_consistency(const Matrix& etc);

/// Ali et al.'s construction of a consistent matrix from any matrix: sort
/// each row independently so column 0 is always the fastest machine.
/// Preserves each task's multiset of execution times.
[[nodiscard]] Matrix make_consistent(const Matrix& etc);

}  // namespace eus
