#include "synth/moments.hpp"

#include <cmath>
#include <stdexcept>

namespace eus {

Moments compute_moments(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("moments of empty sample");
  const auto n = static_cast<double>(values.size());

  Moments m;
  for (const double v : values) m.mean += v;
  m.mean /= n;

  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (const double v : values) {
    const double d = v - m.mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  m2 /= n;
  m3 /= n;
  m4 /= n;

  m.variance = m2;
  m.stddev = std::sqrt(m2);
  m.cv = m.mean != 0.0 ? m.stddev / std::abs(m.mean) : 0.0;

  if (values.size() < 3 || m2 <= 0.0) {
    m.skewness = 0.0;
    m.kurtosis = 3.0;
  } else {
    m.skewness = m3 / std::pow(m2, 1.5);
    m.kurtosis = m4 / (m2 * m2);
  }
  return m;
}

double mvsk_distance(const Moments& reference, const Moments& candidate) {
  const auto component = [](double ref, double cand) {
    const double scale = std::abs(ref) < 0.1 ? 1.0 : std::abs(ref);
    const double d = (cand - ref) / scale;
    return d * d;
  };
  const double sum = component(reference.mean, candidate.mean) +
                     component(reference.cv, candidate.cv) +
                     component(reference.skewness, candidate.skewness) +
                     component(reference.kurtosis, candidate.kurtosis);
  return std::sqrt(sum / 4.0);
}

}  // namespace eus
