#include "serve/handlers.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "core/fitness_cache.hpp"
#include "core/nsga2.hpp"
#include "core/study_engine.hpp"
#include "data/historical.hpp"
#include "pareto/archive.hpp"
#include "pareto/knee.hpp"
#include "sched/evaluator.hpp"
#include "telemetry/json.hpp"
#include "tenant/repair.hpp"
#include "util/stopwatch.hpp"

namespace eus::serve {

namespace {

std::string point_json(const EUPoint& point) {
  JsonObject o;
  o.field("energy", point.energy);
  o.field("utility", point.utility);
  return o.str();
}

std::string front_json(const std::vector<EUPoint>& front) {
  std::string out = "[";
  for (std::size_t i = 0; i < front.size(); ++i) {
    if (i != 0) out += ',';
    out += point_json(front[i]);
  }
  out += ']';
  return out;
}

std::string int_array_json(const std::vector<int>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
  return out;
}

std::string allocation_json(const Allocation& allocation) {
  JsonObject o;
  o.raw("machine", int_array_json(allocation.machine));
  o.raw("order", int_array_json(allocation.order));
  o.raw("pstate", int_array_json(allocation.pstate));
  return o.str();
}

/// One NSGA-II evolution, fully specified (handle_allocate and
/// handle_delta differ only in where these values come from).
struct EvolveSpec {
  std::size_t population = 32;
  std::size_t generations = 32;
  double mutation_probability = 0.25;
  std::uint64_t seed = 0;  ///< the *scenario* seed, pre-stride
  std::vector<SeedHeuristic> heuristics;   ///< greedy seeds to inject
  const std::vector<Allocation>* warm = nullptr;  ///< repaired archive genomes
};

/// Evolves one deadline-sliced NSGA-II population.  Returns whether the
/// deadline expired before the full budget ran; `out` always carries the
/// best front evolved so far and `out_genomes` (optional) its genomes, in
/// front order.
///
/// With warm seeds the reported front is the nondominated union of the
/// evolved front and the re-evaluated warm genomes.  Evaluation is a pure
/// function and archived genomes come from a previously *converged*
/// deterministic run, so when the archive holds the same scenario's cold
/// front this union weakly dominates the cold result at any budget — the
/// structural guarantee behind docs/tenant.md.
bool run_nsga2(const EvolveSpec& spec, const HandlerContext& ctx,
               const Scenario& scenario, const BiObjectiveProblem& problem,
               std::optional<double> remaining_ms, CachedResult& out,
               std::vector<Allocation>* out_genomes) {
  Nsga2Config config;
  config.population_size = spec.population;
  config.mutation_probability = spec.mutation_probability;
  // Population index 0 of a StudyEngine run over the same base seed: a
  // tenant-less served front must be bit-identical to the offline study's.
  config.seed = spec.seed + kPopulationSeedStride * 1;
  config.shared_pool = ctx.pool;
  config.metrics = ctx.metrics;

  Nsga2 algorithm(problem, config);
  std::vector<Allocation> seeds;
  seeds.reserve(spec.heuristics.size());
  for (const SeedHeuristic h : spec.heuristics) {
    seeds.push_back(make_seed(h, scenario.system, scenario.trace));
  }
  const bool warm = spec.warm != nullptr && !spec.warm->empty();
  if (warm) {
    algorithm.initialize_warm(seeds, *spec.warm);
  } else {
    algorithm.initialize(seeds);
  }

  // Short slices keep the deadline check responsive without perturbing the
  // result: iterate(a) then iterate(b) is identical to iterate(a + b).
  const Stopwatch clock;
  const std::size_t total = spec.generations;
  const std::size_t slice =
      std::clamp<std::size_t>(total / 32, 1, 64);  // bounds check latency
  std::size_t done = 0;
  bool expired = remaining_ms.has_value() && *remaining_ms <= 0.0;
  while (done < total && !expired) {
    const std::size_t step = std::min(slice, total - done);
    algorithm.iterate(step);
    done += step;
    expired = remaining_ms.has_value() &&
              clock.milliseconds() >= *remaining_ms && done < total;
  }
  out.evaluations = algorithm.evaluations();
  out.generations = done;

  if (!warm) {
    out.front = algorithm.front_points();
    if (out_genomes != nullptr) {
      out_genomes->clear();
      for (const Individual& ind : algorithm.front()) {
        out_genomes->push_back(ind.genome);
      }
    }
    return expired;
  }

  // Union the evolved front with the warm genomes themselves: evolution can
  // drop an injected extreme through crowding, and the archive's points must
  // survive into the response for the weak-dominance guarantee to hold.
  std::vector<Allocation> pool;
  std::vector<EUPoint> pool_points;
  for (const Individual& ind : algorithm.front()) {
    pool.push_back(ind.genome);
    pool_points.push_back(ind.objectives);
  }
  for (const Allocation& genome : *spec.warm) {
    pool.push_back(genome);
    pool_points.push_back(problem.evaluate(genome));
    ++out.evaluations;
  }
  ParetoArchive merged;  // unbounded: a union, not a store
  for (std::size_t i = 0; i < pool.size(); ++i) {
    merged.insert(pool_points[i], i, FitnessCache::fingerprint(pool[i]));
  }
  out.front = merged.points();
  if (out_genomes != nullptr) {
    out_genomes->clear();
    for (const ParetoArchive::Entry& e : merged.entries()) {
      out_genomes->push_back(pool[e.tag]);
    }
  }
  return expired;
}

/// Resolves a pareto-query against a computed front: constrained picks
/// scan the ascending-energy front, the unconstrained default is the
/// utility-per-energy knee (the paper's "most efficient operating point").
std::optional<EUPoint> select_point(const ParetoQuery& query,
                                    const std::vector<EUPoint>& front) {
  if (front.empty()) return std::nullopt;
  if (query.max_energy || query.min_utility) {
    std::optional<EUPoint> pick;
    for (const EUPoint& point : front) {
      if (query.max_energy && point.energy > *query.max_energy) break;
      if (query.min_utility && point.utility < *query.min_utility) continue;
      pick = point;  // last survivor == max utility within the budget
    }
    return pick;
  }
  try {
    return analyze_utility_per_energy(front).peak;
  } catch (const std::invalid_argument&) {
    return front.back();  // degenerate energies: fall back to max utility
  }
}

}  // namespace

std::string error_payload(std::string_view id, int code,
                          std::string_view status, std::string_view message) {
  JsonObject o;
  o.field("type", "response");
  if (!id.empty()) o.field("id", id);
  o.field("status", status);
  o.field("code", static_cast<std::int64_t>(code));
  o.field("error", message);
  return o.str();
}

namespace {

/// Removes spec.dropped_machines from an already-built scenario.  The trace
/// is left untouched: drops happen *after* trace generation, so a delta'd
/// scenario optimizes the same workload over fewer machines.
Scenario apply_drops(Scenario scenario, const ScenarioSpec& spec) {
  if (spec.dropped_machines.empty()) return scenario;
  try {
    scenario.system =
        tenant::drop_machine_instances(scenario.system, spec.dropped_machines);
  } catch (const std::invalid_argument& e) {
    throw ProtocolError(std::string("infeasible machine drop: ") + e.what());
  }
  return scenario;
}

}  // namespace

Scenario build_scenario(const ScenarioSpec& spec) {
  if (spec.name == "dataset1") return apply_drops(make_dataset1(spec.seed), spec);
  if (spec.name == "dataset2") return apply_drops(make_dataset2(spec.seed), spec);
  if (spec.name == "dataset3") return apply_drops(make_dataset3(spec.seed), spec);
  if (spec.name == "custom") {
    return apply_drops(
        make_custom_scenario("custom", historical_system(), spec.tasks,
                             spec.window_s, spec.seed),
        spec);
  }
  // Inline system from the request's ETC/EPC matrices.
  const std::size_t num_task_types = spec.etc.size();
  const std::size_t num_machine_types = spec.etc.front().size();
  std::vector<TaskType> task_types(num_task_types);
  for (std::size_t t = 0; t < num_task_types; ++t) {
    task_types[t].name = "task" + std::to_string(t);
  }
  std::vector<MachineType> machine_types(num_machine_types);
  std::vector<Machine> machines;
  for (std::size_t m = 0; m < num_machine_types; ++m) {
    machine_types[m].name = "machine-type" + std::to_string(m);
    const std::size_t count =
        spec.machine_counts.empty() ? 1 : spec.machine_counts[m];
    for (std::size_t i = 0; i < count; ++i) {
      machines.push_back(Machine{static_cast<int>(m),
                                 machine_types[m].name + " #" +
                                     std::to_string(i + 1)});
    }
  }
  try {
    SystemModel system(std::move(task_types), std::move(machine_types),
                       std::move(machines), Matrix::from_rows(spec.etc),
                       Matrix::from_rows(spec.epc));
    return apply_drops(
        make_custom_scenario("inline", std::move(system), spec.tasks,
                             spec.window_s, spec.seed),
        spec);
  } catch (const std::invalid_argument& e) {
    throw ProtocolError(std::string("invalid inline scenario: ") + e.what());
  }
}

HandleResult handle_allocate(const ServeRequest& request,
                             const HandlerContext& ctx,
                             std::optional<double> remaining_ms,
                             double queue_ms) {
  const Stopwatch service;
  try {
    const std::string key = request_fingerprint(request);
    std::optional<CachedResult> cached;
    if (ctx.cache != nullptr) cached = ctx.cache->lookup(key);
    const bool cache_hit = cached.has_value();

    // The warm-start archive participates only for tenant-scoped
    // population runs: heuristics are single evaluations and the tenant-
    // less path must stay bit-identical to the offline StudyEngine.
    const bool archivable = ctx.archive != nullptr && !request.tenant.empty() &&
                            request.mode != ModeKind::kHeuristic;
    bool warm = false;
    bool partial = false;
    CachedResult result;
    if (cache_hit) {
      result = std::move(*cached);
    } else {
      const Scenario scenario = build_scenario(request.scenario);
      if (request.mode == ModeKind::kHeuristic) {
        result.allocation =
            make_seed(request.heuristic, scenario.system, scenario.trace);
        const Evaluator evaluator(scenario.system, scenario.trace);
        const Evaluation e = evaluator.evaluate(result.allocation);
        result.front = {EUPoint{e.energy, e.utility}};
        result.has_allocation = true;
        result.evaluations = 1;
      } else {
        const UtilityEnergyProblem problem(scenario.system, scenario.trace);
        const std::string scenario_key = scenario_fingerprint(request.scenario);
        std::vector<Allocation> repaired;
        if (archivable) {
          if (const std::optional<tenant::ArchivedFront> hit =
                  ctx.archive->lookup(request.tenant, scenario_key)) {
            repaired = tenant::repair_genomes(hit->genomes, problem);
          }
        }
        warm = !repaired.empty();
        EvolveSpec spec;
        spec.population = request.nsga2.population;
        spec.generations = request.nsga2.generations;
        spec.mutation_probability = request.nsga2.mutation_probability;
        spec.seed = request.scenario.seed;
        spec.heuristics = request.nsga2.seeds;
        if (warm) spec.warm = &repaired;
        std::vector<Allocation> genomes;
        partial =
            run_nsga2(spec, ctx, scenario, problem, remaining_ms, result,
                      archivable ? &genomes : nullptr);
        if (archivable && !partial) {
          ctx.archive->put(request.tenant, scenario_key, "", genomes,
                           result.front);
        }
      }
      // Partial fronts are deadline artifacts, not the fingerprint's true
      // result — never let them satisfy a later full-budget request.
      if (ctx.cache != nullptr && !partial) ctx.cache->insert(key, result);
    }

    int code = partial ? kCodePartial : kCodeOk;
    std::optional<EUPoint> point;
    if (request.mode == ModeKind::kParetoQuery) {
      point = select_point(request.query, result.front);
      if (!point) {
        return {kCodeUnsatisfiable,
                error_payload(request.id, kCodeUnsatisfiable, "error",
                              "no front point satisfies the query "
                              "constraints")};
      }
    } else if (request.mode == ModeKind::kHeuristic &&
               !result.front.empty()) {
      point = result.front.front();
    }

    JsonObject o;
    o.field("type", "response");
    if (!request.id.empty()) o.field("id", request.id);
    o.field("status", partial ? "partial" : "ok");
    o.field("code", static_cast<std::int64_t>(code));
    std::string mode{to_string(request.mode)};
    if (request.mode == ModeKind::kHeuristic) {
      mode += std::string(":") + heuristic_slug(request.heuristic);
    }
    o.field("mode", mode);
    o.field("scenario", request.scenario.name);
    if (!request.tenant.empty()) {
      o.field("tenant", request.tenant);
      o.field("warm", warm);
    }
    o.field("cache", cache_hit ? "hit" : "miss");
    o.raw("front", front_json(result.front));
    if (point) o.raw("objectives", point_json(*point));
    if (result.has_allocation) {
      o.raw("allocation", allocation_json(result.allocation));
    }
    o.field("generations", static_cast<std::uint64_t>(result.generations));
    o.field("evaluations", result.evaluations);
    o.field("deadline_exceeded", partial);
    JsonObject timing;
    timing.field("queue_ms", queue_ms);
    timing.field("service_ms", service.milliseconds());
    o.raw("timing", timing.str());
    return {code, o.str()};
  } catch (const ProtocolError& e) {
    return {kCodeBadRequest,
            error_payload(request.id, kCodeBadRequest, "error", e.what())};
  } catch (const std::invalid_argument& e) {
    return {kCodeBadRequest,
            error_payload(request.id, kCodeBadRequest, "error", e.what())};
  } catch (const std::exception& e) {
    return {kCodeInternal,
            error_payload(request.id, kCodeInternal, "error", e.what())};
  }
}

HandleResult handle_delta(const ServeRequest& request,
                          const HandlerContext& ctx,
                          std::optional<double> remaining_ms,
                          double queue_ms) {
  const Stopwatch service;
  try {
    const DeltaRequest& delta = request.delta;
    const std::string base_key = scenario_fingerprint(delta.base);
    const ScenarioSpec mutated = apply_mutations(delta.base, delta.mutations);
    const std::string new_key = scenario_fingerprint(mutated);
    const Scenario scenario = build_scenario(mutated);
    const UtilityEnergyProblem problem(scenario.system, scenario.trace);

    // The archived base genomes were converged over the un-mutated system:
    // remap machine genes across any instances this delta dropped.
    std::vector<Allocation> repaired;
    if (ctx.archive != nullptr) {
      if (const std::optional<tenant::ArchivedFront> hit =
              ctx.archive->lookup(request.tenant, base_key)) {
        std::vector<int> index_map;
        if (!mutated.dropped_machines.empty()) {
          index_map = tenant::machine_index_map(
              scenario.system.num_machines() + mutated.dropped_machines.size(),
              mutated.dropped_machines);
        }
        repaired = tenant::repair_genomes(hit->genomes, problem, index_map);
      }
    }
    const bool warm = !repaired.empty();
    if (!warm && !delta.cold_fallback) {
      if (ctx.metrics != nullptr) {
        ctx.metrics->counter("serve.delta.unknown_base").add(1);
      }
      return {kCodeUnsatisfiable,
              error_payload(request.id, kCodeUnsatisfiable, "error",
                            "unknown base fingerprint " + base_key +
                                " for tenant " + request.tenant)};
    }

    EvolveSpec spec;
    spec.population = request.nsga2.population;
    spec.mutation_probability = request.nsga2.mutation_probability;
    spec.seed = mutated.seed;
    if (warm) {
      // Polish, don't restart: a converged-and-repaired population needs a
      // fraction of the cold budget (the delta-evaluator makes these
      // generations cheap, too).
      spec.generations =
          delta.polish_generations != 0
              ? delta.polish_generations
              : std::max<std::size_t>(1, request.nsga2.generations / 16);
      spec.warm = &repaired;
    } else {
      spec.generations = request.nsga2.generations;
      spec.heuristics = request.nsga2.seeds;
    }

    CachedResult result;
    std::vector<Allocation> genomes;
    const bool partial = run_nsga2(spec, ctx, scenario, problem, remaining_ms,
                                   result, &genomes);
    if (ctx.archive != nullptr && !partial) {
      ctx.archive->put(request.tenant, new_key, warm ? base_key : "", genomes,
                       result.front);
    }
    if (ctx.metrics != nullptr) {
      ctx.metrics->counter(warm ? "serve.delta.warm" : "serve.delta.cold")
          .add(1);
    }

    const int code = partial ? kCodePartial : kCodeOk;
    JsonObject o;
    o.field("type", "response");
    if (!request.id.empty()) o.field("id", request.id);
    o.field("status", partial ? "partial" : "ok");
    o.field("code", static_cast<std::int64_t>(code));
    o.field("mode", "nsga2");
    o.field("scenario", mutated.name);
    o.field("tenant", request.tenant);
    o.field("warm", warm);
    o.field("base_fingerprint", base_key);
    o.field("fingerprint", new_key);
    o.raw("front", front_json(result.front));
    o.field("generations", static_cast<std::uint64_t>(result.generations));
    o.field("evaluations", result.evaluations);
    o.field("deadline_exceeded", partial);
    JsonObject timing;
    timing.field("queue_ms", queue_ms);
    timing.field("service_ms", service.milliseconds());
    o.raw("timing", timing.str());
    return {code, o.str()};
  } catch (const ProtocolError& e) {
    return {kCodeBadRequest,
            error_payload(request.id, kCodeBadRequest, "error", e.what())};
  } catch (const std::invalid_argument& e) {
    return {kCodeBadRequest,
            error_payload(request.id, kCodeBadRequest, "error", e.what())};
  } catch (const std::exception& e) {
    return {kCodeInternal,
            error_payload(request.id, kCodeInternal, "error", e.what())};
  }
}

}  // namespace eus::serve
