#include "serve/handlers.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "core/nsga2.hpp"
#include "core/study_engine.hpp"
#include "data/historical.hpp"
#include "pareto/knee.hpp"
#include "sched/evaluator.hpp"
#include "telemetry/json.hpp"
#include "util/stopwatch.hpp"

namespace eus::serve {

namespace {

std::string point_json(const EUPoint& point) {
  JsonObject o;
  o.field("energy", point.energy);
  o.field("utility", point.utility);
  return o.str();
}

std::string front_json(const std::vector<EUPoint>& front) {
  std::string out = "[";
  for (std::size_t i = 0; i < front.size(); ++i) {
    if (i != 0) out += ',';
    out += point_json(front[i]);
  }
  out += ']';
  return out;
}

std::string int_array_json(const std::vector<int>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
  return out;
}

std::string allocation_json(const Allocation& allocation) {
  JsonObject o;
  o.raw("machine", int_array_json(allocation.machine));
  o.raw("order", int_array_json(allocation.order));
  o.raw("pstate", int_array_json(allocation.pstate));
  return o.str();
}

/// Evolves the request's single NSGA-II population, deadline-sliced.
/// Returns whether the deadline expired before the full budget ran; `out`
/// always carries the best front evolved so far.
bool run_nsga2(const ServeRequest& request, const HandlerContext& ctx,
               const Scenario& scenario, std::optional<double> remaining_ms,
               CachedResult& out) {
  const UtilityEnergyProblem problem(scenario.system, scenario.trace);

  Nsga2Config config;
  config.population_size = request.nsga2.population;
  config.mutation_probability = request.nsga2.mutation_probability;
  // Population index 0 of a StudyEngine run over the same base seed: the
  // served front must be bit-identical to the offline study's.
  config.seed = request.scenario.seed + kPopulationSeedStride * 1;
  config.shared_pool = ctx.pool;
  config.metrics = ctx.metrics;

  Nsga2 algorithm(problem, config);
  std::vector<Allocation> seeds;
  seeds.reserve(request.nsga2.seeds.size());
  for (const SeedHeuristic h : request.nsga2.seeds) {
    seeds.push_back(make_seed(h, scenario.system, scenario.trace));
  }
  algorithm.initialize(seeds);

  // Short slices keep the deadline check responsive without perturbing the
  // result: iterate(a) then iterate(b) is identical to iterate(a + b).
  const Stopwatch clock;
  const std::size_t total = request.nsga2.generations;
  const std::size_t slice =
      std::clamp<std::size_t>(total / 32, 1, 64);  // bounds check latency
  std::size_t done = 0;
  bool expired = remaining_ms.has_value() && *remaining_ms <= 0.0;
  while (done < total && !expired) {
    const std::size_t step = std::min(slice, total - done);
    algorithm.iterate(step);
    done += step;
    expired = remaining_ms.has_value() &&
              clock.milliseconds() >= *remaining_ms && done < total;
  }

  out.front = algorithm.front_points();
  out.evaluations = algorithm.evaluations();
  out.generations = done;
  return expired;
}

/// Resolves a pareto-query against a computed front: constrained picks
/// scan the ascending-energy front, the unconstrained default is the
/// utility-per-energy knee (the paper's "most efficient operating point").
std::optional<EUPoint> select_point(const ParetoQuery& query,
                                    const std::vector<EUPoint>& front) {
  if (front.empty()) return std::nullopt;
  if (query.max_energy || query.min_utility) {
    std::optional<EUPoint> pick;
    for (const EUPoint& point : front) {
      if (query.max_energy && point.energy > *query.max_energy) break;
      if (query.min_utility && point.utility < *query.min_utility) continue;
      pick = point;  // last survivor == max utility within the budget
    }
    return pick;
  }
  try {
    return analyze_utility_per_energy(front).peak;
  } catch (const std::invalid_argument&) {
    return front.back();  // degenerate energies: fall back to max utility
  }
}

}  // namespace

std::string error_payload(std::string_view id, int code,
                          std::string_view status, std::string_view message) {
  JsonObject o;
  o.field("type", "response");
  if (!id.empty()) o.field("id", id);
  o.field("status", status);
  o.field("code", static_cast<std::int64_t>(code));
  o.field("error", message);
  return o.str();
}

Scenario build_scenario(const ScenarioSpec& spec) {
  if (spec.name == "dataset1") return make_dataset1(spec.seed);
  if (spec.name == "dataset2") return make_dataset2(spec.seed);
  if (spec.name == "dataset3") return make_dataset3(spec.seed);
  if (spec.name == "custom") {
    return make_custom_scenario("custom", historical_system(), spec.tasks,
                                spec.window_s, spec.seed);
  }
  // Inline system from the request's ETC/EPC matrices.
  const std::size_t num_task_types = spec.etc.size();
  const std::size_t num_machine_types = spec.etc.front().size();
  std::vector<TaskType> task_types(num_task_types);
  for (std::size_t t = 0; t < num_task_types; ++t) {
    task_types[t].name = "task" + std::to_string(t);
  }
  std::vector<MachineType> machine_types(num_machine_types);
  std::vector<Machine> machines;
  for (std::size_t m = 0; m < num_machine_types; ++m) {
    machine_types[m].name = "machine-type" + std::to_string(m);
    const std::size_t count =
        spec.machine_counts.empty() ? 1 : spec.machine_counts[m];
    for (std::size_t i = 0; i < count; ++i) {
      machines.push_back(Machine{static_cast<int>(m),
                                 machine_types[m].name + " #" +
                                     std::to_string(i + 1)});
    }
  }
  try {
    SystemModel system(std::move(task_types), std::move(machine_types),
                       std::move(machines), Matrix::from_rows(spec.etc),
                       Matrix::from_rows(spec.epc));
    return make_custom_scenario("inline", std::move(system), spec.tasks,
                                spec.window_s, spec.seed);
  } catch (const std::invalid_argument& e) {
    throw ProtocolError(std::string("invalid inline scenario: ") + e.what());
  }
}

HandleResult handle_allocate(const ServeRequest& request,
                             const HandlerContext& ctx,
                             std::optional<double> remaining_ms,
                             double queue_ms) {
  const Stopwatch service;
  try {
    const std::string key = request_fingerprint(request);
    std::optional<CachedResult> cached;
    if (ctx.cache != nullptr) cached = ctx.cache->lookup(key);
    const bool cache_hit = cached.has_value();

    bool partial = false;
    CachedResult result;
    if (cache_hit) {
      result = std::move(*cached);
    } else {
      const Scenario scenario = build_scenario(request.scenario);
      if (request.mode == ModeKind::kHeuristic) {
        result.allocation =
            make_seed(request.heuristic, scenario.system, scenario.trace);
        const Evaluator evaluator(scenario.system, scenario.trace);
        const Evaluation e = evaluator.evaluate(result.allocation);
        result.front = {EUPoint{e.energy, e.utility}};
        result.has_allocation = true;
        result.evaluations = 1;
      } else {
        partial = run_nsga2(request, ctx, scenario, remaining_ms, result);
      }
      // Partial fronts are deadline artifacts, not the fingerprint's true
      // result — never let them satisfy a later full-budget request.
      if (ctx.cache != nullptr && !partial) ctx.cache->insert(key, result);
    }

    int code = partial ? kCodePartial : kCodeOk;
    std::optional<EUPoint> point;
    if (request.mode == ModeKind::kParetoQuery) {
      point = select_point(request.query, result.front);
      if (!point) {
        return {kCodeUnsatisfiable,
                error_payload(request.id, kCodeUnsatisfiable, "error",
                              "no front point satisfies the query "
                              "constraints")};
      }
    } else if (request.mode == ModeKind::kHeuristic &&
               !result.front.empty()) {
      point = result.front.front();
    }

    JsonObject o;
    o.field("type", "response");
    if (!request.id.empty()) o.field("id", request.id);
    o.field("status", partial ? "partial" : "ok");
    o.field("code", static_cast<std::int64_t>(code));
    std::string mode{to_string(request.mode)};
    if (request.mode == ModeKind::kHeuristic) {
      mode += std::string(":") + heuristic_slug(request.heuristic);
    }
    o.field("mode", mode);
    o.field("scenario", request.scenario.name);
    o.field("cache", cache_hit ? "hit" : "miss");
    o.raw("front", front_json(result.front));
    if (point) o.raw("objectives", point_json(*point));
    if (result.has_allocation) {
      o.raw("allocation", allocation_json(result.allocation));
    }
    o.field("generations", static_cast<std::uint64_t>(result.generations));
    o.field("evaluations", result.evaluations);
    o.field("deadline_exceeded", partial);
    JsonObject timing;
    timing.field("queue_ms", queue_ms);
    timing.field("service_ms", service.milliseconds());
    o.raw("timing", timing.str());
    return {code, o.str()};
  } catch (const ProtocolError& e) {
    return {kCodeBadRequest,
            error_payload(request.id, kCodeBadRequest, "error", e.what())};
  } catch (const std::invalid_argument& e) {
    return {kCodeBadRequest,
            error_payload(request.id, kCodeBadRequest, "error", e.what())};
  } catch (const std::exception& e) {
    return {kCodeInternal,
            error_payload(request.id, kCodeInternal, "error", e.what())};
  }
}

}  // namespace eus::serve
