#pragma once

// The daemon's lifecycle, extracted from tools/eus_served.cpp so it is
// unit-testable: a phased state machine plus the threads and teardown
// ordering around the serving engine (server.hpp).
//
// Phases form a one-way street:
//
//     eBooting ──> eRunning ──> eDraining ──> eHalting ──> eHalted
//         └──────────────────────^
//
// eBooting→eDraining covers a shutdown signal that lands before the
// listener is up: the runtime then halts cleanly without ever accepting a
// connection.  Transitions are CAS-enforced (RuntimeState::transition
// refuses anything not drawn above), so concurrent halt paths — a signal,
// an explicit halt(), the destructor — agree on a single linear history.
//
// Threads owned by the runtime:
//  - a signal thread: SIGINT/SIGTERM are blocked process-wide before any
//    other thread spawns (the mask is inherited), then consumed via
//    sigtimedwait on this thread — no async-signal-handler restrictions,
//    no self-pipe.
//  - a diagnostics thread: periodically snapshots the MetricsRegistry
//    into the JSONL run log ("type":"diagnostics" lines) so a run's
//    telemetry history survives the process.
//
// halt() runs the ordered teardown — halt_acceptor() → halt_queue() →
// halt_workers() → halt_recorder() — with the phase advanced in between;
// each step is idempotent and counted under serve.lifecycle.*.
// docs/runtime.md walks through the whole lifecycle.

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/scenario_catalog.hpp"
#include "serve/server.hpp"
#include "telemetry/metrics.hpp"
#include "util/stopwatch.hpp"

namespace eus::serve {

enum class Phase { eBooting, eRunning, eDraining, eHalting, eHalted };

[[nodiscard]] const char* to_string(Phase p) noexcept;

/// The atomic phase cell.  Shared read-only with the Server (healthz and
/// adminz get-config report the phase); only the runtime transitions it.
class RuntimeState {
 public:
  [[nodiscard]] Phase phase() const noexcept {
    return phase_.load(std::memory_order_acquire);
  }

  /// Atomically advances `from` → `to`; returns false when the machine is
  /// not in `from`, or when the edge is not one of the legal transitions.
  bool transition(Phase from, Phase to) noexcept;

  /// Whether `from` → `to` is an edge of the phase diagram above.
  [[nodiscard]] static bool legal(Phase from, Phase to) noexcept;

 private:
  std::atomic<Phase> phase_{Phase::eBooting};
};

struct RuntimeConfig {
  /// Engine configuration.  The runtime wires metrics/log/catalog/state
  /// itself when they are left null (tests may inject their own).
  ServerConfig server;
  /// Warm-start archive bounds (docs/tenant.md).  max_tenants = 0 disables
  /// the archive entirely — no warm starts, no archive-* admin verbs —
  /// unless tests injected their own store via server.archive.
  tenant::ArchiveConfig archive;
  /// Archive checkpoint path; empty = in-memory only.  Loaded (corruption-
  /// tolerantly: a bad file logs and cold-starts) during boot, written
  /// during halt() once the workers have drained — so the checkpoint holds
  /// every front the daemon ever answered with.
  std::string archive_path;
  /// JSONL run log path; empty = no log.
  std::string runlog_path;
  /// Diagnostics snapshot period; 0 = no diagnostics thread.
  double diagnostics_period_s = 0.0;
  /// Block SIGINT/SIGTERM and consume them on a dedicated thread (the
  /// daemon sets this; tests drive request_halt() directly instead).
  bool signal_thread = false;
};

/// Owns the daemon lifecycle end to end: construct, boot(), run() until a
/// signal or request_halt(), and the ordered halt() teardown.
class ServeRuntime {
 public:
  explicit ServeRuntime(RuntimeConfig config);
  ~ServeRuntime();  ///< halts (and drains) if still running

  ServeRuntime(const ServeRuntime&) = delete;
  ServeRuntime& operator=(const ServeRuntime&) = delete;

  /// Spawns the signal thread (when configured), starts the server, and
  /// advances eBooting → eRunning.  If a halt was requested before or
  /// during boot, the listener is never started and the runtime stays in
  /// eBooting for run()/halt() to finish off.  Throws on bind failure.
  void boot();

  /// Blocks until a halt is requested (signal thread or request_halt()),
  /// then runs halt().  Returns once the runtime is eHalted.
  void run();

  /// Requests a halt from any thread; returns immediately.
  void request_halt() noexcept;

  /// Ordered teardown: phase transitions interleaved with the server's
  /// halt steps, then halt_recorder() (final diagnostics snapshot, thread
  /// joins).  Idempotent; concurrent callers serialize and the losers
  /// return after the winner finishes.
  void halt();

  [[nodiscard]] Phase phase() const noexcept { return state_.phase(); }
  [[nodiscard]] const RuntimeState& state() const noexcept { return state_; }
  [[nodiscard]] Server& server() noexcept { return *server_; }
  [[nodiscard]] SharedCatalog& catalog() noexcept { return catalog_; }
  /// The effective warm-start archive (null when disabled).
  [[nodiscard]] tenant::ArchiveStore* archive() noexcept {
    return server_->config().archive;
  }
  [[nodiscard]] MetricsRegistry& metrics() noexcept {
    return server_->metrics();
  }

 private:
  void signal_loop();
  void diagnostics_loop();
  void halt_recorder();
  void write_diagnostics(const char* event);
  void log_lifecycle(const char* phase);

  RuntimeConfig config_;
  MetricsRegistry metrics_;   ///< used unless config_.server.metrics is set
  SharedCatalog catalog_;     ///< used unless config_.server.catalog is set
  RuntimeState state_;
  std::unique_ptr<RequestLog> owned_log_;  ///< from runlog_path
  RequestLog* log_ = nullptr;              ///< effective log (may be null)
  /// Owned warm-start archive; declared before server_ (the server holds a
  /// raw pointer and must be torn down first).
  std::unique_ptr<tenant::ArchiveStore> archive_;
  std::unique_ptr<Server> server_;
  Stopwatch uptime_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool halt_requested_ = false;         ///< guarded by mutex_
  std::atomic<bool> stop_threads_{false};
  std::thread signal_thread_;
  std::thread diagnostics_thread_;

  std::mutex halt_mutex_;
  bool halted_ = false;  ///< guarded by halt_mutex_
  std::atomic<bool> booted_{false};
  /// boot() attempted the checkpoint load; halt() only writes the
  /// checkpoint afterwards (a halt-before-boot must never clobber a real
  /// checkpoint with an empty store).
  std::atomic<bool> archive_loaded_{false};
};

}  // namespace eus::serve
