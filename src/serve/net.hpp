#pragma once

// Network plumbing shared by the single-node daemon (server.hpp) and the
// fleet router (fleet/router.hpp): the listen-socket acceptor, the set of
// per-connection reader threads, and the thread-safe JSONL request log.
// Factored out of server.hpp so the router does not have to link the whole
// request-execution engine to reuse the loopback TCP front end.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace eus::serve {

/// Thread-safe JSONL request log (one line per served request, plus a
/// config line at startup and periodic diagnostics snapshots).
/// EXPERIMENTS.md documents the schema.
class RequestLog {
 public:
  /// Appends to `path` (creating it when missing; existing lines are
  /// preserved so restarts extend one history).  Throws
  /// std::runtime_error when the file cannot be opened.
  explicit RequestLog(const std::string& path);
  ~RequestLog();

  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  void write(const std::string& json_line);
  /// Lines written through this instance (not pre-existing file lines).
  [[nodiscard]] std::size_t lines_written() const noexcept {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::atomic<std::size_t> lines_{0};
};

/// Listen socket + accept loop on a dedicated thread.  halt() is the
/// teardown: wake the loop, join it, close the socket.
class Acceptor {
 public:
  Acceptor() = default;
  ~Acceptor() { halt(); }

  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  /// Binds loopback:`port` (0 = ephemeral), listens, spawns the accept
  /// thread; `on_accept` receives each connected fd and takes ownership.
  /// Throws std::runtime_error when the port cannot be bound.
  void start(std::uint16_t port, std::function<void(int)> on_accept);

  /// The bound port (valid after start(); resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Wakes the accept loop and makes it exit; safe from any thread and
  /// does not block (request_stop's half of halt()).
  void interrupt() noexcept;

  /// interrupt() + join + close the listen socket.  Idempotent.
  void halt();

  [[nodiscard]] bool stopping() const noexcept {
    return stopping_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  std::function<void(int)> on_accept_;
  std::thread thread_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
};

/// The live per-connection reader threads.  adopt() spawns one; halt()
/// shuts every read side down and joins (run only after the workers have
/// resolved all pending response futures, or readers block forever).
class ConnectionSet {
 public:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  ConnectionSet() = default;
  ~ConnectionSet() { halt(); }

  ConnectionSet(const ConnectionSet&) = delete;
  ConnectionSet& operator=(const ConnectionSet&) = delete;

  /// Takes ownership of `fd` and runs `loop(connection)` on a new thread.
  void adopt(int fd, const std::function<void(Connection*)>& loop);

  /// Joins and forgets connections whose loop has finished (called from
  /// the accept path so idle closes do not accumulate threads).
  void reap();

  /// Closes `connection`'s socket exactly once (loops call this on exit).
  void close_fd(Connection* connection);

  /// Shuts down every read side, joins every reader, clears the set.
  /// Idempotent.  Callers must guarantee no concurrent adopt().
  void halt();

  [[nodiscard]] std::size_t active() const;

 private:
  mutable std::mutex mutex_;
  std::list<std::unique_ptr<Connection>> connections_;
};

}  // namespace eus::serve
