#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace eus::serve {

ClientConnection::~ClientConnection() { close(); }

ClientConnection::ClientConnection(ClientConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)) {}

ClientConnection& ClientConnection::operator=(
    ClientConnection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

void ClientConnection::connect(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw ConnectError(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    close();
    throw ConnectError("cannot connect to 127.0.0.1:" +
                       std::to_string(port) + ": " + reason);
  }
  const int enable = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
}

void ClientConnection::set_timeout_ms(long ms) noexcept {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void ClientConnection::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ClientConnection::send(std::string_view payload) {
  if (fd_ < 0) throw ConnectError("not connected");
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ConnectError(std::string("send(): ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string ClientConnection::receive() {
  if (fd_ < 0) throw ConnectError("not connected");
  std::vector<char> buffer(64 * 1024);
  while (true) {
    if (std::optional<std::string> payload = decoder_.next()) {
      return std::move(*payload);
    }
    const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
    if (n == 0) throw ConnectError("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ConnectError(std::string("recv(): ") + std::strerror(errno));
    }
    decoder_.feed(buffer.data(), static_cast<std::size_t>(n));
  }
}

std::string ClientConnection::call(std::string_view payload) {
  send(payload);
  return receive();
}

}  // namespace eus::serve
