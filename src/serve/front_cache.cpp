#include "serve/front_cache.hpp"

namespace eus::serve {

FrontCache::FrontCache(std::size_t capacity, MetricsRegistry* metrics)
    : capacity_(capacity < 1 ? 1 : capacity) {
  if (metrics != nullptr) {
    metric_hits_ = &metrics->counter("serve.cache.hits");
    metric_misses_ = &metrics->counter("serve.cache.misses");
    metric_evictions_ = &metrics->counter("serve.cache.evictions");
  }
}

std::optional<CachedResult> FrontCache::lookup(const std::string& key) {
  const std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    if (metric_misses_ != nullptr) metric_misses_->add();
    return std::nullopt;
  }
  ++hits_;
  if (metric_hits_ != nullptr) metric_hits_->add();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

void FrontCache::insert(const std::string& key, CachedResult result) {
  const std::lock_guard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    if (metric_evictions_ != nullptr) metric_evictions_->add();
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_[key] = lru_.begin();
}

void FrontCache::set_capacity(std::size_t capacity) {
  const std::lock_guard lock(mutex_);
  capacity_ = capacity < 1 ? 1 : capacity;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    if (metric_evictions_ != nullptr) metric_evictions_->add();
  }
}

std::size_t FrontCache::size() const {
  const std::lock_guard lock(mutex_);
  return lru_.size();
}

std::size_t FrontCache::capacity() const {
  const std::lock_guard lock(mutex_);
  return capacity_;
}

}  // namespace eus::serve
