#pragma once

// Query handlers behind the daemon's worker threads: turn one parsed
// allocate request into a response payload by driving the existing
// heuristics / NSGA-II / Pareto machinery.
//
// The nsga2 mode reproduces a StudyEngine single-population run bit-for-
// bit: the same seed perturbation (kPopulationSeedStride), the same seed
// chromosomes, the same generation count — so a served front is
// byte-identical to the offline study's.  The only serve-specific twist is
// deadline enforcement: generations run in short slices with the clock
// checked in between, and on expiry the best front evolved *so far* is
// returned, flagged `"status":"partial"` / code 206.
//
// Handlers are stateless and thread-safe; cross-request state (the LRU
// front cache, the shared evaluation pool, metrics) arrives through the
// HandlerContext.

#include <optional>
#include <string>

#include "serve/front_cache.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"
#include "util/thread_pool.hpp"
#include "workload/scenarios.hpp"

namespace eus::serve {

/// HTTP-flavored status codes used across the protocol: 200 ok, 206
/// partial (deadline hit), 400 bad request, 404 unsatisfiable query,
/// 500 handler failure, 503 overloaded/draining.
inline constexpr int kCodeOk = 200;
inline constexpr int kCodePartial = 206;
inline constexpr int kCodeBadRequest = 400;
inline constexpr int kCodeUnsatisfiable = 404;
inline constexpr int kCodeInternal = 500;
inline constexpr int kCodeOverloaded = 503;

struct HandlerContext {
  MetricsRegistry* metrics = nullptr;  ///< serve.* + nsga2.* sink (optional)
  FrontCache* cache = nullptr;         ///< LRU result cache (optional)
  ThreadPool* pool = nullptr;          ///< shared evaluation pool (optional)
};

struct HandleResult {
  int code = kCodeOk;
  std::string payload;  ///< complete response JSON document
};

/// Builds the canonical error/overload payload (also used by the server for
/// framing errors and queue backpressure, where no handler ever runs).
[[nodiscard]] std::string error_payload(std::string_view id, int code,
                                        std::string_view status,
                                        std::string_view message);

/// Materializes the scenario a request names.  Deterministic; throws
/// ProtocolError (inline system rejected by SystemModel validation) on
/// incoherent specs.
[[nodiscard]] Scenario build_scenario(const ScenarioSpec& spec);

/// Executes one allocate request end to end.  `remaining_ms` is the
/// request deadline budget left at dispatch time (nullopt = no deadline);
/// `queue_ms` is echoed into the response's timing block.  Never throws
/// ProtocolError past the boundary — invalid parameter combinations come
/// back as a 400 payload.
[[nodiscard]] HandleResult handle_allocate(const ServeRequest& request,
                                           const HandlerContext& ctx,
                                           std::optional<double> remaining_ms,
                                           double queue_ms);

}  // namespace eus::serve
