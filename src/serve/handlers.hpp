#pragma once

// Query handlers behind the daemon's worker threads: turn one parsed
// allocate request into a response payload by driving the existing
// heuristics / NSGA-II / Pareto machinery.
//
// The nsga2 mode reproduces a StudyEngine single-population run bit-for-
// bit: the same seed perturbation (kPopulationSeedStride), the same seed
// chromosomes, the same generation count — so a served front is
// byte-identical to the offline study's.  The only serve-specific twist is
// deadline enforcement: generations run in short slices with the clock
// checked in between, and on expiry the best front evolved *so far* is
// returned, flagged `"status":"partial"` / code 206.
//
// Warm starts (docs/tenant.md): a request carrying a tenant id consults
// the per-tenant ArchiveStore; archived genomes of the same scenario
// fingerprint are repaired and injected into generation 0, and the
// response front is the nondominated union of the evolved front with the
// re-evaluated archive — which is why a warm front weakly dominates the
// cold front at the same budget (the archive holds the deterministic cold
// run's own converged points).  The "delta" handler mutates an archived
// base scenario and re-polishes its front in a fraction of the cold
// generation budget, riding the incremental delta-evaluator.
//
// Handlers are stateless and thread-safe; cross-request state (the LRU
// front cache, the warm-start archive, the shared evaluation pool,
// metrics) arrives through the HandlerContext.

#include <optional>
#include <string>

#include "serve/front_cache.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"
#include "tenant/archive_store.hpp"
#include "util/thread_pool.hpp"
#include "workload/scenarios.hpp"

namespace eus::serve {

/// HTTP-flavored status codes used across the protocol: 200 ok, 206
/// partial (deadline hit), 400 bad request, 404 unsatisfiable query,
/// 500 handler failure, 503 overloaded/draining.
inline constexpr int kCodeOk = 200;
inline constexpr int kCodePartial = 206;
inline constexpr int kCodeBadRequest = 400;
inline constexpr int kCodeUnsatisfiable = 404;
inline constexpr int kCodeInternal = 500;
inline constexpr int kCodeOverloaded = 503;

struct HandlerContext {
  MetricsRegistry* metrics = nullptr;  ///< serve.* + nsga2.* sink (optional)
  FrontCache* cache = nullptr;         ///< LRU result cache (optional)
  ThreadPool* pool = nullptr;          ///< shared evaluation pool (optional)
  tenant::ArchiveStore* archive = nullptr;  ///< warm-start store (optional)
};

struct HandleResult {
  int code = kCodeOk;
  std::string payload;  ///< complete response JSON document
};

/// Builds the canonical error/overload payload (also used by the server for
/// framing errors and queue backpressure, where no handler ever runs).
[[nodiscard]] std::string error_payload(std::string_view id, int code,
                                        std::string_view status,
                                        std::string_view message);

/// Materializes the scenario a request names (including any
/// dropped_machines a delta mutation applied).  Deterministic; throws
/// ProtocolError (inline system rejected by SystemModel validation, or an
/// infeasible machine drop) on incoherent specs.
[[nodiscard]] Scenario build_scenario(const ScenarioSpec& spec);

/// Executes one allocate request end to end.  `remaining_ms` is the
/// request deadline budget left at dispatch time (nullopt = no deadline);
/// `queue_ms` is echoed into the response's timing block.  Never throws
/// ProtocolError past the boundary — invalid parameter combinations come
/// back as a 400 payload.
[[nodiscard]] HandleResult handle_allocate(const ServeRequest& request,
                                           const HandlerContext& ctx,
                                           std::optional<double> remaining_ms,
                                           double queue_ms);

/// Executes one delta request: resolves the tenant's archived base front,
/// repairs it for the mutated scenario, and re-polishes it over
/// `polish_generations` (a fraction of the cold budget).  An archive miss
/// either falls back to a full cold run (cold_fallback, the default) or
/// answers 404.  Results are archived under the mutated scenario's
/// fingerprint with the base as lineage; delta responses are never
/// front-cached (they depend on archive state).
[[nodiscard]] HandleResult handle_delta(const ServeRequest& request,
                                        const HandlerContext& ctx,
                                        std::optional<double> remaining_ms,
                                        double queue_ms);

}  // namespace eus::serve
