#pragma once

// LRU result cache for the daemon, keyed by request fingerprint (see
// protocol.hpp).  Scenario construction and NSGA-II evolution are pure
// functions of the request's scenario + mode parameters, so a repeated
// fingerprint can answer from the cached front/allocation without touching
// the evaluator — and "pareto-query" requests resolve against the front a
// prior "nsga2" request deposited.  Capacity-bounded (strict LRU eviction)
// and mutex-guarded: request handlers on different workers share one
// instance.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pareto/point.hpp"
#include "sched/allocation.hpp"
#include "telemetry/metrics.hpp"

namespace eus::serve {

/// What one allocate request computes: a front (nsga2 / pareto-query) or a
/// single allocation + objectives (heuristic — front then holds one point).
struct CachedResult {
  std::vector<EUPoint> front;
  Allocation allocation;        ///< heuristic modes only
  bool has_allocation = false;
  std::uint64_t evaluations = 0;
  std::size_t generations = 0;
};

class FrontCache {
 public:
  /// `capacity` = max resident results (>= 1); `metrics`, when set, gets
  /// "serve.cache.hits" / "serve.cache.misses" / "serve.cache.evictions"
  /// counters and must outlive the cache.
  explicit FrontCache(std::size_t capacity = 64,
                      MetricsRegistry* metrics = nullptr);

  FrontCache(const FrontCache&) = delete;
  FrontCache& operator=(const FrontCache&) = delete;

  /// Cached result for `key`, refreshing its recency; nullopt on miss.
  [[nodiscard]] std::optional<CachedResult> lookup(const std::string& key);

  /// Stores (or refreshes) `result` under `key`, evicting the least
  /// recently used entry when at capacity.
  void insert(const std::string& key, CachedResult result);

  /// Live capacity change (clamped >= 1; the admin plane's
  /// set-cache-entries verb).  Shrinking below the resident count evicts
  /// least-recently-used entries immediately, counted as evictions.
  void set_capacity(std::size_t capacity);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_;
  }

 private:
  struct Entry {
    std::string key;
    CachedResult result;
  };

  std::size_t capacity_;  ///< guarded by mutex_ (live-resizable)
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front == most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  Counter* metric_hits_ = nullptr;
  Counter* metric_misses_ = nullptr;
  Counter* metric_evictions_ = nullptr;
};

}  // namespace eus::serve
