#include "serve/runtime.hpp"

#include <csignal>
#include <ctime>
#include <stdexcept>
#include <utility>

#include "telemetry/json.hpp"

namespace eus::serve {

const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::eBooting:
      return "booting";
    case Phase::eRunning:
      return "running";
    case Phase::eDraining:
      return "draining";
    case Phase::eHalting:
      return "halting";
    case Phase::eHalted:
      return "halted";
  }
  return "?";
}

bool RuntimeState::legal(Phase from, Phase to) noexcept {
  switch (from) {
    case Phase::eBooting:
      return to == Phase::eRunning || to == Phase::eDraining;
    case Phase::eRunning:
      return to == Phase::eDraining;
    case Phase::eDraining:
      return to == Phase::eHalting;
    case Phase::eHalting:
      return to == Phase::eHalted;
    case Phase::eHalted:
      return false;
  }
  return false;
}

bool RuntimeState::transition(Phase from, Phase to) noexcept {
  if (!legal(from, to)) return false;
  return phase_.compare_exchange_strong(from, to, std::memory_order_acq_rel,
                                        std::memory_order_acquire);
}

ServeRuntime::ServeRuntime(RuntimeConfig config)
    : config_(std::move(config)) {
  if (config_.signal_thread) {
    // Block the shutdown signals *before* constructing the Server: its
    // evaluation ThreadPool spawns threads right here in the constructor,
    // and every thread must inherit the blocked mask or a process-directed
    // SIGTERM could hit one of them and take the default (fatal) action
    // instead of the signal thread's sigtimedwait.
    sigset_t mask;
    sigemptyset(&mask);
    sigaddset(&mask, SIGINT);
    sigaddset(&mask, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &mask, nullptr);
  }
  if (!config_.runlog_path.empty()) {
    owned_log_ = std::make_unique<RequestLog>(config_.runlog_path);
  }
  ServerConfig server_config = config_.server;
  if (server_config.metrics == nullptr) server_config.metrics = &metrics_;
  if (server_config.log == nullptr) server_config.log = owned_log_.get();
  if (server_config.catalog == nullptr) server_config.catalog = &catalog_;
  if (server_config.archive == nullptr && config_.archive.max_tenants > 0) {
    archive_ = std::make_unique<tenant::ArchiveStore>(config_.archive,
                                                      server_config.metrics);
    server_config.archive = archive_.get();
  }
  server_config.state = &state_;
  log_ = server_config.log;
  server_ = std::make_unique<Server>(server_config);
}

ServeRuntime::~ServeRuntime() { halt(); }

void ServeRuntime::boot() {
  if (booted_.exchange(true)) {
    throw std::logic_error("runtime already booted");
  }
  uptime_.reset();
  if (config_.signal_thread) {
    // The mask was blocked in the constructor (before any thread existed),
    // so this thread's sigtimedwait is the only consumer.
    signal_thread_ = std::thread([this] { signal_loop(); });
  }
  {
    const std::lock_guard lock(mutex_);
    if (halt_requested_) {
      // A shutdown beat the boot: never bind, never accept.  run()/halt()
      // take the eBooting → eDraining edge from here.
      return;
    }
  }
  // Reload the warm-start archive before the listener is up, so the first
  // accepted request already sees the previous run's fronts.  A corrupt
  // checkpoint cold-starts (archive.checkpoint.corrupt); it never aborts
  // the boot.
  if (archive_ != nullptr && !config_.archive_path.empty()) {
    const tenant::ArchiveStore::LoadResult result =
        archive_->load(config_.archive_path);
    archive_loaded_.store(true, std::memory_order_release);
    if (log_ != nullptr) {
      JsonObject o;
      o.field("type", "archive_load");
      o.field("path", config_.archive_path);
      o.field("result",
              result == tenant::ArchiveStore::LoadResult::kLoaded ? "loaded"
              : result == tenant::ArchiveStore::LoadResult::kMissing
                  ? "missing"
                  : "corrupt");
      o.field("tenants", static_cast<std::uint64_t>(archive_->tenants()));
      o.field("entries", static_cast<std::uint64_t>(archive_->entries()));
      log_->write(o.str());
    }
  }
  server_->start();
  state_.transition(Phase::eBooting, Phase::eRunning);
  log_lifecycle("running");
  if (config_.diagnostics_period_s > 0.0) {
    diagnostics_thread_ = std::thread([this] { diagnostics_loop(); });
  }
}

void ServeRuntime::run() {
  {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return halt_requested_; });
  }
  halt();
}

void ServeRuntime::request_halt() noexcept {
  {
    const std::lock_guard lock(mutex_);
    halt_requested_ = true;
  }
  cv_.notify_all();
}

void ServeRuntime::halt() {
  const std::lock_guard halt_lock(halt_mutex_);
  if (halted_) return;
  halted_ = true;
  request_halt();  // unblock run() waiters

  // eBooting → eDraining covers a halt before (or instead of) eRunning.
  if (!state_.transition(Phase::eRunning, Phase::eDraining)) {
    state_.transition(Phase::eBooting, Phase::eDraining);
  }
  log_lifecycle("draining");
  server_->halt_acceptor();
  server_->halt_queue();

  state_.transition(Phase::eDraining, Phase::eHalting);
  log_lifecycle("halting");
  server_->halt_workers();
  // Checkpoint after the drain: every request answered before the halt is
  // in the archive by now, and no worker can write to it anymore.
  if (archive_ != nullptr && !config_.archive_path.empty() &&
      archive_loaded_.load(std::memory_order_acquire)) {
    const bool saved = archive_->save(config_.archive_path);
    if (log_ != nullptr) {
      JsonObject o;
      o.field("type", "archive_save");
      o.field("path", config_.archive_path);
      o.field("saved", saved);
      o.field("tenants", static_cast<std::uint64_t>(archive_->tenants()));
      o.field("entries", static_cast<std::uint64_t>(archive_->entries()));
      log_->write(o.str());
    }
  }
  halt_recorder();

  state_.transition(Phase::eHalting, Phase::eHalted);
  log_lifecycle("halted");
}

void ServeRuntime::halt_recorder() {
  stop_threads_.store(true, std::memory_order_relaxed);
  cv_.notify_all();
  if (diagnostics_thread_.joinable()) diagnostics_thread_.join();
  if (signal_thread_.joinable()) signal_thread_.join();
  write_diagnostics("final");
  metrics().counter("serve.lifecycle.halt_recorder").add();
}

void ServeRuntime::signal_loop() {
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  // Wake every 100ms to poll the stop flag; a delivered signal returns
  // immediately.  sigtimedwait runs on this ordinary thread, so no
  // async-signal-safety constraints apply to what we do on receipt.
  timespec tick{};
  tick.tv_nsec = 100L * 1000L * 1000L;
  while (!stop_threads_.load(std::memory_order_relaxed)) {
    const int sig = ::sigtimedwait(&mask, nullptr, &tick);
    if (sig == SIGINT || sig == SIGTERM) {
      request_halt();
    }
  }
}

void ServeRuntime::diagnostics_loop() {
  const auto period =
      std::chrono::duration<double>(config_.diagnostics_period_s);
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      const bool stopping = cv_.wait_for(lock, period, [&] {
        return stop_threads_.load(std::memory_order_relaxed);
      });
      if (stopping) return;
    }
    write_diagnostics("periodic");
  }
}

void ServeRuntime::write_diagnostics(const char* event) {
  if (log_ == nullptr) return;
  const MetricsSnapshot snap = metrics().snapshot();
  JsonObject o;
  o.field("type", "diagnostics");
  o.field("event", event);
  o.field("t_s", uptime_.seconds());
  o.field("phase", to_string(state_.phase()));
  append_snapshot(o, snap);
  log_->write(o.str());
}

void ServeRuntime::log_lifecycle(const char* phase) {
  if (log_ == nullptr) return;
  JsonObject o;
  o.field("type", "lifecycle");
  o.field("t_s", uptime_.seconds());
  o.field("phase", phase);
  log_->write(o.str());
}

}  // namespace eus::serve
