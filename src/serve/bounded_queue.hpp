#pragma once

// Bounded MPMC work queue with explicit backpressure: try_push never
// blocks and never grows the queue past its capacity — a full queue is the
// caller's signal to shed load (eus_served answers an immediate
// 503-style error instead of buffering unboundedly).  close() starts the
// drain: further pushes are refused, pops keep succeeding until the queue
// empties, then return false so consumers exit cleanly.
//
// The capacity is a live knob (set_capacity — the admin plane's
// set-queue-depth verb lands here): shrinking never drops items already
// queued, it only tightens admission for future pushes.  push_control
// front-enqueues an out-of-band token ignoring capacity and closed state;
// the worker pool uses it to wake and retire a blocked worker on live
// shrink.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace eus::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless the queue is full or closed; returns whether the item
  /// was taken (on false the caller still owns `item`).
  [[nodiscard]] bool try_push(T&& item) {
    {
      const std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (FIFO) or the queue is closed and
  /// drained; returns nullopt only in the latter case.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Front-enqueues a control token, bypassing the capacity bound and the
  /// closed flag: the next pop returns it ahead of queued work.  Callers
  /// are expected to use this sparingly (one token per worker retired).
  void push_control(T&& item) {
    {
      const std::lock_guard lock(mutex_);
      items_.push_front(std::move(item));
    }
    not_empty_.notify_one();
  }

  /// Live capacity change (clamped >= 1).  Items already queued beyond a
  /// smaller capacity stay queued; only future try_push calls see the new
  /// bound.
  void set_capacity(std::size_t capacity) {
    const std::lock_guard lock(mutex_);
    capacity_ = capacity < 1 ? 1 : capacity;
  }

  /// Refuses new pushes; queued items remain poppable.  Idempotent.
  void close() {
    {
      const std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const {
    const std::lock_guard lock(mutex_);
    return capacity_;
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace eus::serve
