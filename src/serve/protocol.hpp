#pragma once

// The eus_served wire protocol: length-prefixed JSON frames over TCP.
//
// Frame layout: a 4-byte big-endian unsigned payload length, then exactly
// that many bytes of UTF-8 JSON.  Both directions use the same framing.
// Oversized frames are a protocol error — the decoder rejects them before
// buffering the payload, so a hostile length prefix cannot balloon memory.
//
// A request document carries a type ("allocate" | "delta" | "healthz" |
// "metricsz" | "adminz"), and for allocate: a scenario (named dataset,
// catalog alias, or inline ETC/EPC), a mode ("heuristic:<name>" | "nsga2" |
// "pareto-query"), optional NSGA-II budget parameters, an optional tenant
// id (enables the warm-start archive, docs/tenant.md) and an optional
// deadline.  "delta" mutates a tenant's previously optimized scenario
// (add/remove tasks, shrink the window, drop a machine) and re-polishes
// the archived front instead of restarting.  "adminz" is the live
// administration plane (docs/runtime.md): get-config, set-queue-depth,
// set-cache-entries, set-workers, catalog-reload, and the archive plane
// (archive-stats, archive-flush, archive-cap).  docs/serving.md documents
// the full schema with examples; parse_request enforces it and throws
// ProtocolError (with a human-readable reason) on any violation.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario_catalog.hpp"
#include "heuristics/seeds.hpp"
#include "util/json_value.hpp"

namespace eus::serve {

/// Default cap on a single frame's payload; a request larger than this is
/// rejected with a framing error (inline ETC/EPC matrices fit comfortably).
inline constexpr std::size_t kMaxFrameBytes = 4U << 20U;

/// Malformed frame or request document.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Renders `payload` as one frame (4-byte big-endian length + payload).
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame decoder: feed() raw bytes as they arrive, next() pops
/// one complete payload when available.  A length prefix beyond
/// `max_frame_bytes` throws ProtocolError immediately.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const char* data, std::size_t size);
  [[nodiscard]] std::optional<std::string> next();

  /// Bytes buffered but not yet returned (tests; bounded by one frame).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size();
  }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
};

enum class RequestKind { kAllocate, kDelta, kHealthz, kMetricsz, kAdminz };

enum class ModeKind { kHeuristic, kNsga2, kParetoQuery };

/// Live-administration verbs (served inline like healthz — never queued).
/// The backend/fleet verbs are understood only by eus_router; eus_served
/// answers them with a 400 explaining there is no fleet to administer.
enum class AdminAction {
  kGetConfig,      ///< effective configuration + phase snapshot
  kSetQueueDepth,  ///< live bounded-queue capacity
  kSetCacheEntries,///< live LRU front-cache capacity
  kSetWorkers,     ///< live worker-pool resize (grow or shrink)
  kCatalogReload,  ///< atomically hot-swap the named-scenario catalog
  kEnableBackend,  ///< router: mark a named backend routable again
  kDisableBackend, ///< router: drain a named backend out of the rotation
  kFleetReload,    ///< router: atomically swap the fleet config
  kArchiveStats,   ///< per-tenant warm-start archive occupancy + hit rates
  kArchiveFlush,   ///< drop one tenant's archive entries (or all tenants')
  kArchiveCap,     ///< set a tenant's archive entry cap
};

[[nodiscard]] const char* to_string(RequestKind k) noexcept;
[[nodiscard]] const char* to_string(ModeKind m) noexcept;
[[nodiscard]] const char* to_string(AdminAction a) noexcept;

/// The payload of an "adminz" request.
struct AdminRequest {
  AdminAction action = AdminAction::kGetConfig;
  std::size_t value = 0;  ///< set-* / archive-cap's new value (>= 1)
  std::vector<ScenarioRecipe> catalog;  ///< catalog-reload's entry set
  /// enable-/disable-backend's target; archive-flush / archive-cap's tenant
  /// ("" for archive-flush = every tenant).
  std::string name;
  util::JsonValue fleet;  ///< fleet-reload's config document (kNull else)
};

/// Which ETC/EPC environment a request targets: one of the paper's named
/// datasets, a "custom"-sized trace over the historical system, a fully
/// inline system (ETC/EPC matrices + machine counts) with a generated
/// trace, or a catalog alias resolved server-side against the loaded
/// ScenarioCatalog (resolve_scenario).  Construction is deterministic
/// given the resolved spec, so a fingerprint of the spec identifies the
/// scenario for caching.
struct ScenarioSpec {
  std::string name;  ///< built-in name, "inline", or a catalog alias
  std::uint64_t seed = 20130520;
  bool seed_set = false;  ///< the request carried an explicit seed
  /// custom/inline trace shape.
  std::size_t tasks = 60;
  double window_s = 120.0;
  /// inline system: etc[task_type][machine_type] seconds (null entries in
  /// the JSON mean ineligible and arrive as +inf), epc watts, and machine
  /// instance counts per machine type (empty = one of each).
  std::vector<std::vector<double>> etc;
  std::vector<std::vector<double>> epc;
  std::vector<std::size_t> machine_counts;
  /// Machine *instances* removed from the built system (sorted, unique).
  /// Never parsed off the wire — only apply_mutations produces it — but it
  /// is part of the scenario identity and therefore of the fingerprint.
  std::vector<std::size_t> dropped_machines;
};

/// NSGA-II budget for mode "nsga2" (and "pareto-query" cache misses).
/// Defaults stay small so an unconfigured request answers interactively.
struct Nsga2Params {
  std::size_t population = 32;  ///< must be even and >= 2
  std::size_t generations = 32;
  double mutation_probability = 0.25;
  /// Greedy seeds injected into the initial population.
  std::vector<SeedHeuristic> seeds;
};

/// Constraints for mode "pareto-query": answered from the cached front.
struct ParetoQuery {
  std::optional<double> max_energy;   ///< joules budget (pick max utility)
  std::optional<double> min_utility;  ///< floor (pick min energy)
};

/// One scenario mutation inside a "delta" request, applied in list order.
struct ScenarioMutation {
  enum class Op {
    kAddTasks,     ///< grow a custom trace by `count` tasks
    kRemoveTasks,  ///< shrink a custom trace by `count` tasks
    kSetWindow,    ///< retune a custom trace's window to `window_s`
    kDropMachine,  ///< remove machine instance `machine` from the system
  };
  Op op = Op::kAddTasks;
  std::size_t count = 0;
  double window_s = 0.0;
  std::size_t machine = 0;
};

/// The payload of a "delta" request: mutate `base` (the tenant's previously
/// optimized scenario) and re-polish its archived front.
struct DeltaRequest {
  ScenarioSpec base;  ///< inline scenarios rejected (not archivable)
  std::vector<ScenarioMutation> mutations;  ///< must be non-empty
  /// Polish budget in generations; 0 = auto (nsga2.generations / 16, >= 1).
  std::size_t polish_generations = 0;
  /// On an archive miss: true runs the mutated scenario cold at the full
  /// nsga2 budget, false answers 404.
  bool cold_fallback = true;
};

struct ServeRequest {
  RequestKind kind = RequestKind::kAllocate;
  std::string id;  ///< optional client correlation id, echoed back
  /// Warm-start archive key ([A-Za-z0-9._-]{1,64}); optional for allocate
  /// (enables archiving + warm starts), required for delta.  Empty = the
  /// tenant-less fast path, bit-identical to offline StudyEngine runs.
  std::string tenant;
  ModeKind mode = ModeKind::kHeuristic;
  SeedHeuristic heuristic = SeedHeuristic::kMinEnergy;
  ScenarioSpec scenario;
  DeltaRequest delta;  ///< delta requests only
  Nsga2Params nsga2;
  ParetoQuery query;
  AdminRequest admin;        ///< adminz requests only
  double deadline_ms = 0.0;  ///< 0 = no deadline
};

/// Parses and validates one request document.  Throws ProtocolError with a
/// reason suitable for echoing back to the client.
[[nodiscard]] ServeRequest parse_request(const util::JsonValue& doc);
[[nodiscard]] ServeRequest parse_request_text(std::string_view json);

/// Resolves a catalog alias to its concrete built-in spec (built-in names
/// pass through unchanged; an explicit request seed overrides the
/// recipe's).  Throws ProtocolError when the name is neither built-in nor
/// in `catalog` (nullptr = no catalog loaded).  Must run before
/// request_fingerprint so cached entries survive catalog reloads.
[[nodiscard]] ScenarioSpec resolve_scenario(const ScenarioSpec& spec,
                                            const ScenarioCatalog* catalog);

/// Canonical identity of a *scenario* alone, independent of optimization
/// budget: the warm-start archive key.  A resolved allocate request's
/// scenario and the same scenario reached through a delta lineage
/// fingerprint equally.
[[nodiscard]] std::string scenario_fingerprint(const ScenarioSpec& spec);

/// Canonical cache key for an allocate request: scenario identity plus the
/// result-determining mode parameters (the deadline and query constraints
/// are excluded — they select *within* a computed result, they do not
/// change it).  Equal requests fingerprint equally.  A request with a
/// tenant id keys separately — warm-started fronts may strictly dominate
/// the tenant-less (StudyEngine-bit-identical) result, so they never share
/// cache entries.  Delta requests get a distinct "delta;..." key (their
/// results are archive-state-dependent and are never front-cached; the key
/// serves routing and logging).
[[nodiscard]] std::string request_fingerprint(const ServeRequest& request);

/// Applies a delta request's mutations to the *resolved* base spec,
/// returning the mutated scenario.  Trace-shape mutations (add-tasks,
/// remove-tasks, set-window) apply only to "custom" bases — the datasets'
/// traces are fixed by the paper; drop-machine applies to any base
/// (indices refer to the base system's machine instances; range checking
/// happens when the system is built).  Throws ProtocolError on an
/// inapplicable mutation, a duplicate drop, or a shape that mutates away
/// every task.
[[nodiscard]] ScenarioSpec apply_mutations(
    const ScenarioSpec& base, const std::vector<ScenarioMutation>& mutations);

/// Serializes an allocate request back into a protocol document that
/// parse_request accepts and that round-trips every result-determining
/// field.  The router uses it to forward alias requests with the scenario
/// already resolved (backends need no catalog); inline systems are not
/// supported (the router forwards those payloads verbatim — an alias can
/// never resolve to one).  Throws ProtocolError on a non-allocate or
/// inline-scenario request.
[[nodiscard]] std::string render_allocate_request(const ServeRequest& request);

/// render_allocate_request's sibling for delta requests: serializes the
/// (resolved-base) delta back into a document parse_request accepts.  The
/// router uses it to forward a delta whose base was a catalog alias.
[[nodiscard]] std::string render_delta_request(const ServeRequest& request);

/// Heuristic name <-> enum for the "heuristic:<name>" mode string.
[[nodiscard]] const char* heuristic_slug(SeedHeuristic h) noexcept;
[[nodiscard]] std::optional<SeedHeuristic> heuristic_from_slug(
    std::string_view slug) noexcept;

}  // namespace eus::serve
