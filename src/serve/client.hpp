#pragma once

// Small blocking client for the eus_served framing: connect to a loopback
// port, write one framed JSON request, read one framed JSON response.
// Shared by eus_client, the loopback integration tests and the
// serve_loadgen bench scenario so all three speak the exact same protocol
// code path.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

namespace eus::serve {

/// Could not reach the server (distinct from a server-sent error payload;
/// eus_client maps it to its own exit code).
class ConnectError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ClientConnection {
 public:
  ClientConnection() = default;
  ~ClientConnection();

  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;
  ClientConnection(ClientConnection&& other) noexcept;
  ClientConnection& operator=(ClientConnection&& other) noexcept;

  /// Connects to 127.0.0.1:`port`; throws ConnectError on failure.
  void connect(std::uint16_t port);
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// Caps every subsequent send()/receive() at `ms` milliseconds
  /// (SO_SNDTIMEO/SO_RCVTIMEO); an expired wait surfaces as ConnectError.
  /// 0 restores blocking forever.  The fleet health checker probes with a
  /// short timeout so one wedged backend cannot stall the probe loop.
  void set_timeout_ms(long ms) noexcept;

  /// Writes one framed request payload; throws ConnectError when the
  /// connection drops mid-write.
  void send(std::string_view payload);

  /// Blocks for the next framed response payload; throws ConnectError on
  /// EOF / connection loss, ProtocolError on a malformed frame.
  [[nodiscard]] std::string receive();

  /// send() + receive() in one round trip.
  [[nodiscard]] std::string call(std::string_view payload);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace eus::serve
