#pragma once

// eus_served's engine: a TCP acceptor, per-connection reader threads, a
// bounded request queue with explicit backpressure, and a small worker
// pool that executes allocate requests through handlers.cpp (NSGA-II
// evaluation batches fan out onto one shared ThreadPool, so concurrent
// requests share the machine instead of oversubscribing it).
//
// Flow control: a connection reads one frame, parses it, and enqueues the
// request; if the queue is full (or the server is draining) the client
// gets an immediate 503-style JSON error — the queue never grows beyond
// its configured depth.  healthz/metricsz requests bypass the queue and
// answer inline from the connection thread, so health stays observable
// under full load.
//
// Shutdown: stop() (or request_stop() from a signal handler's thread)
// stops accepting, lets the workers drain every queued and in-flight
// request, answers them, then closes the remaining connections.  No
// request that was accepted into the queue is ever dropped by shutdown.
//
// Responses to a single connection are written in request order; clients
// wanting concurrency open several connections (eus_client --concurrency
// does exactly that).

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/bounded_queue.hpp"
#include "serve/front_cache.hpp"
#include "serve/handlers.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace eus::serve {

/// Thread-safe JSONL request log (one line per served request, plus a
/// config line at startup).  EXPERIMENTS.md documents the schema.
class RequestLog {
 public:
  /// Appends to `path` (truncating); throws std::runtime_error when the
  /// file cannot be opened.
  explicit RequestLog(const std::string& path);
  ~RequestLog();

  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  void write(const std::string& json_line);
  [[nodiscard]] std::size_t lines_written() const noexcept { return lines_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t lines_ = 0;
};

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral port (query it via port()).  The
  /// listener binds the loopback interface only.
  std::uint16_t port = 0;
  /// Bounded request-queue depth; overflow is answered with a 503-style
  /// error (EUS_SERVE_QUEUE_DEPTH for the daemon).
  std::size_t queue_depth = 64;
  /// Request-executing worker threads (each runs one allocate at a time).
  std::size_t workers = 2;
  /// Shared NSGA-II evaluation pool: 0 = hardware concurrency, 1 = inline
  /// evaluation (no pool).  All concurrent requests share this pool.
  std::size_t eval_threads = 1;
  /// LRU front-cache capacity in results; 0 disables caching.
  std::size_t cache_entries = 64;
  /// Reject request frames larger than this many payload bytes.
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Optional external metrics sink (must outlive the server); the server
  /// owns a private registry when null.
  MetricsRegistry* metrics = nullptr;
  /// Optional JSONL request log (must outlive the server).
  RequestLog* log = nullptr;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();  ///< stops and drains if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the acceptor + workers.  Throws
  /// std::runtime_error when the port cannot be bound.
  void start();

  /// The bound port (valid after start(); resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Async-signal-friendly shutdown request: flips the stop flag and
  /// unblocks the acceptor.  The daemon's main thread then calls stop().
  void request_stop() noexcept;

  /// Graceful drain: stop accepting, answer every queued and in-flight
  /// request, close connections, join every thread.  Idempotent.
  void stop();

  /// True once request_stop()/stop() has begun.
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return *metrics_; }
  [[nodiscard]] std::size_t queue_size() const;
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Job;
  struct Connection;

  void acceptor_loop();
  void worker_loop();
  void connection_loop(Connection* connection);
  /// Parses and dispatches one frame; returns false when the connection
  /// should close (fatal framing error).
  bool process_payload(Connection* connection, const std::string& payload);
  void send_payload(Connection* connection, const std::string& payload);
  [[nodiscard]] std::string healthz_payload(const std::string& id) const;
  [[nodiscard]] std::string metricsz_payload(const std::string& id) const;
  void log_request(const ServeRequest& request, int code, double total_ms,
                   bool dropped);
  void reap_finished_connections();

  ServerConfig config_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<FrontCache> cache_;
  std::unique_ptr<ThreadPool> eval_pool_;  ///< null when eval_threads == 1
  HandlerContext handler_context_;

  std::unique_ptr<BoundedQueue<Job>> queue_;
  std::vector<std::thread> workers_;
  std::thread acceptor_;
  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Stopwatch uptime_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::size_t> in_flight_{0};

  // Metric handles, resolved once at start().
  Counter* metric_connections_ = nullptr;
  Counter* metric_requests_ = nullptr;
  Counter* metric_responses_ok_ = nullptr;
  Counter* metric_errors_ = nullptr;
  Counter* metric_dropped_ = nullptr;
  Counter* metric_deadline_expired_ = nullptr;
  Gauge* metric_queue_depth_ = nullptr;
  Gauge* metric_in_flight_ = nullptr;
  TimerMetric* metric_service_ = nullptr;
  TimerMetric* metric_queue_wait_ = nullptr;
  Histogram* metric_latency_ = nullptr;
};

}  // namespace eus::serve
