#pragma once

// eus_served's engine, decomposed into the components the runtime halts in
// order (docs/runtime.md): an Acceptor (listen socket + accept thread), a
// ConnectionSet (per-connection reader threads), a bounded request queue
// with explicit backpressure, and a WorkerCrew (elastic worker pool that
// executes allocate requests through handlers.cpp — NSGA-II evaluation
// batches fan out onto one shared ThreadPool, so concurrent requests share
// the machine instead of oversubscribing it).  The Server class is the
// facade wiring them together; ServeRuntime (runtime.hpp) owns the
// process-level lifecycle around it.
//
// Flow control: a connection reads one frame, parses it, and enqueues the
// request; if the queue is full (or the server is draining) the client
// gets an immediate 503-style JSON error — the queue never grows beyond
// its configured depth.  healthz/metricsz/adminz requests bypass the queue
// and answer inline from the connection thread, so health and the admin
// plane stay responsive under full load.
//
// Live administration: set_queue_capacity / set_cache_capacity /
// set_workers retune the running server without a restart (the adminz
// verbs land here), and a SharedCatalog pointer lets catalog-reload swap
// the alias catalog atomically — aliases resolve to concrete specs at
// accept time, so in-flight requests finish against the catalog they
// arrived under.
//
// Shutdown: stop() runs the ordered teardown halt_acceptor() →
// halt_queue() → halt_workers(); each step is individually callable (the
// runtime drives them one by one), idempotent, and counted under
// serve.lifecycle.*.  Workers drain every queued request before exiting,
// so no request that was accepted into the queue is ever dropped by
// shutdown.
//
// Responses to a single connection are written in request order; clients
// wanting concurrency open several connections (eus_client --concurrency
// does exactly that).

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/scenario_catalog.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/front_cache.hpp"
#include "serve/handlers.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace eus::serve {

class RuntimeState;  // runtime.hpp — healthz/adminz report its phase

// RequestLog, Acceptor and ConnectionSet moved to serve/net.hpp — they are
// shared with the fleet router (fleet/router.hpp).

/// One queued allocate request, or a WorkerCrew control token.
struct RequestJob {
  ServeRequest request;
  Stopwatch waited;  ///< starts at enqueue: measures queue time
  std::promise<HandleResult> promise;
  bool poison = false;  ///< control token: the popping worker re-checks
                        ///< the crew target and retires when over it
};

/// Elastic pool of request-executing workers over one BoundedQueue.
/// Growing spawns threads; shrinking front-pushes poison tokens so a
/// blocked worker wakes, re-checks the target, and retires — queued work
/// is never dropped by a resize.  halt() closes the queue and joins after
/// the drain.
class WorkerCrew {
 public:
  WorkerCrew(BoundedQueue<RequestJob>& queue,
             std::function<void(RequestJob&)> execute);
  ~WorkerCrew() { halt(); }

  WorkerCrew(const WorkerCrew&) = delete;
  WorkerCrew& operator=(const WorkerCrew&) = delete;

  void start(std::size_t count) { resize(count); }

  /// Live resize (clamped >= 1).  A poison token popped after a
  /// grow-back is discarded, so shrink/grow races self-correct.
  void resize(std::size_t target);

  /// Closes the queue, lets the workers drain every queued job, joins
  /// every thread.  Idempotent.
  void halt();

  [[nodiscard]] std::size_t target() const;
  [[nodiscard]] std::size_t active() const;

 private:
  struct Member {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void worker_loop(Member* self);
  void spawn_locked();
  void reap_locked();

  BoundedQueue<RequestJob>& queue_;
  std::function<void(RequestJob&)> execute_;
  mutable std::mutex mutex_;
  std::list<Member> members_;
  std::size_t target_ = 0;
  std::size_t active_ = 0;
  bool halted_ = false;
};

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral port (query it via port()).  The
  /// listener binds the loopback interface only.
  std::uint16_t port = 0;
  /// Bounded request-queue depth; overflow is answered with a 503-style
  /// error (EUS_SERVE_QUEUE_DEPTH for the daemon).  Live-tunable via the
  /// set-queue-depth admin verb.
  std::size_t queue_depth = 64;
  /// Request-executing worker threads (each runs one allocate at a time).
  /// Live-tunable via the set-workers admin verb.
  std::size_t workers = 2;
  /// Shared NSGA-II evaluation pool: 0 = hardware concurrency, 1 = inline
  /// evaluation (no pool).  All concurrent requests share this pool.
  std::size_t eval_threads = 1;
  /// LRU front-cache capacity in results; 0 disables caching.
  /// Live-tunable via the set-cache-entries admin verb (unless disabled).
  std::size_t cache_entries = 64;
  /// Reject request frames larger than this many payload bytes.
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Optional external metrics sink (must outlive the server); the server
  /// owns a private registry when null.
  MetricsRegistry* metrics = nullptr;
  /// Optional JSONL request log (must outlive the server).
  RequestLog* log = nullptr;
  /// Optional alias catalog (must outlive the server): allocate requests
  /// naming a non-built-in scenario resolve against its current snapshot
  /// at accept time, and the catalog-reload admin verb swaps it.
  SharedCatalog* catalog = nullptr;
  /// Optional runtime phase source (must outlive the server): healthz and
  /// adminz get-config report its phase when set.
  const RuntimeState* state = nullptr;
  /// Optional per-tenant warm-start archive (must outlive the server):
  /// tenant-scoped allocate and delta requests read and feed it, and the
  /// archive-* admin verbs administer it (docs/tenant.md).
  tenant::ArchiveStore* archive = nullptr;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();  ///< stops and drains if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the acceptor + workers.  Throws
  /// std::runtime_error when the port cannot be bound.
  void start();

  /// The bound port (valid after start(); resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept {
    return acceptor_.port();
  }

  /// Async-signal-friendly shutdown request: flips the drain flag and
  /// unblocks the acceptor.  The daemon's lifecycle thread then runs the
  /// ordered halt steps (or stop(), which runs all of them).
  void request_stop() noexcept;

  /// Graceful drain: halt_acceptor() → halt_queue() → halt_workers().
  /// Answers every queued and in-flight request, then closes connections
  /// and joins every thread.  Idempotent.
  void stop();

  // Ordered teardown steps.  Each is idempotent, must be called in the
  // order below (stop() and ServeRuntime::halt() do), and bumps its
  // serve.lifecycle.* counter on the first call.
  void halt_acceptor();  ///< stop accepting; join the accept thread
  void halt_queue();     ///< refuse new work; queued jobs stay poppable
  void halt_workers();   ///< drain + join workers, then close connections

  /// True once request_stop()/stop()/halt_acceptor() has begun.
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  // Live admin knobs (the adminz verbs land here; also callable directly,
  // e.g. from tests).  Values are clamped >= 1.
  void set_queue_capacity(std::size_t depth);
  void set_cache_capacity(std::size_t entries);  ///< no-op when disabled
  void set_workers(std::size_t count);

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return *metrics_; }
  [[nodiscard]] std::size_t queue_size() const;
  [[nodiscard]] std::size_t queue_capacity() const;
  [[nodiscard]] std::size_t worker_target() const;
  [[nodiscard]] std::size_t worker_active() const;
  [[nodiscard]] std::size_t eval_threads() const;  ///< resolved pool size
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }

 private:
  using Connection = ConnectionSet::Connection;

  void on_accept(int fd);
  void execute_job(RequestJob& job);
  void connection_loop(Connection* connection);
  /// Parses and dispatches one frame; returns false when the connection
  /// should close (fatal framing error).
  bool process_payload(Connection* connection, const std::string& payload);
  void send_payload(Connection* connection, const std::string& payload);
  [[nodiscard]] std::string healthz_payload(const std::string& id) const;
  [[nodiscard]] std::string metricsz_payload(const std::string& id) const;
  [[nodiscard]] std::string adminz_payload(const ServeRequest& request);
  [[nodiscard]] std::string admin_config_payload(const std::string& id) const;
  void log_request(const ServeRequest& request, int code, double total_ms,
                   bool dropped);

  ServerConfig config_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<FrontCache> cache_;
  std::unique_ptr<ThreadPool> eval_pool_;  ///< null when eval_threads == 1
  HandlerContext handler_context_;

  std::unique_ptr<BoundedQueue<RequestJob>> queue_;
  std::unique_ptr<WorkerCrew> crew_;
  Acceptor acceptor_;
  ConnectionSet connections_;

  Stopwatch uptime_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> acceptor_halted_{false};
  std::atomic<bool> queue_halted_{false};
  std::atomic<bool> workers_halted_{false};
  std::atomic<std::size_t> in_flight_{0};

  // Metric handles, resolved once at start().
  Counter* metric_connections_ = nullptr;
  Counter* metric_requests_ = nullptr;
  Counter* metric_responses_ok_ = nullptr;
  Counter* metric_errors_ = nullptr;
  Counter* metric_dropped_ = nullptr;
  Counter* metric_deadline_expired_ = nullptr;
  Counter* metric_admin_actions_ = nullptr;
  Counter* metric_halt_acceptor_ = nullptr;
  Counter* metric_halt_queue_ = nullptr;
  Counter* metric_halt_workers_ = nullptr;
  Gauge* metric_queue_depth_ = nullptr;
  Gauge* metric_in_flight_ = nullptr;
  Gauge* metric_workers_ = nullptr;
  TimerMetric* metric_service_ = nullptr;
  TimerMetric* metric_queue_wait_ = nullptr;
  Histogram* metric_latency_ = nullptr;
};

}  // namespace eus::serve
