#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "serve/runtime.hpp"
#include "telemetry/json.hpp"

namespace eus::serve {

// RequestLog / Acceptor / ConnectionSet implementations live in net.cpp.

// ---------------------------------------------------------------- WorkerCrew

WorkerCrew::WorkerCrew(BoundedQueue<RequestJob>& queue,
                       std::function<void(RequestJob&)> execute)
    : queue_(queue), execute_(std::move(execute)) {}

void WorkerCrew::spawn_locked() {
  members_.emplace_back();
  Member* member = &members_.back();
  ++active_;
  member->thread = std::thread([this, member] { worker_loop(member); });
}

void WorkerCrew::reap_locked() {
  for (auto it = members_.begin(); it != members_.end();) {
    // A done member holds no locks anymore, so joining under the mutex is
    // safe (and keeps the list mutation race-free).
    if (it->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = members_.erase(it);
    } else {
      ++it;
    }
  }
}

void WorkerCrew::resize(std::size_t target) {
  if (target < 1) target = 1;
  std::size_t poisons = 0;
  {
    const std::lock_guard lock(mutex_);
    if (halted_) return;
    reap_locked();
    target_ = target;
    while (active_ < target_) spawn_locked();
    if (active_ > target_) poisons = active_ - target_;
  }
  for (std::size_t i = 0; i < poisons; ++i) {
    RequestJob token;
    token.poison = true;
    queue_.push_control(std::move(token));
  }
}

void WorkerCrew::halt() {
  {
    const std::lock_guard lock(mutex_);
    if (halted_) return;
    halted_ = true;
  }
  queue_.close();
  // members_ is stable now: resize() refuses after halted_, and workers
  // only mark themselves done.  Join outside the lock — exiting workers
  // take it to decrement active_.
  for (Member& member : members_) {
    if (member.thread.joinable()) member.thread.join();
  }
  const std::lock_guard lock(mutex_);
  members_.clear();
}

std::size_t WorkerCrew::target() const {
  const std::lock_guard lock(mutex_);
  return target_;
}

std::size_t WorkerCrew::active() const {
  const std::lock_guard lock(mutex_);
  return active_;
}

void WorkerCrew::worker_loop(Member* self) {
  for (;;) {
    std::optional<RequestJob> job = queue_.pop();
    if (!job) break;  // queue closed and drained
    if (job->poison) {
      const std::lock_guard lock(mutex_);
      if (active_ > target_) break;  // shrink: this worker retires
      continue;  // stale token — a grow landed since the shrink; discard
    }
    execute_(*job);
  }
  {
    const std::lock_guard lock(mutex_);
    --active_;
  }
  self->done.store(true, std::memory_order_release);
}

// -------------------------------------------------------------------- Server

Server::Server(ServerConfig config) : config_(std::move(config)) {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (config_.workers < 1) config_.workers = 1;
  if (config_.cache_entries > 0) {
    cache_ = std::make_unique<FrontCache>(config_.cache_entries, metrics_);
  }
  if (config_.eval_threads != 1) {
    eval_pool_ = std::make_unique<ThreadPool>(config_.eval_threads);
  }
  queue_ = std::make_unique<BoundedQueue<RequestJob>>(config_.queue_depth);
  crew_ = std::make_unique<WorkerCrew>(
      *queue_, [this](RequestJob& job) { execute_job(job); });
  handler_context_.metrics = metrics_;
  handler_context_.cache = cache_.get();
  handler_context_.pool = eval_pool_.get();
  handler_context_.archive = config_.archive;
}

Server::~Server() { stop(); }

std::size_t Server::queue_size() const { return queue_->size(); }
std::size_t Server::queue_capacity() const { return queue_->capacity(); }
std::size_t Server::worker_target() const { return crew_->target(); }
std::size_t Server::worker_active() const { return crew_->active(); }
std::size_t Server::eval_threads() const {
  return eval_pool_ ? eval_pool_->size() : 1;
}

void Server::set_queue_capacity(std::size_t depth) {
  queue_->set_capacity(depth);
  metric_queue_depth_->set(static_cast<double>(queue_->size()));
}

void Server::set_cache_capacity(std::size_t entries) {
  if (cache_ != nullptr) cache_->set_capacity(entries);
}

void Server::set_workers(std::size_t count) {
  crew_->resize(count);
  if (metric_workers_ != nullptr) {
    metric_workers_->set(static_cast<double>(crew_->target()));
  }
}

void Server::start() {
  if (started_.exchange(true)) {
    throw std::logic_error("server already started");
  }

  metric_connections_ = &metrics_->counter("serve.connections");
  metric_requests_ = &metrics_->counter("serve.requests");
  metric_responses_ok_ = &metrics_->counter("serve.responses_ok");
  metric_errors_ = &metrics_->counter("serve.errors");
  metric_dropped_ = &metrics_->counter("serve.dropped");
  metric_deadline_expired_ = &metrics_->counter("serve.deadline_expired");
  metric_admin_actions_ = &metrics_->counter("serve.admin.actions");
  metric_halt_acceptor_ = &metrics_->counter("serve.lifecycle.halt_acceptor");
  metric_halt_queue_ = &metrics_->counter("serve.lifecycle.halt_queue");
  metric_halt_workers_ = &metrics_->counter("serve.lifecycle.halt_workers");
  metric_queue_depth_ = &metrics_->gauge("serve.queue_depth");
  metric_in_flight_ = &metrics_->gauge("serve.in_flight");
  metric_workers_ = &metrics_->gauge("serve.workers");
  metric_service_ = &metrics_->timer("serve.service_s");
  metric_queue_wait_ = &metrics_->timer("serve.queue_wait_s");
  metric_latency_ = &metrics_->histogram("serve.latency");

  uptime_.reset();
  crew_->start(config_.workers);
  metric_workers_->set(static_cast<double>(crew_->target()));
  acceptor_.start(config_.port, [this](int fd) { on_accept(fd); });

  if (config_.log != nullptr) {
    JsonObject o;
    o.field("type", "config");
    o.field("service", "eus_served");
    o.field("port", static_cast<std::uint64_t>(port()));
    o.field("queue_depth", static_cast<std::uint64_t>(config_.queue_depth));
    o.field("workers", static_cast<std::uint64_t>(config_.workers));
    o.field("eval_threads", static_cast<std::uint64_t>(
                                eval_pool_ ? eval_pool_->size() : 1));
    o.field("cache_entries",
            static_cast<std::uint64_t>(cache_ ? cache_->capacity() : 0));
    config_.log->write(o.str());
  }
}

void Server::request_stop() noexcept {
  draining_.store(true, std::memory_order_relaxed);
  acceptor_.interrupt();
}

void Server::halt_acceptor() {
  if (acceptor_halted_.exchange(true)) return;
  draining_.store(true, std::memory_order_relaxed);
  acceptor_.halt();
  if (metric_halt_acceptor_ != nullptr) metric_halt_acceptor_->add();
}

void Server::halt_queue() {
  if (queue_halted_.exchange(true)) return;
  queue_->close();
  if (metric_halt_queue_ != nullptr) metric_halt_queue_->add();
}

void Server::halt_workers() {
  if (workers_halted_.exchange(true)) return;
  // Workers drain the closed queue and resolve every pending promise;
  // only then can the connection readers (blocked on those futures) be
  // unblocked and joined.
  crew_->halt();
  connections_.halt();
  if (metric_halt_workers_ != nullptr) metric_halt_workers_->add();
}

void Server::stop() {
  if (!started_.load()) return;
  halt_acceptor();
  halt_queue();
  halt_workers();
}

void Server::on_accept(int fd) {
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  metric_connections_->add();
  connections_.reap();
  connections_.adopt(
      fd, [this](Connection* connection) { connection_loop(connection); });
}

void Server::execute_job(RequestJob& job) {
  metric_queue_depth_->set(static_cast<double>(queue_->size()));
  const double queue_ms = job.waited.milliseconds();
  metric_queue_wait_->add(
      std::chrono::nanoseconds(static_cast<std::int64_t>(queue_ms * 1e6)));
  metric_in_flight_->set(static_cast<double>(
      in_flight_.fetch_add(1, std::memory_order_relaxed) + 1));

  std::optional<double> remaining_ms;
  if (job.request.deadline_ms > 0.0) {
    remaining_ms = job.request.deadline_ms - queue_ms;
  }
  HandleResult result;
  {
    const ScopedTimer timed(metric_service_);
    result = job.request.kind == RequestKind::kDelta
                 ? handle_delta(job.request, handler_context_, remaining_ms,
                                queue_ms)
                 : handle_allocate(job.request, handler_context_, remaining_ms,
                                   queue_ms);
  }
  if (result.code == kCodePartial) metric_deadline_expired_->add();
  job.promise.set_value(std::move(result));

  metric_in_flight_->set(static_cast<double>(
      in_flight_.fetch_sub(1, std::memory_order_relaxed) - 1));
}

void Server::connection_loop(Connection* connection) {
  FrameDecoder decoder(config_.max_frame_bytes);
  std::vector<char> buffer(64 * 1024);
  bool keep = true;
  while (keep) {
    std::optional<std::string> payload;
    while (keep && (payload = decoder.next()).has_value()) {
      keep = process_payload(connection, *payload);
    }
    if (!keep) break;
    const ssize_t n =
        ::recv(connection->fd, buffer.data(), buffer.size(), 0);
    if (n == 0) break;  // peer closed (or drain shut the read side)
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    try {
      decoder.feed(buffer.data(), static_cast<std::size_t>(n));
    } catch (const ProtocolError& e) {
      // A hostile length prefix poisons the whole stream: answer once,
      // then close (there is no way to resynchronize framing).
      metric_errors_->add();
      send_payload(connection,
                   error_payload("", kCodeBadRequest, "error", e.what()));
      break;
    }
  }
  connections_.close_fd(connection);
  connection->done.store(true, std::memory_order_release);
}

bool Server::process_payload(Connection* connection,
                             const std::string& payload) {
  const Stopwatch total;
  ServeRequest request;
  try {
    request = parse_request_text(payload);
  } catch (const ProtocolError& e) {
    // Framing is intact, the document is not: answer and keep the
    // connection.
    metric_errors_->add();
    send_payload(connection,
                 error_payload("", kCodeBadRequest, "error", e.what()));
    return true;
  }
  metric_requests_->add();

  if (request.kind == RequestKind::kHealthz) {
    send_payload(connection, healthz_payload(request.id));
    return true;
  }
  if (request.kind == RequestKind::kMetricsz) {
    send_payload(connection, metricsz_payload(request.id));
    return true;
  }
  if (request.kind == RequestKind::kAdminz) {
    send_payload(connection, adminz_payload(request));
    return true;
  }

  // Resolve catalog aliases to concrete specs *before* fingerprinting, so
  // cached fronts key on what actually runs — in-flight requests finish
  // against the catalog snapshot they arrived under, and a reload can
  // never make a cached entry answer for a different scenario.
  try {
    std::shared_ptr<const ScenarioCatalog> catalog;
    if (config_.catalog != nullptr) catalog = config_.catalog->snapshot();
    if (request.kind == RequestKind::kDelta) {
      request.delta.base = resolve_scenario(request.delta.base, catalog.get());
    } else {
      request.scenario = resolve_scenario(request.scenario, catalog.get());
    }
  } catch (const ProtocolError& e) {
    metric_errors_->add();
    send_payload(connection,
                 error_payload(request.id, kCodeBadRequest, "error",
                               e.what()));
    log_request(request, kCodeBadRequest, total.milliseconds(), false);
    return true;
  }

  RequestJob job;
  job.request = request;
  std::future<HandleResult> future = job.promise.get_future();
  if (!queue_->try_push(std::move(job))) {
    metric_dropped_->add();
    const char* reason = draining_.load(std::memory_order_relaxed)
                             ? "server is draining; no new work accepted"
                             : "request queue is full; retry with backoff";
    send_payload(connection, error_payload(request.id, kCodeOverloaded,
                                           "overloaded", reason));
    log_request(request, kCodeOverloaded, total.milliseconds(), true);
    return true;
  }
  metric_queue_depth_->set(static_cast<double>(queue_->size()));

  HandleResult result = future.get();
  send_payload(connection, result.payload);
  if (result.code == kCodeOk || result.code == kCodePartial) {
    metric_responses_ok_->add();
  } else {
    metric_errors_->add();
  }
  metric_latency_->observe_seconds(total.seconds());
  log_request(request, result.code, total.milliseconds(), false);
  return true;
}

void Server::send_payload(Connection* connection,
                          const std::string& payload) {
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(connection->fd, frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer gone; nothing sensible left to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Server::healthz_payload(const std::string& id) const {
  JsonObject o;
  o.field("type", "response");
  if (!id.empty()) o.field("id", id);
  o.field("status", "ok");
  o.field("code", static_cast<std::int64_t>(kCodeOk));
  o.field("service", "eus_served");
  o.field("uptime_s", uptime_.seconds());
  if (config_.state != nullptr) {
    o.field("phase", to_string(config_.state->phase()));
  }
  o.field("queue_depth", static_cast<std::uint64_t>(queue_->size()));
  o.field("queue_capacity", static_cast<std::uint64_t>(queue_->capacity()));
  o.field("in_flight", static_cast<std::uint64_t>(
                           in_flight_.load(std::memory_order_relaxed)));
  o.field("workers", static_cast<std::uint64_t>(crew_->target()));
  o.field("eval_threads",
          static_cast<std::uint64_t>(eval_pool_ ? eval_pool_->size() : 1));
  o.field("cache_size",
          static_cast<std::uint64_t>(cache_ ? cache_->size() : 0));
  if (config_.catalog != nullptr) {
    o.field("catalog_generation",
            static_cast<std::uint64_t>(config_.catalog->generation()));
    o.field("catalog_size",
            static_cast<std::uint64_t>(config_.catalog->snapshot()->size()));
  }
  if (config_.archive != nullptr) {
    o.field("archive_tenants",
            static_cast<std::uint64_t>(config_.archive->tenants()));
    o.field("archive_entries",
            static_cast<std::uint64_t>(config_.archive->entries()));
  }
  o.field("draining", draining_.load(std::memory_order_relaxed));
  return o.str();
}

std::string Server::metricsz_payload(const std::string& id) const {
  const MetricsSnapshot snap = metrics_->snapshot();
  JsonObject o;
  o.field("type", "response");
  if (!id.empty()) o.field("id", id);
  o.field("status", "ok");
  o.field("code", static_cast<std::int64_t>(kCodeOk));
  o.field("uptime_s", uptime_.seconds());
  append_snapshot(o, snap);
  return o.str();
}

std::string Server::admin_config_payload(const std::string& id) const {
  JsonObject o;
  o.field("type", "response");
  if (!id.empty()) o.field("id", id);
  o.field("status", "ok");
  o.field("code", static_cast<std::int64_t>(kCodeOk));
  o.field("action", "get-config");
  o.field("port", static_cast<std::uint64_t>(port()));
  if (config_.state != nullptr) {
    o.field("phase", to_string(config_.state->phase()));
  }
  o.field("queue_depth", static_cast<std::uint64_t>(queue_->capacity()));
  o.field("queue_size", static_cast<std::uint64_t>(queue_->size()));
  o.field("workers", static_cast<std::uint64_t>(crew_->target()));
  o.field("workers_active", static_cast<std::uint64_t>(crew_->active()));
  o.field("eval_threads",
          static_cast<std::uint64_t>(eval_pool_ ? eval_pool_->size() : 1));
  o.field("cache_entries",
          static_cast<std::uint64_t>(cache_ ? cache_->capacity() : 0));
  o.field("cache_size",
          static_cast<std::uint64_t>(cache_ ? cache_->size() : 0));
  o.field("max_frame_bytes",
          static_cast<std::uint64_t>(config_.max_frame_bytes));
  if (config_.catalog != nullptr) {
    o.field("catalog_generation",
            static_cast<std::uint64_t>(config_.catalog->generation()));
    o.field("catalog_size",
            static_cast<std::uint64_t>(config_.catalog->snapshot()->size()));
  }
  if (config_.archive != nullptr) {
    const tenant::ArchiveConfig& a = config_.archive->config();
    o.field("archive_tenants",
            static_cast<std::uint64_t>(config_.archive->tenants()));
    o.field("archive_max_tenants",
            static_cast<std::uint64_t>(a.max_tenants));
    o.field("archive_entries_per_tenant",
            static_cast<std::uint64_t>(a.entries_per_tenant));
    o.field("archive_genomes_per_entry",
            static_cast<std::uint64_t>(a.genomes_per_entry));
  }
  o.field("draining", draining_.load(std::memory_order_relaxed));
  return o.str();
}

std::string Server::adminz_payload(const ServeRequest& request) {
  const AdminRequest& admin = request.admin;
  metric_admin_actions_->add();
  const auto applied = [&](const char* extra_key, std::uint64_t extra) {
    JsonObject o;
    o.field("type", "response");
    if (!request.id.empty()) o.field("id", request.id);
    o.field("status", "ok");
    o.field("code", static_cast<std::int64_t>(kCodeOk));
    o.field("action", to_string(admin.action));
    o.field(extra_key, extra);
    return o.str();
  };
  switch (admin.action) {
    case AdminAction::kGetConfig:
      return admin_config_payload(request.id);
    case AdminAction::kSetQueueDepth:
      set_queue_capacity(admin.value);
      return applied("queue_depth", queue_->capacity());
    case AdminAction::kSetCacheEntries:
      if (cache_ == nullptr) {
        return error_payload(request.id, kCodeBadRequest, "error",
                             "front cache is disabled (cache_entries=0); "
                             "set-cache-entries has no target");
      }
      set_cache_capacity(admin.value);
      return applied("cache_entries", cache_->capacity());
    case AdminAction::kSetWorkers:
      set_workers(admin.value);
      return applied("workers", crew_->target());
    case AdminAction::kCatalogReload: {
      if (config_.catalog == nullptr) {
        return error_payload(request.id, kCodeBadRequest, "error",
                             "no scenario catalog configured; catalog-reload "
                             "has no target");
      }
      std::shared_ptr<const ScenarioCatalog> next;
      try {
        next = std::make_shared<const ScenarioCatalog>(admin.catalog);
      } catch (const std::invalid_argument& e) {
        return error_payload(request.id, kCodeBadRequest, "error",
                             std::string("catalog rejected: ") + e.what());
      }
      const std::size_t scenarios = next->size();
      const std::uint64_t generation = config_.catalog->swap(std::move(next));
      JsonObject o;
      o.field("type", "response");
      if (!request.id.empty()) o.field("id", request.id);
      o.field("status", "ok");
      o.field("code", static_cast<std::int64_t>(kCodeOk));
      o.field("action", "catalog-reload");
      o.field("catalog_generation", generation);
      o.field("catalog_size", static_cast<std::uint64_t>(scenarios));
      return o.str();
    }
    case AdminAction::kEnableBackend:
    case AdminAction::kDisableBackend:
    case AdminAction::kFleetReload:
      return error_payload(request.id, kCodeBadRequest, "error",
                           "this is a single eus_served daemon, not an "
                           "eus_router; fleet verbs have no target here");
    case AdminAction::kArchiveStats: {
      if (config_.archive == nullptr) {
        return error_payload(request.id, kCodeBadRequest, "error",
                             "no warm-start archive configured "
                             "(--archive-tenants=0); archive verbs have no "
                             "target");
      }
      JsonObject o;
      o.field("type", "response");
      if (!request.id.empty()) o.field("id", request.id);
      o.field("status", "ok");
      o.field("code", static_cast<std::int64_t>(kCodeOk));
      o.field("action", "archive-stats");
      o.field("tenants",
              static_cast<std::uint64_t>(config_.archive->tenants()));
      o.field("entries",
              static_cast<std::uint64_t>(config_.archive->entries()));
      o.field("genomes",
              static_cast<std::uint64_t>(config_.archive->genomes()));
      std::string per_tenant = "[";
      bool first = true;
      for (const tenant::TenantStats& s : config_.archive->stats()) {
        if (!first) per_tenant += ',';
        first = false;
        JsonObject t;
        t.field("tenant", s.tenant);
        t.field("entries", static_cast<std::uint64_t>(s.entries));
        t.field("genomes", static_cast<std::uint64_t>(s.genomes));
        t.field("cap", static_cast<std::uint64_t>(s.cap));
        t.field("warm_hits", s.warm_hits);
        t.field("misses", s.misses);
        per_tenant += t.str();
      }
      per_tenant += ']';
      o.raw("per_tenant", per_tenant);
      return o.str();
    }
    case AdminAction::kArchiveFlush: {
      if (config_.archive == nullptr) {
        return error_payload(request.id, kCodeBadRequest, "error",
                             "no warm-start archive configured "
                             "(--archive-tenants=0); archive verbs have no "
                             "target");
      }
      const std::size_t flushed = config_.archive->flush(admin.name);
      return applied("flushed", static_cast<std::uint64_t>(flushed));
    }
    case AdminAction::kArchiveCap: {
      if (config_.archive == nullptr) {
        return error_payload(request.id, kCodeBadRequest, "error",
                             "no warm-start archive configured "
                             "(--archive-tenants=0); archive verbs have no "
                             "target");
      }
      if (!config_.archive->set_tenant_cap(admin.name, admin.value)) {
        return error_payload(request.id, kCodeBadRequest, "error",
                             "archive-cap value must be >= 1");
      }
      return applied("cap", static_cast<std::uint64_t>(admin.value));
    }
  }
  return error_payload(request.id, kCodeInternal, "error",
                       "unhandled admin action");
}

void Server::log_request(const ServeRequest& request, int code,
                         double total_ms, bool dropped) {
  if (config_.log == nullptr) return;
  JsonObject o;
  o.field("type", "serve_request");
  o.field("t_s", uptime_.seconds());
  if (!request.id.empty()) o.field("id", request.id);
  std::string mode{to_string(request.mode)};
  if (request.mode == ModeKind::kHeuristic) {
    mode += std::string(":") + heuristic_slug(request.heuristic);
  }
  o.field("mode", mode);
  o.field("kind", to_string(request.kind));
  o.field("scenario", request.kind == RequestKind::kDelta
                          ? request.delta.base.name
                          : request.scenario.name);
  if (!request.tenant.empty()) o.field("tenant", request.tenant);
  o.field("code", static_cast<std::int64_t>(code));
  o.field("dropped", dropped);
  o.field("total_ms", total_ms);
  config_.log->write(o.str());
}

}  // namespace eus::serve
