#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <future>
#include <optional>
#include <stdexcept>
#include <utility>

#include "telemetry/json.hpp"

namespace eus::serve {

// ---------------------------------------------------------------- RequestLog

struct RequestLog::Impl {
  std::mutex mutex;
  std::ofstream out;
};

RequestLog::RequestLog(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) throw std::runtime_error("cannot open run log " + path);
}

RequestLog::~RequestLog() = default;

void RequestLog::write(const std::string& json_line) {
  const std::lock_guard lock(impl_->mutex);
  impl_->out << json_line << '\n';
  impl_->out.flush();  // the daemon may be SIGKILLed; keep lines durable
  ++lines_;
}

// -------------------------------------------------------------------- Server

struct Server::Job {
  ServeRequest request;
  Stopwatch waited;  ///< starts at enqueue: measures queue time
  std::promise<HandleResult> promise;
};

struct Server::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (config_.workers < 1) config_.workers = 1;
  if (config_.cache_entries > 0) {
    cache_ = std::make_unique<FrontCache>(config_.cache_entries, metrics_);
  }
  if (config_.eval_threads != 1) {
    eval_pool_ = std::make_unique<ThreadPool>(config_.eval_threads);
  }
  queue_ = std::make_unique<BoundedQueue<Job>>(config_.queue_depth);
  handler_context_.metrics = metrics_;
  handler_context_.cache = cache_.get();
  handler_context_.pool = eval_pool_.get();
}

Server::~Server() { stop(); }

std::size_t Server::queue_size() const { return queue_->size(); }

void Server::start() {
  if (started_.exchange(true)) {
    throw std::logic_error("server already started");
  }

  metric_connections_ = &metrics_->counter("serve.connections");
  metric_requests_ = &metrics_->counter("serve.requests");
  metric_responses_ok_ = &metrics_->counter("serve.responses_ok");
  metric_errors_ = &metrics_->counter("serve.errors");
  metric_dropped_ = &metrics_->counter("serve.dropped");
  metric_deadline_expired_ = &metrics_->counter("serve.deadline_expired");
  metric_queue_depth_ = &metrics_->gauge("serve.queue_depth");
  metric_in_flight_ = &metrics_->gauge("serve.in_flight");
  metric_service_ = &metrics_->timer("serve.service_s");
  metric_queue_wait_ = &metrics_->timer("serve.queue_wait_s");
  metric_latency_ = &metrics_->histogram("serve.latency");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket(): ") +
                             std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot listen on port " +
                             std::to_string(config_.port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  uptime_.reset();
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });

  if (config_.log != nullptr) {
    JsonObject o;
    o.field("type", "config");
    o.field("service", "eus_served");
    o.field("port", static_cast<std::uint64_t>(port_));
    o.field("queue_depth", static_cast<std::uint64_t>(config_.queue_depth));
    o.field("workers", static_cast<std::uint64_t>(config_.workers));
    o.field("eval_threads", static_cast<std::uint64_t>(
                                eval_pool_ ? eval_pool_->size() : 1));
    o.field("cache_entries",
            static_cast<std::uint64_t>(cache_ ? cache_->capacity() : 0));
    config_.log->write(o.str());
  }
}

void Server::request_stop() noexcept {
  draining_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::stop() {
  if (!started_.load()) return;
  if (stopped_.exchange(true)) return;

  // 1. Stop accepting: wake the acceptor and wait for it.
  request_stop();
  if (acceptor_.joinable()) acceptor_.join();

  // 2. Drain: refuse new work, let the workers answer everything already
  //    queued or in flight, then exit.
  queue_->close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }

  // 3. Unblock connection readers (their pending futures are all resolved
  //    by now) and wait for them to finish writing responses.
  {
    const std::lock_guard lock(connections_mutex_);
    for (const auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RD);
    }
  }
  for (const auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  {
    const std::lock_guard lock(connections_mutex_);
    connections_.clear();
  }

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::reap_finished_connections() {
  const std::lock_guard lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::acceptor_loop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (or fatal): stop accepting
    }
    if (draining_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    metric_connections_->add();
    reap_finished_connections();

    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    {
      const std::lock_guard lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { connection_loop(raw); });
  }
}

void Server::worker_loop() {
  while (std::optional<Job> job = queue_->pop()) {
    metric_queue_depth_->set(static_cast<double>(queue_->size()));
    const double queue_ms = job->waited.milliseconds();
    metric_queue_wait_->add(
        std::chrono::nanoseconds(static_cast<std::int64_t>(queue_ms * 1e6)));
    metric_in_flight_->set(static_cast<double>(
        in_flight_.fetch_add(1, std::memory_order_relaxed) + 1));

    std::optional<double> remaining_ms;
    if (job->request.deadline_ms > 0.0) {
      remaining_ms = job->request.deadline_ms - queue_ms;
    }
    HandleResult result;
    {
      const ScopedTimer timed(metric_service_);
      result = handle_allocate(job->request, handler_context_, remaining_ms,
                               queue_ms);
    }
    if (result.code == kCodePartial) metric_deadline_expired_->add();
    job->promise.set_value(std::move(result));

    metric_in_flight_->set(static_cast<double>(
        in_flight_.fetch_sub(1, std::memory_order_relaxed) - 1));
  }
}

void Server::connection_loop(Connection* connection) {
  FrameDecoder decoder(config_.max_frame_bytes);
  std::vector<char> buffer(64 * 1024);
  bool keep = true;
  while (keep) {
    std::optional<std::string> payload;
    while (keep && (payload = decoder.next()).has_value()) {
      keep = process_payload(connection, *payload);
    }
    if (!keep) break;
    const ssize_t n =
        ::recv(connection->fd, buffer.data(), buffer.size(), 0);
    if (n == 0) break;  // peer closed (or drain shut the read side)
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    try {
      decoder.feed(buffer.data(), static_cast<std::size_t>(n));
    } catch (const ProtocolError& e) {
      // A hostile length prefix poisons the whole stream: answer once,
      // then close (there is no way to resynchronize framing).
      metric_errors_->add();
      send_payload(connection,
                   error_payload("", kCodeBadRequest, "error", e.what()));
      break;
    }
  }
  {
    const std::lock_guard lock(connections_mutex_);
    if (connection->fd >= 0) {
      ::close(connection->fd);
      connection->fd = -1;
    }
  }
  connection->done.store(true, std::memory_order_release);
}

bool Server::process_payload(Connection* connection,
                             const std::string& payload) {
  const Stopwatch total;
  ServeRequest request;
  try {
    request = parse_request_text(payload);
  } catch (const ProtocolError& e) {
    // Framing is intact, the document is not: answer and keep the
    // connection.
    metric_errors_->add();
    send_payload(connection,
                 error_payload("", kCodeBadRequest, "error", e.what()));
    return true;
  }
  metric_requests_->add();

  if (request.kind == RequestKind::kHealthz) {
    send_payload(connection, healthz_payload(request.id));
    return true;
  }
  if (request.kind == RequestKind::kMetricsz) {
    send_payload(connection, metricsz_payload(request.id));
    return true;
  }

  Job job;
  job.request = request;
  std::future<HandleResult> future = job.promise.get_future();
  if (!queue_->try_push(std::move(job))) {
    metric_dropped_->add();
    const char* reason = draining_.load(std::memory_order_relaxed)
                             ? "server is draining; no new work accepted"
                             : "request queue is full; retry with backoff";
    send_payload(connection, error_payload(request.id, kCodeOverloaded,
                                           "overloaded", reason));
    log_request(request, kCodeOverloaded, total.milliseconds(), true);
    return true;
  }
  metric_queue_depth_->set(static_cast<double>(queue_->size()));

  HandleResult result = future.get();
  send_payload(connection, result.payload);
  if (result.code == kCodeOk || result.code == kCodePartial) {
    metric_responses_ok_->add();
  } else {
    metric_errors_->add();
  }
  metric_latency_->observe_seconds(total.seconds());
  log_request(request, result.code, total.milliseconds(), false);
  return true;
}

void Server::send_payload(Connection* connection,
                          const std::string& payload) {
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(connection->fd, frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer gone; nothing sensible left to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Server::healthz_payload(const std::string& id) const {
  JsonObject o;
  o.field("type", "response");
  if (!id.empty()) o.field("id", id);
  o.field("status", "ok");
  o.field("code", static_cast<std::int64_t>(kCodeOk));
  o.field("service", "eus_served");
  o.field("uptime_s", uptime_.seconds());
  o.field("queue_depth", static_cast<std::uint64_t>(queue_->size()));
  o.field("queue_capacity",
          static_cast<std::uint64_t>(config_.queue_depth));
  o.field("in_flight", static_cast<std::uint64_t>(
                           in_flight_.load(std::memory_order_relaxed)));
  o.field("workers", static_cast<std::uint64_t>(config_.workers));
  o.field("eval_threads",
          static_cast<std::uint64_t>(eval_pool_ ? eval_pool_->size() : 1));
  o.field("cache_size",
          static_cast<std::uint64_t>(cache_ ? cache_->size() : 0));
  o.field("draining", draining_.load(std::memory_order_relaxed));
  return o.str();
}

std::string Server::metricsz_payload(const std::string& id) const {
  const MetricsSnapshot snap = metrics_->snapshot();
  JsonObject o;
  o.field("type", "response");
  if (!id.empty()) o.field("id", id);
  o.field("status", "ok");
  o.field("code", static_cast<std::int64_t>(kCodeOk));
  o.field("uptime_s", uptime_.seconds());
  JsonObject counters;
  for (const auto& [name, value] : snap.counters) {
    counters.field(name, value);
  }
  o.raw("counters", counters.str());
  JsonObject gauges;
  for (const auto& [name, value] : snap.gauges) gauges.field(name, value);
  o.raw("gauges", gauges.str());
  JsonObject timers;
  for (const auto& [name, stat] : snap.timers) {
    JsonObject t;
    t.field("seconds", stat.seconds);
    t.field("count", stat.count);
    timers.raw(name, t.str());
  }
  o.raw("timers", timers.str());
  JsonObject histograms;
  for (const auto& [name, stat] : snap.histograms) {
    JsonObject h;
    h.field("count", stat.count);
    h.field("p50_ms", stat.p50_s * 1e3);
    h.field("p95_ms", stat.p95_s * 1e3);
    h.field("p99_ms", stat.p99_s * 1e3);
    histograms.raw(name, h.str());
  }
  o.raw("histograms", histograms.str());
  return o.str();
}

void Server::log_request(const ServeRequest& request, int code,
                         double total_ms, bool dropped) {
  if (config_.log == nullptr) return;
  JsonObject o;
  o.field("type", "serve_request");
  o.field("t_s", uptime_.seconds());
  if (!request.id.empty()) o.field("id", request.id);
  std::string mode{to_string(request.mode)};
  if (request.mode == ModeKind::kHeuristic) {
    mode += std::string(":") + heuristic_slug(request.heuristic);
  }
  o.field("mode", mode);
  o.field("scenario", request.scenario.name);
  o.field("code", static_cast<std::int64_t>(code));
  o.field("dropped", dropped);
  o.field("total_ms", total_ms);
  config_.log->write(o.str());
}

}  // namespace eus::serve
