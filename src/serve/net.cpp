#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace eus::serve {

// ---------------------------------------------------------------- RequestLog

struct RequestLog::Impl {
  std::mutex mutex;
  std::ofstream out;
};

RequestLog::RequestLog(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::binary | std::ios::app);
  if (!impl_->out) throw std::runtime_error("cannot open run log " + path);
}

RequestLog::~RequestLog() = default;

void RequestLog::write(const std::string& json_line) {
  const std::lock_guard lock(impl_->mutex);
  impl_->out << json_line << '\n';
  impl_->out.flush();  // the daemon may be SIGKILLed; keep lines durable
  lines_.fetch_add(1, std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Acceptor

void Acceptor::start(std::uint16_t port, std::function<void(int)> on_accept) {
  on_accept_ = std::move(on_accept);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket(): ") +
                             std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot listen on port " + std::to_string(port) +
                             ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  thread_ = std::thread([this] { loop(); });
}

void Acceptor::interrupt() noexcept {
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Acceptor::halt() {
  interrupt();
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Acceptor::loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (or fatal): stop accepting
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    on_accept_(fd);
  }
}

// ------------------------------------------------------------- ConnectionSet

void ConnectionSet::adopt(int fd,
                          const std::function<void(Connection*)>& loop) {
  auto connection = std::make_unique<Connection>();
  connection->fd = fd;
  Connection* raw = connection.get();
  {
    const std::lock_guard lock(mutex_);
    connections_.push_back(std::move(connection));
  }
  raw->thread = std::thread([loop, raw] { loop(raw); });
}

void ConnectionSet::reap() {
  const std::lock_guard lock(mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void ConnectionSet::close_fd(Connection* connection) {
  const std::lock_guard lock(mutex_);
  if (connection->fd >= 0) {
    ::close(connection->fd);
    connection->fd = -1;
  }
}

void ConnectionSet::halt() {
  {
    const std::lock_guard lock(mutex_);
    for (const auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RD);
    }
  }
  // Join outside the lock: exiting loops close their fd via close_fd(),
  // which takes it.  No adopt() can race (the acceptor is halted first).
  for (const auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  {
    const std::lock_guard lock(mutex_);
    connections_.clear();
  }
}

std::size_t ConnectionSet::active() const {
  const std::lock_guard lock(mutex_);
  std::size_t live = 0;
  for (const auto& connection : connections_) {
    if (!connection->done.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

}  // namespace eus::serve
