#include "serve/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "data/types.hpp"
#include "telemetry/json.hpp"
#include "tenant/archive_store.hpp"

namespace eus::serve {

namespace {

using util::JsonValue;

[[noreturn]] void fail(const std::string& reason) {
  throw ProtocolError(reason);
}

double require_positive(double v, const char* what) {
  if (!(v > 0.0) || !std::isfinite(v)) {
    fail(std::string(what) + " must be a positive finite number");
  }
  return v;
}

std::size_t size_field(const JsonValue& obj, std::string_view key,
                       std::size_t fallback) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr) return fallback;
  if (!v->is_number() || v->number < 0.0 ||
      v->number != std::floor(v->number)) {
    fail(std::string(key) + " must be a non-negative integer");
  }
  return static_cast<std::size_t>(v->number);
}

std::vector<std::vector<double>> matrix_field(const JsonValue& obj,
                                              std::string_view key) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr || !v->is_array()) {
    fail(std::string(key) + " must be an array of rows");
  }
  std::vector<std::vector<double>> rows;
  rows.reserve(v->array.size());
  for (const JsonValue& row : v->array) {
    if (!row.is_array()) fail(std::string(key) + " rows must be arrays");
    std::vector<double> out;
    out.reserve(row.array.size());
    for (const JsonValue& cell : row.array) {
      if (cell.kind == JsonValue::Kind::kNull) {
        out.push_back(kIneligible);  // null == task cannot run there
      } else if (cell.is_number()) {
        out.push_back(require_positive(cell.number,
                                       (std::string(key) + " entry").c_str()));
      } else {
        fail(std::string(key) + " entries must be numbers or null");
      }
    }
    if (!rows.empty() && out.size() != rows.front().size()) {
      fail(std::string(key) + " rows must have equal width");
    }
    rows.push_back(std::move(out));
  }
  if (rows.empty() || rows.front().empty()) {
    fail(std::string(key) + " must be non-empty");
  }
  return rows;
}

ScenarioSpec parse_scenario(const JsonValue& doc, std::string_view key) {
  const JsonValue* s = doc.get(key);
  if (s == nullptr || !s->is_object()) {
    fail("request needs a \"" + std::string(key) + "\" scenario object");
  }
  ScenarioSpec spec;
  spec.name = s->string_or("name", "");
  if (const JsonValue* seed = s->get("seed"); seed != nullptr) {
    if (!seed->is_number() || seed->number < 0.0 ||
        seed->number != std::floor(seed->number)) {
      fail("scenario.seed must be a non-negative integer");
    }
    spec.seed = static_cast<std::uint64_t>(seed->number);
    spec.seed_set = true;
  }
  if (spec.name == "dataset1" || spec.name == "dataset2" ||
      spec.name == "dataset3") {
    return spec;
  }
  if (spec.name == "custom") {
    spec.tasks = size_field(*s, "tasks", spec.tasks);
    spec.window_s = require_positive(s->number_or("window_s", spec.window_s),
                                     "scenario.window_s");
    if (spec.tasks == 0) fail("scenario.tasks must be >= 1");
    return spec;
  }
  if (spec.name.empty() || spec.name == "inline") {
    // Inline system: ETC/EPC matrices are mandatory.
    spec.name = "inline";
    spec.etc = matrix_field(*s, "etc");
    spec.epc = matrix_field(*s, "epc");
    if (spec.epc.size() != spec.etc.size() ||
        spec.epc.front().size() != spec.etc.front().size()) {
      fail("scenario.epc shape must match scenario.etc");
    }
    if (const JsonValue* counts = s->get("machine_counts");
        counts != nullptr) {
      if (!counts->is_array()) fail("scenario.machine_counts must be an array");
      if (counts->array.size() != spec.etc.front().size()) {
        fail("scenario.machine_counts must have one entry per machine type");
      }
      for (const JsonValue& c : counts->array) {
        if (!c.is_number() || c.number < 1.0 ||
            c.number != std::floor(c.number)) {
          fail("scenario.machine_counts entries must be integers >= 1");
        }
        spec.machine_counts.push_back(static_cast<std::size_t>(c.number));
      }
    }
    spec.tasks = size_field(*s, "tasks", spec.tasks);
    spec.window_s = require_positive(s->number_or("window_s", spec.window_s),
                                     "scenario.window_s");
    if (spec.tasks == 0) fail("scenario.tasks must be >= 1");
    return spec;
  }
  // Any other non-empty name is a catalog alias: resolution against the
  // server's loaded ScenarioCatalog happens later (resolve_scenario), so
  // parsing stays catalog-independent.  Only the name and an optional seed
  // override travel with an alias.
  return spec;
}

AdminRequest parse_admin(const JsonValue& doc) {
  AdminRequest admin;
  const std::string action = doc.string_or("action", "get-config");
  if (action == "get-config") {
    admin.action = AdminAction::kGetConfig;
    return admin;
  }
  if (action == "set-queue-depth" || action == "set-cache-entries" ||
      action == "set-workers") {
    admin.action = action == "set-queue-depth" ? AdminAction::kSetQueueDepth
                   : action == "set-cache-entries"
                       ? AdminAction::kSetCacheEntries
                       : AdminAction::kSetWorkers;
    const JsonValue* v = doc.get("value");
    if (v == nullptr || !v->is_number() || v->number < 1.0 ||
        v->number != std::floor(v->number)) {
      fail("admin." + action + " needs an integer \"value\" >= 1");
    }
    admin.value = static_cast<std::size_t>(v->number);
    return admin;
  }
  if (action == "catalog-reload") {
    admin.action = AdminAction::kCatalogReload;
    const JsonValue* c = doc.get("catalog");
    if (c == nullptr || !c->is_object()) {
      fail("admin.catalog-reload needs a \"catalog\" object");
    }
    const JsonValue* scenarios = c->get("scenarios");
    if (scenarios == nullptr || !scenarios->is_array()) {
      fail("catalog.scenarios must be an array");
    }
    for (const JsonValue& entry : scenarios->array) {
      if (!entry.is_object()) fail("catalog.scenarios entries must be objects");
      ScenarioRecipe recipe;
      recipe.name = entry.string_or("name", "");
      recipe.base = entry.string_or("base", "");
      if (recipe.name.empty()) fail("catalog entry needs a \"name\"");
      if (recipe.base.empty()) fail("catalog entry needs a \"base\"");
      if (const JsonValue* seed = entry.get("seed"); seed != nullptr) {
        if (!seed->is_number() || seed->number < 0.0 ||
            seed->number != std::floor(seed->number)) {
          fail("catalog entry seed must be a non-negative integer");
        }
        recipe.seed = static_cast<std::uint64_t>(seed->number);
      }
      recipe.tasks = size_field(entry, "tasks", recipe.tasks);
      recipe.window_s = require_positive(
          entry.number_or("window_s", recipe.window_s),
          "catalog entry window_s");
      admin.catalog.push_back(std::move(recipe));
    }
    return admin;
  }
  if (action == "enable-backend" || action == "disable-backend") {
    admin.action = action == "enable-backend" ? AdminAction::kEnableBackend
                                              : AdminAction::kDisableBackend;
    admin.name = doc.string_or("name", "");
    if (admin.name.empty()) {
      fail("admin." + action + " needs a backend \"name\"");
    }
    return admin;
  }
  if (action == "fleet-reload") {
    admin.action = AdminAction::kFleetReload;
    const JsonValue* f = doc.get("fleet");
    if (f == nullptr || !f->is_object()) {
      fail("admin.fleet-reload needs a \"fleet\" object");
    }
    admin.fleet = *f;  // validated by the router's fleet-config parser
    return admin;
  }
  if (action == "archive-stats") {
    admin.action = AdminAction::kArchiveStats;
    return admin;
  }
  if (action == "archive-flush") {
    admin.action = AdminAction::kArchiveFlush;
    admin.name = doc.string_or("name", "");
    if (!admin.name.empty() && !tenant::valid_tenant_id(admin.name)) {
      fail("admin.archive-flush tenant name must match [A-Za-z0-9._-]{1,64}");
    }
    return admin;
  }
  if (action == "archive-cap") {
    admin.action = AdminAction::kArchiveCap;
    admin.name = doc.string_or("name", "");
    if (!tenant::valid_tenant_id(admin.name)) {
      fail("admin.archive-cap needs a tenant \"name\" matching "
           "[A-Za-z0-9._-]{1,64}");
    }
    const JsonValue* v = doc.get("value");
    if (v == nullptr || !v->is_number() || v->number < 1.0 ||
        v->number != std::floor(v->number)) {
      fail("admin.archive-cap needs an integer \"value\" >= 1");
    }
    admin.value = static_cast<std::size_t>(v->number);
    return admin;
  }
  fail("unknown admin action '" + action +
       "' (want get-config|set-queue-depth|set-cache-entries|set-workers|"
       "catalog-reload|enable-backend|disable-backend|fleet-reload|"
       "archive-stats|archive-flush|archive-cap)");
}

Nsga2Params parse_nsga2(const JsonValue& doc) {
  Nsga2Params params;
  const JsonValue* n = doc.get("nsga2");
  if (n == nullptr) return params;
  if (!n->is_object()) fail("\"nsga2\" must be an object");
  params.population = size_field(*n, "population", params.population);
  params.generations = size_field(*n, "generations", params.generations);
  params.mutation_probability =
      n->number_or("mutation_probability", params.mutation_probability);
  if (params.population < 2 || params.population % 2 != 0) {
    fail("nsga2.population must be even and >= 2");
  }
  if (params.generations == 0) fail("nsga2.generations must be >= 1");
  if (params.mutation_probability < 0.0 ||
      params.mutation_probability > 1.0) {
    fail("nsga2.mutation_probability must be in [0, 1]");
  }
  if (const JsonValue* seeds = n->get("seeds"); seeds != nullptr) {
    if (!seeds->is_array()) fail("nsga2.seeds must be an array of names");
    for (const JsonValue& s : seeds->array) {
      if (!s.is_string()) fail("nsga2.seeds entries must be strings");
      const auto h = heuristic_from_slug(s.string);
      if (!h) fail("unknown seed heuristic '" + s.string + "'");
      params.seeds.push_back(*h);
    }
  }
  return params;
}

std::string parse_tenant(const JsonValue& doc, bool required) {
  const JsonValue* t = doc.get("tenant");
  if (t == nullptr) {
    if (required) fail("delta request needs a \"tenant\" id");
    return {};
  }
  if (!t->is_string() || !tenant::valid_tenant_id(t->string)) {
    fail("tenant must be a string matching [A-Za-z0-9._-]{1,64}");
  }
  return t->string;
}

std::vector<ScenarioMutation> parse_mutations(const JsonValue& doc) {
  const JsonValue* m = doc.get("mutations");
  if (m == nullptr || !m->is_array()) {
    fail("delta request needs a \"mutations\" array");
  }
  if (m->array.empty()) {
    fail("delta.mutations must not be empty (an unchanged scenario is an "
         "allocate request)");
  }
  std::vector<ScenarioMutation> mutations;
  mutations.reserve(m->array.size());
  for (const JsonValue& entry : m->array) {
    if (!entry.is_object()) fail("delta.mutations entries must be objects");
    const std::string op = entry.string_or("op", "");
    ScenarioMutation mut;
    if (op == "add-tasks" || op == "remove-tasks") {
      mut.op = op == "add-tasks" ? ScenarioMutation::Op::kAddTasks
                                 : ScenarioMutation::Op::kRemoveTasks;
      mut.count = size_field(entry, "count", 0);
      if (mut.count == 0) fail("mutation " + op + " needs a \"count\" >= 1");
    } else if (op == "set-window") {
      mut.op = ScenarioMutation::Op::kSetWindow;
      const JsonValue* w = entry.get("window_s");
      if (w == nullptr || !w->is_number()) {
        fail("mutation set-window needs a \"window_s\" number");
      }
      mut.window_s = require_positive(w->number, "mutation window_s");
    } else if (op == "drop-machine") {
      mut.op = ScenarioMutation::Op::kDropMachine;
      const JsonValue* v = entry.get("machine");
      if (v == nullptr || !v->is_number() || v->number < 0.0 ||
          v->number != std::floor(v->number)) {
        fail("mutation drop-machine needs a non-negative integer "
             "\"machine\" instance index");
      }
      mut.machine = static_cast<std::size_t>(v->number);
    } else {
      fail("unknown mutation op '" + op +
           "' (want add-tasks|remove-tasks|set-window|drop-machine)");
    }
    mutations.push_back(mut);
  }
  return mutations;
}

ParetoQuery parse_query(const JsonValue& doc) {
  ParetoQuery query;
  const JsonValue* q = doc.get("query");
  if (q == nullptr) return query;
  if (!q->is_object()) fail("\"query\" must be an object");
  if (const JsonValue* v = q->get("max_energy"); v != nullptr) {
    if (!v->is_number()) fail("query.max_energy must be a number");
    query.max_energy = require_positive(v->number, "query.max_energy");
  }
  if (const JsonValue* v = q->get("min_utility"); v != nullptr) {
    if (!v->is_number()) fail("query.min_utility must be a number");
    query.min_utility = v->number;
  }
  return query;
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  if (payload.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw ProtocolError("frame payload exceeds 32-bit length prefix");
  }
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.push_back(static_cast<char>((n >> 24U) & 0xFFU));
  frame.push_back(static_cast<char>((n >> 16U) & 0xFFU));
  frame.push_back(static_cast<char>((n >> 8U) & 0xFFU));
  frame.push_back(static_cast<char>(n & 0xFFU));
  frame.append(payload);
  return frame;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
  // Validate the pending length prefix eagerly so a hostile prefix fails
  // before any payload accumulates.
  if (buffer_.size() >= 4) {
    const auto b = [&](std::size_t i) {
      return static_cast<std::uint32_t>(
          static_cast<unsigned char>(buffer_[i]));
    };
    const std::uint32_t n =
        (b(0) << 24U) | (b(1) << 16U) | (b(2) << 8U) | b(3);
    if (n > max_frame_bytes_) {
      throw ProtocolError("frame of " + std::to_string(n) +
                          " bytes exceeds the " +
                          std::to_string(max_frame_bytes_) + "-byte limit");
    }
  }
}

std::optional<std::string> FrameDecoder::next() {
  if (buffer_.size() < 4) return std::nullopt;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t n = (b(0) << 24U) | (b(1) << 16U) | (b(2) << 8U) | b(3);
  if (buffer_.size() < 4 + static_cast<std::size_t>(n)) return std::nullopt;
  std::string payload = buffer_.substr(4, n);
  buffer_.erase(0, 4 + static_cast<std::size_t>(n));
  // The erase may expose the next frame's prefix; re-validate it.
  feed("", 0);
  return payload;
}

const char* to_string(RequestKind k) noexcept {
  switch (k) {
    case RequestKind::kAllocate:
      return "allocate";
    case RequestKind::kDelta:
      return "delta";
    case RequestKind::kHealthz:
      return "healthz";
    case RequestKind::kMetricsz:
      return "metricsz";
    case RequestKind::kAdminz:
      return "adminz";
  }
  return "?";
}

const char* to_string(AdminAction a) noexcept {
  switch (a) {
    case AdminAction::kGetConfig:
      return "get-config";
    case AdminAction::kSetQueueDepth:
      return "set-queue-depth";
    case AdminAction::kSetCacheEntries:
      return "set-cache-entries";
    case AdminAction::kSetWorkers:
      return "set-workers";
    case AdminAction::kCatalogReload:
      return "catalog-reload";
    case AdminAction::kEnableBackend:
      return "enable-backend";
    case AdminAction::kDisableBackend:
      return "disable-backend";
    case AdminAction::kFleetReload:
      return "fleet-reload";
    case AdminAction::kArchiveStats:
      return "archive-stats";
    case AdminAction::kArchiveFlush:
      return "archive-flush";
    case AdminAction::kArchiveCap:
      return "archive-cap";
  }
  return "?";
}

const char* to_string(ModeKind m) noexcept {
  switch (m) {
    case ModeKind::kHeuristic:
      return "heuristic";
    case ModeKind::kNsga2:
      return "nsga2";
    case ModeKind::kParetoQuery:
      return "pareto-query";
  }
  return "?";
}

const char* heuristic_slug(SeedHeuristic h) noexcept {
  switch (h) {
    case SeedHeuristic::kMinEnergy:
      return "min-energy";
    case SeedHeuristic::kMaxUtility:
      return "max-utility";
    case SeedHeuristic::kMaxUtilityPerEnergy:
      return "max-utility-per-energy";
    case SeedHeuristic::kMinMinCompletionTime:
      return "min-min";
  }
  return "?";
}

std::optional<SeedHeuristic> heuristic_from_slug(
    std::string_view slug) noexcept {
  for (const SeedHeuristic h : all_seed_heuristics()) {
    if (slug == heuristic_slug(h)) return h;
  }
  return std::nullopt;
}

ServeRequest parse_request(const util::JsonValue& doc) {
  if (!doc.is_object()) fail("request must be a JSON object");
  ServeRequest request;
  request.id = doc.string_or("id", "");

  const std::string type = doc.string_or("type", "allocate");
  if (type == "healthz") {
    request.kind = RequestKind::kHealthz;
    return request;
  }
  if (type == "metricsz") {
    request.kind = RequestKind::kMetricsz;
    return request;
  }
  if (type == "adminz") {
    request.kind = RequestKind::kAdminz;
    request.admin = parse_admin(doc);
    return request;
  }
  if (type == "delta") {
    request.kind = RequestKind::kDelta;
    // A delta is an nsga2-budget request for routing/capability purposes:
    // repairing and polishing a front runs the same machinery.
    request.mode = ModeKind::kNsga2;
    request.tenant = parse_tenant(doc, /*required=*/true);
    request.delta.base = parse_scenario(doc, "base");
    if (request.delta.base.name == "inline") {
      fail("delta.base cannot be an inline scenario (inline systems are "
           "not archivable; name the scenario instead)");
    }
    request.delta.mutations = parse_mutations(doc);
    request.delta.polish_generations =
        size_field(doc, "polish_generations", 0);
    if (const JsonValue* cf = doc.get("cold_fallback"); cf != nullptr) {
      if (cf->kind != JsonValue::Kind::kBool) {
        fail("cold_fallback must be a boolean");
      }
      request.delta.cold_fallback = cf->boolean;
    }
    request.nsga2 = parse_nsga2(doc);
    if (const JsonValue* d = doc.get("deadline_ms"); d != nullptr) {
      if (!d->is_number() || d->number < 0.0) {
        fail("deadline_ms must be a non-negative number");
      }
      request.deadline_ms = d->number;
    }
    return request;
  }
  if (type != "allocate") {
    fail("unknown request type '" + type +
         "' (want allocate|delta|healthz|metricsz|adminz)");
  }
  request.kind = RequestKind::kAllocate;
  request.tenant = parse_tenant(doc, /*required=*/false);

  const std::string mode = doc.string_or("mode", "");
  constexpr std::string_view kHeuristicPrefix = "heuristic:";
  if (mode.rfind(kHeuristicPrefix, 0) == 0) {
    request.mode = ModeKind::kHeuristic;
    const std::string slug = mode.substr(kHeuristicPrefix.size());
    const auto h = heuristic_from_slug(slug);
    if (!h) {
      std::string known;
      for (const SeedHeuristic k : all_seed_heuristics()) {
        if (!known.empty()) known += '|';
        known += heuristic_slug(k);
      }
      fail("unknown heuristic '" + slug + "' (want " + known + ")");
    }
    request.heuristic = *h;
  } else if (mode == "nsga2") {
    request.mode = ModeKind::kNsga2;
  } else if (mode == "pareto-query") {
    request.mode = ModeKind::kParetoQuery;
  } else {
    fail("unknown mode '" + mode +
         "' (want heuristic:<name>|nsga2|pareto-query)");
  }

  request.scenario = parse_scenario(doc, "scenario");
  request.nsga2 = parse_nsga2(doc);
  request.query = parse_query(doc);

  if (const JsonValue* d = doc.get("deadline_ms"); d != nullptr) {
    if (!d->is_number() || d->number < 0.0) {
      fail("deadline_ms must be a non-negative number");
    }
    request.deadline_ms = d->number;
  }
  return request;
}

ServeRequest parse_request_text(std::string_view json) {
  try {
    return parse_request(util::parse_json(json));
  } catch (const util::JsonParseError& e) {
    fail(std::string("malformed JSON: ") + e.what());
  }
}

ScenarioSpec resolve_scenario(const ScenarioSpec& spec,
                              const ScenarioCatalog* catalog) {
  if (ScenarioCatalog::is_builtin_name(spec.name)) return spec;
  const ScenarioRecipe* recipe =
      catalog == nullptr ? nullptr : catalog->find(spec.name);
  if (recipe == nullptr) {
    fail("unknown scenario name '" + spec.name +
         "' (want dataset1|dataset2|dataset3|custom|inline or a catalog "
         "alias)");
  }
  // The resolved spec is exactly what a direct request for the recipe's
  // base would carry, so aliases share cache entries with direct requests
  // and cached fronts stay valid across catalog reloads.
  ScenarioSpec resolved;
  resolved.name = recipe->base;
  resolved.seed = spec.seed_set ? spec.seed : recipe->seed;
  resolved.seed_set = true;
  resolved.tasks = recipe->tasks;
  resolved.window_s = recipe->window_s;
  return resolved;
}

ScenarioSpec apply_mutations(const ScenarioSpec& base,
                             const std::vector<ScenarioMutation>& mutations) {
  ScenarioSpec spec = base;
  for (const ScenarioMutation& m : mutations) {
    switch (m.op) {
      case ScenarioMutation::Op::kAddTasks:
        if (spec.name != "custom") {
          fail("mutation add-tasks applies only to custom scenarios (the "
               "datasets' traces are fixed)");
        }
        spec.tasks += m.count;
        break;
      case ScenarioMutation::Op::kRemoveTasks:
        if (spec.name != "custom") {
          fail("mutation remove-tasks applies only to custom scenarios (the "
               "datasets' traces are fixed)");
        }
        if (m.count >= spec.tasks) {
          fail("mutation remove-tasks would leave the trace empty");
        }
        spec.tasks -= m.count;
        break;
      case ScenarioMutation::Op::kSetWindow:
        if (spec.name != "custom") {
          fail("mutation set-window applies only to custom scenarios (the "
               "datasets' windows are fixed)");
        }
        spec.window_s = m.window_s;
        break;
      case ScenarioMutation::Op::kDropMachine:
        for (const std::size_t d : spec.dropped_machines) {
          if (d == m.machine) {
            fail("mutation drop-machine lists machine " +
                 std::to_string(m.machine) + " twice");
          }
        }
        spec.dropped_machines.push_back(m.machine);
        break;
    }
  }
  std::sort(spec.dropped_machines.begin(), spec.dropped_machines.end());
  return spec;
}

namespace {

/// The "nsga2" budget object shared by allocate and delta rendering.
JsonObject render_nsga2_object(const Nsga2Params& n) {
  JsonObject nsga2;
  nsga2.field("population", static_cast<std::uint64_t>(n.population));
  nsga2.field("generations", static_cast<std::uint64_t>(n.generations));
  nsga2.field("mutation_probability", n.mutation_probability);
  std::string seeds = "[";
  for (const SeedHeuristic h : n.seeds) {
    if (seeds.size() > 1) seeds += ',';
    seeds += '"';
    seeds += heuristic_slug(h);
    seeds += '"';
  }
  seeds += ']';
  nsga2.raw("seeds", seeds);
  return nsga2;
}

JsonObject render_scenario_object(const ScenarioSpec& spec) {
  JsonObject scenario;
  scenario.field("name", spec.name);
  if (spec.seed_set) {
    scenario.field("seed", static_cast<std::uint64_t>(spec.seed));
  }
  if (spec.name == "custom") {
    scenario.field("tasks", static_cast<std::uint64_t>(spec.tasks));
    scenario.field("window_s", spec.window_s);
  }
  return scenario;
}

}  // namespace

std::string render_allocate_request(const ServeRequest& request) {
  if (request.kind != RequestKind::kAllocate) {
    fail("render_allocate_request wants an allocate request");
  }
  if (request.scenario.name == "inline") {
    fail("render_allocate_request does not support inline scenarios");
  }
  JsonObject o;
  o.field("type", "allocate");
  if (!request.id.empty()) o.field("id", request.id);
  if (!request.tenant.empty()) o.field("tenant", request.tenant);
  std::string mode{to_string(request.mode)};
  if (request.mode == ModeKind::kHeuristic) {
    mode += std::string(":") + heuristic_slug(request.heuristic);
  }
  o.field("mode", mode);
  o.raw("scenario", render_scenario_object(request.scenario).str());
  if (request.mode != ModeKind::kHeuristic) {
    o.raw("nsga2", render_nsga2_object(request.nsga2).str());
  }
  if (request.mode == ModeKind::kParetoQuery) {
    JsonObject query;
    if (request.query.max_energy) {
      query.field("max_energy", *request.query.max_energy);
    }
    if (request.query.min_utility) {
      query.field("min_utility", *request.query.min_utility);
    }
    o.raw("query", query.str());
  }
  if (request.deadline_ms > 0.0) o.field("deadline_ms", request.deadline_ms);
  return o.str();
}

std::string render_delta_request(const ServeRequest& request) {
  if (request.kind != RequestKind::kDelta) {
    fail("render_delta_request wants a delta request");
  }
  JsonObject o;
  o.field("type", "delta");
  if (!request.id.empty()) o.field("id", request.id);
  o.field("tenant", request.tenant);
  o.raw("base", render_scenario_object(request.delta.base).str());
  std::string mutations = "[";
  for (const ScenarioMutation& m : request.delta.mutations) {
    JsonObject mut;
    switch (m.op) {
      case ScenarioMutation::Op::kAddTasks:
        mut.field("op", "add-tasks");
        mut.field("count", static_cast<std::uint64_t>(m.count));
        break;
      case ScenarioMutation::Op::kRemoveTasks:
        mut.field("op", "remove-tasks");
        mut.field("count", static_cast<std::uint64_t>(m.count));
        break;
      case ScenarioMutation::Op::kSetWindow:
        mut.field("op", "set-window");
        mut.field("window_s", m.window_s);
        break;
      case ScenarioMutation::Op::kDropMachine:
        mut.field("op", "drop-machine");
        mut.field("machine", static_cast<std::uint64_t>(m.machine));
        break;
    }
    if (mutations.size() > 1) mutations += ',';
    mutations += mut.str();
  }
  mutations += ']';
  o.raw("mutations", mutations);
  if (request.delta.polish_generations > 0) {
    o.field("polish_generations",
            static_cast<std::uint64_t>(request.delta.polish_generations));
  }
  if (!request.delta.cold_fallback) o.field("cold_fallback", false);
  o.raw("nsga2", render_nsga2_object(request.nsga2).str());
  if (request.deadline_ms > 0.0) o.field("deadline_ms", request.deadline_ms);
  return o.str();
}

std::string scenario_fingerprint(const ScenarioSpec& s) {
  std::ostringstream key;
  key.precision(17);
  key << "scenario=" << s.name << ";seed=" << s.seed;
  if (s.name == "custom" || s.name == "inline") {
    key << ";tasks=" << s.tasks << ";window=" << s.window_s;
  }
  if (s.name == "inline") {
    // FNV-1a over the matrix entries' bit patterns keeps the key short
    // while remaining a pure function of the inline system.
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFFU;
        h *= 1099511628211ULL;
      }
    };
    for (const auto* m : {&s.etc, &s.epc}) {
      mix(m->size());
      for (const auto& row : *m) {
        for (const double x : row) {
          std::uint64_t bits = 0;
          static_assert(sizeof(bits) == sizeof(x));
          std::memcpy(&bits, &x, sizeof(bits));
          mix(bits);
        }
      }
    }
    for (const std::size_t c : s.machine_counts) mix(c);
    key << ";system=" << std::hex << h << std::dec;
  }
  if (!s.dropped_machines.empty()) {
    key << ";drop=";
    for (std::size_t i = 0; i < s.dropped_machines.size(); ++i) {
      if (i > 0) key << ',';
      key << s.dropped_machines[i];
    }
  }
  return key.str();
}

std::string request_fingerprint(const ServeRequest& request) {
  std::ostringstream key;
  key.precision(17);
  if (request.kind == RequestKind::kDelta) {
    // Never a front-cache key (delta results depend on archive state);
    // identifies the request for routing and logs.
    key << "delta;base=" << scenario_fingerprint(request.delta.base)
        << ";mut=";
    for (const ScenarioMutation& m : request.delta.mutations) {
      switch (m.op) {
        case ScenarioMutation::Op::kAddTasks:
          key << "+t" << m.count;
          break;
        case ScenarioMutation::Op::kRemoveTasks:
          key << "-t" << m.count;
          break;
        case ScenarioMutation::Op::kSetWindow:
          key << "w" << m.window_s;
          break;
        case ScenarioMutation::Op::kDropMachine:
          key << "-m" << m.machine;
          break;
      }
      key << ',';
    }
  } else {
    key << scenario_fingerprint(request.scenario);
  }
  key << "|mode=";
  if (request.mode == ModeKind::kHeuristic) {
    key << "heuristic:" << heuristic_slug(request.heuristic);
  } else {
    // pareto-query shares the nsga2 fingerprint on purpose: it reads the
    // front an nsga2 request with the same budget would compute.
    const Nsga2Params& n = request.nsga2;
    key << "nsga2;pop=" << n.population << ";gen=" << n.generations
        << ";mut=" << n.mutation_probability << ";seeds=";
    for (const SeedHeuristic h : n.seeds) key << heuristic_slug(h) << ',';
  }
  if (!request.tenant.empty()) {
    // Tenant-keyed results may be warm-started (strictly better fronts);
    // they never share cache entries with the tenant-less fast path.
    key << ";tenant=" << request.tenant;
  }
  return key.str();
}

}  // namespace eus::serve
