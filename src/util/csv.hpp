#pragma once

// Tiny CSV writer/reader used by the bench harness to export Pareto-front
// series for external plotting, and by the data layer to round-trip ETC/EPC
// matrices.  Values containing commas/quotes/newlines are quoted per RFC
// 4180.

#include <filesystem>
#include <ostream>
#include <string>
#include <vector>

namespace eus {

class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& cells);
  void write_row_numeric(const std::vector<double>& cells, int precision = 6);

 private:
  std::ostream* out_;
};

/// Parses CSV content into rows of cells.  Handles quoted fields, embedded
/// quotes (doubled), and both \n and \r\n line endings.  A trailing newline
/// does not produce an empty final row.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    const std::string& content);

/// Reads a whole file; throws std::runtime_error when unreadable.
[[nodiscard]] std::string read_file(const std::filesystem::path& path);

/// Writes a whole file; throws std::runtime_error on failure.
void write_file(const std::filesystem::path& path, const std::string& content);

}  // namespace eus
