#pragma once

// Minimal JSON reader shared by the bench harness (bench/baselines.json,
// BENCH_results.json) and the serve protocol (length-prefixed request
// frames).  The telemetry layer only emits JSON; everything that needs to
// read it back comes through here.  Recursive descent over the full
// RFC 8259 grammar, tuned for clarity over throughput — these documents
// are kilobytes.

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace eus::util {

/// Malformed input; `what()` carries a byte offset and a short reason.
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed JSON value.  A tagged aggregate rather than a variant: the
/// documents are tiny, so the wasted members cost nothing and every
/// accessor stays trivial.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind == Kind::kArray;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const;

  /// Member `key` as a number/string, or the fallback when absent or of
  /// the wrong kind.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing content
/// rejected).  Throws JsonParseError on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Reads and parses a whole file.  Throws std::runtime_error when the file
/// cannot be read, JsonParseError when it is not valid JSON.
[[nodiscard]] JsonValue parse_json_file(const std::string& path);

}  // namespace eus::util
