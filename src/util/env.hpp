#pragma once

// Environment-variable configuration knobs for the bench harness.
//
// The paper runs NSGA-II for up to 10^6 iterations; on small hosts the
// benches scale their checkpoint schedules by EUS_SCALE (a positive double,
// default chosen per bench).  EUS_SEED overrides the master seed.

#include <cstdint>
#include <optional>
#include <string>

namespace eus {

/// Raw lookup; std::nullopt when unset or empty.
[[nodiscard]] std::optional<std::string> env_string(const char* name);

/// Parses a double from the environment; falls back when unset/invalid.
[[nodiscard]] double env_double(const char* name, double fallback);

/// Parses an integer from the environment; falls back when unset/invalid.
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);

/// The global iteration-scale knob (EUS_SCALE, default 1.0, clamped > 0).
[[nodiscard]] double bench_scale();

/// The global master seed (EUS_SEED, default 20130520 — the IPDPSW'13
/// workshop date).
[[nodiscard]] std::uint64_t bench_seed();

/// The global worker-thread knob (EUS_THREADS): 0 = hardware concurrency
/// (the default — benches saturate the machine), 1 = fully serial, n > 1 =
/// n workers.  Negative/invalid values fall back to 0.
[[nodiscard]] std::size_t bench_threads();

/// The fitness-memoization knob (EUS_CACHE): "off"/"none"/"0" disables the
/// cache, unset/"on" selects the default capacity, and a positive integer
/// sets the maximum number of cached genomes.  Returns 0 when disabled.
/// Fronts are bit-identical either way; only wall-clock changes.
[[nodiscard]] std::size_t bench_cache_capacity();

/// The incremental-evaluation knob (EUS_INCREMENTAL): "off"/"none"/"0"
/// forces every evaluation through the full simulator, unset/"on"/anything
/// else keeps the delta-evaluator fast path enabled.  Mirrors EUS_CACHE:
/// fronts are bit-identical either way; only wall-clock changes.  Read at
/// Evaluator construction (EvaluatorOptions::incremental overrides it).
[[nodiscard]] bool incremental_enabled();

/// eus_served's default listen port (EUS_SERVE_PORT, default 7461; out-of-
/// range or invalid values fall back to the default).
[[nodiscard]] std::uint16_t serve_port();

/// eus_served's bounded-request-queue depth (EUS_SERVE_QUEUE_DEPTH, default
/// 64, clamped >= 1).  Requests arriving with the queue full are rejected
/// with an explicit backpressure error rather than buffered.
[[nodiscard]] std::size_t serve_queue_depth();

}  // namespace eus
