#pragma once

// ASCII table rendering for bench/example output.  The paper's tables
// (I, II, III) are reprinted with this.

#include <cstddef>
#include <string>
#include <vector>

namespace eus {

class AsciiTable {
 public:
  /// `header` defines the column count; rows must match it.
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& row, int precision = 3);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

  /// Renders with a box-drawing-free ASCII style:
  ///   +-----+-----+
  ///   | col | col |
  ///   +-----+-----+
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by tables/CSV).
[[nodiscard]] std::string format_double(double v, int precision = 3);

}  // namespace eus
