#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace eus {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  const std::size_t blocks = std::min(count, workers_.size() * 4);
  const std::size_t chunk = (count + blocks - 1) / blocks;

  std::atomic<std::size_t> remaining{blocks};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  {
    const std::lock_guard lock(mutex_);
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t begin = b * chunk;
      const std::size_t end = std::min(count, begin + chunk);
      queue_.emplace([&, begin, end] {
        try {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          const std::lock_guard elock(error_mutex);
          if (!error) error = std::current_exception();
        }
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          const std::lock_guard dlock(done_mutex);
          done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (error) std::rethrow_exception(error);
}

}  // namespace eus
