#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

namespace eus {

namespace {

// Per-parallel_for completion state.  Heap-allocated and shared with every
// block job so the last job's post-decrement notification can never touch a
// destroyed condition variable, even if the waiter wakes spuriously and
// returns first.
struct ForkState {
  std::atomic<std::size_t> remaining{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::mutex done_mutex;
  std::condition_variable done_cv;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> job;
  {
    const std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop();
  }
  job();
  return true;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  // Single-worker pools (single-core hosts) and single-item ranges gain
  // nothing from fan-out: the caller work-helps anyway, so every queued
  // block pays mutex + heap-allocated job + wakeup for work that ends up
  // running sequentially regardless.  Run the range inline instead —
  // same contiguous order, same blocking semantics, exceptions propagate
  // directly.
  if (workers_.size() == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const std::size_t blocks = std::min(count, workers_.size() * 4);
  const std::size_t chunk = (count + blocks - 1) / blocks;

  auto state = std::make_shared<ForkState>();
  state->remaining.store(blocks, std::memory_order_relaxed);

  {
    const std::lock_guard lock(mutex_);
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t begin = b * chunk;
      const std::size_t end = std::min(count, begin + chunk);
      // fn lives in the caller's frame; the caller cannot return before
      // remaining hits zero, which happens only after every fn call.
      queue_.emplace([state, &fn, begin, end] {
        try {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          const std::lock_guard elock(state->error_mutex);
          if (!state->error) state->error = std::current_exception();
        }
        if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          const std::lock_guard dlock(state->done_mutex);
          state->done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  // Work-helping wait: drain queued jobs (ours or anybody's) until our
  // range completes.  A caller that is itself a pool task therefore always
  // makes progress — nested parallel_for cannot deadlock.  The timed wait
  // re-checks the queue for jobs enqueued after we went to sleep.
  while (state->remaining.load(std::memory_order_acquire) != 0) {
    if (try_run_one()) continue;
    std::unique_lock lock(state->done_mutex);
    state->done_cv.wait_for(lock, std::chrono::milliseconds(10), [&] {
      return state->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace eus
