#include "util/env.hpp"

#include <cstdlib>

namespace eus {

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

double env_double(const char* name, double fallback) {
  const auto text = env_string(name);
  if (!text) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(*text, &pos);
    if (pos != text->size()) return fallback;
    return v;
  } catch (...) {
    return fallback;
  }
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const auto text = env_string(name);
  if (!text) return fallback;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(*text, &pos);
    if (pos != text->size()) return fallback;
    return v;
  } catch (...) {
    return fallback;
  }
}

double bench_scale() {
  const double s = env_double("EUS_SCALE", 1.0);
  return s > 0.0 ? s : 1.0;
}

std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_int("EUS_SEED", 20130520));
}

std::size_t bench_threads() {
  const std::int64_t t = env_int("EUS_THREADS", 0);
  return t < 0 ? 0U : static_cast<std::size_t>(t);
}

std::size_t bench_cache_capacity() {
  constexpr std::size_t kDefault = 1U << 12U;
  const auto text = env_string("EUS_CACHE");
  if (!text) return kDefault;
  if (*text == "off" || *text == "none" || *text == "0") return 0;
  if (*text == "on") return kDefault;
  const std::int64_t v = env_int("EUS_CACHE", -1);
  return v > 0 ? static_cast<std::size_t>(v) : kDefault;
}

bool incremental_enabled() {
  const auto text = env_string("EUS_INCREMENTAL");
  if (!text) return true;
  return !(*text == "off" || *text == "none" || *text == "0");
}

std::uint16_t serve_port() {
  constexpr std::int64_t kDefault = 7461;
  const std::int64_t p = env_int("EUS_SERVE_PORT", kDefault);
  return (p > 0 && p <= 65535) ? static_cast<std::uint16_t>(p)
                               : static_cast<std::uint16_t>(kDefault);
}

std::size_t serve_queue_depth() {
  const std::int64_t d = env_int("EUS_SERVE_QUEUE_DEPTH", 64);
  return d < 1 ? 1U : static_cast<std::size_t>(d);
}

}  // namespace eus
