#pragma once

// Minimal work-helping thread pool used to evaluate NSGA-II populations in
// parallel and to run whole study populations concurrently.  The pool is
// created once and reused; parallel_for blocks until the whole index range
// has been processed so generation barriers stay implicit.
//
// parallel_for may be called from *inside* a pool task (nested parallelism:
// a population task fanning out its fitness-evaluation batch).  While a
// caller waits for its own range to finish it helps drain the shared queue,
// so nesting can never deadlock even when every worker is busy.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace eus {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).  A pool of size 1 executes parallel_for ranges inline in
  /// the calling thread — on single-core hosts fan-out is pure queueing
  /// overhead, and inline execution keeps the sequential order (and thus
  /// results) identical.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for every i in [0, count), partitioned into contiguous
  /// blocks across the workers, and returns once all are done.  fn must be
  /// safe to call concurrently for distinct i.  Exceptions thrown by fn
  /// propagate to the caller (first one wins).  Safe to call from within a
  /// task already running on this pool.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Pops one queued job if any; returns false when the queue was empty.
  bool try_run_one();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace eus
