#pragma once

// Deterministic, splittable random number generation.
//
// All stochastic components of the framework (trace generation, synthetic
// data sampling, genetic operators) draw from eus::Rng so that every
// experiment is reproducible from a single master seed.  Rng is a
// UniformRandomBitGenerator and can therefore be used with the <random>
// distributions, but the member helpers below avoid libstdc++
// distribution-state pitfalls and are preferred inside the library.

#include <cstdint>
#include <limits>

namespace eus {

/// xoshiro256** PRNG seeded via SplitMix64.  Fast, high quality, and
/// trivially copyable so populations can snapshot generator state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` using SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Derives an independent child stream.  Children produced by successive
  /// calls are distinct, and the parent's own sequence is advanced, so a
  /// parent can both split and keep generating.
  [[nodiscard]] Rng split() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  Uses Lemire's unbiased multiply-shift
  /// rejection method.  Requires n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Standard normal via Box-Muller (no cached spare: stateless & simple).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia-Tsang squeeze
  /// (with the standard shape<1 boost).  Mean = k*theta, CV = 1/sqrt(k).
  [[nodiscard]] double gamma(double shape, double scale) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace eus
