#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace eus {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("table needs >= 1 column");
}

void AsciiTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("row width does not match header");
  }
  rows_.push_back(std::move(row));
}

void AsciiTable::add_row_numeric(const std::vector<double>& row,
                                 int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (const double v : row) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto rule = [&] {
    os << '+';
    for (const std::size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

}  // namespace eus
