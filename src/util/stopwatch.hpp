#pragma once

// Monotonic wall-clock stopwatch for harness reporting.

#include <chrono>

namespace eus {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace eus
