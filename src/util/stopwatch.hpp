#pragma once

// Monotonic stopwatch for harness timing.  Deliberately pinned to
// std::chrono::steady_clock: bench timings gate CI against committed
// baselines, and a wall clock (system_clock) would let an NTP step or a
// daylight-saving jump fake a regression or hide one mid-measurement.

#include <chrono>

namespace eus {

class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;
  static_assert(clock::is_steady,
                "bench timings must come from a monotonic clock");

  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }

 private:
  clock::time_point start_;
};

}  // namespace eus
