#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/table.hpp"

namespace eus {

std::string render_scatter(const std::vector<PlotSeries>& series,
                           const PlotOptions& options) {
  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin, ymin = xmin, ymax = -xmin;
  std::size_t points = 0;
  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
      ++points;
    }
  }
  if (points == 0) {
    os << "(no data)\n";
    return os.str();
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  const std::size_t w = std::max<std::size_t>(options.width, 8);
  const std::size_t h = std::max<std::size_t>(options.height, 4);
  std::vector<std::string> canvas(h, std::string(w, ' '));

  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      const double fx = (s.x[i] - xmin) / (xmax - xmin);
      const double fy = (s.y[i] - ymin) / (ymax - ymin);
      const auto cx = static_cast<std::size_t>(
          std::lround(fx * static_cast<double>(w - 1)));
      const auto cy = static_cast<std::size_t>(
          std::lround(fy * static_cast<double>(h - 1)));
      canvas[h - 1 - cy][cx] = s.marker;  // row 0 is the top
    }
  }

  const std::string ytop = format_double(ymax, 2);
  const std::string ybot = format_double(ymin, 2);
  const std::size_t gutter = std::max(ytop.size(), ybot.size()) + 1;

  for (std::size_t row = 0; row < h; ++row) {
    std::string label;
    if (row == 0) label = ytop;
    else if (row == h - 1) label = ybot;
    os << std::string(gutter - label.size(), ' ') << label << '|'
       << canvas[row] << '\n';
  }
  os << std::string(gutter, ' ') << '+' << std::string(w, '-') << '\n';
  const std::string xlo = format_double(xmin, 2);
  const std::string xhi = format_double(xmax, 2);
  os << std::string(gutter + 1, ' ') << xlo
     << std::string(w > xlo.size() + xhi.size()
                        ? w - xlo.size() - xhi.size()
                        : 1,
                    ' ')
     << xhi << '\n';
  os << std::string(gutter + 1, ' ') << options.x_label
     << "  (y: " << options.y_label << ")\n";

  // Legend.
  for (const auto& s : series) {
    os << "  " << s.marker << " = " << s.name << '\n';
  }
  return os.str();
}

}  // namespace eus
