#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace eus {
namespace {

constexpr std::uint64_t kSplitMixGamma = 0x9e3779b97f4a7c15ULL;

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += kSplitMixGamma;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() noexcept {
  // Mix two raw outputs through SplitMix to decorrelate the child stream.
  std::uint64_t seed = (*this)();
  seed ^= rotl((*this)(), 23);
  return Rng{splitmix64(seed)};
}

double Rng::uniform() noexcept {
  // 53 top bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

double Rng::gamma(double shape, double scale) noexcept {
  if (shape < 1.0) {
    // Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = uniform();
    while (u <= 0.0) u = uniform();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v * scale;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

}  // namespace eus
