#include "util/json_value.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace eus::util {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& reason) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) +
                         ": " + reason);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("invalid literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v.object[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point; surrogate pairs are not
          // needed by the harness's ASCII-only documents but basic
          // multilingual text should survive a round-trip.
          if (code < 0x80U) {
            out += static_cast<char>(code);
          } else if (code < 0x800U) {
            out += static_cast<char>(0xC0U | (code >> 6U));
            out += static_cast<char>(0x80U | (code & 0x3FU));
          } else {
            out += static_cast<char>(0xE0U | (code >> 12U));
            out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
            out += static_cast<char>(0x80U | (code & 0x3FU));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("invalid number");
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = get(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = get(key);
  return (v != nullptr && v->is_string()) ? v->string
                                          : std::string(fallback);
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str());
}

}  // namespace eus::util
