#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/table.hpp"

namespace eus {
namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& cell) {
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << (needs_quoting(cells[i]) ? quote(cells[i]) : cells[i]);
  }
  *out_ << '\n';
}

void CsvWriter::write_row_numeric(const std::vector<double>& cells,
                                  int precision) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (const double v : cells) text.push_back(format_double(v, precision));
  write_row(text);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& content) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  const auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  const auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char ch = content[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        cell_started = true;  // the next cell exists even if empty
        break;
      case '\r':
        break;  // swallowed; \n terminates the row
      case '\n':
        end_row();
        break;
      default:
        cell += ch;
        cell_started = true;
    }
  }
  if (cell_started || !cell.empty() || !row.empty()) end_row();
  return rows;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file: " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::filesystem::path& path,
                const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write file: " + path.string());
  out << content;
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

}  // namespace eus
