#pragma once

// Terminal scatter plot.  Bench binaries render Pareto fronts with this so
// a reader can eyeball the trade-off curves (Figures 3-6) without leaving
// the console; the same data is also exported as CSV for real plotting.

#include <cstddef>
#include <string>
#include <vector>

namespace eus {

struct PlotSeries {
  std::string name;
  char marker = '*';
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  std::size_t width = 72;   ///< plot area columns (excluding axis gutter)
  std::size_t height = 22;  ///< plot area rows
  std::string x_label = "x";
  std::string y_label = "y";
  std::string title;
};

/// Renders the series onto one shared canvas with auto-scaled axes.  Later
/// series overwrite earlier ones on collisions.  Returns the multi-line
/// string (with trailing newline); empty series lists produce a title-only
/// stub.
[[nodiscard]] std::string render_scatter(const std::vector<PlotSeries>& series,
                                         const PlotOptions& options);

}  // namespace eus
