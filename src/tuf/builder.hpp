#pragma once

// Fluent construction of TimeUtilityFunctions, plus the standard shapes
// used by the workload generator and the paper's Figure 1 example.

#include <vector>

#include "tuf/time_utility_function.hpp"

namespace eus {

class TufBuilder {
 public:
  /// Sets the maximum utility (must be positive).
  TufBuilder& priority(double p) noexcept {
    priority_ = p;
    return *this;
  }

  /// Sets the global decay-rate multiplier (>1 == more urgent).
  TufBuilder& urgency(double u) noexcept {
    urgency_ = u;
    return *this;
  }

  /// Appends an interval expressed as fractions of priority.
  TufBuilder& interval(TufInterval iv) {
    intervals_.push_back(iv);
    return *this;
  }

  /// Appends an interval expressed in absolute utility values; requires
  /// priority() to have been set first (fractions are begin/end ÷ priority).
  TufBuilder& interval_absolute(
      double duration, double begin_value, double end_value,
      TufInterval::Shape shape = TufInterval::Shape::kLinear,
      double urgency_modifier = 1.0);

  /// Validates and builds; throws std::invalid_argument on bad parameters.
  [[nodiscard]] TimeUtilityFunction build() const {
    return TimeUtilityFunction(priority_, urgency_, intervals_);
  }

 private:
  double priority_ = 1.0;
  double urgency_ = 1.0;
  std::vector<TufInterval> intervals_;
};

/// Priority held for `grace` seconds, then linear decay to zero over
/// `decay` seconds (a soft deadline at grace + decay).
[[nodiscard]] TimeUtilityFunction make_linear_decay_tuf(double priority,
                                                        double grace,
                                                        double decay,
                                                        double urgency = 1.0);

/// Exponential decay from priority toward `floor_fraction`*priority over
/// `half_life`-style horizon, then a drop to zero — the "utility erodes
/// fast, then the task is worthless" profile.
[[nodiscard]] TimeUtilityFunction make_exponential_decay_tuf(
    double priority, double horizon, double floor_fraction = 0.05,
    double urgency = 1.0);

/// Full priority until the deadline, then zero (hard deadline).
[[nodiscard]] TimeUtilityFunction make_hard_deadline_tuf(double priority,
                                                         double deadline,
                                                         double urgency = 1.0);

/// Stair-step characteristic class: `steps` constant plateaus of equal
/// duration descending from priority to zero.
[[nodiscard]] TimeUtilityFunction make_step_tuf(double priority,
                                                double total_duration,
                                                int steps,
                                                double urgency = 1.0);

/// The sample function plotted in Figure 1 of the paper: a multi-interval
/// class whose value is 12 at completion time 20 and 7 at completion time
/// 47 (maximum utility 16, worthless after t = 80).
[[nodiscard]] TimeUtilityFunction make_figure1_tuf();

/// Builds a TUF from empirical (elapsed, utility) samples — e.g. policy
/// curves sketched by an administrator or mined from accounting data.
/// Samples must start at t = 0 with the maximum (positive) value, be
/// strictly increasing in time, non-increasing in value, and non-negative;
/// the function interpolates linearly between samples and holds the final
/// value afterwards.  Throws std::invalid_argument otherwise.
[[nodiscard]] TimeUtilityFunction make_piecewise_tuf(
    const std::vector<std::pair<double, double>>& samples,
    double urgency = 1.0);

}  // namespace eus
