#include "tuf/builder.hpp"

#include <cmath>
#include <stdexcept>

namespace eus {

TufBuilder& TufBuilder::interval_absolute(double duration, double begin_value,
                                          double end_value,
                                          TufInterval::Shape shape,
                                          double urgency_modifier) {
  if (!(priority_ > 0.0)) {
    throw std::invalid_argument("set priority before absolute intervals");
  }
  TufInterval iv;
  iv.duration = duration;
  iv.begin_fraction = begin_value / priority_;
  iv.end_fraction = end_value / priority_;
  iv.shape = shape;
  iv.urgency_modifier = urgency_modifier;
  intervals_.push_back(iv);
  return *this;
}

TimeUtilityFunction make_linear_decay_tuf(double priority, double grace,
                                          double decay, double urgency) {
  TufBuilder b;
  b.priority(priority).urgency(urgency);
  if (grace > 0.0) {
    b.interval({grace, 1.0, 1.0, 1.0, TufInterval::Shape::kConstant});
  }
  b.interval({decay, 1.0, 0.0, 1.0, TufInterval::Shape::kLinear});
  return b.build();
}

TimeUtilityFunction make_exponential_decay_tuf(double priority, double horizon,
                                               double floor_fraction,
                                               double urgency) {
  if (!(floor_fraction > 0.0 && floor_fraction < 1.0)) {
    throw std::invalid_argument("floor_fraction must lie in (0,1)");
  }
  TufBuilder b;
  b.priority(priority).urgency(urgency);
  b.interval(
      {horizon, 1.0, floor_fraction, 1.0, TufInterval::Shape::kExponential});
  // After the horizon the task is worthless.
  b.interval({horizon * 1e-3, floor_fraction, 0.0, 1.0,
              TufInterval::Shape::kLinear});
  return b.build();
}

TimeUtilityFunction make_hard_deadline_tuf(double priority, double deadline,
                                           double urgency) {
  TufBuilder b;
  b.priority(priority).urgency(urgency);
  b.interval({deadline, 1.0, 1.0, 1.0, TufInterval::Shape::kConstant});
  // Effectively instantaneous drop to zero at the deadline (the nominal
  // width scales with the deadline so the whole function scales linearly).
  b.interval({deadline * 1e-6, 0.0, 0.0, 1.0, TufInterval::Shape::kConstant});
  return b.build();
}

TimeUtilityFunction make_step_tuf(double priority, double total_duration,
                                  int steps, double urgency) {
  if (steps < 1) throw std::invalid_argument("steps must be >= 1");
  TufBuilder b;
  b.priority(priority).urgency(urgency);
  const double span = total_duration / steps;
  for (int s = 0; s < steps; ++s) {
    const double level =
        static_cast<double>(steps - s) / static_cast<double>(steps);
    b.interval({span, level, level, 1.0, TufInterval::Shape::kConstant});
  }
  b.interval({total_duration * 1e-3, 0.0, 0.0, 1.0,
              TufInterval::Shape::kConstant});
  return b.build();
}

TimeUtilityFunction make_piecewise_tuf(
    const std::vector<std::pair<double, double>>& samples, double urgency) {
  if (samples.size() < 2) {
    throw std::invalid_argument("piecewise TUF needs >= 2 samples");
  }
  if (samples.front().first != 0.0) {
    throw std::invalid_argument("piecewise TUF must start at t = 0");
  }
  const double priority = samples.front().second;
  if (!(priority > 0.0) || !std::isfinite(priority)) {
    throw std::invalid_argument("piecewise TUF needs a positive t=0 value");
  }

  TufBuilder b;
  b.priority(priority).urgency(urgency);
  for (std::size_t k = 1; k < samples.size(); ++k) {
    const auto [t0, v0] = samples[k - 1];
    const auto [t1, v1] = samples[k];
    if (!(t1 > t0)) {
      throw std::invalid_argument("piecewise TUF times must increase");
    }
    if (v1 > v0) {
      throw std::invalid_argument("piecewise TUF values must not increase");
    }
    if (v1 < 0.0) {
      throw std::invalid_argument("piecewise TUF values must be >= 0");
    }
    b.interval_absolute(t1 - t0, v0, v1,
                        v0 == v1 ? TufInterval::Shape::kConstant
                                 : TufInterval::Shape::kLinear);
  }
  return b.build();
}

TimeUtilityFunction make_figure1_tuf() {
  // Max utility 16.  Plateau at 16 until t=10, linear 14 -> 10 over
  // (10, 30] (value(20) = 12), linear 9 -> 5 over (30, 64]
  // (value(47) = 7), then zero from t = 80 on.
  TufBuilder b;
  b.priority(16.0).urgency(1.0);
  b.interval_absolute(10.0, 16.0, 16.0, TufInterval::Shape::kConstant);
  b.interval_absolute(20.0, 14.0, 10.0, TufInterval::Shape::kLinear);
  b.interval_absolute(34.0, 9.0, 5.0, TufInterval::Shape::kLinear);
  b.interval_absolute(16.0, 4.0, 0.0, TufInterval::Shape::kLinear);
  return b.build();
}

}  // namespace eus
