#include "tuf/classes.hpp"

#include <algorithm>
#include <stdexcept>

#include "tuf/builder.hpp"

namespace eus {

TufClassLibrary::TufClassLibrary(std::vector<TufClass> classes)
    : classes_(std::move(classes)) {
  if (classes_.empty()) throw std::invalid_argument("empty TUF library");
  double total = 0.0;
  for (const auto& c : classes_) {
    if (!(c.weight > 0.0)) throw std::invalid_argument("TUF weight <= 0");
    total += c.weight;
  }
  cumulative_.reserve(classes_.size());
  double acc = 0.0;
  for (const auto& c : classes_) {
    acc += c.weight / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

std::size_t TufClassLibrary::sample_index(Rng& rng) const {
  const double u = rng.uniform();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

TufClassLibrary standard_tuf_classes(double time_scale) {
  if (!(time_scale > 0.0)) {
    throw std::invalid_argument("time_scale must be positive");
  }
  const double ts = time_scale;
  std::vector<TufClass> classes;

  // Routine work: generous grace then a slow linear fade.
  classes.push_back({"routine-low", 3.0,
                     make_linear_decay_tuf(2.0, 0.25 * ts, 1.5 * ts)});
  classes.push_back({"routine-medium", 2.0,
                     make_linear_decay_tuf(4.0, 0.20 * ts, 1.2 * ts)});

  // Urgent work: value erodes quickly from the moment of arrival.
  classes.push_back({"urgent-medium", 2.0,
                     make_exponential_decay_tuf(8.0, 0.8 * ts, 0.05, 1.5)});
  classes.push_back({"urgent-high", 1.0,
                     make_exponential_decay_tuf(16.0, 0.6 * ts, 0.05, 2.0)});

  // Deadline work: full value until a cut-off, nothing after.
  classes.push_back({"deadline-high", 1.0,
                     make_hard_deadline_tuf(12.0, 0.75 * ts)});

  // Stepped characteristic class mirroring Figure 1's interval structure.
  classes.push_back({"stepped-medium", 1.0,
                     make_step_tuf(6.0, 1.0 * ts, 4)});

  return TufClassLibrary(std::move(classes));
}

}  // namespace eus
