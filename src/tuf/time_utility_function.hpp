#pragma once

// Time-utility functions (TUFs), §IV-B1 / Figure 1 of the paper, following
// the priority / urgency / utility-characteristic-class model of Briceno et
// al. (HCW 2011):
//
//  * priority   — the maximum utility the task can earn,
//  * urgency    — a global decay-rate multiplier (>1 compresses the
//                 function in time, i.e. utility is lost faster),
//  * class      — a sequence of discrete intervals, each spanning a nominal
//                 duration and carrying begin/end fractions of priority, a
//                 decay shape, and a per-interval urgency modifier.
//
// The resulting function of elapsed time (completion time - arrival time)
// is monotonically non-increasing; this invariant is validated at
// construction.  Hard deadlines are modeled with a final fraction of zero.

#include <cstddef>
#include <vector>

namespace eus {

struct TufInterval {
  /// Nominal seconds this interval spans; the *effective* span is
  /// duration / (urgency * urgency_modifier).
  double duration = 0.0;
  /// Fraction of priority at the interval's start (in [0,1]).
  double begin_fraction = 1.0;
  /// Fraction of priority approached at the interval's end (in [0,1],
  /// <= begin_fraction).
  double end_fraction = 1.0;
  /// Per-interval decay-rate modifier (>0); the characteristic class's knob.
  double urgency_modifier = 1.0;

  enum class Shape {
    kConstant,     ///< holds begin_fraction for the whole interval
    kLinear,       ///< straight line from begin to end fraction
    kExponential,  ///< exponential decay reaching end exactly at the end
  };
  Shape shape = Shape::kLinear;
};

class TimeUtilityFunction {
 public:
  /// Validates and freezes the function.  Throws std::invalid_argument if
  /// any parameter is out of range or the function would not be
  /// monotonically non-increasing.  `intervals` may be empty, in which case
  /// the function is the constant `priority`.
  TimeUtilityFunction(double priority, double urgency,
                      std::vector<TufInterval> intervals);

  /// Utility earned when the task completes `elapsed` seconds after its
  /// arrival.  Negative elapsed is treated as 0.  Beyond the last interval
  /// the final end fraction persists.
  [[nodiscard]] double value(double elapsed) const noexcept;

  [[nodiscard]] double priority() const noexcept { return priority_; }
  [[nodiscard]] double urgency() const noexcept { return urgency_; }
  [[nodiscard]] const std::vector<TufInterval>& intervals() const noexcept {
    return intervals_;
  }

  /// Utility that remains after every interval has elapsed (0 for hard
  /// deadlines).
  [[nodiscard]] double residual() const noexcept;

  /// Total effective time span of all intervals (seconds).
  [[nodiscard]] double horizon() const noexcept;

 private:
  double priority_;
  double urgency_;
  std::vector<TufInterval> intervals_;
  /// Effective (urgency-scaled) end time of each interval, precomputed.
  std::vector<double> boundaries_;
};

}  // namespace eus
