#include "tuf/time_utility_function.hpp"

#include <cmath>
#include <stdexcept>

namespace eus {
namespace {

constexpr double kFractionTolerance = 1e-12;

void validate_interval(const TufInterval& iv) {
  if (!(iv.duration > 0.0) || !std::isfinite(iv.duration)) {
    throw std::invalid_argument("TUF interval duration must be positive");
  }
  if (!(iv.urgency_modifier > 0.0) || !std::isfinite(iv.urgency_modifier)) {
    throw std::invalid_argument("TUF urgency modifier must be positive");
  }
  if (iv.begin_fraction < -kFractionTolerance ||
      iv.begin_fraction > 1.0 + kFractionTolerance ||
      iv.end_fraction < -kFractionTolerance ||
      iv.end_fraction > 1.0 + kFractionTolerance) {
    throw std::invalid_argument("TUF fractions must lie in [0, 1]");
  }
  if (iv.end_fraction > iv.begin_fraction + kFractionTolerance) {
    throw std::invalid_argument("TUF interval must not increase");
  }
  if (iv.shape == TufInterval::Shape::kExponential &&
      iv.end_fraction <= 0.0) {
    throw std::invalid_argument(
        "exponential TUF interval needs a positive end fraction");
  }
  if (iv.shape == TufInterval::Shape::kConstant &&
      std::abs(iv.begin_fraction - iv.end_fraction) > kFractionTolerance) {
    throw std::invalid_argument(
        "constant TUF interval needs begin == end fraction");
  }
}

}  // namespace

TimeUtilityFunction::TimeUtilityFunction(double priority, double urgency,
                                         std::vector<TufInterval> intervals)
    : priority_(priority),
      urgency_(urgency),
      intervals_(std::move(intervals)) {
  if (!(priority_ > 0.0) || !std::isfinite(priority_)) {
    throw std::invalid_argument("TUF priority must be positive");
  }
  if (!(urgency_ > 0.0) || !std::isfinite(urgency_)) {
    throw std::invalid_argument("TUF urgency must be positive");
  }

  double prev_end = 1.0;
  double t = 0.0;
  boundaries_.reserve(intervals_.size());
  for (const auto& iv : intervals_) {
    validate_interval(iv);
    if (iv.begin_fraction > prev_end + kFractionTolerance) {
      throw std::invalid_argument(
          "TUF must be monotonically non-increasing across intervals");
    }
    prev_end = iv.end_fraction;
    t += iv.duration / (urgency_ * iv.urgency_modifier);
    boundaries_.push_back(t);
  }
}

double TimeUtilityFunction::value(double elapsed) const noexcept {
  if (elapsed < 0.0) elapsed = 0.0;
  double start = 0.0;
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    const double end = boundaries_[i];
    if (elapsed < end) {
      const auto& iv = intervals_[i];
      const double span = end - start;
      const double f = span > 0.0 ? (elapsed - start) / span : 1.0;
      switch (iv.shape) {
        case TufInterval::Shape::kConstant:
          return priority_ * iv.begin_fraction;
        case TufInterval::Shape::kLinear:
          return priority_ *
                 (iv.begin_fraction +
                  (iv.end_fraction - iv.begin_fraction) * f);
        case TufInterval::Shape::kExponential: {
          // b * (e/b)^f decays from b to e over the interval, computed as
          // exp(f * log(e/b)): same curve, and the Evaluator's flattened
          // replay precomputes log(e/b) per span, so both implementations
          // must share this exact expression to stay bit-identical
          // (std::pow's result differs from exp(f*log(r)) by an ulp).
          const double ratio = iv.end_fraction / iv.begin_fraction;
          return priority_ * iv.begin_fraction *
                 std::exp(f * std::log(ratio));
        }
      }
    }
    start = end;
  }
  return residual();
}

double TimeUtilityFunction::residual() const noexcept {
  if (intervals_.empty()) return priority_;
  return priority_ * intervals_.back().end_fraction;
}

double TimeUtilityFunction::horizon() const noexcept {
  return boundaries_.empty() ? 0.0 : boundaries_.back();
}

}  // namespace eus
