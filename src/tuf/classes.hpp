#pragma once

// Administrator-defined TUF policy classes (§IV-B1: parameters are policy
// decisions set per system).  The workload generator draws one class per
// task; a class combines a priority level, an urgency level, and a
// characteristic-class shape.

#include <string>
#include <vector>

#include "tuf/time_utility_function.hpp"
#include "util/rng.hpp"

namespace eus {

struct TufClass {
  std::string name;
  double weight = 1.0;  ///< relative draw probability (> 0)
  TimeUtilityFunction function;
};

class TufClassLibrary {
 public:
  explicit TufClassLibrary(std::vector<TufClass> classes);

  [[nodiscard]] const std::vector<TufClass>& classes() const noexcept {
    return classes_;
  }

  /// Draws a class index proportionally to the weights.
  [[nodiscard]] std::size_t sample_index(Rng& rng) const;

  /// Draws a class and returns its function.
  [[nodiscard]] const TimeUtilityFunction& sample(Rng& rng) const {
    return classes_[sample_index(rng)].function;
  }

  [[nodiscard]] const TimeUtilityFunction& at(std::size_t i) const {
    return classes_.at(i).function;
  }

 private:
  std::vector<TufClass> classes_;
  std::vector<double> cumulative_;  ///< normalized cumulative weights
};

/// The default policy mix used by the bench harness: 3 priority levels x
/// {routine linear-decay, urgent exponential-decay, hard-deadline} shapes,
/// with decay horizons proportional to `time_scale` (seconds — pick the
/// trace window or a multiple of the mean execution time).
[[nodiscard]] TufClassLibrary standard_tuf_classes(double time_scale);

}  // namespace eus
