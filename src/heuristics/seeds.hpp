#pragma once

// The paper's four greedy seeding heuristics (§V-B).  Each produces a
// complete Allocation that the NSGA-II can inject into an initial
// population.  All are deterministic and cheap relative to the GA.

#include <string>

#include "sched/allocation.hpp"
#include "workload/trace.hpp"

namespace eus {

/// Single-stage greedy, tasks in arrival order: each task goes to the
/// machine with the smallest EEC.  Provably reaches the minimum possible
/// total energy (energy is timing-independent, §V-B1).
[[nodiscard]] Allocation min_energy_allocation(const SystemModel& system,
                                               const Trace& trace);

/// Single-stage greedy, tasks in arrival order: each task goes to the
/// machine maximizing the utility it would earn given current queue
/// completion times (§V-B2).  No optimality guarantee.
[[nodiscard]] Allocation max_utility_allocation(const SystemModel& system,
                                                const Trace& trace);

/// Single-stage greedy: maximize utility earned per joule spent; falls back
/// to minimum energy when no machine earns positive utility (§V-B3).
[[nodiscard]] Allocation max_utility_per_energy_allocation(
    const SystemModel& system, const Trace& trace);

/// Two-stage greedy Min-Min (§V-B4, after Ibarra & Kim): stage 1 finds each
/// unmapped task's best-completion machine; stage 2 maps the task/machine
/// pair with the globally smallest completion time; repeat.
[[nodiscard]] Allocation min_min_completion_time_allocation(
    const SystemModel& system, const Trace& trace);

enum class SeedHeuristic {
  kMinEnergy,
  kMaxUtility,
  kMaxUtilityPerEnergy,
  kMinMinCompletionTime,
};

[[nodiscard]] const char* to_string(SeedHeuristic h) noexcept;

[[nodiscard]] Allocation make_seed(SeedHeuristic h, const SystemModel& system,
                                   const Trace& trace);

/// All four heuristics, in the enum's order.
[[nodiscard]] std::vector<SeedHeuristic> all_seed_heuristics();

}  // namespace eus
