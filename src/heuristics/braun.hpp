#pragma once

// Additional classic static mapping heuristics from Braun, Siegel et al.'s
// eleven-heuristic comparison (the paper's ref [24]) and Maheswaran et
// al.'s dynamic-mapping study (ref [26]).  They complement the §V-B seeds:
// more diverse starting points for the NSGA-II and more baselines for the
// benches.
//
//  * MET  — minimum execution time: each task to its fastest machine,
//           ignoring queues (can overload one machine badly).
//  * OLB  — opportunistic load balancing: each task to the machine that
//           becomes available soonest, ignoring execution times.
//  * Max-Min — like Min-Min, but stage 2 maps the task whose *best*
//           completion is latest first (big tasks placed early).
//  * Sufferage — maps the task that would "suffer" most if denied its best
//           machine (largest second-best minus best completion gap).

#include "sched/allocation.hpp"
#include "workload/trace.hpp"

namespace eus {

[[nodiscard]] Allocation met_allocation(const SystemModel& system,
                                        const Trace& trace);

[[nodiscard]] Allocation olb_allocation(const SystemModel& system,
                                        const Trace& trace);

[[nodiscard]] Allocation max_min_completion_time_allocation(
    const SystemModel& system, const Trace& trace);

[[nodiscard]] Allocation sufferage_allocation(const SystemModel& system,
                                              const Trace& trace);

enum class BatchHeuristic { kMet, kOlb, kMaxMin, kSufferage };

[[nodiscard]] const char* to_string(BatchHeuristic h) noexcept;

[[nodiscard]] Allocation make_batch_seed(BatchHeuristic h,
                                         const SystemModel& system,
                                         const Trace& trace);

[[nodiscard]] std::vector<BatchHeuristic> all_batch_heuristics();

}  // namespace eus
