#include "heuristics/seeds.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace eus {
namespace {

Allocation identity_order_allocation(std::size_t tasks) {
  Allocation a;
  a.machine.assign(tasks, -1);
  a.order.resize(tasks);
  for (std::size_t i = 0; i < tasks; ++i) a.order[i] = static_cast<int>(i);
  return a;
}

}  // namespace

Allocation min_energy_allocation(const SystemModel& system,
                                 const Trace& trace) {
  Allocation a = identity_order_allocation(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::size_t type = trace.tasks()[i].type;
    double best = std::numeric_limits<double>::infinity();
    int choice = -1;
    for (const int m : system.eligible_machines(type)) {
      const double eec = system.eec_on(type, static_cast<std::size_t>(m));
      if (eec < best) {
        best = eec;
        choice = m;
      }
    }
    a.machine[i] = choice;
  }
  return a;
}

Allocation max_utility_allocation(const SystemModel& system,
                                  const Trace& trace) {
  Allocation a = identity_order_allocation(trace.size());
  std::vector<double> available(system.num_machines(), 0.0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& task = trace.tasks()[i];
    double best_utility = -1.0;
    double best_finish = std::numeric_limits<double>::infinity();
    int choice = -1;
    for (const int m : system.eligible_machines(task.type)) {
      const auto mi = static_cast<std::size_t>(m);
      const double start = std::max(available[mi], task.arrival);
      const double finish = start + system.etc_on(task.type, mi);
      const double utility = trace.tuf_of(i).value(finish - task.arrival);
      // Tie-break on earlier finish so zero-utility stretches still prefer
      // keeping queues short.
      if (utility > best_utility ||
          (utility == best_utility && finish < best_finish)) {
        best_utility = utility;
        best_finish = finish;
        choice = m;
      }
    }
    a.machine[i] = choice;
    available[static_cast<std::size_t>(choice)] = best_finish;
  }
  return a;
}

Allocation max_utility_per_energy_allocation(const SystemModel& system,
                                             const Trace& trace) {
  Allocation a = identity_order_allocation(trace.size());
  std::vector<double> available(system.num_machines(), 0.0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& task = trace.tasks()[i];
    double best_ratio = -1.0;
    double best_energy = std::numeric_limits<double>::infinity();
    double chosen_finish = 0.0;
    int choice = -1;
    for (const int m : system.eligible_machines(task.type)) {
      const auto mi = static_cast<std::size_t>(m);
      const double start = std::max(available[mi], task.arrival);
      const double finish = start + system.etc_on(task.type, mi);
      const double utility = trace.tuf_of(i).value(finish - task.arrival);
      const double energy = system.eec_on(task.type, mi);
      const double ratio = utility / energy;
      // Maximize utility-per-joule; among equal ratios (notably the
      // all-zero-utility case) fall back to the cheaper machine (§V-B3).
      if (ratio > best_ratio ||
          (ratio == best_ratio && energy < best_energy)) {
        best_ratio = ratio;
        best_energy = energy;
        chosen_finish = finish;
        choice = m;
      }
    }
    a.machine[i] = choice;
    available[static_cast<std::size_t>(choice)] = chosen_finish;
  }
  return a;
}

Allocation min_min_completion_time_allocation(const SystemModel& system,
                                              const Trace& trace) {
  const std::size_t tasks = trace.size();
  Allocation a;
  a.machine.assign(tasks, -1);
  a.order.assign(tasks, 0);

  std::vector<double> available(system.num_machines(), 0.0);
  std::vector<bool> mapped(tasks, false);

  // Cache of each unmapped task's current best (machine, completion);
  // entries are recomputed lazily when their machine's queue moved.
  struct Best {
    int machine = -1;
    double completion = std::numeric_limits<double>::infinity();
  };
  std::vector<Best> best(tasks);

  const auto recompute = [&](std::size_t i) {
    const auto& task = trace.tasks()[i];
    Best b;
    for (const int m : system.eligible_machines(task.type)) {
      const auto mi = static_cast<std::size_t>(m);
      const double start = std::max(available[mi], task.arrival);
      const double finish = start + system.etc_on(task.type, mi);
      if (finish < b.completion) {
        b.completion = finish;
        b.machine = m;
      }
    }
    best[i] = b;
  };
  for (std::size_t i = 0; i < tasks; ++i) recompute(i);

  for (std::size_t step = 0; step < tasks; ++step) {
    // Stage 2: the overall minimum completion pair.
    std::size_t pick = tasks;
    double pick_completion = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < tasks; ++i) {
      if (!mapped[i] && best[i].completion < pick_completion) {
        pick_completion = best[i].completion;
        pick = i;
      }
    }
    if (pick == tasks) throw std::logic_error("min-min found no task");

    mapped[pick] = true;
    a.machine[pick] = best[pick].machine;
    a.order[pick] = static_cast<int>(step);  // execute in mapping sequence
    const auto moved = static_cast<std::size_t>(best[pick].machine);
    available[moved] = pick_completion;

    // Stage 1 refresh: only tasks whose cached best used the moved machine
    // can have changed (queues only grow, so other entries stay valid).
    for (std::size_t i = 0; i < tasks; ++i) {
      if (!mapped[i] && static_cast<std::size_t>(best[i].machine) == moved) {
        recompute(i);
      }
    }
  }
  return a;
}

const char* to_string(SeedHeuristic h) noexcept {
  switch (h) {
    case SeedHeuristic::kMinEnergy:
      return "min-energy";
    case SeedHeuristic::kMaxUtility:
      return "max-utility";
    case SeedHeuristic::kMaxUtilityPerEnergy:
      return "max-utility-per-energy";
    case SeedHeuristic::kMinMinCompletionTime:
      return "min-min-completion-time";
  }
  return "unknown";
}

Allocation make_seed(SeedHeuristic h, const SystemModel& system,
                     const Trace& trace) {
  switch (h) {
    case SeedHeuristic::kMinEnergy:
      return min_energy_allocation(system, trace);
    case SeedHeuristic::kMaxUtility:
      return max_utility_allocation(system, trace);
    case SeedHeuristic::kMaxUtilityPerEnergy:
      return max_utility_per_energy_allocation(system, trace);
    case SeedHeuristic::kMinMinCompletionTime:
      return min_min_completion_time_allocation(system, trace);
  }
  throw std::invalid_argument("unknown seed heuristic");
}

std::vector<SeedHeuristic> all_seed_heuristics() {
  return {SeedHeuristic::kMinEnergy, SeedHeuristic::kMaxUtility,
          SeedHeuristic::kMaxUtilityPerEnergy,
          SeedHeuristic::kMinMinCompletionTime};
}

}  // namespace eus
