#include "heuristics/seeds.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

namespace eus {
namespace {

Allocation identity_order_allocation(std::size_t tasks) {
  Allocation a;
  a.machine.assign(tasks, -1);
  a.order.resize(tasks);
  for (std::size_t i = 0; i < tasks; ++i) a.order[i] = static_cast<int>(i);
  return a;
}

}  // namespace

Allocation min_energy_allocation(const SystemModel& system,
                                 const Trace& trace) {
  Allocation a = identity_order_allocation(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::size_t type = trace.tasks()[i].type;
    double best = std::numeric_limits<double>::infinity();
    int choice = -1;
    for (const int m : system.eligible_machines(type)) {
      const double eec = system.eec_on(type, static_cast<std::size_t>(m));
      if (eec < best) {
        best = eec;
        choice = m;
      }
    }
    a.machine[i] = choice;
  }
  return a;
}

Allocation max_utility_allocation(const SystemModel& system,
                                  const Trace& trace) {
  Allocation a = identity_order_allocation(trace.size());
  std::vector<double> available(system.num_machines(), 0.0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& task = trace.tasks()[i];
    double best_utility = -1.0;
    double best_finish = std::numeric_limits<double>::infinity();
    int choice = -1;
    for (const int m : system.eligible_machines(task.type)) {
      const auto mi = static_cast<std::size_t>(m);
      const double start = std::max(available[mi], task.arrival);
      const double finish = start + system.etc_on(task.type, mi);
      const double utility = trace.tuf_of(i).value(finish - task.arrival);
      // Tie-break on earlier finish so zero-utility stretches still prefer
      // keeping queues short.
      if (utility > best_utility ||
          (utility == best_utility && finish < best_finish)) {
        best_utility = utility;
        best_finish = finish;
        choice = m;
      }
    }
    a.machine[i] = choice;
    available[static_cast<std::size_t>(choice)] = best_finish;
  }
  return a;
}

Allocation max_utility_per_energy_allocation(const SystemModel& system,
                                             const Trace& trace) {
  Allocation a = identity_order_allocation(trace.size());
  std::vector<double> available(system.num_machines(), 0.0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& task = trace.tasks()[i];
    double best_ratio = -1.0;
    double best_energy = std::numeric_limits<double>::infinity();
    double chosen_finish = 0.0;
    int choice = -1;
    for (const int m : system.eligible_machines(task.type)) {
      const auto mi = static_cast<std::size_t>(m);
      const double start = std::max(available[mi], task.arrival);
      const double finish = start + system.etc_on(task.type, mi);
      const double utility = trace.tuf_of(i).value(finish - task.arrival);
      const double energy = system.eec_on(task.type, mi);
      const double ratio = utility / energy;
      // Maximize utility-per-joule; among equal ratios (notably the
      // all-zero-utility case) fall back to the cheaper machine (§V-B3).
      if (ratio > best_ratio ||
          (ratio == best_ratio && energy < best_energy)) {
        best_ratio = ratio;
        best_energy = energy;
        chosen_finish = finish;
        choice = m;
      }
    }
    a.machine[i] = choice;
    available[static_cast<std::size_t>(choice)] = chosen_finish;
  }
  return a;
}

Allocation min_min_completion_time_allocation(const SystemModel& system,
                                              const Trace& trace) {
  const std::size_t tasks = trace.size();
  Allocation a;
  a.machine.assign(tasks, -1);
  a.order.assign(tasks, 0);

  const std::size_t machines = system.num_machines();
  const std::size_t mtypes = system.num_machine_types();
  std::vector<double> available(machines, 0.0);
  std::vector<bool> mapped(tasks, false);

  // The textbook formulation is O(T^2 M): recompute every unmapped task's
  // best completion after each mapping.  But completion of task i on
  // machine m is max(available[m], arrival_i) + ETC(i, m), which splits
  // into two STATIC orderings — and since ETC depends only on the machine
  // *type*, instances of a type collapse into one heap set keyed off the
  // type's minimum availability:
  //   * ready   — arrival <= min_avail[type]: the type's best completion
  //               is min_avail[type] + ETC, so tasks order by ETC alone;
  //   * pending — arrival still ahead of every instance's tail (well, the
  //               earliest one): best completion = arrival + ETC, a
  //               constant.  An instance whose tail already passed the
  //               arrival can only complete later (tail + ETC >= arrival +
  //               ETC), so the pending key still equals the type's true
  //               minimum.
  // min_avail[type] is non-decreasing (each instance's tail only grows), so
  // a task migrates pending -> ready exactly once per type.  Three
  // lazy-deletion heaps per machine TYPE — ready by (ETC, index), pending
  // by (arrival + ETC, index), and a migration mirror by arrival — replace
  // every recomputation, and one pass over the heap tops of the ~M_T types
  // (not the M instances) yields the global minimum each step.
  //
  // Bit-identity with the quadratic scan: the scan picked the lowest task
  // index among those achieving the minimum completion; for each type the
  // candidate value here is the same double the scan computed on the
  // type's least-available instance (identical max/add operands), every
  // other instance's candidate is >= it, and ties order by index — so
  // scanning heap tops with a (completion, index) tie-break selects the
  // identical task.  The chosen machine and the queue-tail update are then
  // recomputed with the scan's exact float ops (max + add,
  // first-strictly-smaller machine over instances).
  using HeapEntry = std::pair<double, std::uint32_t>;
  using MinHeap = std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                      std::greater<HeapEntry>>;

  // Instances per machine type; types without instances stay heap-less.
  std::vector<std::vector<std::uint32_t>> instances(mtypes);
  for (std::size_t m = 0; m < machines; ++m) {
    instances[static_cast<std::size_t>(system.machines()[m].type)].push_back(
        static_cast<std::uint32_t>(m));
  }
  std::vector<double> min_avail(mtypes, 0.0);

  // Build the initial entry lists flat, then heapify each in O(n) — far
  // cheaper than individual pushes, which pay O(log n) sift-ups and
  // repeated vector growth.  Heap-internal layout is irrelevant to the
  // result: (key, index) keys are unique, so top() is fully determined.
  std::vector<std::vector<HeapEntry>> ready_init(mtypes);
  std::vector<std::vector<HeapEntry>> pending_init(mtypes);
  std::vector<std::vector<HeapEntry>> migrate_init(mtypes);
  for (std::size_t i = 0; i < tasks; ++i) {
    const auto& task = trace.tasks()[i];
    const auto ti = static_cast<std::uint32_t>(i);
    for (std::size_t mt = 0; mt < mtypes; ++mt) {
      if (instances[mt].empty() || !system.eligible_type(task.type, mt)) {
        continue;
      }
      const double etc = system.etc()(task.type, mt);
      if (task.arrival <= min_avail[mt]) {
        ready_init[mt].push_back({etc, ti});
      } else {
        pending_init[mt].push_back({task.arrival + etc, ti});
        migrate_init[mt].push_back({task.arrival, ti});
      }
    }
  }
  std::vector<MinHeap> ready;
  std::vector<MinHeap> pending;
  std::vector<MinHeap> migrate;
  ready.reserve(mtypes);
  pending.reserve(mtypes);
  migrate.reserve(mtypes);
  for (std::size_t mt = 0; mt < mtypes; ++mt) {
    ready.emplace_back(std::greater<HeapEntry>{}, std::move(ready_init[mt]));
    pending.emplace_back(std::greater<HeapEntry>{},
                         std::move(pending_init[mt]));
    migrate.emplace_back(std::greater<HeapEntry>{},
                         std::move(migrate_init[mt]));
  }

  for (std::size_t step = 0; step < tasks; ++step) {
    // Stage 2: the overall minimum (completion, index) over all heap tops.
    std::size_t pick = tasks;
    double pick_completion = std::numeric_limits<double>::infinity();
    const auto consider = [&](double completion, std::uint32_t i) {
      if (completion < pick_completion ||
          (completion == pick_completion && i < pick)) {
        pick_completion = completion;
        pick = i;
      }
    };
    for (std::size_t mt = 0; mt < mtypes; ++mt) {
      while (!ready[mt].empty() && mapped[ready[mt].top().second]) {
        ready[mt].pop();
      }
      if (!ready[mt].empty()) {
        consider(min_avail[mt] + ready[mt].top().first,
                 ready[mt].top().second);
      }
      while (!pending[mt].empty() &&
             (mapped[pending[mt].top().second] ||
              trace.tasks()[pending[mt].top().second].arrival <=
                  min_avail[mt])) {
        pending[mt].pop();  // mapped, or migrated to ready[mt] below
      }
      if (!pending[mt].empty()) {
        consider(pending[mt].top().first, pending[mt].top().second);
      }
    }
    if (pick == tasks) throw std::logic_error("min-min found no task");

    // The picked task's machine, via the scan's original float ops.
    const auto& task = trace.tasks()[pick];
    int choice = -1;
    double completion = std::numeric_limits<double>::infinity();
    for (const int m : system.eligible_machines(task.type)) {
      const auto mi = static_cast<std::size_t>(m);
      const double start = std::max(available[mi], task.arrival);
      const double finish = start + system.etc_on(task.type, mi);
      if (finish < completion) {
        completion = finish;
        choice = m;
      }
    }

    mapped[pick] = true;
    a.machine[pick] = choice;
    a.order[pick] = static_cast<int>(step);  // execute in mapping sequence
    const auto moved = static_cast<std::size_t>(choice);
    available[moved] = completion;

    // Refresh the moved machine's type minimum; when it advances, migrate
    // tasks whose arrival it just passed — their completion key switches
    // from arrival + ETC to min_avail + ETC.
    const auto mt = static_cast<std::size_t>(system.machines()[moved].type);
    double floor = available[instances[mt][0]];
    for (std::size_t k = 1; k < instances[mt].size(); ++k) {
      floor = std::min(floor, available[instances[mt][k]]);
    }
    if (floor > min_avail[mt]) {
      min_avail[mt] = floor;
      while (!migrate[mt].empty() &&
             migrate[mt].top().first <= min_avail[mt]) {
        const std::uint32_t i = migrate[mt].top().second;
        migrate[mt].pop();
        if (!mapped[i]) {
          ready[mt].push({system.etc()(trace.tasks()[i].type, mt), i});
        }
      }
    }
  }
  return a;
}

const char* to_string(SeedHeuristic h) noexcept {
  switch (h) {
    case SeedHeuristic::kMinEnergy:
      return "min-energy";
    case SeedHeuristic::kMaxUtility:
      return "max-utility";
    case SeedHeuristic::kMaxUtilityPerEnergy:
      return "max-utility-per-energy";
    case SeedHeuristic::kMinMinCompletionTime:
      return "min-min-completion-time";
  }
  return "unknown";
}

Allocation make_seed(SeedHeuristic h, const SystemModel& system,
                     const Trace& trace) {
  switch (h) {
    case SeedHeuristic::kMinEnergy:
      return min_energy_allocation(system, trace);
    case SeedHeuristic::kMaxUtility:
      return max_utility_allocation(system, trace);
    case SeedHeuristic::kMaxUtilityPerEnergy:
      return max_utility_per_energy_allocation(system, trace);
    case SeedHeuristic::kMinMinCompletionTime:
      return min_min_completion_time_allocation(system, trace);
  }
  throw std::invalid_argument("unknown seed heuristic");
}

std::vector<SeedHeuristic> all_seed_heuristics() {
  return {SeedHeuristic::kMinEnergy, SeedHeuristic::kMaxUtility,
          SeedHeuristic::kMaxUtilityPerEnergy,
          SeedHeuristic::kMinMinCompletionTime};
}

}  // namespace eus
