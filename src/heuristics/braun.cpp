#include "heuristics/braun.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace eus {
namespace {

Allocation arrival_order_allocation(std::size_t tasks) {
  Allocation a;
  a.machine.assign(tasks, -1);
  a.order.resize(tasks);
  for (std::size_t i = 0; i < tasks; ++i) a.order[i] = static_cast<int>(i);
  return a;
}

/// Best (machine, completion) for a task given current queue state.
struct Best {
  int machine = -1;
  double completion = std::numeric_limits<double>::infinity();
  double second = std::numeric_limits<double>::infinity();
};

Best best_completion(const SystemModel& system,
                     const std::vector<double>& available,
                     const TaskInstance& task) {
  Best b;
  for (const int m : system.eligible_machines(task.type)) {
    const auto mi = static_cast<std::size_t>(m);
    const double start = std::max(available[mi], task.arrival);
    const double finish = start + system.etc_on(task.type, mi);
    if (finish < b.completion) {
      b.second = b.completion;
      b.completion = finish;
      b.machine = m;
    } else if (finish < b.second) {
      b.second = finish;
    }
  }
  return b;
}

}  // namespace

Allocation met_allocation(const SystemModel& system, const Trace& trace) {
  Allocation a = arrival_order_allocation(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::size_t type = trace.tasks()[i].type;
    double best = std::numeric_limits<double>::infinity();
    for (const int m : system.eligible_machines(type)) {
      const double etc = system.etc_on(type, static_cast<std::size_t>(m));
      if (etc < best) {
        best = etc;
        a.machine[i] = m;
      }
    }
  }
  return a;
}

Allocation olb_allocation(const SystemModel& system, const Trace& trace) {
  Allocation a = arrival_order_allocation(trace.size());
  std::vector<double> available(system.num_machines(), 0.0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& task = trace.tasks()[i];
    double earliest = std::numeric_limits<double>::infinity();
    for (const int m : system.eligible_machines(task.type)) {
      if (available[static_cast<std::size_t>(m)] < earliest) {
        earliest = available[static_cast<std::size_t>(m)];
        a.machine[i] = m;
      }
    }
    const auto mi = static_cast<std::size_t>(a.machine[i]);
    const double start = std::max(available[mi], task.arrival);
    available[mi] = start + system.etc_on(task.type, mi);
  }
  return a;
}

Allocation max_min_completion_time_allocation(const SystemModel& system,
                                              const Trace& trace) {
  const std::size_t tasks = trace.size();
  Allocation a;
  a.machine.assign(tasks, -1);
  a.order.assign(tasks, 0);
  std::vector<double> available(system.num_machines(), 0.0);
  std::vector<bool> mapped(tasks, false);

  for (std::size_t step = 0; step < tasks; ++step) {
    // Stage 1: every unmapped task's minimum completion; stage 2: map the
    // task whose minimum completion is the LARGEST.
    std::size_t pick = tasks;
    Best pick_best;
    double latest = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < tasks; ++i) {
      if (mapped[i]) continue;
      const Best b = best_completion(system, available, trace.tasks()[i]);
      if (b.completion > latest) {
        latest = b.completion;
        pick = i;
        pick_best = b;
      }
    }
    if (pick == tasks) throw std::logic_error("max-min found no task");
    mapped[pick] = true;
    a.machine[pick] = pick_best.machine;
    a.order[pick] = static_cast<int>(step);
    available[static_cast<std::size_t>(pick_best.machine)] =
        pick_best.completion;
  }
  return a;
}

Allocation sufferage_allocation(const SystemModel& system,
                                const Trace& trace) {
  const std::size_t tasks = trace.size();
  Allocation a;
  a.machine.assign(tasks, -1);
  a.order.assign(tasks, 0);
  std::vector<double> available(system.num_machines(), 0.0);
  std::vector<bool> mapped(tasks, false);

  for (std::size_t step = 0; step < tasks; ++step) {
    std::size_t pick = tasks;
    Best pick_best;
    double max_sufferage = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < tasks; ++i) {
      if (mapped[i]) continue;
      const Best b = best_completion(system, available, trace.tasks()[i]);
      // Tasks with a single eligible machine suffer "infinitely": map them
      // first (their second-best is +inf).
      const double sufferage = b.second - b.completion;
      if (sufferage > max_sufferage ||
          (sufferage == max_sufferage && pick != tasks &&
           b.completion < pick_best.completion)) {
        max_sufferage = sufferage;
        pick = i;
        pick_best = b;
      }
    }
    if (pick == tasks) throw std::logic_error("sufferage found no task");
    mapped[pick] = true;
    a.machine[pick] = pick_best.machine;
    a.order[pick] = static_cast<int>(step);
    available[static_cast<std::size_t>(pick_best.machine)] =
        pick_best.completion;
  }
  return a;
}

const char* to_string(BatchHeuristic h) noexcept {
  switch (h) {
    case BatchHeuristic::kMet:
      return "met";
    case BatchHeuristic::kOlb:
      return "olb";
    case BatchHeuristic::kMaxMin:
      return "max-min-completion-time";
    case BatchHeuristic::kSufferage:
      return "sufferage";
  }
  return "unknown";
}

Allocation make_batch_seed(BatchHeuristic h, const SystemModel& system,
                           const Trace& trace) {
  switch (h) {
    case BatchHeuristic::kMet:
      return met_allocation(system, trace);
    case BatchHeuristic::kOlb:
      return olb_allocation(system, trace);
    case BatchHeuristic::kMaxMin:
      return max_min_completion_time_allocation(system, trace);
    case BatchHeuristic::kSufferage:
      return sufferage_allocation(system, trace);
  }
  throw std::invalid_argument("unknown batch heuristic");
}

std::vector<BatchHeuristic> all_batch_heuristics() {
  return {BatchHeuristic::kMet, BatchHeuristic::kOlb, BatchHeuristic::kMaxMin,
          BatchHeuristic::kSufferage};
}

}  // namespace eus
