#include "tenant/repair.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "core/fitness_cache.hpp"
#include "workload/trace.hpp"

namespace eus::tenant {
namespace {

/// Lowest-index eligible instance with minimum ETC for the task type, or -1
/// when the type has no eligible instance.
int cheapest_eligible(const SystemModel& system, std::size_t task_type) {
  const auto& eligible = system.eligible_machines(task_type);
  int best = -1;
  double best_etc = std::numeric_limits<double>::infinity();
  for (const int m : eligible) {
    const double etc = system.etc_on(task_type, static_cast<std::size_t>(m));
    if (etc < best_etc) {
      best_etc = etc;
      best = m;
    }
  }
  return best;
}

}  // namespace

SystemModel drop_machine_instances(const SystemModel& system,
                                   const std::vector<std::size_t>& dropped) {
  const std::size_t old_count = system.num_machines();
  std::vector<bool> gone(old_count, false);
  for (const std::size_t m : dropped) {
    if (m >= old_count) {
      throw std::invalid_argument("drop-machine index " + std::to_string(m) +
                                  " out of range (system has " +
                                  std::to_string(old_count) + " machines)");
    }
    if (gone[m]) {
      throw std::invalid_argument("drop-machine index " + std::to_string(m) +
                                  " listed twice");
    }
    gone[m] = true;
  }
  if (dropped.size() >= old_count) {
    throw std::invalid_argument("cannot drop every machine instance");
  }

  std::vector<Machine> kept;
  kept.reserve(old_count - dropped.size());
  for (std::size_t m = 0; m < old_count; ++m) {
    if (!gone[m]) kept.push_back(system.machines()[m]);
  }
  SystemModel reduced(system.task_types(), system.machine_types(),
                      std::move(kept), system.etc(), system.epc());

  // A task type that could run before must still have a home: the ETC matrix
  // only encodes *type*-level eligibility, so losing the last instance of the
  // only eligible machine type strands the task silently otherwise.
  for (std::size_t t = 0; t < system.num_task_types(); ++t) {
    if (!system.eligible_machines(t).empty() &&
        reduced.eligible_machines(t).empty()) {
      throw std::invalid_argument(
          "machine drop leaves task type " + std::to_string(t) +
          " with no eligible machine instance");
    }
  }
  return reduced;
}

std::vector<int> machine_index_map(std::size_t old_count,
                                   const std::vector<std::size_t>& dropped) {
  std::vector<int> map(old_count, -1);
  std::vector<bool> gone(old_count, false);
  for (const std::size_t m : dropped) {
    if (m >= old_count) {
      throw std::invalid_argument("drop-machine index out of range");
    }
    gone[m] = true;
  }
  int next = 0;
  for (std::size_t m = 0; m < old_count; ++m) {
    if (!gone[m]) map[m] = next++;
  }
  return map;
}

std::vector<Allocation> repair_genomes(const std::vector<Allocation>& genomes,
                                       const BiObjectiveProblem& problem,
                                       const std::vector<int>& index_map) {
  const std::size_t tasks = problem.genome_size();
  const SystemModel& system = problem.system();
  const Trace& trace = problem.trace();
  const std::size_t pstates = problem.num_pstates();
  const int machines = static_cast<int>(system.num_machines());

  std::vector<Allocation> repaired;
  repaired.reserve(genomes.size());
  std::unordered_set<std::uint64_t> seen;
  for (const Allocation& g : genomes) {
    Allocation a = g;

    // Resize to the target trace.  Appended tasks go to their cheapest
    // eligible machine and run after every inherited order.
    if (a.machine.size() > tasks) {
      a.machine.resize(tasks);
      a.order.resize(tasks);
      if (!a.pstate.empty()) a.pstate.resize(tasks);
    } else if (a.machine.size() < tasks) {
      int max_order = 0;
      for (const int o : a.order) max_order = std::max(max_order, o);
      const bool had_pstate = !a.pstate.empty();
      while (a.machine.size() < tasks) {
        const std::size_t i = a.machine.size();
        a.machine.push_back(cheapest_eligible(system, trace.task(i).type));
        a.order.push_back(++max_order);
        if (had_pstate) a.pstate.push_back(0);
      }
    }

    // Remap across dropped instances, then enforce per-task eligibility.
    bool feasible = true;
    for (std::size_t i = 0; i < tasks; ++i) {
      int m = a.machine[i];
      if (!index_map.empty()) {
        m = (m >= 0 && static_cast<std::size_t>(m) < index_map.size())
                ? index_map[static_cast<std::size_t>(m)]
                : -1;
      }
      const std::size_t type = trace.task(i).type;
      if (m < 0 || m >= machines ||
          !system.eligible(type, static_cast<std::size_t>(m))) {
        m = cheapest_eligible(system, type);
      }
      if (m < 0) {
        feasible = false;  // task type has no eligible machine at all
        break;
      }
      a.machine[i] = m;
    }
    if (!feasible) continue;

    if (pstates == 0) {
      a.pstate.clear();
    } else {
      a.pstate.resize(tasks, 0);
      const int top = static_cast<int>(pstates) - 1;
      for (int& p : a.pstate) p = std::clamp(p, 0, top);
    }

    if (seen.insert(FitnessCache::fingerprint(a)).second) {
      repaired.push_back(std::move(a));
    }
  }
  return repaired;
}

}  // namespace eus::tenant
