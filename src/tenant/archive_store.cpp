#include "tenant/archive_store.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/fitness_cache.hpp"
#include "core/population_io.hpp"
#include "pareto/archive.hpp"

namespace eus::tenant {
namespace {

constexpr std::size_t kMaxTenantIdLength = 64;

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double parse_double(const std::string& token) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end != begin + token.size() || token.empty()) {
    throw std::runtime_error("bad number '" + token + "'");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& token) {
  if (token.empty() ||
      !std::all_of(token.begin(), token.end(),
                   [](unsigned char c) { return std::isdigit(c) != 0; })) {
    throw std::runtime_error("bad integer '" + token + "'");
  }
  return std::strtoull(token.c_str(), nullptr, 10);
}

/// Splits checkpoint text into lines; a file not ending in '\n' is a
/// truncated write and parses as corrupt.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : text_(text) {}
  bool next(std::string& line) {
    if (pos_ >= text_.size()) return false;
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos) {
      throw std::runtime_error("truncated checkpoint (no trailing newline)");
    }
    line = text_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return true;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

std::vector<std::string> split_words(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> words;
  std::string w;
  while (is >> w) words.push_back(w);
  return words;
}

}  // namespace

bool valid_tenant_id(std::string_view id) {
  if (id.empty() || id.size() > kMaxTenantIdLength) return false;
  return std::all_of(id.begin(), id.end(), [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '.' || c == '_' || c == '-';
  });
}

ArchiveStore::ArchiveStore(ArchiveConfig config, MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {
  if (metrics_ != nullptr) {
    warm_hits_ = &metrics_->counter("archive.warm_hits");
    misses_ = &metrics_->counter("archive.misses");
    inserts_ = &metrics_->counter("archive.inserts");
    evictions_ = &metrics_->counter("archive.evictions");
    tenant_evictions_ = &metrics_->counter("archive.tenant_evictions");
    flushes_ = &metrics_->counter("archive.flushes");
    checkpoint_saved_ = &metrics_->counter("archive.checkpoint.saved");
    checkpoint_loaded_ = &metrics_->counter("archive.checkpoint.loaded");
    checkpoint_corrupt_ = &metrics_->counter("archive.checkpoint.corrupt");
    tenants_gauge_ = &metrics_->gauge("archive.tenants");
    entries_gauge_ = &metrics_->gauge("archive.entries");
    genomes_gauge_ = &metrics_->gauge("archive.genomes");
  }
}

ArchiveStore::TenantState* ArchiveStore::find_tenant(const std::string& name) {
  for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
    if (it->name == name) {
      tenants_.splice(tenants_.begin(), tenants_, it);  // mark recently used
      return &tenants_.front();
    }
  }
  return nullptr;
}

ArchiveStore::TenantState& ArchiveStore::touch_tenant(const std::string& name) {
  if (TenantState* t = find_tenant(name)) return *t;
  tenants_.push_front(
      TenantState{name, config_.entries_per_tenant, 0, 0, {}});
  while (tenants_.size() > config_.max_tenants) {
    if (evictions_ != nullptr) {
      evictions_->add(tenants_.back().entries.size());
    }
    if (tenant_evictions_ != nullptr) tenant_evictions_->add();
    tenants_.pop_back();
  }
  return tenants_.front();
}

void ArchiveStore::trim_tenant(TenantState& t) {
  while (t.entries.size() > t.cap) {
    t.entries.pop_back();
    if (evictions_ != nullptr) evictions_->add();
  }
}

void ArchiveStore::update_gauges() {
  if (tenants_gauge_ == nullptr) return;
  std::size_t n_entries = 0;
  std::size_t n_genomes = 0;
  for (const auto& t : tenants_) {
    n_entries += t.entries.size();
    for (const auto& e : t.entries) n_genomes += e.genomes.size();
  }
  tenants_gauge_->set(static_cast<double>(tenants_.size()));
  entries_gauge_->set(static_cast<double>(n_entries));
  genomes_gauge_->set(static_cast<double>(n_genomes));
}

std::size_t ArchiveStore::put(const std::string& tenant,
                              const std::string& scenario_key,
                              const std::string& lineage,
                              const std::vector<Allocation>& genomes,
                              const std::vector<EUPoint>& points) {
  if (genomes.size() != points.size()) {
    throw std::invalid_argument("archive put: genome/point count mismatch");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  TenantState& t = touch_tenant(tenant);

  StoredEntry* entry = nullptr;
  for (auto it = t.entries.begin(); it != t.entries.end(); ++it) {
    if (it->key == scenario_key) {
      t.entries.splice(t.entries.begin(), t.entries, it);
      entry = &t.entries.front();
      break;
    }
  }
  if (entry == nullptr) {
    t.entries.push_front(StoredEntry{scenario_key, lineage, 0, {}, {}});
    entry = &t.entries.front();
    trim_tenant(t);
  }

  // Merge existing + new through a bounded ParetoArchive: tags index the
  // candidate pool (existing first, so a re-submitted equal point keeps its
  // original genome), fingerprints reject duplicate genomes outright.
  std::vector<const Allocation*> pool;
  std::vector<EUPoint> pool_points;
  pool.reserve(entry->genomes.size() + genomes.size());
  for (std::size_t i = 0; i < entry->genomes.size(); ++i) {
    pool.push_back(&entry->genomes[i]);
    pool_points.push_back(entry->points[i]);
  }
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    pool.push_back(&genomes[i]);
    pool_points.push_back(points[i]);
  }
  ParetoArchive merged(config_.genomes_per_entry);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (merged.insert(pool_points[i], i, FitnessCache::fingerprint(*pool[i])) &&
        inserts_ != nullptr) {
      inserts_->add();
    }
  }

  std::vector<Allocation> merged_genomes;
  std::vector<EUPoint> merged_points;
  merged_genomes.reserve(merged.size());
  merged_points.reserve(merged.size());
  for (const auto& e : merged.entries()) {
    merged_genomes.push_back(*pool[e.tag]);
    merged_points.push_back(e.point);
  }
  entry->genomes = std::move(merged_genomes);
  entry->points = std::move(merged_points);
  entry->lineage = lineage;
  ++entry->revision;

  update_gauges();
  return entry->genomes.size();
}

std::optional<ArchivedFront> ArchiveStore::lookup(
    const std::string& tenant, const std::string& scenario_key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TenantState* t = find_tenant(tenant);
  if (t == nullptr) {
    if (misses_ != nullptr) misses_->add();
    return std::nullopt;
  }
  for (auto it = t->entries.begin(); it != t->entries.end(); ++it) {
    if (it->key == scenario_key) {
      t->entries.splice(t->entries.begin(), t->entries, it);
      ++t->warm_hits;
      if (warm_hits_ != nullptr) warm_hits_->add();
      const StoredEntry& e = t->entries.front();
      return ArchivedFront{e.key, e.lineage, e.revision, e.genomes, e.points};
    }
  }
  ++t->misses;
  if (misses_ != nullptr) misses_->add();
  return std::nullopt;
}

std::vector<TenantStats> ArchiveStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) {
    TenantStats s;
    s.tenant = t.name;
    s.entries = t.entries.size();
    for (const auto& e : t.entries) s.genomes += e.genomes.size();
    s.cap = t.cap;
    s.warm_hits = t.warm_hits;
    s.misses = t.misses;
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t ArchiveStore::flush(const std::string& tenant) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t flushed = 0;
  if (tenant.empty()) {
    for (const auto& t : tenants_) flushed += t.entries.size();
    tenants_.clear();
  } else {
    for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
      if (it->name == tenant) {
        flushed = it->entries.size();
        tenants_.erase(it);
        break;
      }
    }
  }
  if (flushes_ != nullptr && flushed > 0) flushes_->add(flushed);
  update_gauges();
  return flushed;
}

bool ArchiveStore::set_tenant_cap(const std::string& tenant, std::size_t cap) {
  if (cap == 0) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  TenantState& t = touch_tenant(tenant);
  t.cap = cap;
  trim_tenant(t);
  update_gauges();
  return true;
}

std::size_t ArchiveStore::tenants() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.size();
}

std::size_t ArchiveStore::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& t : tenants_) n += t.entries.size();
  return n;
}

std::size_t ArchiveStore::genomes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& t : tenants_) {
    for (const auto& e : t.entries) n += e.genomes.size();
  }
  return n;
}

std::string ArchiveStore::checkpoint_string() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << kCheckpointHeader << '\n';
  for (const auto& t : tenants_) {
    os << "tenant " << t.name << " cap " << t.cap << " hits " << t.warm_hits
       << " misses " << t.misses << '\n';
    for (const auto& e : t.entries) {
      os << "entry rev " << e.revision << " points " << e.points.size()
         << '\n';
      os << "key " << e.key << '\n';
      os << "lineage " << (e.lineage.empty() ? "-" : e.lineage) << '\n';
      for (const auto& p : e.points) {
        os << "point " << format_double(p.energy) << ' '
           << format_double(p.utility) << '\n';
      }
      os << population_to_string(e.genomes);
      os << "end entry\n";
    }
    os << "end tenant\n";
  }
  return os.str();
}

ArchiveStore::LoadResult ArchiveStore::restore(const std::string& text) {
  std::list<TenantState> parsed;
  try {
    LineReader reader(text);
    std::string line;
    if (!reader.next(line) || line != kCheckpointHeader) {
      throw std::runtime_error("bad checkpoint header");
    }
    while (reader.next(line)) {
      auto words = split_words(line);
      if (words.size() != 8 || words[0] != "tenant" || words[2] != "cap" ||
          words[4] != "hits" || words[6] != "misses" ||
          !valid_tenant_id(words[1])) {
        throw std::runtime_error("bad tenant line '" + line + "'");
      }
      TenantState t;
      t.name = words[1];
      t.cap = static_cast<std::size_t>(parse_u64(words[3]));
      t.warm_hits = parse_u64(words[5]);
      t.misses = parse_u64(words[7]);
      if (t.cap == 0) throw std::runtime_error("zero tenant cap");
      for (const auto& existing : parsed) {
        if (existing.name == t.name) {
          throw std::runtime_error("duplicate tenant '" + t.name + "'");
        }
      }

      for (;;) {
        if (!reader.next(line)) {
          throw std::runtime_error("truncated tenant block");
        }
        if (line == "end tenant") break;
        words = split_words(line);
        if (words.size() != 5 || words[0] != "entry" || words[1] != "rev" ||
            words[3] != "points") {
          throw std::runtime_error("bad entry line '" + line + "'");
        }
        StoredEntry e;
        e.revision = parse_u64(words[2]);
        const std::size_t n_points =
            static_cast<std::size_t>(parse_u64(words[4]));

        if (!reader.next(line) || line.rfind("key ", 0) != 0 ||
            line.size() <= 4) {
          throw std::runtime_error("bad key line");
        }
        e.key = line.substr(4);
        for (const auto& existing : t.entries) {
          if (existing.key == e.key) {
            throw std::runtime_error("duplicate entry key '" + e.key + "'");
          }
        }
        if (!reader.next(line) || line.rfind("lineage ", 0) != 0 ||
            line.size() <= 8) {
          throw std::runtime_error("bad lineage line");
        }
        e.lineage = line.substr(8);
        if (e.lineage == "-") e.lineage.clear();

        for (std::size_t i = 0; i < n_points; ++i) {
          if (!reader.next(line)) throw std::runtime_error("truncated points");
          words = split_words(line);
          if (words.size() != 3 || words[0] != "point") {
            throw std::runtime_error("bad point line '" + line + "'");
          }
          EUPoint p{parse_double(words[1]), parse_double(words[2])};
          if (!std::isfinite(p.energy) || !std::isfinite(p.utility)) {
            throw std::runtime_error("non-finite point");
          }
          // Entries are stored ascending in both axes (nondominated set).
          if (!e.points.empty() && (p.energy <= e.points.back().energy ||
                                    p.utility <= e.points.back().utility)) {
            throw std::runtime_error("points not a sorted nondominated set");
          }
          e.points.push_back(p);
        }

        std::string genome_text;
        for (;;) {
          if (!reader.next(line)) {
            throw std::runtime_error("truncated genome block");
          }
          if (line == "end entry") break;
          genome_text += line;
          genome_text += '\n';
        }
        e.genomes = population_from_string(genome_text);
        if (e.genomes.size() != n_points) {
          throw std::runtime_error("genome/point count mismatch");
        }
        t.entries.push_back(std::move(e));
      }
      trim_tenant(t);
      parsed.push_back(std::move(t));
    }
  } catch (const std::exception&) {
    const std::lock_guard<std::mutex> lock(mutex_);
    tenants_.clear();
    if (checkpoint_corrupt_ != nullptr) checkpoint_corrupt_->add();
    update_gauges();
    return LoadResult::kCorrupt;
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  tenants_ = std::move(parsed);
  while (tenants_.size() > config_.max_tenants) tenants_.pop_back();
  if (checkpoint_loaded_ != nullptr) checkpoint_loaded_->add();
  update_gauges();
  return LoadResult::kLoaded;
}

ArchiveStore::LoadResult ArchiveStore::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return LoadResult::kMissing;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return LoadResult::kMissing;
  return restore(buffer.str());
}

bool ArchiveStore::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << checkpoint_string();
    out.flush();
    if (!out.good()) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) return false;
  if (checkpoint_saved_ != nullptr) checkpoint_saved_->add();
  return true;
}

}  // namespace eus::tenant
