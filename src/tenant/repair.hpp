#pragma once

// Genome repair for warm-started optimization (ROADMAP item 5).  Archived
// Pareto genomes were converged against a *previous* scenario; before they
// can seed a new population the genes must be made feasible for the target:
// resized to the target trace, remapped across dropped machine instances,
// and re-checked against per-task eligibility (traces are re-sampled rather
// than prefix-extended, so even a pure task-count change can reshuffle task
// types).  Repair preserves as much of the converged structure as possible;
// the polish run recovers the rest.

#include <cstddef>
#include <vector>

#include "core/problem.hpp"
#include "data/system.hpp"
#include "sched/allocation.hpp"

namespace eus::tenant {

/// Removes the given machine *instances* (indices into system.machines())
/// and rebuilds the model over the survivors.  The ETC/EPC matrices are
/// indexed by machine *type* and pass through unchanged.  Throws
/// std::invalid_argument on an out-of-range or duplicate index, when every
/// instance would be dropped, or when a task type that previously had an
/// eligible instance would be left with none.
[[nodiscard]] SystemModel drop_machine_instances(
    const SystemModel& system, const std::vector<std::size_t>& dropped);

/// Old-instance-index -> new-instance-index map after dropping; dropped
/// indices map to -1.  `dropped` must be valid against `old_count`.
[[nodiscard]] std::vector<int> machine_index_map(
    std::size_t old_count, const std::vector<std::size_t>& dropped);

/// Repairs archived genomes for the target `problem`:
///  - resizes to problem.genome_size() (truncating, or appending new tasks
///    on their cheapest-ETC eligible machine after all existing orders),
///  - remaps machine genes through `index_map` (empty = identity; a gene
///    mapping to -1 is reassigned),
///  - reassigns any ineligible/out-of-range machine gene to the
///    lowest-index minimum-ETC eligible instance for that task's type,
///  - normalizes the pstate vector to the problem's P-state count.
/// Exact duplicates (same genome fingerprint) are dropped so every returned
/// genome occupies a distinct population slot.  Every returned genome
/// passes Evaluator::validate for the target problem.
[[nodiscard]] std::vector<Allocation> repair_genomes(
    const std::vector<Allocation>& genomes, const BiObjectiveProblem& problem,
    const std::vector<int>& index_map = {});

}  // namespace eus::tenant
