#pragma once

// Per-tenant warm-start archives (ROADMAP item 5).  An ArchiveStore keeps,
// for each (tenant id, scenario fingerprint) pair, the capacity-bounded
// nondominated set of converged genomes produced by previous optimizations
// — the seed material that lets a later request on the same (or a mutated)
// scenario start from a converged front instead of generation zero.
//
// Bounds: at most `max_tenants` tenants, `entries_per_tenant` scenarios per
// tenant (overridable per tenant over the admin plane), `genomes_per_entry`
// genomes per scenario; every level evicts least-recently-used first, and
// within an entry the ParetoArchive's crowding prune keeps the extremes.
// All public methods are thread-safe (one mutex; the store is touched a
// handful of times per request, never inside the evolution hot loop).
//
// Checkpointing: the whole store serializes to a versioned text format
// built on src/core population I/O.  `load` is corruption-tolerant — a
// truncated or tampered file logs `archive.checkpoint.corrupt` and leaves
// the store empty (cold start), it never throws.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pareto/point.hpp"
#include "sched/allocation.hpp"
#include "telemetry/metrics.hpp"

namespace eus::tenant {

struct ArchiveConfig {
  std::size_t max_tenants = 64;
  std::size_t entries_per_tenant = 8;
  std::size_t genomes_per_entry = 32;
};

/// A stored converged front: genomes[i] evaluates to points[i] under the
/// scenario identified by `scenario_key`.  `lineage` is the scenario key of
/// the base this entry was derived from via a delta request ("" = cold
/// origin); `revision` counts merges into the entry.
struct ArchivedFront {
  std::string scenario_key;
  std::string lineage;
  std::uint64_t revision = 0;
  std::vector<Allocation> genomes;
  std::vector<EUPoint> points;  ///< ascending energy, mutually nondominated
};

struct TenantStats {
  std::string tenant;
  std::size_t entries = 0;
  std::size_t genomes = 0;
  std::size_t cap = 0;  ///< entry cap for this tenant
  std::uint64_t warm_hits = 0;
  std::uint64_t misses = 0;
};

class ArchiveStore {
 public:
  static constexpr std::string_view kCheckpointHeader =
      "eus-archive-checkpoint v1";

  explicit ArchiveStore(ArchiveConfig config = {},
                        MetricsRegistry* metrics = nullptr);

  /// Merges a converged front into the (tenant, scenario_key) entry through
  /// a capacity-bounded ParetoArchive (duplicate genomes rejected by
  /// fingerprint, crowding prune on overflow).  Creates the tenant/entry on
  /// first use, evicting least-recently-used ones over capacity.  `genomes`
  /// and `points` are parallel.  Returns the entry's size after the merge.
  std::size_t put(const std::string& tenant, const std::string& scenario_key,
                  const std::string& lineage,
                  const std::vector<Allocation>& genomes,
                  const std::vector<EUPoint>& points);

  /// Returns a copy of the entry and marks tenant + entry most recently
  /// used.  Bumps archive.warm_hits / archive.misses.
  [[nodiscard]] std::optional<ArchivedFront> lookup(
      const std::string& tenant, const std::string& scenario_key);

  /// Per-tenant stats, most recently used first.
  [[nodiscard]] std::vector<TenantStats> stats() const;

  /// Drops one tenant's entries ("" = every tenant).  Returns the number of
  /// entries flushed.
  std::size_t flush(const std::string& tenant = "");

  /// Sets (creating the tenant if needed) the per-tenant entry cap,
  /// trimming least-recently-used entries over the new cap.  cap must be
  /// >= 1; returns false otherwise.
  bool set_tenant_cap(const std::string& tenant, std::size_t cap);

  [[nodiscard]] std::size_t tenants() const;
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t genomes() const;
  [[nodiscard]] const ArchiveConfig& config() const noexcept {
    return config_;
  }

  /// Versioned checkpoint of the whole store (tenants and entries in
  /// most-recently-used-first order, doubles at full round-trip precision:
  /// restore(checkpoint_string()) reproduces the store bit for bit).
  [[nodiscard]] std::string checkpoint_string() const;

  enum class LoadResult { kLoaded, kMissing, kCorrupt };

  /// Replaces the store contents with a parsed checkpoint.  Any malformed
  /// input (bad header, truncated entry, non-finite point, invalid genome
  /// block) bumps archive.checkpoint.corrupt and returns kCorrupt with the
  /// store left empty.  Never throws.
  LoadResult restore(const std::string& text);

  /// restore() from a file; a missing/unreadable file is kMissing (a fresh
  /// deployment, not an error).
  LoadResult load(const std::string& path);

  /// Atomically (write temp + rename) writes checkpoint_string() to path.
  /// Returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  struct StoredEntry {
    std::string key;
    std::string lineage;
    std::uint64_t revision = 0;
    std::vector<Allocation> genomes;
    std::vector<EUPoint> points;
  };
  struct TenantState {
    std::string name;
    std::size_t cap = 0;
    std::uint64_t warm_hits = 0;
    std::uint64_t misses = 0;
    std::list<StoredEntry> entries;  ///< front = most recently used
  };

  TenantState* find_tenant(const std::string& name);
  TenantState& touch_tenant(const std::string& name);  ///< find-or-create
  void trim_tenant(TenantState& t);
  void update_gauges();

  ArchiveConfig config_;
  MetricsRegistry* metrics_;
  Counter* warm_hits_ = nullptr;
  Counter* misses_ = nullptr;
  Counter* inserts_ = nullptr;
  Counter* evictions_ = nullptr;
  Counter* tenant_evictions_ = nullptr;
  Counter* flushes_ = nullptr;
  Counter* checkpoint_saved_ = nullptr;
  Counter* checkpoint_loaded_ = nullptr;
  Counter* checkpoint_corrupt_ = nullptr;
  Gauge* tenants_gauge_ = nullptr;
  Gauge* entries_gauge_ = nullptr;
  Gauge* genomes_gauge_ = nullptr;

  mutable std::mutex mutex_;
  std::list<TenantState> tenants_;  ///< front = most recently used
};

/// True iff `id` is a legal tenant id: 1..64 chars from [A-Za-z0-9._-].
[[nodiscard]] bool valid_tenant_id(std::string_view id);

}  // namespace eus::tenant
