#pragma once

// Lightweight process-local metrics: named counters, gauges and timers
// registered once and updated lock-free from hot paths (fitness evaluation
// runs on the population-evaluation pool).  A MetricsRegistry is shared by
// every algorithm instance of a study, so counts aggregate across
// concurrently evolving populations.
//
// Hot-path contract: resolve Counter&/TimerMetric& once (constructor time),
// then update through the reference — updates are a single relaxed atomic
// RMW, never a name lookup.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace eus {

/// Monotonic event count (evaluations, dropped tasks, generations).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (front size, offered load).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Lock-free log-bucketed distribution for latency-style samples.  Each
/// observation lands in the power-of-two nanosecond bucket of its duration
/// (bucket i covers [2^(i-1), 2^i) ns), so the whole histogram is 64 relaxed
/// atomic counters: cheap enough for a per-request hot path, and quantiles
/// are accurate to within one octave — plenty for p50/p95 dashboards.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::chrono::nanoseconds elapsed) noexcept {
    const std::int64_t ns = elapsed.count();
    const std::uint64_t clamped =
        ns <= 0 ? 0ULL : static_cast<std::uint64_t>(ns);
    buckets_[bucket_of(clamped)].fetch_add(1, std::memory_order_relaxed);
  }
  void observe_seconds(double seconds) noexcept {
    observe(std::chrono::nanoseconds(
        seconds <= 0.0 ? 0LL : static_cast<std::int64_t>(seconds * 1e9)));
  }

  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Approximate q-quantile (q in [0,1]) in seconds: the upper bound of the
  /// bucket holding the q-th sample.  0 when empty.
  [[nodiscard]] double quantile_seconds(double q) const noexcept;

 private:
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t ns) noexcept {
    std::size_t b = 0;
    while (ns > 0 && b + 1 < kBuckets) {
      ns >>= 1U;
      ++b;
    }
    return b;
  }

  std::atomic<std::uint64_t> buckets_[kBuckets]{};
};

/// Accumulated duration plus sample count (phase time splits).
class TimerMetric {
 public:
  void add(std::chrono::nanoseconds elapsed) noexcept {
    total_ns_.fetch_add(static_cast<std::uint64_t>(elapsed.count()),
                        std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] double total_seconds() const noexcept {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII phase timer; a null target makes it a no-op so instrumented code
/// pays nothing when metrics are disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerMetric* timer) noexcept
      : timer_(timer),
        start_(timer ? std::chrono::steady_clock::now()
                     : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (timer_) timer_->add(std::chrono::steady_clock::now() - start_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerMetric* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct TimerStat {
    double seconds = 0.0;
    std::uint64_t count = 0;
  };
  struct HistogramStat {
    std::uint64_t count = 0;
    double p50_s = 0.0;
    double p95_s = 0.0;
    double p99_s = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerStat> timers;
  std::map<std::string, HistogramStat> histograms;
};

class JsonObject;

/// Appends a snapshot's four sections ("counters"/"gauges"/"timers"/
/// "histograms", histogram quantiles in milliseconds) as nested fields of
/// `out`.  Shared by eus_served's `metricsz` responses and the runtime's
/// background diagnostics thread so both emit the identical schema.
void append_snapshot(JsonObject& out, const MetricsSnapshot& snap);

/// The same four sections as one standalone JSON object.
[[nodiscard]] std::string snapshot_json(const MetricsSnapshot& snap);

/// Per-interval view of two snapshots of the same registry: counters and
/// timers subtract (names absent from `before` count as zero; a counter
/// that somehow shrank clamps to zero rather than wrapping), gauges keep
/// their `after` value (they are instantaneous, not cumulative).  This is
/// how the bench harness turns one accumulating registry into
/// per-repetition metrics.
[[nodiscard]] MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                                             const MetricsSnapshot& after);

/// Thread-safe name -> metric registry.  Lookup is mutex-guarded; returned
/// references stay valid for the registry's lifetime (metrics are
/// heap-allocated and never removed).
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] TimerMetric& timer(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<TimerMetric>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace eus
