#pragma once

// Lightweight process-local metrics: named counters, gauges and timers
// registered once and updated lock-free from hot paths (fitness evaluation
// runs on the population-evaluation pool).  A MetricsRegistry is shared by
// every algorithm instance of a study, so counts aggregate across
// concurrently evolving populations.
//
// Hot-path contract: resolve Counter&/TimerMetric& once (constructor time),
// then update through the reference — updates are a single relaxed atomic
// RMW, never a name lookup.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace eus {

/// Monotonic event count (evaluations, dropped tasks, generations).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (front size, offered load).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated duration plus sample count (phase time splits).
class TimerMetric {
 public:
  void add(std::chrono::nanoseconds elapsed) noexcept {
    total_ns_.fetch_add(static_cast<std::uint64_t>(elapsed.count()),
                        std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] double total_seconds() const noexcept {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII phase timer; a null target makes it a no-op so instrumented code
/// pays nothing when metrics are disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerMetric* timer) noexcept
      : timer_(timer),
        start_(timer ? std::chrono::steady_clock::now()
                     : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (timer_) timer_->add(std::chrono::steady_clock::now() - start_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerMetric* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct TimerStat {
    double seconds = 0.0;
    std::uint64_t count = 0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerStat> timers;
};

/// Per-interval view of two snapshots of the same registry: counters and
/// timers subtract (names absent from `before` count as zero; a counter
/// that somehow shrank clamps to zero rather than wrapping), gauges keep
/// their `after` value (they are instantaneous, not cumulative).  This is
/// how the bench harness turns one accumulating registry into
/// per-repetition metrics.
[[nodiscard]] MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                                             const MetricsSnapshot& after);

/// Thread-safe name -> metric registry.  Lookup is mutex-guarded; returned
/// references stay valid for the registry's lifetime (metrics are
/// heap-allocated and never removed).
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] TimerMetric& timer(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<TimerMetric>, std::less<>> timers_;
};

}  // namespace eus
