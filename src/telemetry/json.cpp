#include "telemetry/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace eus {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  std::array<char, 32> buf{};
  const auto [ptr, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), value);
  if (ec != std::errc()) return "null";
  return std::string(buf.data(), ptr);
}

void JsonObject::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonObject& JsonObject::field(std::string_view k, std::string_view value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::field(std::string_view k, const char* value) {
  return field(k, std::string_view(value));
}

JsonObject& JsonObject::field(std::string_view k, double value) {
  key(k);
  body_ += json_number(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::raw(std::string_view k, std::string_view json_value) {
  key(k);
  body_ += json_value;
  return *this;
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

}  // namespace eus
