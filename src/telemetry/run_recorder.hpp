#pragma once

// Structured run records as JSON Lines, written next to the benches'
// ASCII/CSV output so external tooling can ingest experiments without
// scraping.  One file per run, three record types (EXPERIMENTS.md
// documents the schema):
//
//   {"type":"config", ...}        once, before the study starts
//   {"type":"checkpoint", ...}    one per (population, checkpoint)
//   {"type":"summary", ...}       once, after the study finishes
//
// Thread-safe: checkpoint records arrive concurrently from populations
// evolving in parallel on the StudyEngine's pool; each record is rendered
// off-lock and appended as one atomic line.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "pareto/point.hpp"
#include "telemetry/metrics.hpp"

namespace eus {

/// Everything worth replaying about a study's configuration.
struct RunInfo {
  std::string study;  ///< label, e.g. "Figure 3 — dataset 1"
  std::uint64_t seed = 0;
  std::size_t population_size = 0;
  std::size_t threads = 1;  ///< resolved worker count (1 == serial)
  double mutation_probability = 0.0;
  std::vector<std::size_t> checkpoints;
  std::vector<std::string> populations;
};

class RunRecorder {
 public:
  /// Records into an externally owned stream (kept open by the caller).
  explicit RunRecorder(std::ostream& out);
  /// Records into `path`, truncating; throws std::runtime_error when the
  /// file cannot be opened.
  explicit RunRecorder(const std::string& path);
  ~RunRecorder();

  RunRecorder(const RunRecorder&) = delete;
  RunRecorder& operator=(const RunRecorder&) = delete;

  void record_config(const RunInfo& info);
  /// `front` is the population's rank-0 objective points at `iterations`.
  void record_checkpoint(std::string_view population, std::size_t iterations,
                         const std::vector<EUPoint>& front,
                         double elapsed_seconds);
  void record_summary(double wall_seconds, const MetricsSnapshot& metrics);

  [[nodiscard]] std::size_t lines_written() const noexcept { return lines_; }

 private:
  void write_line(const std::string& json);

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  std::mutex mutex_;
  std::size_t lines_ = 0;
};

}  // namespace eus
