#include "telemetry/metrics.hpp"

namespace eus {

namespace {

template <typename T>
T& get_or_create(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                 std::string_view name) {
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  return *map.emplace(std::string(name), std::make_unique<T>())
              .first->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return get_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return get_or_create(gauges_, name);
}

TimerMetric& MetricsRegistry::timer(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return get_or_create(timers_, name);
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t prior = it == before.counters.end() ? 0U : it->second;
    delta.counters[name] = value >= prior ? value - prior : 0U;
  }
  delta.gauges = after.gauges;
  for (const auto& [name, stat] : after.timers) {
    const auto it = before.timers.find(name);
    MetricsSnapshot::TimerStat d = stat;
    if (it != before.timers.end()) {
      d.seconds = stat.seconds >= it->second.seconds
                      ? stat.seconds - it->second.seconds
                      : 0.0;
      d.count = stat.count >= it->second.count ? stat.count - it->second.count
                                               : 0U;
    }
    delta.timers[name] = d;
  }
  return delta;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, t] : timers_) {
    snap.timers[name] = {t->total_seconds(), t->count()};
  }
  return snap;
}

}  // namespace eus
