#include "telemetry/metrics.hpp"

#include "telemetry/json.hpp"

namespace eus {

namespace {

template <typename T>
T& get_or_create(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                 std::string_view name) {
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  return *map.emplace(std::string(name), std::make_unique<T>())
              .first->second;
}

}  // namespace

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::quantile_seconds(double q) const noexcept {
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // Rank of the target sample, 1-based; walk buckets until it is covered.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      clamped * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Upper bound of bucket i is 2^i ns (bucket 0 holds [0, 1] ns).
      return i >= 63 ? static_cast<double>(~0ULL) * 1e-9
                     : static_cast<double>(1ULL << i) * 1e-9;
    }
  }
  return 0.0;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return get_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return get_or_create(gauges_, name);
}

TimerMetric& MetricsRegistry::timer(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return get_or_create(timers_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return get_or_create(histograms_, name);
}

void append_snapshot(JsonObject& out, const MetricsSnapshot& snap) {
  JsonObject counters;
  for (const auto& [name, value] : snap.counters) counters.field(name, value);
  out.raw("counters", counters.str());
  JsonObject gauges;
  for (const auto& [name, value] : snap.gauges) gauges.field(name, value);
  out.raw("gauges", gauges.str());
  JsonObject timers;
  for (const auto& [name, stat] : snap.timers) {
    JsonObject t;
    t.field("seconds", stat.seconds);
    t.field("count", stat.count);
    timers.raw(name, t.str());
  }
  out.raw("timers", timers.str());
  JsonObject histograms;
  for (const auto& [name, stat] : snap.histograms) {
    JsonObject h;
    h.field("count", stat.count);
    h.field("p50_ms", stat.p50_s * 1e3);
    h.field("p95_ms", stat.p95_s * 1e3);
    h.field("p99_ms", stat.p99_s * 1e3);
    histograms.raw(name, h.str());
  }
  out.raw("histograms", histograms.str());
}

std::string snapshot_json(const MetricsSnapshot& snap) {
  JsonObject o;
  append_snapshot(o, snap);
  return o.str();
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t prior = it == before.counters.end() ? 0U : it->second;
    delta.counters[name] = value >= prior ? value - prior : 0U;
  }
  delta.gauges = after.gauges;
  for (const auto& [name, stat] : after.timers) {
    const auto it = before.timers.find(name);
    MetricsSnapshot::TimerStat d = stat;
    if (it != before.timers.end()) {
      d.seconds = stat.seconds >= it->second.seconds
                      ? stat.seconds - it->second.seconds
                      : 0.0;
      d.count = stat.count >= it->second.count ? stat.count - it->second.count
                                               : 0U;
    }
    delta.timers[name] = d;
  }
  // Histograms report cumulative distributions; like gauges they keep the
  // `after` view (quantiles of a difference are not well defined).
  delta.histograms = after.histograms;
  return delta;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, t] : timers_) {
    snap.timers[name] = {t->total_seconds(), t->count()};
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = {h->count(), h->quantile_seconds(0.50),
                             h->quantile_seconds(0.95),
                             h->quantile_seconds(0.99)};
  }
  return snap;
}

}  // namespace eus
