#include "telemetry/metrics.hpp"

namespace eus {

namespace {

template <typename T>
T& get_or_create(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                 std::string_view name) {
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  return *map.emplace(std::string(name), std::make_unique<T>())
              .first->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return get_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return get_or_create(gauges_, name);
}

TimerMetric& MetricsRegistry::timer(std::string_view name) {
  const std::lock_guard lock(mutex_);
  return get_or_create(timers_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, t] : timers_) {
    snap.timers[name] = {t->total_seconds(), t->count()};
  }
  return snap;
}

}  // namespace eus
