#pragma once

// Minimal JSON emission for the telemetry layer: enough to write flat run
// records as JSON Lines, no parsing, no dependencies.  Numbers round-trip
// (max_digits10); non-finite doubles degrade to null per RFC 8259.

#include <cstdint>
#include <string>
#include <string_view>

namespace eus {

/// Escapes `text` for use inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Shortest round-trip decimal for a double; "null" for NaN/infinity.
[[nodiscard]] std::string json_number(double value);

/// Incremental builder for one flat JSON object: {"k":v,...}.  Values are
/// escaped/formatted; raw() splices a pre-rendered JSON value (for nested
/// arrays/objects).
class JsonObject {
 public:
  JsonObject& field(std::string_view key, std::string_view value);
  JsonObject& field(std::string_view key, const char* value);
  JsonObject& field(std::string_view key, double value);
  JsonObject& field(std::string_view key, std::uint64_t value);
  JsonObject& field(std::string_view key, std::int64_t value);
  JsonObject& field(std::string_view key, bool value);
  JsonObject& raw(std::string_view key, std::string_view json_value);

  /// The finished object, e.g. {"a":1,"b":"x"}.
  [[nodiscard]] std::string str() const;

 private:
  void key(std::string_view k);
  std::string body_;
};

}  // namespace eus
