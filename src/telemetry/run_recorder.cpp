#include "telemetry/run_recorder.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "telemetry/json.hpp"

namespace eus {

namespace {

std::string front_array(const std::vector<EUPoint>& front) {
  std::string out = "[";
  for (std::size_t i = 0; i < front.size(); ++i) {
    if (i != 0) out += ',';
    out += '[';
    out += json_number(front[i].energy);
    out += ',';
    out += json_number(front[i].utility);
    out += ']';
  }
  out += ']';
  return out;
}

template <typename Range, typename Fn>
std::string json_array(const Range& range, Fn&& render) {
  std::string out = "[";
  bool first = true;
  for (const auto& item : range) {
    if (!first) out += ',';
    first = false;
    out += render(item);
  }
  out += ']';
  return out;
}

}  // namespace

RunRecorder::RunRecorder(std::ostream& out) : out_(&out) {}

RunRecorder::RunRecorder(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)),
      out_(owned_.get()) {
  if (!*owned_) {
    throw std::runtime_error("RunRecorder: cannot open " + path);
  }
}

RunRecorder::~RunRecorder() = default;

void RunRecorder::write_line(const std::string& json) {
  const std::lock_guard lock(mutex_);
  *out_ << json << '\n';
  out_->flush();
  ++lines_;
}

void RunRecorder::record_config(const RunInfo& info) {
  JsonObject o;
  o.field("type", "config")
      .field("study", info.study)
      .field("seed", static_cast<std::uint64_t>(info.seed))
      .field("population_size",
             static_cast<std::uint64_t>(info.population_size))
      .field("threads", static_cast<std::uint64_t>(info.threads))
      .field("mutation_probability", info.mutation_probability)
      .raw("checkpoints", json_array(info.checkpoints,
                                     [](std::size_t c) {
                                       return std::to_string(c);
                                     }))
      .raw("populations", json_array(info.populations,
                                     [](const std::string& name) {
                                       return '"' + json_escape(name) + '"';
                                     }));
  write_line(o.str());
}

void RunRecorder::record_checkpoint(std::string_view population,
                                    std::size_t iterations,
                                    const std::vector<EUPoint>& front,
                                    double elapsed_seconds) {
  JsonObject o;
  o.field("type", "checkpoint")
      .field("population", population)
      .field("iterations", static_cast<std::uint64_t>(iterations))
      .field("elapsed_s", elapsed_seconds)
      .field("front_size", static_cast<std::uint64_t>(front.size()))
      .raw("front", front_array(front));
  write_line(o.str());
}

void RunRecorder::record_summary(double wall_seconds,
                                 const MetricsSnapshot& metrics) {
  JsonObject counters;
  for (const auto& [name, value] : metrics.counters) {
    counters.field(name, static_cast<std::uint64_t>(value));
  }
  JsonObject gauges;
  for (const auto& [name, value] : metrics.gauges) gauges.field(name, value);
  JsonObject timers;
  for (const auto& [name, stat] : metrics.timers) {
    JsonObject t;
    t.field("seconds", stat.seconds)
        .field("count", static_cast<std::uint64_t>(stat.count));
    timers.raw(name, t.str());
  }

  JsonObject o;
  o.field("type", "summary")
      .field("wall_s", wall_seconds)
      .raw("counters", counters.str())
      .raw("gauges", gauges.str())
      .raw("timers", timers.str());
  write_line(o.str());
}

}  // namespace eus
