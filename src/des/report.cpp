#include "des/report.hpp"

#include <algorithm>
#include <sstream>

#include "util/table.hpp"

namespace eus {

std::string utilization_report(const SystemModel& system,
                               const DesResult& result) {
  AsciiTable table({"machine", "tasks", "busy (s)", "last finish (s)",
                    "utilization", "energy share"});
  double total_energy = 0.0;
  std::vector<double> energy(result.machines.size(), 0.0);
  for (const auto& o : result.outcomes) {
    if (!o.dropped && o.machine >= 0) {
      energy[static_cast<std::size_t>(o.machine)] += o.energy;
      total_energy += o.energy;
    }
  }
  for (std::size_t m = 0; m < result.machines.size(); ++m) {
    const MachineStats& stats = result.machines[m];
    const double util =
        stats.last_finish > 0.0 ? stats.busy_time / stats.last_finish : 0.0;
    table.add_row(
        {system.machines()[m].name, std::to_string(stats.tasks_run),
         format_double(stats.busy_time, 0),
         format_double(stats.last_finish, 0),
         format_double(100.0 * util, 1) + "%",
         total_energy > 0.0
             ? format_double(100.0 * energy[m] / total_energy, 1) + "%"
             : "-"});
  }
  return table.render();
}

std::string gantt_chart(const SystemModel& system, const DesResult& result,
                        const GanttOptions& options) {
  const double horizon =
      options.until > 0.0 ? options.until : result.totals.makespan;
  std::ostringstream os;
  if (horizon <= 0.0) {
    os << "(empty schedule)\n";
    return os.str();
  }
  const std::size_t width = std::max<std::size_t>(options.width, 10);

  std::size_t name_width = 0;
  for (const auto& m : system.machines()) {
    name_width = std::max(name_width, m.name.size());
  }
  name_width = std::min<std::size_t>(name_width, 32);

  const auto column = [&](double t) {
    const double f = std::clamp(t / horizon, 0.0, 1.0);
    return static_cast<std::size_t>(f * static_cast<double>(width - 1));
  };

  for (std::size_t m = 0; m < result.machines.size(); ++m) {
    const MachineStats& stats = result.machines[m];
    std::string row(width, ' ');
    if (stats.last_finish > 0.0) {
      const std::size_t powered_end = column(stats.last_finish);
      for (std::size_t c = 0; c <= powered_end; ++c) row[c] = options.idle;
      for (const auto& span : stats.timeline) {
        const std::size_t from = column(span.start);
        const std::size_t to = column(span.finish);
        for (std::size_t c = from; c <= to; ++c) row[c] = options.busy;
      }
    }
    std::string name = system.machines()[m].name;
    if (name.size() > name_width) name = name.substr(0, name_width);
    os << name << std::string(name_width - name.size(), ' ') << " |" << row
       << "|\n";
  }
  os << std::string(name_width, ' ') << "  0"
     << std::string(width > 12 ? width - 12 : 1, ' ')
     << format_double(horizon, 0) << " s\n"
     << std::string(name_width, ' ') << "  (" << options.busy << " busy, "
     << options.idle << " powered idle)\n";
  return os.str();
}

}  // namespace eus
