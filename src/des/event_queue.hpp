#pragma once

// A minimal discrete-event simulation kernel: a time-ordered queue of
// callbacks with deterministic FIFO tie-breaking at equal timestamps.
// src/des builds an independent, event-driven implementation of the
// scheduling semantics on top of this, used to cross-validate the analytic
// evaluator (tests assert bit-equal objectives on random allocations).

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace eus {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `when` (must be >= now()); events at
  /// equal times fire in scheduling order.  Throws std::invalid_argument
  /// on time travel.
  void schedule(double when, Callback fn);

  /// Current simulation time (0 before the first event fires).
  [[nodiscard]] double now() const noexcept { return now_; }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept {
    return events_.size();
  }

  /// Pops and fires events until the queue drains.  Returns the number of
  /// events fired.  Callbacks may schedule further events.
  std::size_t run();

  /// Fires events with time <= `until` (inclusive); later events remain
  /// queued and now() advances to the last fired event's time.
  std::size_t run_until(double until);

 private:
  struct Event {
    double when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace eus
