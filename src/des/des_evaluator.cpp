#include "des/des_evaluator.hpp"

#include <algorithm>
#include <numeric>

#include "des/event_queue.hpp"

namespace eus {

DesResult des_evaluate(const SystemModel& system, const Trace& trace,
                       const Allocation& allocation,
                       const EvaluatorOptions& options) {
  const Evaluator validator(system, trace, options);
  validator.validate(allocation);

  const std::size_t tasks = trace.size();
  const std::size_t machines = system.num_machines();

  DesResult result;
  result.outcomes.resize(tasks);
  result.machines.resize(machines);

  // Per-machine queues in (order, index) sequence.
  std::vector<std::vector<std::uint32_t>> queues(machines);
  for (std::size_t i = 0; i < tasks; ++i) {
    queues[static_cast<std::size_t>(allocation.machine[i])].push_back(
        static_cast<std::uint32_t>(i));
  }
  for (auto& q : queues) {
    std::sort(q.begin(), q.end(), [&](std::uint32_t a, std::uint32_t b) {
      const int oa = allocation.order[a];
      const int ob = allocation.order[b];
      return oa != ob ? oa < ob : a < b;
    });
  }
  std::vector<std::size_t> cursor(machines, 0);

  const bool use_dvfs = options.dvfs.has_value() && !allocation.pstate.empty();

  EventQueue events;
  double total_wait = 0.0;
  std::size_t executed = 0;

  // Machine process: attempt to start the next queued task at now().
  const std::function<void(std::size_t)> try_start = [&](std::size_t m) {
    while (cursor[m] < queues[m].size()) {
      const std::uint32_t i = queues[m][cursor[m]];
      const TaskInstance& task = trace.tasks()[i];
      const double now = events.now();
      if (task.arrival > now) {
        // Sleep until the head-of-queue task arrives (§IV-D idle rule).
        events.schedule(task.arrival, [&, m] { try_start(m); });
        return;
      }

      double exec = system.etc_on(task.type, m);
      double power = system.epc_on(task.type, m);
      if (use_dvfs) {
        const auto p = static_cast<std::size_t>(allocation.pstate[i]);
        exec *= options.dvfs->time_multiplier(p);
        power *= options.dvfs->power_multiplier(p);
      }
      const double start = now;
      const double finish = start + exec;
      const double utility = trace.tuf_of(i).value(finish - task.arrival);

      if (options.drop_worthless_tasks && utility <= options.drop_threshold) {
        ++result.totals.dropped;
        result.outcomes[i] =
            TaskOutcome{allocation.machine[i], 0.0, 0.0, 0.0, 0.0, true};
        ++cursor[m];
        continue;  // same instant, next task
      }

      const double energy = exec * power;
      result.totals.makespan = std::max(result.totals.makespan, finish);
      result.outcomes[i] =
          TaskOutcome{allocation.machine[i], start, finish, utility, energy,
                      false};

      MachineStats& stats = result.machines[m];
      stats.busy_time += exec;
      stats.last_finish = finish;
      stats.utility += utility;
      stats.energy += energy;
      ++stats.tasks_run;
      stats.timeline.push_back({i, start, finish});

      total_wait += start - task.arrival;
      ++executed;

      ++cursor[m];
      events.schedule(finish, [&, m] { try_start(m); });
      return;  // completion event chains the next start
    }
  };

  for (std::size_t m = 0; m < machines; ++m) {
    if (!queues[m].empty()) {
      events.schedule(0.0, [&, m] { try_start(m); });
    }
  }
  result.events_fired = events.run();

  // Fold per-machine partials in machine-index order — the same canonical
  // reduction the analytic Evaluator uses (see docs/evaluator.md), so the
  // two implementations agree bit for bit by construction rather than by
  // accident of event ordering.
  for (const MachineStats& stats : result.machines) {
    result.totals.utility += stats.utility;
    result.totals.energy += stats.energy;
  }

  if (!options.idle_watts.empty()) {
    for (std::size_t m = 0; m < machines; ++m) {
      const MachineStats& stats = result.machines[m];
      if (stats.last_finish <= 0.0) continue;
      const auto type = static_cast<std::size_t>(system.machines()[m].type);
      result.totals.idle_energy +=
          options.idle_watts[type] * (stats.last_finish - stats.busy_time);
    }
    result.totals.energy += result.totals.idle_energy;
  }

  result.mean_queue_wait =
      executed > 0 ? total_wait / static_cast<double>(executed) : 0.0;
  return result;
}

}  // namespace eus
