#pragma once

// Human-readable schedule reports built on the DES instrumentation:
// per-machine utilization tables and an ASCII Gantt chart.  Used by the
// examples so an administrator can inspect *what a front point actually
// does* before deploying it.

#include <string>

#include "des/des_evaluator.hpp"

namespace eus {

/// Per-machine utilization table: tasks run, busy seconds, last finish,
/// utilization (busy / last finish), share of total energy.
[[nodiscard]] std::string utilization_report(const SystemModel& system,
                                             const DesResult& result);

struct GanttOptions {
  std::size_t width = 72;     ///< character columns for the time axis
  double until = 0.0;         ///< right edge; 0 = the makespan
  char busy = '#';
  char idle = '.';
};

/// One row per machine; '#' spans execution, '.' spans powered idle time
/// (before the machine's last finish), spaces after the queue drains.
[[nodiscard]] std::string gantt_chart(const SystemModel& system,
                                      const DesResult& result,
                                      const GanttOptions& options = {});

}  // namespace eus
