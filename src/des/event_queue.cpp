#include "des/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace eus {

void EventQueue::schedule(double when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

std::size_t EventQueue::run() {
  std::size_t fired = 0;
  while (!events_.empty()) {
    // Move the callback out before popping so it may schedule new events.
    Event event = events_.top();
    events_.pop();
    now_ = event.when;
    event.fn();
    ++fired;
  }
  return fired;
}

std::size_t EventQueue::run_until(double until) {
  std::size_t fired = 0;
  while (!events_.empty() && events_.top().when <= until) {
    Event event = events_.top();
    events_.pop();
    now_ = event.when;
    event.fn();
    ++fired;
  }
  return fired;
}

}  // namespace eus
