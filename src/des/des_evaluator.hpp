#pragma once

// Event-driven re-implementation of the §IV-D scheduling semantics: each
// machine is a process that walks its order-sorted queue, sleeping until
// the next task's arrival when necessary, firing completion events that
// chain the next start.  Feature parity with the analytic Evaluator
// (dropping, DVFS, idle power) — the two implementations share no
// scheduling code, so agreement on random inputs is strong evidence both
// are right (see test_des).
//
// The DES also gathers instrumentation the analytic path does not:
// per-machine busy time, queue waits, and a full machine timeline.

#include <vector>

#include "sched/evaluator.hpp"

namespace eus {

/// One executed span on a machine's timeline.
struct TimelineEntry {
  std::size_t task = 0;
  double start = 0.0;
  double finish = 0.0;
};

struct MachineStats {
  double busy_time = 0.0;
  double last_finish = 0.0;   ///< 0 when never used
  double utility = 0.0;       ///< utility earned on this machine
  double energy = 0.0;        ///< busy joules spent on this machine
  std::size_t tasks_run = 0;
  std::vector<TimelineEntry> timeline;  ///< chronological
};

struct DesResult {
  Evaluation totals;
  std::vector<TaskOutcome> outcomes;     ///< indexed by trace task
  std::vector<MachineStats> machines;    ///< indexed by machine instance
  /// Mean of (start - arrival) over executed tasks: how long tasks sat in
  /// the system before starting (machine busy and/or order-induced waits).
  double mean_queue_wait = 0.0;
  std::size_t events_fired = 0;
};

/// Runs the event simulation.  Validates the allocation first (same rules
/// as Evaluator::validate).
[[nodiscard]] DesResult des_evaluate(const SystemModel& system,
                                     const Trace& trace,
                                     const Allocation& allocation,
                                     const EvaluatorOptions& options = {});

}  // namespace eus
