#pragma once

// SystemModel: the full description of a heterogeneous compute environment —
// machine types + instances, task types, and the ETC/EPC matrices (§III).
// Everything downstream (trace generation, heuristics, NSGA-II evaluation)
// consumes this one structure.

#include <cstddef>
#include <vector>

#include "data/matrix.hpp"
#include "data/types.hpp"

namespace eus {

class SystemModel {
 public:
  SystemModel() = default;

  /// Takes ownership of the catalogs and matrices and validates coherence
  /// (matrix shapes, eligibility rules, positive finite entries).  Throws
  /// std::invalid_argument on violations.
  SystemModel(std::vector<TaskType> task_types,
              std::vector<MachineType> machine_types,
              std::vector<Machine> machines, Matrix etc, Matrix epc);

  [[nodiscard]] const std::vector<TaskType>& task_types() const noexcept {
    return task_types_;
  }
  [[nodiscard]] const std::vector<MachineType>& machine_types()
      const noexcept {
    return machine_types_;
  }
  [[nodiscard]] const std::vector<Machine>& machines() const noexcept {
    return machines_;
  }
  [[nodiscard]] std::size_t num_task_types() const noexcept {
    return task_types_.size();
  }
  [[nodiscard]] std::size_t num_machine_types() const noexcept {
    return machine_types_.size();
  }
  [[nodiscard]] std::size_t num_machines() const noexcept {
    return machines_.size();
  }

  /// ETC(τ, μ): estimated seconds for task type τ on machine *type* μ;
  /// kIneligible when the pair cannot execute.
  [[nodiscard]] const Matrix& etc() const noexcept { return etc_; }
  /// EPC(τ, μ): average watts for task type τ on machine type μ.
  [[nodiscard]] const Matrix& epc() const noexcept { return epc_; }

  [[nodiscard]] bool eligible_type(std::size_t task_type,
                                   std::size_t machine_type) const noexcept {
    return etc_(task_type, machine_type) != kIneligible;
  }
  /// Eligibility against a machine *instance*.
  [[nodiscard]] bool eligible(std::size_t task_type,
                              std::size_t machine) const noexcept {
    return eligible_type(task_type,
                         static_cast<std::size_t>(machines_[machine].type));
  }

  /// ETC/EPC/EEC against a machine *instance* (hot-path, unchecked).
  [[nodiscard]] double etc_on(std::size_t task_type,
                              std::size_t machine) const noexcept {
    return etc_(task_type, static_cast<std::size_t>(machines_[machine].type));
  }
  [[nodiscard]] double epc_on(std::size_t task_type,
                              std::size_t machine) const noexcept {
    return epc_(task_type, static_cast<std::size_t>(machines_[machine].type));
  }
  /// Expected Energy Consumption, Eq. (2): ETC × EPC (joules).
  [[nodiscard]] double eec_on(std::size_t task_type,
                              std::size_t machine) const noexcept {
    return etc_on(task_type, machine) * epc_on(task_type, machine);
  }

  /// Machine instances a task type may run on, precomputed at construction.
  [[nodiscard]] const std::vector<int>& eligible_machines(
      std::size_t task_type) const {
    return eligible_machines_.at(task_type);
  }

  /// Number of machine instances of the given type.
  [[nodiscard]] std::size_t count_of_type(std::size_t machine_type) const;

 private:
  void validate() const;
  void build_eligibility();

  std::vector<TaskType> task_types_;
  std::vector<MachineType> machine_types_;
  std::vector<Machine> machines_;
  Matrix etc_;
  Matrix epc_;
  std::vector<std::vector<int>> eligible_machines_;
};

}  // namespace eus
