#pragma once

// Catalog types shared across the framework: heterogeneous machine types,
// task types, and concrete machine instances (§III of the paper).

#include <limits>
#include <string>

namespace eus {

/// Sentinel ETC value for (task type, machine type) pairs that cannot
/// execute together (e.g. a general-purpose task on a special-purpose
/// machine).
inline constexpr double kIneligible = std::numeric_limits<double>::infinity();

/// General-purpose hardware/tasks run anything/anywhere (within the paper's
/// rules); special-purpose machines accelerate a small task subset ~10x.
enum class Category { kGeneral, kSpecial };

[[nodiscard]] constexpr const char* to_string(Category c) noexcept {
  return c == Category::kGeneral ? "general" : "special";
}

struct MachineType {
  std::string name;
  Category category = Category::kGeneral;
};

struct TaskType {
  std::string name;
  Category category = Category::kGeneral;
  /// For special-purpose task types: index of the machine *type* that
  /// accelerates this task type; -1 for general-purpose task types.
  int special_machine_type = -1;
};

/// A concrete machine instance in the suite (dataset 2/3 have several
/// instances per type, per Table III).
struct Machine {
  int type = 0;      ///< index into SystemModel::machine_types
  std::string name;  ///< instance label, e.g. "Intel Core i7 3770K #2"
};

}  // namespace eus
