#include "data/matrix.hpp"

#include <cmath>
#include <limits>

namespace eus {

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  for (const auto& row : rows) m.append_row(row);
  return m;
}

double Matrix::row_mean_finite(std::size_t r) const {
  check(r, 0);
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t c = 0; c < cols_; ++c) {
    const double v = (*this)(r, c);
    if (std::isfinite(v)) {
      sum += v;
      ++n;
    }
  }
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(n);
}

std::vector<double> Matrix::row_finite(std::size_t r) const {
  check(r, 0);
  std::vector<double> out;
  out.reserve(cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double v = (*this)(r, c);
    if (std::isfinite(v)) out.push_back(v);
  }
  return out;
}

std::vector<double> Matrix::col_finite(std::size_t c) const {
  check(0, c);
  std::vector<double> out;
  out.reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double v = (*this)(r, c);
    if (std::isfinite(v)) out.push_back(v);
  }
  return out;
}

void Matrix::append_row(const std::vector<double>& row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  if (row.size() != cols_) throw std::invalid_argument("row width mismatch");
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

void Matrix::append_col(const std::vector<double>& col) {
  if (rows_ == 0 && cols_ == 0) {
    rows_ = col.size();
    data_ = col;
    cols_ = 1;
    return;
  }
  if (col.size() != rows_) throw std::invalid_argument("col height mismatch");
  std::vector<double> next;
  next.reserve(rows_ * (cols_ + 1));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) next.push_back((*this)(r, c));
    next.push_back(col[r]);
  }
  data_ = std::move(next);
  ++cols_;
}

}  // namespace eus
