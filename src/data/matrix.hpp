#pragma once

// Dense row-major matrix of doubles.  Rows index task types, columns index
// machine types throughout the framework (the paper's ETC/EPC orientation).

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace eus {

class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer data; every row must have equal width.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  /// Unchecked access for hot loops.
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Mean of the finite entries of row r; NaN if none.
  [[nodiscard]] double row_mean_finite(std::size_t r) const;

  /// All finite entries of row r, in column order.
  [[nodiscard]] std::vector<double> row_finite(std::size_t r) const;

  /// All finite entries of column c, in row order.
  [[nodiscard]] std::vector<double> col_finite(std::size_t c) const;

  /// Appends a row (width must match cols(), unless the matrix is empty).
  void append_row(const std::vector<double>& row);

  /// Appends a column (height must match rows(), unless the matrix is empty).
  void append_col(const std::vector<double>& col);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace eus
